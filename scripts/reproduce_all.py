"""Reproduce the paper's full evaluation and print every table/figure.

Equivalent to the artifact's run.sh + plot.sh, but prints text tables
instead of gnuplot figures.

    python scripts/reproduce_all.py [--full] [--platform apple_m2]
"""

import argparse
import time

from repro.harness import (
    render_breakdown,
    render_injection,
    render_memory,
    render_overheads,
    render_period_sweep,
)
from repro.harness.figures import (
    run_fault_injection,
    run_overhead_breakdown,
    run_period_sweep,
    run_suite_comparison,
    run_syscall_signal_stress,
)

NAMED_SUBSET = ("bzip2", "gcc", "mcf", "milc", "libquantum", "lbm",
                "sjeng", "soplex")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="all 16 benchmarks (default: the 8 the paper names)")
    parser.add_argument("--platform", default="apple_m2",
                        choices=["apple_m2", "intel_14700"])
    args = parser.parse_args()
    names = None if args.full else NAMED_SUBSET
    started = time.time()

    print("== Figures 5/7/8: suite comparison ==", flush=True)
    comparison = run_suite_comparison(platform_name=args.platform,
                                      names=names, sample_memory=True)
    print(render_overheads(comparison, "perf"))
    print()
    print(render_overheads(comparison, "energy"))
    print()
    print(render_memory(comparison))

    print("\n== Figure 6: overhead breakdown ==", flush=True)
    print(render_breakdown(run_overhead_breakdown(
        platform_name=args.platform, names=names)))

    print("\n== Figure 9: slicing-period sweep (gcc/mcf/sjeng) ==",
          flush=True)
    print(render_period_sweep(run_period_sweep(
        platform_name=args.platform)))

    print("\n== Figure 10: fault injection (sampled) ==", flush=True)
    print(render_injection(run_fault_injection(
        names=("bzip2", "gobmk", "sphinx3", "mcf"),
        injections_per_segment=2, paper_period=20e9, max_segments=4,
        platform_name=args.platform)))

    print("\n== Section 5.7: syscall/signal stress ==", flush=True)
    for name, result in run_syscall_signal_stress(
            platform_name=args.platform).items():
        print(f"  {name:10s} {result.slowdown:7.1f}x")

    print(f"\n[complete in {time.time() - started:.0f}s]")


if __name__ == "__main__":
    main()

"""Full-suite calibration sweep: fig5/6/7-style numbers for every benchmark.

Usage: python scripts/calibrate.py [platform]
"""

import sys
import time

from repro.common.units import BILLION
from repro.core import ParallaftConfig
from repro.harness import (
    breakdown,
    energy_overhead_pct,
    overhead_pct,
    run_baseline,
    run_protected,
    suite_geomean,
)
from repro.harness.periods import effective_period
from repro.sim import platform_by_name
from repro.workloads import all_benchmarks


def main() -> None:
    platform_name = sys.argv[1] if len(sys.argv) > 1 else "apple_m2"
    perf_p, perf_r, energy_p, energy_r = {}, {}, {}, {}
    t0 = time.time()
    for name, bench in sorted(all_benchmarks().items()):
        platform = platform_by_name(platform_name)
        base = run_baseline(bench, platform=platform_by_name(platform_name))
        cfg = ParallaftConfig()
        cfg.slicing_period = effective_period(5 * BILLION)
        para = run_protected(bench, "parallaft", config=cfg,
                             platform=platform_by_name(platform_name))
        raft = run_protected(bench, "raft",
                             platform=platform_by_name(platform_name))
        bd = breakdown(para, base)
        st = para.inputs[-1].stats
        perf_p[name] = overhead_pct(para, base)
        perf_r[name] = overhead_pct(raft, base)
        energy_p[name] = energy_overhead_pct(para, base)
        energy_r[name] = energy_overhead_pct(raft, base)
        print(f"{name:12s} P+{perf_p[name]:5.1f}% R+{perf_r[name]:5.1f}% | "
              f"E P+{energy_p[name]:5.1f}% R+{energy_r[name]:5.1f}% | "
              f"f+c {bd.fork_and_cow_pct:4.1f} ct {bd.resource_contention_pct:4.1f} "
              f"sy {bd.last_checker_sync_pct:4.1f} rt {bd.runtime_work_pct:4.1f} | "
              f"mig {st.checker_migrations:3d} big% {100*st.big_core_work_fraction:4.1f}",
              flush=True)
    print("-" * 100)
    print(f"GEOMEAN perf: parallaft +{suite_geomean(perf_p):.1f}% (paper 15.9) "
          f"raft +{suite_geomean(perf_r):.1f}% (paper 16.2)")
    print(f"GEOMEAN energy: parallaft +{suite_geomean(energy_p):.1f}% (paper 44.3) "
          f"raft +{suite_geomean(energy_r):.1f}% (paper 87.8)")
    print(f"[{time.time()-t0:.0f}s]")


if __name__ == "__main__":
    main()

"""Phase-attribution profiler: conservation, stall taxonomy, span hygiene.

The load-bearing property is *cycle conservation*: every cycle the
executor charges lands in exactly one profiler phase, checked three ways
— bitwise against ``Executor.charged_cycles`` on real runs, by trace
invariant (j) over the emitted ``phase_totals`` event, and as a
hypothesis property over random charge sequences.  The stall tests pin
the satellite bugfixes: pressure-ladder stalls and containment stalls
are distinct phases, and kill paths (OOM, shed, rollback) never leak an
open stall span.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Parallaft, ParallaftConfig
from repro.harness.report import render_phase_breakdown
from repro.kernel import Kernel
from repro.metrics import (
    CAP_STALL,
    CHECKER_STALL,
    COMPARISON,
    CONTAINMENT_STALL,
    CYCLE_PHASES,
    DIRTY_SCAN,
    MAIN_EXEC,
    PRESSURE_STALL,
    REPLAY,
    PhaseProfiler,
)
from repro.minic import compile_source
from repro.sim import apple_m2
from repro.trace import InvariantChecker, check_runtime
from repro.trace import events as tev

PAGE = 16384

PRINT_LOOP = """
global acc;
func main() {
    var i; var j;
    for (i = 0; i < 6; i = i + 1) {
        for (j = 0; j < 5000; j = j + 1) { acc = acc + j; }
        print_int(acc % 1000003);
    }
}
"""

COW_WORKLOAD = """
global data[2048];
func main() {
    var i; var round;
    srand64(7);
    for (round = 0; round < 24; round = round + 1) {
        for (i = 0; i < 2048; i = i + 1) {
            data[i] = data[i] * 5 + round + i;
        }
        print_int(data[round] % 1000003);
    }
}
"""


def run_workload(source=PRINT_LOOP, **overrides):
    config = ParallaftConfig()
    config.slicing_period = 150_000_000
    for key, value in overrides.items():
        setattr(config, key, value)
    runtime = Parallaft(compile_source(source), config=config,
                        platform=apple_m2())
    return runtime, runtime.run()


CONFIGS = {
    "plain": {},
    "containment": {"error_containment": True},
    "short_period": {"slicing_period": 80_000_000,
                     "max_live_segments": 6},
}


class TestConservation:
    @pytest.fixture(params=sorted(CONFIGS), scope="class")
    def finished(self, request):
        runtime, stats = run_workload(**CONFIGS[request.param])
        assert stats.exit_code == 0
        return runtime, stats

    def test_profiler_total_matches_executor_bitwise(self, finished):
        runtime, stats = finished
        profile = stats.phase_profile
        # Both totals accumulate the same charges in the same order, so
        # they must be bit-identical, not merely close.
        assert profile.total_cycles == runtime.executor.charged_cycles

    def test_phase_sum_conserves(self, finished):
        runtime, stats = finished
        profile = stats.phase_profile
        assert sum(profile.cycles.values()) == pytest.approx(
            runtime.executor.charged_cycles, rel=1e-9)
        assert set(profile.cycles) <= set(CYCLE_PHASES)

    def test_overhead_components_sum_exactly(self, finished):
        _, stats = finished
        profile = stats.phase_profile
        components = profile.overhead_components()
        # Components are the ledger's non-main entries verbatim (same
        # float objects, no recomputation), so any consistent summation
        # of the components reproduces the ledger's overhead with zero
        # slack — fsum is exactly rounded and order-independent.
        assert components == {p: profile.cycles.get(p, 0.0)
                              for p in CYCLE_PHASES if p != MAIN_EXEC}
        import math
        assert math.fsum(components.values()) == math.fsum(
            v for p, v in profile.cycles.items() if p != MAIN_EXEC)

    def test_phase_totals_event_and_invariants(self, finished):
        runtime, _ = finished
        totals = list(runtime.trace.events(tev.PHASE_TOTALS))
        assert len(totals) == 1
        assert check_runtime(runtime) == []

    def test_corrupted_ledger_trips_invariant(self):
        runtime, _ = run_workload()
        events = list(runtime.trace)
        for event in events:
            if event.kind == tev.PHASE_TOTALS:
                event.payload["phases"] = {
                    k: v * 1.5 for k, v in event.payload["phases"].items()}
        violations = InvariantChecker().check(events)
        assert [v.invariant for v in violations] == ["cycle_conservation"]

    def test_segment_ledger_within_totals(self, finished):
        _, stats = finished
        profile = stats.phase_profile
        for seg, phases in profile.segment_cycles.items():
            for phase, cyc in phases.items():
                assert cyc <= profile.cycles[phase] * (1 + 1e-12)


@given(st.lists(
    st.tuples(st.integers(0, len(CYCLE_PHASES) - 1),
              st.floats(0.0, 1e12, allow_nan=False, allow_infinity=False)),
    max_size=200))
@settings(deadline=None, max_examples=50)
def test_property_random_charges_conserve(charges):
    """Hypothesis property: however charges interleave across phases and
    segments, the per-phase ledger and the independently accumulated
    total agree (satellite #3)."""
    profiler = PhaseProfiler()
    executor_total = 0.0
    for idx, cycles in charges:
        profiler.charge(CYCLE_PHASES[idx], cycles, segment=idx % 3)
        executor_total += cycles
    assert profiler.total_cycles == executor_total  # same order: bitwise
    assert sum(profiler.cycles.values()) == pytest.approx(
        executor_total, rel=1e-9, abs=1e-6)
    per_segment = sum(c for phases in profiler.segment_cycles.values()
                      for c in phases.values())
    assert per_segment == pytest.approx(executor_total, rel=1e-9, abs=1e-6)


class TestRaftMode:
    def test_raft_never_runs_parallaft_phases(self):
        config = ParallaftConfig.raft()
        runtime = Parallaft(compile_source(PRINT_LOOP), config=config,
                            platform=apple_m2())
        stats = runtime.run()
        assert stats.exit_code == 0
        profile = stats.phase_profile
        assert profile.cycles.get(REPLAY, 0.0) > 0     # duplicate runs
        assert profile.cycles.get(COMPARISON, 0.0) == 0.0
        assert profile.stall_seconds.get(CONTAINMENT_STALL, 0.0) == 0.0
        text = render_phase_breakdown({"bench": profile})
        row = text.splitlines()[-1]
        assert "—" in row  # never-executed phases render as em-dash


class TestStallTaxonomy:
    def test_containment_stall_not_pressure(self):
        runtime, stats = run_workload(error_containment=True,
                                      max_live_segments=2)
        profile = stats.phase_profile
        assert profile.stall_seconds.get(CONTAINMENT_STALL, 0.0) > 0.0
        assert profile.stall_seconds.get(PRESSURE_STALL, 0.0) == 0.0
        assert check_runtime(runtime) == []

    def test_pressure_stall_not_containment(self):
        _, reference = run_workload(COW_WORKLOAD)
        budget = int(reference.peak_resident_bytes * 0.7)
        runtime, stats = run_workload(COW_WORKLOAD,
                                      mem_budget_bytes=budget)
        assert stats.pressure_stalls > 0
        profile = stats.phase_profile
        assert profile.stall_seconds.get(PRESSURE_STALL, 0.0) > 0.0
        assert profile.stall_seconds.get(CONTAINMENT_STALL, 0.0) == 0.0
        assert check_runtime(runtime) == []


class TestSpanHygiene:
    def test_exit_process_closes_open_span(self):
        """Kill paths route through ``Kernel.exit_process``; a process
        dying with an open stall span must not leak it (satellite #6)."""
        kernel = Kernel(page_size=PAGE, seed=1)
        now = [0.0]
        profiler = PhaseProfiler(clock=lambda: now[0])
        kernel.profiler = profiler
        proc = kernel.spawn(compile_source(PRINT_LOOP))
        profiler.open_span(proc.pid, CHECKER_STALL)
        now[0] = 2.5
        kernel.exit_process(proc, 137)
        assert profiler.open_spans == {}
        assert profiler.stall_seconds[CHECKER_STALL] == 2.5

    def test_reopen_closes_previous_span(self):
        now = [0.0]
        profiler = PhaseProfiler(clock=lambda: now[0])
        profiler.open_span(1, CAP_STALL)
        now[0] = 1.0
        profiler.open_span(1, CONTAINMENT_STALL)  # re-stall without wake
        now[0] = 4.0
        profiler.close_span(1)
        assert profiler.stall_seconds[CAP_STALL] == 1.0
        assert profiler.stall_seconds[CONTAINMENT_STALL] == 3.0

    def test_oom_killed_run_leaves_no_open_spans(self):
        runtime, stats = run_workload(COW_WORKLOAD,
                                      mem_budget_bytes=8 * PAGE)
        assert stats.oom_killed
        assert runtime.profiler.open_spans == {}
        assert check_runtime(runtime) == []

    def test_checker_shed_run_leaves_no_open_spans(self):
        _, reference = run_workload(COW_WORKLOAD)
        runtime, stats = run_workload(
            COW_WORKLOAD,
            mem_budget_bytes=int(reference.peak_resident_bytes * 0.55))
        assert stats.exit_code == 0 or stats.oom_killed
        assert runtime.profiler.open_spans == {}

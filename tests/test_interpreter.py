"""Tests for the CPU interpreter: semantics, counters, breakpoints, traps."""

import pytest

from repro.cpu import CpuContext, StopReason, run
from repro.cpu.exceptions import FaultKind
from repro.isa import DATA_BASE, assemble
from repro.mem import AddressSpace, FramePool

PAGE = 4096


class StubNondet:
    def __init__(self):
        self.tsc = 1000

    def read_tsc(self):
        self.tsc += 7
        return self.tsc

    def read_sysreg(self, sysreg):
        return 0xB16 if sysreg == 0 else sysreg

    def cpuid(self):
        return 0xC0DE


class StubProcess:
    """Minimal duck-typed process for driving the interpreter directly."""

    def __init__(self, source, data=b"", skid=0):
        self.pool = FramePool(PAGE)
        self.mem = AddressSpace(self.pool, aslr=False)
        program = assemble(source)
        if data:
            program = type(program)(program.instrs, program.labels, data, "t")
        self.mem.load_program(program)
        self.cpu = CpuContext()
        self.cpu.pc = program.entry
        self.nondet = StubNondet()
        self._skid = skid

    def skid_draw(self):
        return self._skid

    def run(self, budget=100000):
        return run(self, budget)


class TestArithmetic:
    def test_add_loop_sums(self):
        proc = StubProcess("""
            li r1, 0
            li r2, 10
        loop:
            add r1, r1, r2
            addi r2, r2, -1
            bne r2, r0, loop
            halt
        """)
        stop = proc.run()
        assert stop.reason == StopReason.HALTED
        assert proc.cpu.regs.gprs[1] == sum(range(1, 11))

    def test_signed_wraparound(self):
        proc = StubProcess("""
            li r1, 0x7fffffffffffffff
            addi r1, r1, 1
            halt
        """)
        proc.run()
        assert proc.cpu.regs.gprs[1] == -(1 << 63)

    def test_division_truncates_toward_zero(self):
        proc = StubProcess("""
            li r1, -7
            li r2, 2
            div r3, r1, r2
            mod r4, r1, r2
            halt
        """)
        proc.run()
        assert proc.cpu.regs.gprs[3] == -3  # C semantics, not Python floor
        assert proc.cpu.regs.gprs[4] == -1

    def test_divide_by_zero_faults(self):
        proc = StubProcess("li r1, 1\ndiv r2, r1, r0\nhalt\n")
        stop = proc.run()
        assert stop.reason == StopReason.FAULT
        assert stop.fault.kind == FaultKind.DIVIDE_BY_ZERO

    def test_shifts(self):
        proc = StubProcess("""
            li r1, -8
            li r2, 1
            sra r3, r1, r2
            srl r4, r1, r2
            li r6, 2
            sll r5, r2, r6
            halt
        """)
        proc.run()
        assert proc.cpu.regs.gprs[3] == -4
        # Logical shift of -8: top bit becomes 0, value is large positive
        # (wrapped back to signed representation).
        expected_srl = ((-8) & ((1 << 64) - 1)) >> 1
        from repro.cpu import from_unsigned
        assert proc.cpu.regs.gprs[4] == from_unsigned(expected_srl)
        assert proc.cpu.regs.gprs[5] == 4

    def test_compare_ops(self):
        proc = StubProcess("""
            li r1, 3
            li r2, 5
            slt r3, r1, r2
            sle r4, r2, r2
            seq r5, r1, r2
            sne r6, r1, r2
            halt
        """)
        proc.run()
        regs = proc.cpu.regs.gprs
        assert (regs[3], regs[4], regs[5], regs[6]) == (1, 1, 0, 1)


class TestMemoryOps:
    def test_load_store(self):
        proc = StubProcess("""
            la r1, 0x1000000
            li r2, 77
            st r2, r1, 8
            ld r3, r1, 8
            halt
        """, data=b"\x00" * 64)
        proc.run()
        assert proc.cpu.regs.gprs[3] == 77

    def test_byte_ops_unsigned(self):
        proc = StubProcess("""
            la r1, 0x1000000
            li r2, 0xff
            stb r2, r1, 0
            ldb r3, r1, 0
            halt
        """, data=b"\x00" * 8)
        proc.run()
        assert proc.cpu.regs.gprs[3] == 255

    def test_unmapped_store_faults(self):
        proc = StubProcess("li r1, 0x40000000\nst r1, r1, 0\nhalt\n")
        stop = proc.run()
        assert stop.reason == StopReason.FAULT
        assert stop.fault.kind == FaultKind.PAGE_FAULT
        assert stop.fault.address == 0x40000000

    def test_mem_ops_counted(self):
        proc = StubProcess("""
            la r1, 0x1000000
            ld r2, r1, 0
            st r2, r1, 8
            halt
        """, data=b"\x00" * 64)
        proc.run()
        assert proc.cpu.mem_ops_retired == 2


class TestFloatAndVector:
    def test_float_arithmetic(self):
        proc = StubProcess("""
            fli f0, 1.5
            fli f1, 2.5
            fadd f2, f0, f1
            fmul f3, f0, f1
            halt
        """)
        proc.run()
        assert proc.cpu.regs.fprs[2] == 4.0
        assert proc.cpu.regs.fprs[3] == 3.75

    def test_float_conversions(self):
        proc = StubProcess("""
            li r1, 7
            fcvt f0, r1
            fli f1, 2.0
            fdiv f2, f0, f1
            icvt r2, f2
            halt
        """)
        proc.run()
        assert proc.cpu.regs.fprs[2] == 3.5
        assert proc.cpu.regs.gprs[2] == 3

    def test_float_compare(self):
        proc = StubProcess("""
            fli f0, 1.0
            fli f1, 2.0
            flt r1, f0, f1
            fle r2, f1, f0
            feq r3, f0, f0
            halt
        """)
        proc.run()
        regs = proc.cpu.regs.gprs
        assert (regs[1], regs[2], regs[3]) == (1, 0, 1)

    def test_fp_memory_round_trip(self):
        proc = StubProcess("""
            la r1, 0x1000000
            fli f0, 6.25
            fst f0, r1, 16
            fld f1, r1, 16
            halt
        """, data=b"\x00" * 64)
        proc.run()
        assert proc.cpu.regs.fprs[1] == 6.25

    def test_vector_ops(self):
        proc = StubProcess("""
            li r1, 3
            vbcast v0, r1
            vadd v1, v0, v0
            vred r2, v1
            halt
        """)
        proc.run()
        assert proc.cpu.regs.vecs[1] == [6, 6, 6, 6]
        assert proc.cpu.regs.gprs[2] == 24

    def test_vector_memory(self):
        proc = StubProcess("""
            la r1, 0x1000000
            li r2, 9
            vbcast v0, r2
            vst v0, r1, 0
            vld v1, r1, 0
            vred r3, v1
            halt
        """, data=b"\x00" * 64)
        proc.run()
        assert proc.cpu.regs.gprs[3] == 36


class TestControlAndCalls:
    def test_call_ret(self):
        proc = StubProcess("""
        _start:
            li r1, 5
            call double
            halt
        double:
            add r1, r1, r1
            ret
        """)
        proc.run()
        assert proc.cpu.regs.gprs[1] == 10

    def test_branch_counting(self):
        proc = StubProcess("""
            li r1, 4
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        proc.run()
        # 4 conditional branch retirements (3 taken + 1 fall-through)
        assert proc.cpu.branches_retired == 4

    def test_jal_jr_count_as_branches(self):
        proc = StubProcess("""
            call fn
            halt
        fn:
            ret
        """)
        proc.run()
        assert proc.cpu.branches_retired == 2


class TestStops:
    def test_budget_stop_resumes_exactly(self):
        proc = StubProcess("""
            li r1, 100
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        while True:
            stop = run(proc, 7)  # odd quantum to hit mid-loop
            if stop.reason == StopReason.HALTED:
                break
            assert stop.reason == StopReason.BUDGET
        assert proc.cpu.regs.gprs[1] == 0

    def test_syscall_stops_before_executing(self):
        proc = StubProcess("""
            li r0, 39
            syscall
            halt
        """)
        stop = proc.run()
        assert stop.reason == StopReason.SYSCALL
        # pc still points at the syscall instruction
        assert proc.mem.fetch(proc.cpu.pc).op == 59

    def test_breakpoint_stop_and_resume(self):
        proc = StubProcess("""
            li r1, 1
            li r2, 2
            li r3, 3
            halt
        """)
        target = proc.mem.code_base + 8  # third instruction
        proc.cpu.breakpoints.add(target)
        stop = proc.run()
        assert stop.reason == StopReason.BREAKPOINT
        assert proc.cpu.pc == target
        assert proc.cpu.regs.gprs[3] == 0
        proc.cpu.bp_skip_pc = target
        stop = proc.run()
        assert stop.reason == StopReason.HALTED
        assert proc.cpu.regs.gprs[3] == 3

    def test_breakpoint_in_loop_hits_every_iteration(self):
        proc = StubProcess("""
            li r1, 3
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        loop_addr = proc.mem.code_base + 4
        proc.cpu.breakpoints.add(loop_addr)
        hits = 0
        while True:
            stop = proc.run()
            if stop.reason == StopReason.HALTED:
                break
            assert stop.reason == StopReason.BREAKPOINT
            hits += 1
            proc.cpu.bp_skip_pc = proc.cpu.pc
        assert hits == 3

    def test_branch_counter_overflow_no_skid(self):
        proc = StubProcess("""
            li r1, 10
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        proc.cpu.arm_branch_overflow(5)
        stop = proc.run()
        assert stop.reason == StopReason.COUNTER_OVERFLOW
        assert proc.cpu.branches_retired == 5

    def test_branch_counter_overflow_with_skid(self):
        proc = StubProcess("""
            li r1, 10
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """, skid=3)
        proc.cpu.arm_branch_overflow(5)
        stop = proc.run()
        assert stop.reason == StopReason.COUNTER_OVERFLOW
        # Skid: stopped 3 instructions past the overflowing branch.
        assert proc.cpu.branches_retired > 5

    def test_instruction_overflow(self):
        proc = StubProcess("""
        loop:
            addi r1, r1, 1
            jmp loop
        """)
        proc.cpu.arm_instr_overflow(50)
        stop = proc.run()
        assert stop.reason == StopReason.INSTR_OVERFLOW
        assert proc.cpu.instr_retired == 50

    def test_nondet_native_execution(self):
        proc = StubProcess("""
            rdtsc r1
            rdtsc r2
            mrs r3, 0
            cpuid r4
            halt
        """)
        proc.run()
        regs = proc.cpu.regs.gprs
        assert regs[2] > regs[1]  # tsc monotonic
        assert regs[3] == 0xB16
        assert regs[4] == 0xC0DE

    def test_nondet_trapped_when_enabled(self):
        proc = StubProcess("rdtsc r1\nhalt\n")
        proc.cpu.trap_nondet = True
        stop = proc.run()
        assert stop.reason == StopReason.NONDET
        assert proc.cpu.regs.gprs[1] == 0  # not executed

    def test_brk_stop(self):
        from repro.isa import make_brk
        proc = StubProcess("nop\nnop\nhalt\n")
        proc.mem.patch_code(proc.mem.code_base + 4, make_brk())
        stop = proc.run()
        assert stop.reason == StopReason.BRK
        assert proc.cpu.pc == proc.mem.code_base + 4

    def test_exec_off_end_faults(self):
        proc = StubProcess("nop\n")  # no halt: falls off the end
        stop = proc.run()
        assert stop.reason == StopReason.FAULT
        assert stop.fault.detail == "exec"


class TestDeterminism:
    def test_two_runs_identical_counters(self):
        def execute():
            proc = StubProcess("""
                li r1, 50
                la r2, 0x1000000
            loop:
                st r1, r2, 0
                ld r3, r2, 0
                addi r1, r1, -1
                bne r1, r0, loop
                halt
            """, data=b"\x00" * 64)
            proc.run()
            return (proc.cpu.instr_retired, proc.cpu.branches_retired,
                    proc.cpu.regs.snapshot())
        assert execute() == execute()

    def test_quantum_size_does_not_change_result(self):
        def execute(quantum):
            proc = StubProcess("""
                li r1, 30
            loop:
                add r2, r2, r1
                addi r1, r1, -1
                bne r1, r0, loop
                halt
            """)
            while run(proc, quantum).reason == StopReason.BUDGET:
                pass
            return proc.cpu.regs.snapshot(), proc.cpu.branches_retired
        assert execute(1) == execute(7) == execute(1000)

"""End-to-end and unit tests for checkpoint-rollback error recovery.

The recovery subsystem (``repro.recovery``) makes Parallaft survive faults
in the *main* process: a persistently failing segment check implicates the
main, which is rolled back to the retained segment-start checkpoint and
re-executed.  Correctness oracle everywhere: end-of-run stdout must equal
the fault-free reference byte for byte.
"""

from types import SimpleNamespace

import pytest

from repro.common.errors import RuntimeConfigError
from repro.core import Parallaft, ParallaftConfig
from repro.core.segment import SegmentStatus
from repro.faults import (
    FaultInjector,
    FaultSite,
    KIND_MEMORY,
    KIND_REGISTER,
    Outcome,
    TARGET_MAIN,
)
from repro.kernel.process import ProcessState
from repro.minic import compile_source
from repro.sim import apple_m2

WORKLOAD = """
global data[128];
func main() {
    var i; var round; var total;
    srand64(11);
    for (round = 0; round < 30; round = round + 1) {
        for (i = 0; i < 128; i = i + 1) {
            data[i] = data[i] * 3 + round + i;
        }
        print_int(data[round]);
    }
    total = 0;
    for (i = 0; i < 128; i = i + 1) { total = total + data[i]; }
    print_int(total);
}
"""

PERIOD = 400_000_000


def make_config(recovery=True, period=PERIOD, **overrides):
    config = ParallaftConfig()
    config.slicing_period = period
    config.enable_recovery = recovery
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def make_runtime(config=None, source=WORKLOAD):
    return Parallaft(compile_source(source),
                     config=config or make_config(),
                     platform=apple_m2())


def reference_output(source=WORKLOAD):
    stats = make_runtime(make_config(recovery=False), source).run()
    assert not stats.error_detected
    return stats.stdout


def main_register_fault(runtime, after=0.002, file="gpr", index=8, bit=17):
    """Hook flipping one register bit in the main, once."""
    fired = [0]

    def hook(proc, role):
        if role == "main" and fired[0] == 0 and proc.user_time > after:
            proc.cpu.regs.flip_bit(file, index, bit)
            fired[0] += 1

    runtime.quantum_hooks.append(hook)
    return fired


class TestMainFaultRecovery:
    def test_register_fault_rolled_back_and_survives(self):
        reference = reference_output()
        runtime = make_runtime()
        fired = main_register_fault(runtime)
        stats = runtime.run()
        assert fired[0] == 1
        assert not stats.error_detected, stats.errors
        assert stats.recovery_rollbacks >= 1
        assert stats.recovery_retries >= 1       # the diagnostic re-check
        assert stats.recovery_wasted_cycles > 0
        assert stats.exit_code == 0
        assert stats.stdout == reference

    def test_memory_fault_rolled_back_and_survives(self):
        reference = reference_output()
        runtime = make_runtime()
        fired = [0]
        site = FaultSite.memory(page_rank=3, bit=4321, target=TARGET_MAIN)

        def hook(proc, role):
            if role == "main" and fired[0] == 0 and proc.user_time > 0.002:
                if site.apply(proc,
                              runtime.dirty_tracker.dirty_vpns(proc)):
                    fired[0] += 1

        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        assert fired[0] == 1
        assert not stats.error_detected, stats.errors
        assert stats.recovery_rollbacks >= 1
        assert stats.stdout == reference

    def test_without_recovery_same_fault_is_fatal(self):
        runtime = make_runtime(make_config(recovery=False))
        fired = main_register_fault(runtime)
        stats = runtime.run()
        assert fired[0] == 1
        assert stats.error_detected
        assert stats.recovery_rollbacks == 0

    def test_rolled_back_output_is_truncated(self):
        """The workload prints every round; a recovered run must contain
        each line exactly once — output from the discarded execution is
        rolled back at the console."""
        reference = reference_output()
        runtime = make_runtime()
        main_register_fault(runtime)
        stats = runtime.run()
        assert stats.recovery_rollbacks >= 1
        assert stats.stdout == reference
        lines = [l for l in stats.stdout.splitlines() if l]
        assert len(lines) == len(set(range(len(lines)))) and lines

    def test_discarded_segments_marked_rolled_back(self):
        runtime = make_runtime()
        main_register_fault(runtime)
        stats = runtime.run()
        assert stats.recovery_rollbacks >= 1
        rolled = [s for s in runtime.segments
                  if s.status == SegmentStatus.ROLLED_BACK]
        assert rolled
        for segment in rolled:
            assert segment.checker is None
            assert segment.end_checkpoint is None

    def test_recovery_counters_surface_in_stats_dump(self):
        runtime = make_runtime()
        main_register_fault(runtime)
        stats = runtime.run()
        dump = stats.to_dict()
        assert dump["counter.recovery.rollbacks"] == stats.recovery_rollbacks
        assert dump["counter.recovery.retries"] == stats.recovery_retries
        assert dump["counter.recovery.wasted_cycles"] == \
            stats.recovery_wasted_cycles
        assert dump["counter.recovery.rollbacks"] >= 1

    def test_fault_free_run_unaffected_by_recovery_mode(self):
        reference = reference_output()
        stats = make_runtime().run()
        assert not stats.error_detected
        assert stats.recovery_rollbacks == 0
        assert stats.stdout == reference


class TestRecoveryBounds:
    def _persistent_fault(self, runtime):
        """Corrupt the main once per recorded segment — including every
        re-execution, which is a fresh segment — so every check fails and
        recovery can never make progress."""
        seen = set()
        site = FaultSite.memory(page_rank=0, bit=77, target=TARGET_MAIN)

        def hook(proc, role):
            if role != "main" or proc.user_time <= 0.002:
                return
            segment = runtime.current
            if segment is None or id(segment) in seen:
                return
            if site.apply(proc, runtime.dirty_tracker.dirty_vpns(proc)):
                seen.add(id(segment))

        runtime.quantum_hooks.append(hook)

    def test_persistent_fault_exhausts_reexecution_cap(self):
        config = make_config(max_segment_reexecutions=2, max_rollbacks=50)
        runtime = make_runtime(config)
        self._persistent_fault(runtime)
        stats = runtime.run()
        assert stats.error_detected
        assert stats.recovery_rollbacks == 2

    def test_max_rollbacks_budget(self):
        config = make_config(max_rollbacks=1, max_segment_reexecutions=10)
        runtime = make_runtime(config)
        self._persistent_fault(runtime)
        stats = runtime.run()
        assert stats.error_detected
        assert stats.recovery_rollbacks == 1

    def test_slicing_period_shrinks_with_streak(self):
        runtime = make_runtime(make_config(recovery_shrink_limit=3))
        manager = runtime.recovery
        assert manager.effective_slicing_period() == PERIOD
        manager.rollback_streak = 2
        assert manager.effective_slicing_period() == PERIOD / 4
        manager.rollback_streak = 10   # clamped at the shrink limit
        assert manager.effective_slicing_period() == PERIOD / 8

    def test_streak_resets_only_on_new_progress(self):
        runtime = make_runtime()
        manager = runtime.recovery
        manager.rollback_streak = 2
        manager._last_rollback_index = 5
        manager.on_segment_verified(SimpleNamespace(index=4))
        assert manager.rollback_streak == 2    # pre-rollback straggler
        manager.on_segment_verified(SimpleNamespace(index=6))
        assert manager.rollback_streak == 0

    def test_watchdog_failure_is_not_recoverable(self):
        runtime = make_runtime()
        manager = runtime.recovery
        segment = SimpleNamespace(recovery_checkpoint=SimpleNamespace(
            state=ProcessState.PAUSED), checkpoint_evicted=False)
        assert not manager.on_check_failed(segment, "recovery_watchdog")

    def test_rollback_budget_guard(self):
        runtime = make_runtime()
        manager = runtime.recovery
        segment = SimpleNamespace(recovery_checkpoint=SimpleNamespace(
            state=ProcessState.PAUSED), checkpoint_evicted=False)
        manager.rollbacks = runtime.config.max_rollbacks
        assert not manager.on_check_failed(segment, "state_mismatch")

    def test_watchdog_disarms_at_boundary(self):
        runtime = make_runtime()
        manager = runtime.recovery
        manager._watchdog_budget = 123
        manager.note_boundary()
        assert manager._watchdog_budget is None


class TestRecoveryConfig:
    def test_recovery_requires_state_comparison(self):
        config = make_config(compare_state=False)
        with pytest.raises(RuntimeConfigError):
            config.validate()

    def test_recovery_incompatible_with_raft(self):
        config = ParallaftConfig.raft()
        config.enable_recovery = True
        with pytest.raises(RuntimeConfigError):
            config.validate()

    def test_watchdog_scale_must_exceed_one(self):
        config = make_config(recovery_watchdog_scale=0.5)
        with pytest.raises(RuntimeConfigError):
            config.validate()

    def test_retains_checkpoint_for_either_extension(self):
        assert make_config().retains_recovery_checkpoint
        retry_only = ParallaftConfig(retry_failed_checkers=True)
        assert retry_only.retains_recovery_checkpoint
        assert not ParallaftConfig().retains_recovery_checkpoint


class TestRecoveryCampaign:
    def _injector(self, recovery, seed=7):
        def config_factory():
            return make_config(recovery=recovery)

        return FaultInjector(compile_source(WORKLOAD), config_factory,
                             apple_m2, seed=seed)

    def test_campaign_recovers_where_control_arm_detects(self):
        recovered_arm = self._injector(recovery=True).run_campaign(
            injections_per_segment=2, benchmark_name="wl", max_segments=2,
            target=TARGET_MAIN, site_kinds=(KIND_REGISTER, KIND_MEMORY),
            verify_recovered_output=True)
        control_arm = self._injector(recovery=False).run_campaign(
            injections_per_segment=2, benchmark_name="wl", max_segments=2,
            target=TARGET_MAIN, site_kinds=(KIND_REGISTER, KIND_MEMORY))
        assert recovered_arm.total == control_arm.total
        assert recovered_arm.total >= 4
        for with_recovery, without in zip(recovered_arm.injections,
                                          control_arm.injections):
            # Same seed -> same sites; the run prefix up to the injection
            # is identical, so the two arms saw the very same fault.
            assert (with_recovery.register_file, with_recovery.bit) == \
                (without.register_file, without.bit)
            if with_recovery.outcome is Outcome.BENIGN:
                assert without.outcome is Outcome.BENIGN
            else:
                assert with_recovery.outcome is Outcome.RECOVERED
                assert with_recovery.output_matched
                assert without.outcome in (Outcome.DETECTED,
                                           Outcome.EXCEPTION,
                                           Outcome.TIMEOUT)
        assert recovered_arm.count(Outcome.RECOVERED) >= 1

    def test_main_injection_marks_target(self):
        campaign = self._injector(recovery=True).run_campaign(
            injections_per_segment=1, benchmark_name="wl", max_segments=1,
            target=TARGET_MAIN)
        for result in campaign.injections:
            assert result.target == TARGET_MAIN

"""Smoke tests: every shipped example runs to completion."""

import os
import subprocess
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(ROOT, "examples")


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True, text=True, timeout=timeout, cwd=ROOT)


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "sum of squares" in result.stdout
        assert "segments checked" in result.stdout

    def test_protect_binary_default(self):
        result = run_example("protect_binary.py")
        assert result.returncode == 0, result.stderr
        assert "timing.all_wall_time" in result.stdout

    def test_protect_binary_raft_mode(self):
        result = run_example("protect_binary.py", "--raft")
        assert result.returncode == 0, result.stderr

    def test_fault_injection_demo(self):
        result = run_example("fault_injection_demo.py")
        assert result.returncode == 0, result.stderr
        assert "summary:" in result.stdout
        assert "detected" in result.stdout

    def test_recovery_demo_infra_mode(self):
        result = run_example("recovery_demo.py", "--infra", timeout=360)
        assert result.returncode == 0, result.stderr
        assert "sdc" in result.stdout
        assert "log_integrity" in result.stdout
        assert "integrity_fail" in result.stdout

    def test_memory_pressure_demo(self):
        result = run_example("memory_pressure_demo.py", timeout=600)
        assert result.returncode == 0, result.stderr
        assert "unbounded reference" in result.stdout
        assert "byte-identical" in result.stdout
        assert "OOM" in result.stdout

    def test_campaign_demo(self):
        result = run_example("campaign_demo.py", timeout=360)
        assert result.returncode == 0, result.stderr
        assert "resumed" in result.stdout
        assert "byte-identical" in result.stdout

    def test_heterogeneous_scheduling(self):
        result = run_example("heterogeneous_scheduling.py", timeout=360)
        assert result.returncode == 0, result.stderr
        assert "Parallaft" in result.stdout
        assert "RAFT" in result.stdout

    @pytest.mark.slow
    def test_slicing_tradeoff(self):
        result = run_example("slicing_tradeoff.py", "sjeng", timeout=400)
        assert result.returncode == 0, result.stderr
        assert "sweet spot" in result.stdout

    def test_modes_demo(self):
        result = run_example("modes_demo.py", "--injections", "2",
                             timeout=480)
        assert result.returncode == 0, result.stderr
        assert "registered detection modes: parallaft, raft, tmr" \
            in result.stdout
        # The cross-mode table and both headline guarantees.
        assert "detection modes, identical injection plan" in result.stdout
        assert "fwd-rec" in result.stdout
        assert "TMR detected every fault Parallaft detected: True" \
            in result.stdout
        assert "TMR rollbacks: 0" in result.stdout

"""Property-based tests of the runtime's core invariant: *no false
positives*.  For any workload shape and any slicing period, a fault-free
run under Parallaft must produce the native output, byte-identical, with
every segment verified.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Parallaft, ParallaftConfig
from repro.minic import compile_source
from repro.sim import apple_m2, intel_14700
from repro.workloads import synthetic_source

from helpers import run_program, stdout_of


def protected_run(source, period, seed=0, platform=None):
    config = ParallaftConfig()
    config.slicing_period = period
    runtime = Parallaft(compile_source(source), config=config,
                        platform=platform or apple_m2(), seed=seed)
    return runtime, runtime.run()


class TestNoFalsePositives:
    @given(
        st.integers(min_value=1, max_value=4),      # mem ops / iter
        st.integers(min_value=1, max_value=6),      # compute ops / iter
        st.integers(min_value=0, max_value=100),    # write fraction
        st.integers(min_value=50, max_value=2000),  # slicing period (M)
        st.integers(min_value=0, max_value=5),      # kernel seed
    )
    @settings(max_examples=15, deadline=None)
    def test_synthetic_workloads_verify_cleanly(self, mem_ops, compute_ops,
                                                write_pct, period_m, seed):
        source = synthetic_source(total_iters=6000,
                                  footprint_bytes=65536,
                                  mem_ops_per_iter=mem_ops,
                                  compute_ops_per_iter=compute_ops,
                                  write_fraction_pct=write_pct,
                                  seed=seed + 1)
        kernel, _, _ = run_program(compile_source(source), seed=seed)
        native = stdout_of(kernel)

        runtime, stats = protected_run(source, period_m * 1_000_000,
                                       seed=seed)
        assert not stats.error_detected, stats.errors
        assert stats.stdout == native
        assert stats.exit_code == 0
        # Every created segment was verified.
        assert stats.segments_checked == len(runtime.segments)

    @given(st.integers(min_value=0, max_value=4))
    @settings(max_examples=5, deadline=None)
    def test_nondet_heavy_workload_verifies(self, seed):
        source = """
        global trace[64];
        func main() {
            var i; var acc;
            acc = 0;
            for (i = 0; i < 40; i = i + 1) {
                trace[i % 64] = rdtsc() + gettimeofday() + cpu_model();
                acc = acc + trace[i % 64] % 1009;
            }
            for (i = 0; i < 15000; i = i + 1) { acc = acc + i; }
            print_int(acc % 1000003);
        }
        """
        _, stats = protected_run(source, 150_000_000, seed=seed)
        assert not stats.error_detected, stats.errors
        assert stats.nondet_recorded > 0
        assert stats.syscalls_replayed > 0

    @given(st.sampled_from(["apple", "intel"]),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=6, deadline=None)
    def test_both_platforms_verify(self, platform_name, seed):
        platform = apple_m2() if platform_name == "apple" else intel_14700()
        source = synthetic_source(total_iters=5000, footprint_bytes=131072,
                                  mem_ops_per_iter=2, seed=seed + 3)
        _, stats = protected_run(source, 300_000_000, seed=seed,
                                 platform=platform)
        assert not stats.error_detected, stats.errors


class TestSegmentInvariants:
    def test_segments_partition_the_execution(self):
        """Consecutive segments share boundaries: segment k's end counters
        equal segment k+1's start counters - no gaps, no overlaps (the
        induction requirement of §2.3/§3.1)."""
        source = synthetic_source(total_iters=12000, footprint_bytes=65536)
        runtime, stats = protected_run(source, 200_000_000)
        assert not stats.error_detected
        segments = runtime.segments
        assert len(segments) >= 3
        for prev, nxt in zip(segments, segments[1:]):
            assert prev.end_point is not None
            # Absolute branch count at prev's end == next's start base.
            end_abs = prev.start_branches + prev.end_point.branches
            assert end_abs == nxt.start_branches

    def test_max_live_segments_respected(self):
        source = synthetic_source(total_iters=20000, footprint_bytes=262144,
                                  mem_ops_per_iter=4)
        config = ParallaftConfig()
        config.slicing_period = 80_000_000
        config.max_live_segments = 3
        runtime = Parallaft(compile_source(source), config=config,
                            platform=apple_m2())
        peak = [0]

        def hook(proc, role):
            live = sum(1 for s in runtime.segments if s.live)
            peak[0] = max(peak[0], live)

        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        assert not stats.error_detected
        assert peak[0] <= 3

    def test_detection_latency_bound(self):
        """Errors are detected within max-segment-length x live-segment
        bound (§3.4): each segment's verification completes within a
        bounded time of its recording end."""
        source = synthetic_source(total_iters=10000, footprint_bytes=65536)
        runtime, stats = protected_run(source, 150_000_000)
        assert not stats.error_detected
        for segment in runtime.segments:
            assert segment.check_finished_time is not None
            assert segment.ready_time is not None
            lag = segment.check_finished_time - segment.ready_time
            # Bound: a handful of segment-lengths (generous constant).
            segment_len = max(1e-9,
                              segment.ready_time - segment.start_time)
            assert lag < 14 * segment_len + 0.1

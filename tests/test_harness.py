"""Tests for the experiment harness: runner, breakdown, periods, figures."""

import pytest

from repro.common.units import BILLION, geomean, geomean_overhead_pct
from repro.core import ParallaftConfig
from repro.harness import (
    BenchmarkResult,
    InputResult,
    breakdown,
    energy_overhead_pct,
    overhead_pct,
    run_baseline,
    run_protected,
    suite_geomean,
)
from repro.harness.periods import (
    DURATION_COMPRESSION,
    effective_period,
    paper_period_label,
)
from repro.workloads import benchmark


def _result(name, mode, wall, main_wall=None, user=0.0, sys=0.0,
            energy=1.0, pss=()):
    result = BenchmarkResult(name, mode)
    result.inputs.append(InputResult(
        wall_time=wall, main_wall_time=main_wall or wall, user_time=user,
        sys_time=sys, energy_joules=energy, pss_samples=list(pss)))
    return result


class TestUnits:
    def test_geomean(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1, 0])

    def test_geomean_overhead_pct(self):
        # geomean of ratios 1.1 and 1.1 -> 10%
        assert geomean_overhead_pct([10.0, 10.0]) == pytest.approx(10.0)
        # overheads are aggregated as ratios, not averaged
        assert geomean_overhead_pct([0.0, 21.0]) == pytest.approx(10.0, abs=0.5)

    def test_suite_geomean(self):
        assert suite_geomean({"a": 10.0, "b": 10.0}) == pytest.approx(10.0)


class TestPeriods:
    def test_effective_period_compresses(self):
        assert effective_period(5 * BILLION) == 5 * BILLION / DURATION_COMPRESSION

    def test_labels(self):
        assert paper_period_label(1 * BILLION) == "1Billion"
        assert paper_period_label(2.5 * BILLION) == "2.5Billion"


class TestOverheadMath:
    def test_overhead_pct(self):
        base = _result("x", "baseline", wall=10.0)
        prot = _result("x", "parallaft", wall=12.0)
        assert overhead_pct(prot, base) == pytest.approx(20.0)

    def test_energy_overhead_pct(self):
        base = _result("x", "baseline", wall=1, energy=100.0)
        prot = _result("x", "parallaft", wall=1, energy=188.0)
        assert energy_overhead_pct(prot, base) == pytest.approx(88.0)

    def test_breakdown_components_sum(self):
        base = _result("x", "baseline", wall=10.0, user=9.0, sys=0.5)
        prot = _result("x", "parallaft", wall=13.0, main_wall=12.0,
                       user=10.0, sys=1.5)
        bd = breakdown(prot, base)
        assert bd.total_pct == pytest.approx(30.0)
        assert bd.fork_and_cow_pct == pytest.approx(10.0)       # sys delta
        assert bd.resource_contention_pct == pytest.approx(10.0)  # user delta
        assert bd.last_checker_sync_pct == pytest.approx(10.0)  # wall gap
        assert bd.runtime_work_pct == pytest.approx(0.0)
        assert bd.as_dict()["total"] == pytest.approx(30.0)

    def test_multi_input_results_sum(self):
        result = BenchmarkResult("multi", "baseline")
        for wall in (1.0, 2.0, 3.0):
            result.inputs.append(InputResult(
                wall_time=wall, main_wall_time=wall, user_time=wall / 2,
                sys_time=0.1, energy_joules=wall * 5,
                pss_samples=[100.0, 200.0]))
        assert result.wall_time == pytest.approx(6.0)
        assert result.energy_joules == pytest.approx(30.0)
        assert len(result.pss_samples) == 6
        assert result.mean_pss() == pytest.approx(150.0)


class TestRunners:
    def test_baseline_runner_runs_all_inputs(self):
        bench = benchmark("hmmer")  # two inputs
        result = run_baseline(bench)
        assert len(result.inputs) == 2
        assert result.wall_time > 0
        assert result.energy_joules > 0

    def test_protected_runner_collects_stats(self):
        bench = benchmark("sphinx3")
        config = ParallaftConfig()
        config.slicing_period = effective_period(5 * BILLION)
        result = run_protected(bench, "parallaft", config=config)
        assert result.inputs[0].stats is not None
        assert result.inputs[0].stats.segments_checked >= 1
        assert result.wall_time >= result.main_wall_time

    def test_raft_runner_mode(self):
        bench = benchmark("sphinx3")
        result = run_protected(bench, "raft")
        stats = result.inputs[0].stats
        assert stats.checker_cycles_big > 0
        assert stats.checker_cycles_little == 0

    def test_protected_beats_nothing_baseline_sanity(self):
        """Protection is never free: wall time exceeds baseline's."""
        bench = benchmark("sphinx3")
        base = run_baseline(bench)
        prot = run_protected(bench, "parallaft")
        assert prot.wall_time > base.wall_time

    def test_memory_sampling_collects_pss(self):
        bench = benchmark("sphinx3")
        base = run_baseline(bench, sample_memory=True)
        prot = run_protected(bench, "parallaft", sample_memory=True)
        assert base.mean_pss() > 0
        assert prot.mean_pss() > base.mean_pss()


class TestFigureDrivers:
    def test_table2_capability_matrix(self):
        from repro.harness.figures import table2_capabilities
        table = table2_capabilities()
        assert table["Parallaft"]["guaranteed_error_detection"] == "Yes"
        assert table["RAFT"]["guaranteed_error_detection"] == "No"

    def test_injection_summary_empty(self):
        from repro.harness.figures import injection_summary
        from repro.faults.outcomes import Outcome
        assert injection_summary({}) == {
            outcome.value: 0.0 for outcome in Outcome}

    def test_table1_static_rows_present(self):
        from repro.harness.figures import TABLE1_STATIC_ROWS
        approaches = [row[0] for row in TABLE1_STATIC_ROWS]
        assert "Lock-stepping" in approaches
        assert any("ParaMedic" in row[1] for row in TABLE1_STATIC_ROWS)

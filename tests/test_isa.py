"""Tests for the ISA: assembler, disassembler, encoding, program container."""

import pytest

from repro.common.errors import AssemblerError
from repro.isa import (
    CODE_BASE,
    DATA_BASE,
    INSTR_SIZE,
    Instr,
    assemble,
    decode_instr,
    decode_program_code,
    disassemble_instr,
    disassemble_program,
    encode_instr,
    encode_program_code,
)
from repro.isa import instructions as ins
from repro.isa.registers import all_fault_sites, parse_register


class TestRegisters:
    def test_parse_gpr(self):
        assert parse_register("r0") == ("gpr", 0)
        assert parse_register("r15") == ("gpr", 15)

    def test_parse_aliases(self):
        assert parse_register("sp") == ("gpr", 13)
        assert parse_register("lr") == ("gpr", 14)
        assert parse_register("fp") == ("gpr", 15)

    def test_parse_fpr_and_vec(self):
        assert parse_register("f3") == ("fpr", 3)
        assert parse_register("v2") == ("vec", 2)

    def test_parse_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            parse_register("r16")
        with pytest.raises(ValueError):
            parse_register("f8")
        with pytest.raises(ValueError):
            parse_register("x1")

    def test_fault_sites_cover_all_files(self):
        sites = all_fault_sites()
        assert ("gpr", 0, 0) in sites
        assert ("fpr", 7, 63) in sites
        assert ("vec", 3, 255) in sites
        # 16*64 + 8*64 + 4*256
        assert len(sites) == 16 * 64 + 8 * 64 + 4 * 256


class TestAssembler:
    def test_simple_program(self):
        program = assemble("""
        _start:
            li r1, 42
            addi r1, r1, 1
            halt
        """)
        assert len(program) == 3
        assert program.instrs[0] == Instr(ins.LI, 1, imm=42)
        assert program.instrs[1] == Instr(ins.ADDI, 1, 1, imm=1)
        assert program.entry == CODE_BASE

    def test_labels_resolve_to_addresses(self):
        program = assemble("""
        loop:
            addi r1, r1, -1
            bne r1, r2, loop
            halt
        """)
        branch = program.instrs[1]
        assert branch.op == ins.BNE
        assert branch.imm == CODE_BASE  # loop is instruction 0

    def test_forward_reference(self):
        program = assemble("""
            jmp end
            li r1, 1
        end:
            halt
        """)
        assert program.instrs[0].imm == CODE_BASE + 2 * INSTR_SIZE

    def test_data_section_words(self):
        program = assemble("""
        .data
        table: .word 1, 2, 3
        .text
            la r1, table
            halt
        """)
        assert program.data[:8] == (1).to_bytes(8, "little")
        assert program.instrs[0].imm == DATA_BASE

    def test_data_space_and_ascii(self):
        program = assemble("""
        .data
        buf: .space 16
        msg: .ascii "hi\\n"
        .text
            halt
        """)
        assert len(program.data) == 19
        assert program.data[16:] == b"hi\n"

    def test_data_label_offsets(self):
        program = assemble("""
        .data
        a: .word 7
        b: .word 8
        .text
            la r1, b
            halt
        """)
        assert program.instrs[0].imm == DATA_BASE + 8

    def test_pseudo_instructions(self):
        program = assemble("""
            call fn
            halt
        fn:
            ret
        """)
        assert program.instrs[0].op == ins.JAL
        assert program.instrs[2].op == ins.JR
        assert program.instrs[2].b == 14  # lr

    def test_memory_operand_default_offset(self):
        program = assemble("ld r1, r2\nhalt\n")
        assert program.instrs[0].imm == 0

    def test_hex_and_char_immediates(self):
        program = assemble("""
            li r1, 0xff
            li r2, 'A'
            li r3, -5
            halt
        """)
        assert program.instrs[0].imm == 255
        assert program.instrs[1].imm == 65
        assert program.instrs[2].imm == -5

    def test_fli_float_immediate(self):
        program = assemble("fli f0, 3.5\nhalt\n")
        assert program.instrs[0].imm == 3.5

    def test_comments_ignored(self):
        program = assemble("""
            li r1, 1   # set r1
            halt       ; done
        """)
        assert len(program) == 2

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1, r2\n")

    def test_wrong_operand_count_raises(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2\n")

    def test_undefined_label_raises(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere\n")

    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblerError):
            assemble("x:\nhalt\nx:\nhalt\n")

    def test_entry_prefers_start_symbol(self):
        program = assemble("""
        helper:
            ret
        _start:
            halt
        """)
        assert program.entry == CODE_BASE + 1 * INSTR_SIZE


class TestProgram:
    def test_address_index_round_trip(self):
        program = assemble("nop\nnop\nhalt\n")
        for index in range(3):
            address = program.address_of_index(index)
            assert program.index_of_address(address) == index

    def test_index_of_bad_address_raises(self):
        program = assemble("halt\n")
        with pytest.raises(ValueError):
            program.index_of_address(CODE_BASE + 1)
        with pytest.raises(ValueError):
            program.index_of_address(CODE_BASE + 100)


class TestEncoding:
    def test_round_trip_int_imm(self):
        instr = Instr(ins.ADDI, 1, 2, imm=-12345)
        assert decode_instr(encode_instr(instr)) == instr

    def test_round_trip_float_imm(self):
        instr = Instr(ins.FLI, 3, imm=2.75)
        decoded = decode_instr(encode_instr(instr))
        assert decoded.op == ins.FLI and decoded.imm == 2.75

    def test_program_round_trip(self):
        program = assemble("""
            li r1, 100
            addi r1, r1, -1
            bne r1, r0, 0x10004
            halt
        """)
        blob = encode_program_code(program.instrs)
        assert decode_program_code(blob) == program.instrs

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_program_code(b"XXXX\x00\x00\x00\x00")


class TestDisassembler:
    def test_round_trip_through_assembler(self):
        source = """
        _start:
            li r1, 10
            la r2, 0x1000000
        loop:
            ld r3, r2, 0
            add r4, r4, r3
            addi r1, r1, -1
            bne r1, r0, loop
            fadd f0, f1, f2
            vadd v0, v1, v2
            syscall
            halt
        """
        program = assemble(source)
        text = disassemble_program(program)
        reassembled = assemble(text)
        assert reassembled.instrs == program.instrs

    def test_branch_targets_use_labels(self):
        program = assemble("loop:\nbne r1, r0, loop\nhalt\n")
        text = disassemble_program(program)
        assert "bne r1, r0, loop" in text

    def test_fp_registers_rendered(self):
        assert disassemble_instr(Instr(ins.FADD, 0, 1, 2)) == "fadd f0, f1, f2"

    def test_jr_renders_register(self):
        assert disassemble_instr(Instr(ins.JR, b=14)) == "jr lr"

"""Unit tests for the fault-injection machinery itself."""

import pytest

from repro.core import ParallaftConfig
from repro.faults import CampaignResult, FaultInjector, Outcome
from repro.faults.outcomes import ERROR_KIND_TO_OUTCOME, InjectionResult
from repro.minic import compile_source
from repro.sim import apple_m2

PROGRAM = """
global grid[64];
func main() {
    var i; var round;
    for (round = 0; round < 25; round = round + 1) {
        for (i = 0; i < 64; i = i + 1) { grid[i] = grid[i] + round; }
    }
    print_int(grid[63]);
}
"""


def make_injector(period=10**14, seed=0):
    return FaultInjector(
        compile_source(PROGRAM),
        config_factory=lambda: ParallaftConfig(slicing_period=period),
        platform_factory=apple_m2, seed=seed)


class TestOutcomeMapping:
    def test_every_error_kind_maps(self):
        for kind in ("state_mismatch", "syscall_divergence",
                     "exec_point_overrun", "exception", "timeout",
                     "recovery_watchdog"):
            assert kind in ERROR_KIND_TO_OUTCOME

    def test_recovery_watchdog_counts_as_timeout(self):
        assert ERROR_KIND_TO_OUTCOME["recovery_watchdog"] is Outcome.TIMEOUT

    def test_detected_flags(self):
        assert Outcome.DETECTED.is_detected
        assert Outcome.EXCEPTION.is_detected
        assert Outcome.TIMEOUT.is_detected
        assert not Outcome.BENIGN.is_detected

    def test_recovered_is_detected_and_survived(self):
        assert Outcome.RECOVERED.is_detected
        assert Outcome.RECOVERED.is_survived
        assert Outcome.BENIGN.is_survived
        assert not Outcome.DETECTED.is_survived

    def test_campaign_fractions(self):
        campaign = CampaignResult("x")
        for outcome in (Outcome.DETECTED, Outcome.DETECTED, Outcome.BENIGN,
                        Outcome.TIMEOUT):
            campaign.injections.append(InjectionResult(
                outcome, "gpr", 0, 0, 0, 0.0))
        assert campaign.total == 4
        assert campaign.fraction(Outcome.DETECTED) == pytest.approx(0.5)
        assert campaign.detected_fraction == pytest.approx(0.75)
        assert sum(campaign.summary().values()) == pytest.approx(1.0)

    def test_recovered_and_missed_accounting(self):
        campaign = CampaignResult("x", missed=2)
        for outcome in (Outcome.RECOVERED, Outcome.RECOVERED,
                        Outcome.BENIGN, Outcome.DETECTED):
            campaign.injections.append(InjectionResult(
                outcome, "gpr", 0, 0, 0, 0.0))
        assert campaign.total == 4
        assert campaign.planned == 6
        assert campaign.recovered_fraction == pytest.approx(0.5)
        assert campaign.survived_fraction == pytest.approx(0.75)
        # RECOVERED runs were detected (then repaired), so they count
        # toward coverage too.
        assert campaign.detected_fraction == pytest.approx(0.75)

    def test_empty_campaign(self):
        campaign = CampaignResult("x")
        assert campaign.detected_fraction == 0.0
        assert campaign.recovered_fraction == 0.0
        assert campaign.fraction(Outcome.BENIGN) == 0.0


class TestClassifier:
    def _stats(self, stdout, rollbacks=0, retries=0):
        from repro.core.stats import RunStats
        stats = RunStats()
        stats.stdout = stdout
        stats.recovery_rollbacks = rollbacks
        stats.checker_retries = retries
        return stats

    def test_silent_output_corruption_is_sdc(self):
        # No error reported, but the output is wrong: the corruption
        # escaped silently.  This must never count as a detection.
        outcome = FaultInjector._classify(self._stats("corrupt"), "good")
        assert outcome is Outcome.SDC
        assert not outcome.is_detected
        assert not outcome.is_survived

    def test_silent_stderr_corruption_is_sdc(self):
        stats = self._stats("good")
        stats.stderr = "oops"
        outcome = FaultInjector._classify(stats, "good", "")
        assert outcome is Outcome.SDC

    def test_sdc_fraction(self):
        campaign = CampaignResult("x")
        for outcome in (Outcome.SDC, Outcome.DETECTED,
                        Outcome.BENIGN, Outcome.SDC):
            campaign.injections.append(InjectionResult(
                outcome, "infra", 0, 0, 0, 0.0))
        assert campaign.sdc_fraction == pytest.approx(0.5)
        assert campaign.detected_fraction == pytest.approx(0.25)

    def test_rollback_with_matching_output_is_recovered(self):
        outcome = FaultInjector._classify(
            self._stats("good", rollbacks=1), "good")
        assert outcome is Outcome.RECOVERED

    def test_checker_retry_with_matching_output_is_recovered(self):
        outcome = FaultInjector._classify(
            self._stats("good", retries=1), "good")
        assert outcome is Outcome.RECOVERED

    def test_clean_run_is_benign(self):
        outcome = FaultInjector._classify(self._stats("good"), "good")
        assert outcome is Outcome.BENIGN


class TestInjectorMechanics:
    def test_profile_is_fault_free(self):
        times, reference = make_injector().profile()
        assert len(times) == 1
        assert times[0] > 0
        assert reference.strip().isdigit() or reference.strip().lstrip("-").isdigit()

    def test_injection_into_live_register_detected(self):
        injector = make_injector()
        times, reference = injector.profile()
        result = injector.inject_once(0, times[0] * 0.3, ("gpr", 8, 5),
                                      reference)
        assert result is not None
        assert result.outcome.is_detected

    def test_injection_into_dead_vector_register_detected_by_compare(self):
        """Even a never-used register flip is caught: the comparison is
        bit-exact over the whole architectural state."""
        injector = make_injector()
        times, reference = injector.profile()
        result = injector.inject_once(0, times[0] * 0.3, ("vec", 3, 200),
                                      reference)
        assert result is not None
        assert result.outcome == Outcome.DETECTED

    def test_late_injection_misses(self):
        injector = make_injector()
        times, reference = injector.profile()
        assert injector.inject_once(0, times[0] * 100, ("gpr", 1, 1),
                                    reference) is None

    def test_out_of_range_segment_misses(self):
        injector = make_injector()
        times, reference = injector.profile()
        assert injector.inject_once(99, 0.0, ("gpr", 1, 1),
                                    reference) is None

    def test_max_segments_sampling(self):
        injector = make_injector(period=150_000_000, seed=2)
        campaign = injector.run_campaign(injections_per_segment=1,
                                         max_segments=2,
                                         benchmark_name="unit")
        segments = {r.segment_index for r in campaign.injections}
        assert len(segments) <= 2

    def test_campaign_reproducible_with_seed(self):
        def run(seed):
            campaign = make_injector(period=10**14, seed=seed).run_campaign(
                injections_per_segment=2, benchmark_name="unit")
            return [(r.register_file, r.register_index, r.bit,
                     r.outcome.value) for r in campaign.injections]
        assert run(3) == run(3)
        assert run(3) != run(4)

"""Infrastructure fault injection and integrity hardening.

Unit coverage for the mechanisms in :mod:`repro.faults.infra` and the
config-gated integrity layers they are measured against: R/R log
checksums, dirty-tracker suppression + clean-page audit, the comparator
collision model, checkpoint digests, and the no-rollback-after-
integrity-failure policy (trace invariant included).
"""

import pytest

from repro.core import (
    ComparisonStrategy,
    DirtyPageBackend,
    DirtyPageTracker,
    Parallaft,
    ParallaftConfig,
    StateComparator,
)
from repro.core.comparator import audit_clean_pages, state_digest
from repro.core.rr_log import (
    NondetRecord,
    RrLog,
    SignalRecord,
    SyscallRecord,
    record_checksum,
    verify_record,
)
from repro.faults import Outcome
from repro.faults.infra import (
    INFRA_CHECKPOINT_CORRUPT,
    INFRA_DIGEST_CORRUPT,
    INFRA_DIRTY_MISS,
    INFRA_KINDS,
    INFRA_LOG_CORRUPT,
    InfraFaultController,
    InfraFaultSite,
    harden,
)
from repro.faults.outcomes import classify_run
from repro.isa import DATA_BASE
from repro.kernel import Kernel
from repro.minic import compile_source
from repro.sim import apple_m2
from repro.trace import InvariantChecker
from repro.trace import events as tev
from repro.trace.events import TraceEvent

PAGE = 16384

# Entropy-consuming workload: a wrongful rollback re-draws getrandom and
# silently changes the output — the infra campaign's key escape channel.
WORKLOAD = """
global grid[2048];
global ent[1];
func main() {
    var i; var round; var total;
    srand64(5);
    for (round = 0; round < 12; round = round + 1) {
        getrandom(ent, 8);
        for (i = 0; i < 2048; i = i + 1) {
            grid[i] = grid[i] * 3 + round - i;
        }
        print_int((grid[round] + peek8(ent)) % 1000003);
    }
    total = 0;
    for (i = 0; i < 2048; i = i + 1) { total = total + grid[i]; }
    print_int(total);
}
"""


def make_config(hardening=False):
    config = ParallaftConfig()
    config.slicing_period = 12_000_000_000
    config.enable_recovery = True
    if hardening:
        harden(config)
    return config


_PROFILE = {}


def profile(hardening):
    """Fault-free reference for one arm: (per-segment instr, stdout)."""
    if hardening not in _PROFILE:
        runtime = Parallaft(compile_source(WORKLOAD),
                            config=make_config(hardening),
                            platform=apple_m2())
        stats = runtime.run()
        assert not stats.errors
        _PROFILE[hardening] = (
            [s.main_instructions for s in runtime.segments], stats.stdout)
    return _PROFILE[hardening]


def run_with_site(site, hardening):
    """One full run with ``site`` applied; returns (stats, runtime, ctl)."""
    instr, _ = profile(hardening)
    runtime = Parallaft(compile_source(WORKLOAD),
                        config=make_config(hardening), platform=apple_m2())
    controller = InfraFaultController(
        runtime, site,
        app_threshold=site.when * instr[site.segment_index])
    stats = runtime.run()
    return stats, runtime, controller


def trace_kinds(runtime):
    return [event.kind for event in runtime.trace]


# ---------------------------------------------------------------------------


class TestRecordIntegrity:
    def test_append_stamps_seq_and_checksum(self):
        log = RrLog()
        log.integrity = True
        for i in range(3):
            log.append(NondetRecord(pc=0x1000 + i, opcode=7, value=i))
        for i, record in enumerate(log.records):
            assert record.seq == i
            assert record.checksum == record_checksum(record)
            assert verify_record(record, i) is None

    def test_append_without_integrity_leaves_records_bare(self):
        log = RrLog()
        log.append(NondetRecord(pc=0x1000, opcode=7, value=1))
        record = log.records[0]
        assert getattr(record, "seq", None) is None
        problem = verify_record(record, 0)
        assert problem is not None and "no integrity metadata" in problem

    def test_value_corruption_detected(self):
        log = RrLog()
        log.integrity = True
        log.append(NondetRecord(pc=0x1000, opcode=7, value=42))
        record = log.records[0]
        record.value ^= 1 << 13
        problem = verify_record(record, 0)
        assert problem is not None and "checksum mismatch" in problem

    def test_syscall_output_data_corruption_detected(self):
        log = RrLog()
        log.integrity = True
        log.append(SyscallRecord(63, (1, 2), "local", result=8,
                                 output_addr=0x2000,
                                 output_data=b"\x01" * 8))
        record = log.records[0]
        record.output_data = b"\x01" * 7 + b"\x81"
        assert "checksum mismatch" in verify_record(record, 0)

    def test_signal_record_checksummed(self):
        log = RrLog()
        log.integrity = True
        log.append(SignalRecord(10, external=True, exec_point=(3, 500)))
        record = log.records[0]
        assert verify_record(record, 0) is None
        record.signo = 12
        assert "checksum mismatch" in verify_record(record, 0)

    def test_reordering_detected_by_sequence_numbers(self):
        log = RrLog()
        log.integrity = True
        log.append(NondetRecord(pc=0x1000, opcode=7, value=1))
        log.append(NondetRecord(pc=0x1004, opcode=7, value=2))
        log.records.reverse()  # splice: checksums still valid, order not
        problem = verify_record(log.records[0], 0)
        assert problem is not None and "reordered or spliced" in problem


class TestTrackerSuppression:
    @pytest.mark.parametrize("backend", [DirtyPageBackend.SOFT_DIRTY,
                                         DirtyPageBackend.MAP_COUNT])
    def test_suppressed_vpn_hidden_from_scans(self, backend):
        kernel = Kernel(page_size=PAGE, seed=0)
        proc = kernel.spawn(compile_source("""
        global data[8192];
        func main() { print_int(1); }
        """))
        tracker = DirtyPageTracker(backend, PAGE)
        tracker.begin_segment(proc)
        proc.mem.store_word(DATA_BASE, 5)
        proc.mem.store_word(DATA_BASE + PAGE, 6)
        vpns = set(tracker.dirty_vpns(proc))
        assert {DATA_BASE // PAGE, DATA_BASE // PAGE + 1} <= vpns

        tracker.suppressed_vpns.add(DATA_BASE // PAGE)
        filtered = set(tracker.dirty_vpns(proc))
        assert DATA_BASE // PAGE not in filtered
        assert DATA_BASE // PAGE + 1 in filtered
        assert tracker.suppressed_hits > 0


class TestComparatorCollision:
    def _pair(self):
        kernel = Kernel(page_size=PAGE, seed=0)
        proc = kernel.spawn(compile_source("""
        global data[2048];
        func main() { print_int(0); }
        """))
        twin, _ = kernel.fork(proc, paused=True)
        return proc, twin

    def test_collision_forces_silent_match_on_memory_divergence(self):
        proc, twin = self._pair()
        proc.mem.store_word(DATA_BASE, 0xBAD)
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        comparator.fault_next_digest_collision = True
        result = comparator.compare(proc, twin,
                                    dirty_vpns={DATA_BASE // PAGE})
        assert result.match  # the escape the unhardened arm measures

    def test_collision_forges_register_verdict_too(self):
        proc, twin = self._pair()
        proc.cpu.regs.flip_bit("gpr", 5, 20)
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        comparator.fault_next_digest_collision = True
        assert comparator.compare(proc, twin, dirty_vpns=set()).match

    def test_redundant_path_converts_collision_to_integrity(self):
        proc, twin = self._pair()
        proc.mem.store_word(DATA_BASE, 0xBAD)
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE,
                                     redundant=True)
        comparator.fault_next_digest_collision = True
        result = comparator.compare(proc, twin,
                                    dirty_vpns={DATA_BASE // PAGE})
        assert not result.match
        assert result.reason == "integrity"
        assert "hash paths disagree" in result.describe()

    def test_redundant_doubles_hash_cost(self):
        proc, twin = self._pair()
        plain = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        doubled = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE,
                                  redundant=True)
        vpns = {DATA_BASE // PAGE}
        assert (doubled.compare(proc, twin, dirty_vpns=vpns).bytes_hashed
                == 2 * plain.compare(proc, twin,
                                     dirty_vpns=vpns).bytes_hashed)

    def test_collision_is_one_shot(self):
        proc, twin = self._pair()
        proc.mem.store_word(DATA_BASE, 0xBAD)
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        comparator.fault_next_digest_collision = True
        assert comparator.compare(proc, twin,
                                  dirty_vpns={DATA_BASE // PAGE}).match
        # Second compare: flag consumed, divergence detected normally.
        result = comparator.compare(proc, twin,
                                    dirty_vpns={DATA_BASE // PAGE})
        assert not result.match and result.reason == "memory"


class TestCleanPageAudit:
    def _pair(self):
        kernel = Kernel(page_size=PAGE, seed=0)
        proc = kernel.spawn(compile_source("""
        global data[8192];
        func main() { print_int(0); }
        """))
        twin, _ = kernel.fork(proc, paused=True)
        return proc, twin

    def test_audit_catches_untracked_modified_page(self):
        proc, twin = self._pair()
        vpn = DATA_BASE // PAGE
        proc.mem.store_word(DATA_BASE, 99)       # modified...
        trusted = set()                           # ...but not in the union
        audited, mismatched, nbytes = audit_clean_pages(
            proc, twin, trusted, limit=4)
        assert vpn in audited
        assert mismatched == [vpn]
        assert nbytes > 0

    def test_audit_trusts_pages_inside_the_union(self):
        proc, twin = self._pair()
        vpn = DATA_BASE // PAGE
        proc.mem.store_word(DATA_BASE, 99)
        audited, mismatched, _ = audit_clean_pages(
            proc, twin, {vpn}, limit=4)
        assert vpn not in audited and not mismatched

    def test_audit_disabled_with_zero_limit(self):
        proc, twin = self._pair()
        proc.mem.store_word(DATA_BASE, 99)
        audited, mismatched, nbytes = audit_clean_pages(
            proc, twin, set(), limit=0)
        assert audited == [] and mismatched == [] and nbytes == 0

    def test_fault_free_forks_have_nothing_suspicious(self):
        proc, twin = self._pair()
        audited, mismatched, _ = audit_clean_pages(proc, twin, set(),
                                                   limit=8)
        assert mismatched == []

    def test_state_digest_covers_registers_and_memory(self):
        proc, twin = self._pair()
        base, _ = state_digest(proc)
        assert state_digest(twin)[0] == base
        twin.mem.store_word(DATA_BASE, 1)
        assert state_digest(twin)[0] != base
        proc.mem.store_word(DATA_BASE, 1)
        assert state_digest(twin)[0] == state_digest(proc)[0]
        proc.cpu.regs.flip_bit("gpr", 3, 7)
        assert state_digest(proc)[0] != state_digest(twin)[0]


class TestHardenAndSites:
    def test_harden_enables_every_layer(self):
        config = harden(ParallaftConfig())
        assert config.log_checksums
        assert config.checkpoint_digests
        assert config.clean_page_audit > 0
        assert config.redundant_compare

    def test_defaults_leave_hardening_off(self):
        config = ParallaftConfig()
        assert not config.log_checksums
        assert not config.checkpoint_digests
        assert config.clean_page_audit == 0
        assert not config.redundant_compare

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            InfraFaultSite("cache-corrupt", 0)

    def test_known_kinds_describe(self):
        for kind in INFRA_KINDS:
            assert kind in InfraFaultSite(kind, 2, bit=5).describe()


class TestIntegrityInvariant:
    def _event(self, kind, ts, segment=0, **payload):
        return TraceEvent(ts=ts, kind=kind, segment=segment,
                          payload=payload)

    def test_rollback_after_integrity_failure_violates(self):
        events = [
            self._event(tev.INTEGRITY_FAIL, 1.0, segment=2,
                        check="checkpoint"),
            self._event(tev.ROLLBACK, 2.0, segment=2),
        ]
        violations = InvariantChecker().check(events)
        assert any(v.invariant == "integrity" for v in violations)
        message = next(v for v in violations
                       if v.invariant == "integrity").message
        assert "untrusted checkpoint" in message

    def test_rollback_before_integrity_failure_is_fine(self):
        events = [
            self._event(tev.ROLLBACK, 1.0, segment=1),
            self._event(tev.INTEGRITY_FAIL, 2.0, segment=3, check="log"),
        ]
        violations = InvariantChecker().check(events)
        assert not any(v.invariant == "integrity" for v in violations)

    def test_integrity_checks_alone_are_fine(self):
        events = [
            self._event(tev.INTEGRITY_CHECK, 1.0, check="log", ok=True),
            self._event(tev.ROLLBACK, 2.0, segment=1),
        ]
        violations = InvariantChecker().check(events)
        assert not any(v.invariant == "integrity" for v in violations)


# ---------------------------------------------------------------------------
# End-to-end: one representative site per kind, both arms.


class TestEndToEndDirtyMiss:
    SITE = dict(kind=INFRA_DIRTY_MISS, segment_index=1, bit=1234,
                page_rank=0, when=0.7)

    def test_unhardened_escape(self):
        _, reference = profile(False)
        stats, runtime, controller = run_with_site(
            InfraFaultSite(**self.SITE), hardening=False)
        assert controller.fired
        assert runtime.dirty_tracker.suppressed_hits > 0
        assert classify_run(stats, reference) is Outcome.SDC
        assert not stats.errors and stats.stdout != reference

    def test_hardened_failstop(self):
        stats, runtime, controller = run_with_site(
            InfraFaultSite(**self.SITE), hardening=True)
        assert controller.fired
        assert stats.errors and stats.errors[0].kind == "infra_integrity"
        assert "clean-page audit" in stats.errors[0].detail
        assert stats.recovery_rollbacks == 0
        kinds = trace_kinds(runtime)
        assert tev.INTEGRITY_FAIL in kinds
        assert tev.ROLLBACK not in kinds
        InvariantChecker(recovery=True).assert_ok(runtime.trace)


class TestEndToEndLogCorrupt:
    # Record 5 of segment 1 is the segment's *last* getrandom; field_rank
    # 1 selects its recorded output_data, so the checker replays rotten
    # entropy that survives (uncorrected) to the segment-end comparison.
    # Bit 9 lands in byte 1, which the program never prints: the main's
    # own output stays clean and only the replay is poisoned.
    SITE = dict(kind=INFRA_LOG_CORRUPT, segment_index=1, bit=9,
                record_rank=5, field_rank=1, when=0.6)

    def test_unhardened_wrongful_rollback_escapes(self):
        _, reference = profile(False)
        stats, runtime, controller = run_with_site(
            InfraFaultSite(**self.SITE), hardening=False)
        assert controller.fired
        # The rotten record implicated the innocent main: it was rolled
        # back, the re-execution re-drew getrandom entropy, and the run
        # finished "clean" with silently different output.
        assert stats.recovery_rollbacks > 0
        assert classify_run(stats, reference) is Outcome.SDC

    def test_hardened_checksum_detects_before_replay(self):
        stats, runtime, controller = run_with_site(
            InfraFaultSite(**self.SITE), hardening=True)
        assert controller.fired
        assert stats.errors and stats.errors[0].kind == "log_integrity"
        assert "checksum mismatch" in stats.errors[0].detail
        assert stats.recovery_rollbacks == 0
        assert tev.ROLLBACK not in trace_kinds(runtime)
        InvariantChecker(recovery=True).assert_ok(runtime.trace)


class TestEndToEndCheckpointCorrupt:
    SITE = dict(kind=INFRA_CHECKPOINT_CORRUPT, segment_index=1, bit=321,
                page_rank=0, when=0.7, app_bit=17)

    def test_unhardened_corrupt_promotion_escapes(self):
        _, reference = profile(False)
        stats, runtime, controller = run_with_site(
            InfraFaultSite(**self.SITE), hardening=False)
        assert controller.fired
        assert stats.recovery_rollbacks > 0  # the rotten checkpoint won
        assert classify_run(stats, reference) is Outcome.SDC

    def test_hardened_digest_refuses_promotion(self):
        stats, runtime, controller = run_with_site(
            InfraFaultSite(**self.SITE), hardening=True)
        assert controller.fired
        assert stats.errors and stats.errors[0].kind == "infra_integrity"
        assert "failed integrity verification" in stats.errors[0].detail
        assert stats.recovery_rollbacks == 0
        kinds = trace_kinds(runtime)
        assert tev.INTEGRITY_FAIL in kinds and tev.ROLLBACK not in kinds
        InvariantChecker(recovery=True).assert_ok(runtime.trace)


class TestEndToEndDigestCorrupt:
    SITE = dict(kind=INFRA_DIGEST_CORRUPT, segment_index=1, bit=4096,
                page_rank=0, when=0.9)

    def test_unhardened_collision_escapes(self):
        _, reference = profile(False)
        stats, runtime, controller = run_with_site(
            InfraFaultSite(**self.SITE), hardening=False)
        assert controller.fired
        assert classify_run(stats, reference) is Outcome.SDC
        assert not stats.errors

    def test_hardened_redundant_path_failstops(self):
        stats, runtime, controller = run_with_site(
            InfraFaultSite(**self.SITE), hardening=True)
        assert controller.fired
        assert stats.errors and stats.errors[0].kind == "infra_integrity"
        assert "hash paths disagree" in stats.errors[0].detail
        assert stats.recovery_rollbacks == 0
        InvariantChecker(recovery=True).assert_ok(runtime.trace)


class TestIntegrityAccounting:
    def test_hardened_fault_free_run_counts_checks_and_no_failures(self):
        runtime = Parallaft(compile_source(WORKLOAD),
                            config=make_config(hardening=True),
                            platform=apple_m2())
        stats = runtime.run()
        assert not stats.errors
        assert stats.integrity_checks > 0
        assert stats.integrity_failures == 0
        dump = stats.to_dict()
        assert dump["counter.integrity.checks"] == stats.integrity_checks
        assert dump["counter.integrity.failures"] == 0
        kinds = trace_kinds(runtime)
        assert tev.INTEGRITY_CHECK in kinds
        assert tev.INTEGRITY_FAIL not in kinds
        # Hardened and unhardened fault-free runs produce identical
        # output: the integrity layers observe, they do not interfere.
        assert stats.stdout == profile(False)[1]

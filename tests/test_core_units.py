"""Unit tests: R/R log, syscall model, config, stats, RAFT veneer."""

import pytest

from repro import abi
from repro.core import (
    NondetRecord,
    ParallaftConfig,
    RrLog,
    RuntimeMode,
    SignalRecord,
    SyscallRecord,
)
from repro.core import syscall_model
from repro.core.stats import DetectedError, RunStats
from repro.common.errors import RuntimeConfigError


class TestRrLog:
    def test_append_and_cursor(self):
        log = RrLog()
        a = SyscallRecord(abi.SYS_GETPID, (0,) * 5, "noneffectful")
        b = NondetRecord(0x1000, 60, 42)
        log.append(a)
        log.append(b)
        cursor = log.cursor()
        assert cursor.peek() is a
        assert cursor.next() is a
        assert cursor.next() is b
        assert cursor.next() is None
        assert cursor.exhausted

    def test_multiple_cursors_independent(self):
        log = RrLog()
        log.append(SignalRecord(10, external=False))
        first, second = log.cursor(), log.cursor()
        assert first.next() is not None
        assert second.position == 0

    def test_cursor_sees_later_appends(self):
        """RAFT-style concurrency: records appended after the cursor
        catches up become visible."""
        log = RrLog()
        cursor = log.cursor()
        assert cursor.peek() is None
        log.append(SignalRecord(2, external=True))
        assert cursor.peek() is not None

    def test_record_reprs(self):
        assert "SyscallRecord" in repr(
            SyscallRecord(1, (1, 2, 3, 4, 5), "global"))
        assert "external" in repr(SignalRecord(2, external=True))
        assert "NondetRecord" in repr(NondetRecord(0x40, 61, 9))


class TestSyscallModel:
    def test_classification(self):
        assert syscall_model.classify(abi.SYS_WRITE) == syscall_model.GLOBAL
        assert syscall_model.classify(abi.SYS_READ) == syscall_model.GLOBAL
        assert syscall_model.classify(abi.SYS_KILL) == syscall_model.GLOBAL
        assert syscall_model.classify(abi.SYS_MMAP) == syscall_model.LOCAL
        assert syscall_model.classify(abi.SYS_BRK) == syscall_model.LOCAL
        assert syscall_model.classify(abi.SYS_GETPID) == \
            syscall_model.NONEFFECTFUL
        assert syscall_model.classify(abi.SYS_GETTIMEOFDAY) == \
            syscall_model.NONEFFECTFUL
        # Unknown syscalls fail deterministically: non-effectful.
        assert syscall_model.classify(9999) == syscall_model.NONEFFECTFUL

    def test_write_input_region(self):
        region = syscall_model.input_region(
            abi.SYS_WRITE, (1, 0x2000, 128, 0, 0))
        assert region == (0x2000, 128)

    def test_read_output_region_uses_result(self):
        region = syscall_model.output_region(
            abi.SYS_READ, (3, 0x3000, 4096, 0, 0), result=100)
        assert region == (0x3000, 100)
        assert syscall_model.output_region(
            abi.SYS_READ, (3, 0x3000, 4096, 0, 0), result=-9) is None

    def test_getrandom_output_region(self):
        region = syscall_model.output_region(
            abi.SYS_GETRANDOM, (0x4000, 64, 0, 0, 0), result=64)
        assert region == (0x4000, 64)

    def test_getpid_has_no_regions(self):
        assert syscall_model.input_region(abi.SYS_GETPID, (0,) * 5) is None
        assert syscall_model.output_region(abi.SYS_GETPID, (0,) * 5, 7) is None

    def test_file_backed_mmap_detection(self):
        anon = (0, 4096, 3, abi.MAP_PRIVATE | abi.MAP_ANONYMOUS, -1)
        filed = (0, 4096, 3, abi.MAP_PRIVATE, 3)
        assert not syscall_model.is_file_backed_mmap(abi.SYS_MMAP, anon)
        assert syscall_model.is_file_backed_mmap(abi.SYS_MMAP, filed)
        assert not syscall_model.is_file_backed_mmap(abi.SYS_WRITE, filed)

    def test_shared_mmap_detection(self):
        shared = (0, 4096, 3, abi.MAP_SHARED, -1)
        assert syscall_model.is_shared_mmap(abi.SYS_MMAP, shared)

    def test_aslr_fixup_detection(self):
        floating = (0, 4096, 3, abi.MAP_PRIVATE | abi.MAP_ANONYMOUS, -1)
        fixed = (0x5000, 4096, 3,
                 abi.MAP_PRIVATE | abi.MAP_ANONYMOUS | abi.MAP_FIXED, -1)
        hinted = (0x5000, 4096, 3, abi.MAP_PRIVATE | abi.MAP_ANONYMOUS, -1)
        assert syscall_model.needs_aslr_fixup(abi.SYS_MMAP, floating)
        assert not syscall_model.needs_aslr_fixup(abi.SYS_MMAP, fixed)
        assert not syscall_model.needs_aslr_fixup(abi.SYS_MMAP, hinted)


class TestConfig:
    def test_defaults_match_paper(self):
        config = ParallaftConfig()
        config.validate()
        assert config.slicing_period == 5_000_000_000   # §4.1
        assert config.checker_timeout_scale == 1.1      # §4.2.2
        assert config.checker_cluster == "little"
        assert config.compare_state

    def test_raft_preset(self):
        config = ParallaftConfig.raft()
        config.validate()
        assert config.mode == RuntimeMode.RAFT
        assert config.slicing_period == float("inf")
        assert not config.compare_state
        assert config.checker_cluster == "big"
        assert not config.enable_dvfs_pacer

    @pytest.mark.parametrize("attr,value", [
        ("slicing_period", 0),
        ("slicing_period", -1),
        ("skid_buffer_branches", -1),
        ("checker_timeout_scale", 1.0),
        ("checker_cluster", "medium"),
        ("max_live_segments", 0),
        ("slicing_unit", "bogomips"),
    ])
    def test_invalid_configs_rejected(self, attr, value):
        config = ParallaftConfig()
        setattr(config, attr, value)
        with pytest.raises(RuntimeConfigError):
            config.validate()


class TestStats:
    def test_to_dict_keys_match_artifact(self):
        stats = RunStats()
        dump = stats.to_dict()
        for key in ("timing.all_wall_time", "timing.main_wall_time",
                    "counter.checkpoint_count",
                    "fixed_interval_slicer.nr_slices", "hwmon.total_energy"):
            assert key in dump

    def test_to_dict_round_trips_every_counter(self):
        """Regression: to_dict() silently dropped several counters
        (checker_retries, mmap_splits, bytes_recorded, signals_recorded,
        nondet_recorded, checkers_finished_on_big), making them invisible
        in harness reports and campaign artifacts.  Set every scalar
        field to a distinct value and require each to surface in the
        dump."""
        import dataclasses
        stats = RunStats()
        skip = {"pss_samples", "pacer_freq_history", "errors",
                "stdout", "stderr", "exit_code"}
        expected = {}
        value = 1.0
        for f in dataclasses.fields(RunStats):
            if f.name in skip:
                continue
            value += 1.0
            setattr(stats, f.name, value)
            expected[f.name] = value
        dumped = {v for v in stats.to_dict().values()
                  if isinstance(v, (int, float))}
        missing = [name for name, v in expected.items() if v not in dumped]
        assert missing == [], f"fields dropped by to_dict(): {missing}"

    def test_to_dict_includes_previously_dropped_counters(self):
        dump = RunStats().to_dict()
        for key in ("counter.checker_retries", "counter.mmap_splits",
                    "counter.bytes_recorded", "counter.signals_recorded",
                    "counter.nondet_recorded",
                    "counter.checkers_finished_on_big",
                    "timing.checker_user_time", "timing.checker_sys_time",
                    "work.big_core_work_fraction"):
            assert key in dump

    def test_error_detected_property(self):
        stats = RunStats()
        assert not stats.error_detected
        stats.errors.append(DetectedError("state_mismatch", 3))
        assert stats.error_detected
        assert "state_mismatch" in stats.to_dict()["errors"][0]

    def test_big_core_work_fraction(self):
        stats = RunStats()
        assert stats.big_core_work_fraction == 0.0
        stats.checker_cycles_little = 75.0
        stats.checker_cycles_big = 25.0
        assert stats.big_core_work_fraction == pytest.approx(0.25)


class TestRaftVeneer:
    def test_raft_class_pins_config(self):
        from repro.minic import compile_source
        from repro.raft import Raft
        runtime = Raft(compile_source("func main() { print_int(1); }"))
        assert runtime.config.mode == RuntimeMode.RAFT
        stats = runtime.run()
        assert stats.stdout == "1\n"
        assert not stats.error_detected

    def test_raft_config_helper(self):
        from repro.raft import raft_config
        assert raft_config().mode == RuntimeMode.RAFT

"""Property-based tests: the compiler+interpreter agree with a reference
evaluator on randomly generated expressions.

The reference implements the ISA's semantics: signed 64-bit two's-complement
wraparound, C-style truncating division/remainder, arithmetic right shift.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minic import compile_source

from helpers import run_program, stdout_of

_TWO63 = 1 << 63
_TWO64 = 1 << 64


def wrap(value):
    return ((value + _TWO63) % _TWO64) - _TWO63


def c_div(a, b):
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def c_mod(a, b):
    return a - c_div(a, b) * b


# -- expression AST for generation -------------------------------------------

class Lit:
    def __init__(self, value):
        self.value = value

    def render(self):
        return str(self.value)

    def eval(self, env):
        return self.value


class Var:
    def __init__(self, name):
        self.name = name

    def render(self):
        return self.name

    def eval(self, env):
        return env[self.name]


class Bin:
    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def render(self):
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def eval(self, env):
        a = self.left.eval(env)
        b = self.right.eval(env)
        if self.op == "+":
            return wrap(a + b)
        if self.op == "-":
            return wrap(a - b)
        if self.op == "*":
            return wrap(a * b)
        if self.op == "/":
            return wrap(c_div(a, b or 1))  # generator never emits 0 divisor
        if self.op == "%":
            return wrap(c_mod(a, b or 1))
        if self.op == "&":
            return a & b
        if self.op == "|":
            return a | b
        if self.op == "^":
            return a ^ b
        if self.op == "<":
            return 1 if a < b else 0
        if self.op == "<=":
            return 1 if a <= b else 0
        if self.op == ">":
            return 1 if a > b else 0
        if self.op == ">=":
            return 1 if a >= b else 0
        if self.op == "==":
            return 1 if a == b else 0
        if self.op == "!=":
            return 1 if a != b else 0
        raise AssertionError(self.op)


class Shift:
    def __init__(self, op, left, amount):
        self.op = op
        self.left = left
        self.amount = amount

    def render(self):
        return f"({self.left.render()} {self.op} {self.amount})"

    def eval(self, env):
        a = self.left.eval(env)
        if self.op == "<<":
            return wrap(a << self.amount)
        # arithmetic right shift of the signed value
        return a >> self.amount


SMALL = st.integers(min_value=-1000, max_value=1000)
NONZERO = SMALL.filter(lambda v: v != 0)
VARS = ("a", "b", "c")
ARITH = st.sampled_from(["+", "-", "*", "&", "|", "^"])
CMP = st.sampled_from(["<", "<=", ">", ">=", "==", "!="])


def leaf():
    return st.one_of(SMALL.map(Lit), st.sampled_from(VARS).map(Var))


def expr(depth=2):
    if depth == 0:
        return leaf()
    sub = expr(depth - 1)
    return st.one_of(
        leaf(),
        st.builds(Bin, ARITH, sub, sub),
        st.builds(Bin, CMP, sub, sub),
        st.builds(lambda l, d: Bin("/", l, Lit(d)), sub, NONZERO),
        st.builds(lambda l, d: Bin("%", l, Lit(d)), sub, NONZERO),
        st.builds(Shift, st.sampled_from(["<<", ">>"]), sub,
                  st.integers(min_value=0, max_value=12)),
    )


def run_expression(tree, env):
    source = f"""
    func main() {{
        var a; var b; var c;
        a = {env['a']}; b = {env['b']}; c = {env['c']};
        print_int({tree.render()});
    }}
    """
    kernel, _, proc = run_program(compile_source(source))
    assert proc.exit_code == 0
    return int(stdout_of(kernel).strip())


class TestExpressionEquivalence:
    @given(expr(2), SMALL, SMALL, SMALL)
    @settings(max_examples=60, deadline=None)
    def test_random_expressions_match_reference(self, tree, a, b, c):
        env = {"a": a, "b": b, "c": c}
        assert run_expression(tree, env) == tree.eval(env)

    @given(st.integers(min_value=-(2**62), max_value=2**62),
           st.integers(min_value=-(2**62), max_value=2**62))
    @settings(max_examples=30, deadline=None)
    def test_wraparound_addition(self, a, b):
        env = {"a": a, "b": b, "c": 0}
        tree = Bin("+", Var("a"), Var("b"))
        assert run_expression(tree, env) == wrap(a + b)

    @given(SMALL, NONZERO)
    @settings(max_examples=30, deadline=None)
    def test_division_truncates_toward_zero(self, a, b):
        env = {"a": a, "b": b, "c": 0}
        quotient = run_expression(Bin("/", Var("a"), Var("b")), env)
        remainder = run_expression(Bin("%", Var("a"), Var("b")), env)
        assert quotient == c_div(a, b)
        assert remainder == c_mod(a, b)
        # The C identity holds: (a/b)*b + a%b == a.
        assert wrap(quotient * b + remainder) == a

    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=-10**6, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_shift_semantics(self, amount, value):
        env = {"a": value, "b": 0, "c": 0}
        left = run_expression(Shift("<<", Var("a"), amount), env)
        right = run_expression(Shift(">>", Var("a"), amount), env)
        assert left == wrap(value << amount)
        assert right == value >> amount


class TestLogicalProperties:
    @given(SMALL, SMALL)
    @settings(max_examples=25, deadline=None)
    def test_and_or_truth_tables(self, a, b):
        source = f"""
        func main() {{
            var a; var b;
            a = {a}; b = {b};
            print_int(a && b);
            print_int(a || b);
            print_int(!a);
        }}
        """
        kernel, _, _ = run_program(compile_source(source))
        got = [int(x) for x in stdout_of(kernel).split()]
        assert got == [1 if (a and b) else 0,
                       1 if (a or b) else 0,
                       0 if a else 1]

    @given(st.lists(SMALL, min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_loop_sum_matches_python(self, values):
        inits = "\n".join(
            f"table[{i}] = {v};" for i, v in enumerate(values))
        source = f"""
        global table[16];
        func main() {{
            var i; var total;
            {inits}
            total = 0;
            for (i = 0; i < {len(values)}; i = i + 1) {{
                total = total + table[i];
            }}
            print_int(total);
        }}
        """
        kernel, _, _ = run_program(compile_source(source))
        assert int(stdout_of(kernel).strip()) == sum(values)

"""Detection-mode layer tests: registry, TMR voting, forward recovery,
the MEEK split knob and the new trace invariants.

The mode registry (`repro.modes`) replaces the string-compared dispatch
that used to be scattered across the runner/runtime/config: an unknown
mode is now a typed `ConfigError` naming the registry, and each mode's
segment policy (replica count, boundary check, recovery) lives on its
`DetectionMode` object.
"""

import pytest

from repro.common.errors import ConfigError, RuntimeConfigError
from repro.core import Parallaft, ParallaftConfig, RuntimeMode
from repro.core.comparator import StateComparator
from repro.faults.outcomes import Outcome, classify_run
from repro.faults.sites import FaultSite
from repro.minic import compile_source
from repro.modes import (
    DetectionMode,
    ParallaftMode,
    RaftMode,
    TmrMode,
    get_mode,
    register_mode,
    registered_modes,
)
from repro.sim import apple_m2
from repro.trace import events as tev
from repro.trace.invariants import (
    InvariantChecker,
    assert_runtime_ok,
    check_runtime,
)
from repro.workloads import synthetic_source

SOURCE = """
global data[512];
func main() {
    var i; var round; var acc;
    acc = 0;
    for (round = 0; round < 20; round = round + 1) {
        for (i = 0; i < 512; i = i + 1) {
            data[i] = data[i] * 3 + round + i;
            acc = acc + data[i];
        }
        print_int(acc % 1000003);
    }
}
"""


def tmr_config(**overrides):
    config = ParallaftConfig.tmr()
    config.slicing_period = 40_000_000
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def run_mode(config, source=SOURCE, seed=0, hook=None):
    runtime = Parallaft(compile_source(source), config=config,
                        platform=apple_m2(), seed=seed)
    if hook is not None:
        runtime.quantum_hooks.append(hook(runtime))
    stats = runtime.run()
    return runtime, stats


def reference_stdout(source=SOURCE, seed=0):
    config = ParallaftConfig()
    config.slicing_period = 40_000_000
    _, stats = run_mode(config, source=source, seed=seed)
    assert not stats.error_detected
    return stats.stdout


def main_fault_hook(segment_index, site, after_instructions=500):
    """Flip ``site`` in the main once it is ``after_instructions`` deep
    into segment ``segment_index``."""
    def make(runtime):
        fired = [False]

        def hook(proc, role):
            if fired[0] or role != "main":
                return
            segment = runtime.current
            if segment is None or segment.index != segment_index:
                return
            progress = (runtime._instr_reading(proc)
                        - segment.start_instructions)
            if progress >= after_instructions:
                fired[0] = site.apply(
                    proc, runtime.dirty_tracker.dirty_vpns(proc))
        return hook
    return make


def replica_fault_hook(segment_index, site, replica_slot=0):
    """Flip ``site`` in one checker replica of segment
    ``segment_index`` (``replica_slot`` picks which one)."""
    def make(runtime):
        fired = [False]

        def hook(proc, role):
            if fired[0] or role != "checker":
                return
            if segment_index >= len(runtime.segments):
                return
            segment = runtime.segments[segment_index]
            replica = segment.replica_of(proc.pid)
            if replica is None:
                return
            if segment.replicas.index(replica) != replica_slot:
                return
            fired[0] = site.apply(
                proc, runtime.dirty_tracker.dirty_vpns(proc))
        return hook
    return make


class TestRegistry:
    def test_builtin_modes_registered(self):
        assert registered_modes() == ["parallaft", "raft", "tmr"]

    def test_get_mode_returns_singletons(self):
        assert get_mode("tmr") is get_mode("tmr")
        assert isinstance(get_mode("parallaft"), ParallaftMode)
        assert isinstance(get_mode("raft"), RaftMode)
        assert isinstance(get_mode("tmr"), TmrMode)

    def test_unknown_mode_is_typed_error_listing_registry(self):
        """Regression: unknown mode strings used to fall through to a
        silent Parallaft run; now they raise naming every valid mode."""
        with pytest.raises(ConfigError) as err:
            get_mode("trm")  # typo'd tmr
        message = str(err.value)
        for name in registered_modes():
            assert name in message

    def test_run_protected_rejects_unknown_mode(self):
        from repro.harness.runner import run_protected
        from repro.workloads.registry import benchmark
        with pytest.raises(ConfigError):
            run_protected(benchmark("mcf"), mode="parallaftt")

    def test_make_config_shapes(self):
        assert get_mode("parallaft").make_config().mode \
            == RuntimeMode.PARALLAFT
        raft = get_mode("raft").make_config()
        assert raft.mode == RuntimeMode.RAFT
        assert get_mode("raft").slices is False
        assert raft.slicing_period == float("inf")
        tmr = get_mode("tmr").make_config()
        assert tmr.mode == RuntimeMode.TMR
        assert tmr.compare_state is True

    def test_make_config_rejects_unknown_knob(self):
        with pytest.raises(ConfigError):
            get_mode("tmr").make_config(meek_splitt=0.5)

    def test_make_config_applies_overrides(self):
        config = get_mode("tmr").make_config(meek_split=0.25,
                                             mem_budget_bytes=1 << 20)
        assert config.meek_split == 0.25
        assert config.mem_budget_bytes == 1 << 20

    def test_replica_counts(self):
        assert get_mode("parallaft").replica_count == 1
        assert get_mode("raft").replica_count == 1
        assert get_mode("tmr").replica_count == 2

    def test_custom_mode_registration(self):
        @register_mode
        class EagerMode(ParallaftMode):
            name = "test-eager"
            summary = "test-only clone"
        try:
            assert get_mode("test-eager") is not get_mode("parallaft")
            assert "test-eager" in registered_modes()
        finally:
            from repro.modes import base
            base._REGISTRY.pop("test-eager")

    def test_tmr_config_forbids_rollback_recovery(self):
        config = ParallaftConfig.tmr()
        config.enable_recovery = True
        with pytest.raises(RuntimeConfigError):
            config.validate()


class TestTmrFaultFree:
    def test_votes_every_boundary_and_output_matches(self):
        reference = reference_stdout()
        runtime, stats = run_mode(tmr_config())
        assert not stats.error_detected
        assert stats.exit_code == 0
        assert stats.stdout == reference
        assert stats.segments_checked >= 2
        assert stats.tmr_votes == stats.segments_checked
        assert stats.tmr_outvoted == 0
        assert stats.tmr_forward_recoveries == 0
        assert_runtime_ok(runtime)

    def test_two_replicas_per_segment(self):
        runtime, stats = run_mode(tmr_config())
        for segment in runtime.segments:
            assert len(segment.replicas) <= 2
        votes = [e for e in runtime.trace if e.kind == tev.VOTE]
        assert votes and all(e.payload["quorum"] == 3 for e in votes)

    def test_vote_cycles_attributed_to_vote_phase(self):
        from repro.metrics import VOTE
        _, stats = run_mode(tmr_config())
        assert stats.phase_profile.cycles.get(VOTE, 0.0) > 0


class TestTmrForwardRecovery:
    def test_main_fault_survived_without_rollback(self):
        """The acceptance headline: a single-replica fault in the *main*
        is outvoted 2:1 and survived by promoting the winning replica —
        zero rollbacks, byte-identical output."""
        reference = reference_stdout()
        site = FaultSite.register("gpr", 5, 12, target="main")
        runtime, stats = run_mode(tmr_config(),
                                  hook=main_fault_hook(2, site))
        assert stats.exit_code == 0
        assert stats.stdout == reference
        assert stats.tmr_forward_recoveries == 1
        assert stats.recovery_rollbacks == 0
        assert classify_run(stats, reference) == Outcome.RECOVERED
        kinds = [e.kind for e in runtime.trace]
        assert tev.FORWARD_RECOVERY in kinds
        assert tev.ROLLBACK not in kinds
        assert_runtime_ok(runtime)

    def test_forward_recovery_truncates_stale_output(self):
        """Output the outvoted main printed past the voted boundary is
        discarded; the adopted timeline reprints it correctly."""
        reference = reference_stdout()
        site = FaultSite.register("gpr", 6, 20, target="main")
        runtime, stats = run_mode(tmr_config(),
                                  hook=main_fault_hook(1, site))
        if stats.tmr_forward_recoveries == 0:
            pytest.skip("fault was benign under this seed")
        assert stats.stdout == reference
        assert_runtime_ok(runtime)

    def test_forward_recovery_budget_fail_stops(self):
        """With the budget at zero, an outvoted main must fail-stop with
        the typed vote_inconclusive error instead of promoting."""
        site = FaultSite.register("gpr", 5, 12, target="main")
        runtime, stats = run_mode(tmr_config(max_forward_recoveries=0),
                                  hook=main_fault_hook(2, site))
        assert stats.error_detected
        assert stats.errors[0].kind == "vote_inconclusive"
        assert stats.tmr_forward_recoveries == 0
        assert_runtime_ok(runtime)


class TestTmrOutvote:
    def test_replica_fault_outvoted_and_run_survives(self):
        reference = reference_stdout()
        site = FaultSite.register("gpr", 5, 12, target="checker")
        runtime, stats = run_mode(tmr_config(),
                                  hook=replica_fault_hook(2, site))
        assert stats.exit_code == 0
        assert stats.stdout == reference
        assert stats.recovery_rollbacks == 0
        assert stats.tmr_forward_recoveries == 0
        if stats.tmr_outvoted:
            assert classify_run(stats, reference) == Outcome.RECOVERED
            assert any(e.kind == tev.OUTVOTED for e in runtime.trace)
        assert_runtime_ok(runtime)

    def test_second_replica_fault_outvoted_too(self):
        reference = reference_stdout()
        site = FaultSite.register("gpr", 7, 9, target="checker")
        runtime, stats = run_mode(
            tmr_config(), hook=replica_fault_hook(3, site, replica_slot=1))
        assert stats.exit_code == 0
        assert stats.stdout == reference
        assert stats.recovery_rollbacks == 0
        assert_runtime_ok(runtime)


class TestVoteUnit:
    """StateComparator.vote in isolation (no runtime)."""

    def _procs(self, n=3):
        from helpers import make_machine
        from repro.core.config import ComparisonStrategy
        kernel, _ = make_machine(aslr=False)
        prog = compile_source("func main() { print_int(1); }")
        procs = [kernel.spawn(prog, name=f"p{i}") for i in range(n)]
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH,
                                     page_size=kernel.page_size)
        return comparator, procs

    def test_unanimous_quorum_three(self):
        comparator, (a, b, c) = self._procs()
        vote = comparator.vote([b, c], a, dirty_vpns=set())
        assert vote.quorum == 3
        assert not vote.main_outvoted
        assert vote.loser_replicas == []

    def test_main_outvoted_when_replicas_agree(self):
        comparator, (a, b, c) = self._procs()
        a.cpu.regs.gprs[5] ^= 1 << 12    # corrupt the "main" checkpoint
        vote = comparator.vote([b, c], a, dirty_vpns=set())
        assert vote.quorum == 2
        assert vote.main_outvoted
        assert vote.winner_index == 0

    def test_one_replica_outvoted(self):
        comparator, (a, b, c) = self._procs()
        c.cpu.regs.gprs[5] ^= 1 << 12
        vote = comparator.vote([b, c], a, dirty_vpns=set())
        assert vote.quorum == 2
        assert not vote.main_outvoted
        assert vote.loser_replicas == [1]

    def test_all_disagree_no_quorum(self):
        comparator, (a, b, c) = self._procs()
        a.cpu.regs.gprs[5] ^= 1 << 12
        b.cpu.regs.gprs[6] ^= 1 << 3
        c.cpu.regs.gprs[7] ^= 1 << 7
        vote = comparator.vote([b, c], a, dirty_vpns=set())
        assert vote.quorum == 1
        assert not vote.main_outvoted


class TestMeekSplit:
    def test_early_checks_taken_per_replica(self):
        _, stats = run_mode(tmr_config(meek_split=0.5))
        assert stats.exit_code == 0
        # Two replicas per checked segment, each takes one early check.
        assert stats.meek_early_checks > 0
        assert stats.meek_early_checks >= stats.segments_checked

    def test_split_zero_means_no_early_checks(self):
        _, stats = run_mode(tmr_config(meek_split=0.0))
        assert stats.meek_early_checks == 0

    def test_split_still_detects_checker_fault(self):
        """The combined verdict (early AND boundary) must not lose
        detections however the work is divided."""
        reference = reference_stdout()
        site = FaultSite.register("gpr", 5, 12, target="checker")
        for split in (0.25, 1.0):
            config = ParallaftConfig()
            config.slicing_period = 40_000_000
            config.meek_split = split
            runtime, stats = run_mode(config,
                                      hook=replica_fault_hook(2, site))
            assert_runtime_ok(runtime)
            # The flip either perturbed replayed state (detected) or was
            # masked before any compare; it must never corrupt output.
            if stats.error_detected:
                assert stats.errors[0].kind in ("state_mismatch",
                                                "syscall_divergence")
            else:
                assert stats.stdout == reference

    def test_early_mismatch_counts_detection(self):
        site = FaultSite.register("gpr", 5, 12, target="checker")
        config = ParallaftConfig()
        config.slicing_period = 40_000_000
        config.meek_split = 1.0    # the early stage covers everything
        runtime, stats = run_mode(config, hook=replica_fault_hook(2, site))
        if stats.error_detected:
            assert stats.meek_early_detections >= 1

    def test_meek_split_validated(self):
        config = ParallaftConfig()
        config.meek_split = 1.5
        with pytest.raises(RuntimeConfigError):
            config.validate()


class TestNewInvariants:
    def _event(self, kind, **kw):
        payload = {k: v for k, v in kw.items()
                   if k not in ("pid", "segment")}
        return tev.TraceEvent(ts=0.0, kind=kind,
                              pid=kw.get("pid"),
                              segment=kw.get("segment"),
                              payload=payload)

    def test_quorum1_vote_without_error_violates(self):
        events = [self._event(tev.VOTE, segment=0, quorum=1,
                              main_outvoted=False)]
        violations = InvariantChecker().check(events)
        assert any(v.invariant == "vote_quorum" for v in violations)

    def test_quorum1_vote_with_error_ok(self):
        events = [
            self._event(tev.VOTE, segment=0, quorum=1,
                        main_outvoted=False),
            self._event(tev.ERROR, segment=0,
                        error="vote_inconclusive"),
        ]
        assert not InvariantChecker().check(events)

    def test_quorum3_vote_ok(self):
        events = [self._event(tev.VOTE, segment=0, quorum=3,
                              main_outvoted=False)]
        assert not InvariantChecker().check(events)

    def test_rollback_after_forward_recovery_violates(self):
        events = [
            self._event(tev.FORWARD_RECOVERY, segment=1, winner_pid=7),
            self._event(tev.ROLLBACK, segment=2, pid=1),
        ]
        violations = InvariantChecker().check(events)
        assert any(v.invariant == "forward_recovery" for v in violations)

    def test_rollback_before_forward_recovery_ok(self):
        events = [
            self._event(tev.ROLLBACK, segment=0, pid=1),
            self._event(tev.FORWARD_RECOVERY, segment=1, winner_pid=7),
        ]
        assert not any(v.invariant == "forward_recovery"
                       for v in InvariantChecker().check(events))


class TestModeComparison:
    def test_identical_plan_across_modes(self):
        from repro.modes import run_mode_comparison
        program = compile_source(synthetic_source(total_iters=20000))
        summaries = run_mode_comparison(program,
                                        modes=("parallaft", "tmr"),
                                        injections=2, seed=3)
        assert set(summaries) == {"parallaft", "tmr"}
        for summary in summaries.values():
            assert len(summary.records) == 2
        tmr = summaries["tmr"]
        assert tmr.total_rollbacks == 0
        assert tmr.detected_fault_indices \
            >= summaries["parallaft"].detected_fault_indices

    def test_render_mode_comparison_table(self):
        from repro.harness.report import NA, render_mode_comparison
        from repro.modes.comparison import (ModeInjectionRecord,
                                            ModeRunSummary)
        fired = ModeRunSummary(mode="tmr", wall_time=12.0,
                               baseline_wall_time=10.0)
        fired.records.append(ModeInjectionRecord(
            fault_index=0, outcome=Outcome.RECOVERED, fired=True,
            detection_latency=0.5, forward_recoveries=1))
        silent = ModeRunSummary(mode="raft", wall_time=11.0,
                                baseline_wall_time=10.0)
        silent.records.append(ModeInjectionRecord(
            fault_index=0, outcome=Outcome.BENIGN, fired=False))
        table = render_mode_comparison({"tmr": fired, "raft": silent})
        lines = table.splitlines()
        assert lines[1].startswith("mode")
        tmr_row = next(l for l in lines if l.startswith("tmr"))
        assert "+20.0" in tmr_row and "100%" in tmr_row
        raft_row = next(l for l in lines if l.startswith("raft"))
        # Nothing fired: every fraction cell is the NA placeholder.
        assert NA in raft_row
        assert "0%" not in raft_row


class TestComparisonOverrideFilter:
    def test_meek_split_override_skipped_for_raft(self):
        """Regression: a meek_split override must not be forced onto
        modes that never compare state (RAFT) — that combination is
        rejected by config validation."""
        from repro.modes import run_mode_comparison
        program = compile_source(synthetic_source(total_iters=8000))
        summaries = run_mode_comparison(program, modes=("raft",),
                                        injections=1, seed=0,
                                        config_overrides={"meek_split": 0.5})
        assert "raft" in summaries

"""End-to-end trace invariant suite over the workload matrix.

Each scenario runs a real workload under a distinct runtime configuration
(plain, containment, containment with a FAILED segment, containment with
retries and several live segments, recovery), then feeds the recorded
event trace to the offline :class:`InvariantChecker` and validates the
Chrome trace_event export.

The containment scenarios are the regression net for two wake bugs in the
containment stall path:

* ``failed_segment``: with ``stop_on_error=False`` a FAILED segment never
  retires, so the error path itself must wake a containment-stalled main
  (otherwise the leftover ``main_stall`` trips the stall-pairing
  invariant and the app deadlocks).
* ``many_live``: a retirement may not wake the main while *other* earlier
  segments are still live (a premature ``main_wake`` trips the
  containment invariant).
"""

import json

import pytest

from repro.core import Parallaft, ParallaftConfig
from repro.minic import compile_source
from repro.sim import apple_m2
from repro.trace import InvariantChecker, check_runtime
from repro.trace import events as tev

PRINT_LOOP = """
global acc;
func main() {
    var i; var j;
    for (i = 0; i < 6; i = i + 1) {
        for (j = 0; j < 5000; j = j + 1) { acc = acc + j; }
        print_int(acc % 1000003);
    }
}
"""

WIDE_PRINT_LOOP = """
global acc;
func main() {
    var i; var j;
    for (i = 0; i < 5; i = i + 1) {
        for (j = 0; j < 20000; j = j + 1) { acc = acc + j; }
        print_int(acc % 1000003);
    }
}
"""


def corrupt_earlier_live_checker(runtime):
    """Once the main stalls for containment, flip a bit in the checker of
    an earlier live segment (so that segment FAILs while the main waits
    on it)."""
    corrupted = [None]

    def hook(proc, role):
        if corrupted[0] is not None or role != "checker":
            return
        if not runtime._main_stalled_for_containment:
            return
        current = runtime.current
        if current is None:
            return
        segment = runtime.segment_of_checker.get(proc.pid)
        if segment is None or segment.index >= current.index \
                or not segment.live:
            return
        proc.cpu.regs.flip_bit("gpr", 8, 13)
        corrupted[0] = segment.index

    runtime.quantum_hooks.append(hook)
    return corrupted


def corrupt_main_once(runtime):
    fired = [0]

    def hook(proc, role):
        if role == "main" and fired[0] == 0 and proc.user_time > 0.002:
            proc.cpu.regs.flip_bit("gpr", 8, 17)
            fired[0] += 1

    runtime.quantum_hooks.append(hook)
    return fired


def scenario_plain():
    runtime = Parallaft(compile_source(PRINT_LOOP),
                        config=ParallaftConfig(), platform=apple_m2())
    return runtime, {"errors": 0}


def scenario_containment():
    config = ParallaftConfig()
    config.slicing_period = 150_000_000
    config.error_containment = True
    runtime = Parallaft(compile_source(PRINT_LOOP), config=config,
                        platform=apple_m2())
    return runtime, {"errors": 0}


def scenario_failed_segment():
    """Containment + stop_on_error=False + a segment that FAILs while the
    main is stalled waiting for it (the deadlock regression)."""
    config = ParallaftConfig()
    config.slicing_period = 150_000_000
    config.error_containment = True
    config.stop_on_error = False
    config.max_live_segments = 2
    runtime = Parallaft(compile_source(PRINT_LOOP), config=config,
                        platform=apple_m2())
    corrupt_earlier_live_checker(runtime)
    return runtime, {"errors": 1}


def scenario_many_live():
    """Containment with several earlier live segments at each stall (the
    premature-wake regression: retiring one of them must not wake the
    main while the others are still live)."""
    config = ParallaftConfig()
    config.slicing_period = 80_000_000
    config.error_containment = True
    config.max_live_segments = 6
    runtime = Parallaft(compile_source(WIDE_PRINT_LOOP), config=config,
                        platform=apple_m2())
    return runtime, {"errors": 0, "min_waiting_on": 2}


def scenario_retry_containment():
    config = ParallaftConfig()
    config.slicing_period = 150_000_000
    config.error_containment = True
    config.retry_failed_checkers = True
    config.max_live_segments = 4
    runtime = Parallaft(compile_source(PRINT_LOOP), config=config,
                        platform=apple_m2())
    corrupt_earlier_live_checker(runtime)
    return runtime, {"errors": 0}


def scenario_recovery():
    config = ParallaftConfig()
    config.slicing_period = 400_000_000
    config.enable_recovery = True
    runtime = Parallaft(compile_source(PRINT_LOOP), config=config,
                        platform=apple_m2())
    corrupt_main_once(runtime)
    return runtime, {"errors": 0, "min_rollbacks": 1}


def corrupt_every_recovery_checkpoint(runtime):
    """Flip a bit in each retained recovery checkpoint shortly after its
    fork (after the fork-time digest was taken), so whichever segment an
    application fault later lands in, the checkpoint recovery would trust
    is rotten."""
    from repro.isa import DATA_BASE
    corrupted = set()

    def hook(proc, role):
        for segment in runtime.segments:
            checkpoint = segment.recovery_checkpoint
            if (segment.index in corrupted or checkpoint is None
                    or not checkpoint.alive):
                continue
            value = checkpoint.mem.load_byte(DATA_BASE)
            checkpoint.mem.store_byte(DATA_BASE, value ^ 1)
            corrupted.add(segment.index)

    runtime.quantum_hooks.append(hook)
    return corrupted


def scenario_integrity_failstop():
    """Recovery + checkpoint digests + rotten checkpoints + a main fault:
    every recovery path would trust corrupted saved state, so the runtime
    must fail-stop with a typed ``infra_integrity`` error — even though
    ``stop_on_error`` is off — and must never roll back (the integrity
    trace invariant)."""
    config = ParallaftConfig()
    config.slicing_period = 400_000_000
    config.enable_recovery = True
    config.checkpoint_digests = True
    config.stop_on_error = False
    runtime = Parallaft(compile_source(PRINT_LOOP), config=config,
                        platform=apple_m2())
    corrupt_every_recovery_checkpoint(runtime)
    corrupt_main_once(runtime)
    return runtime, {"errors": 1, "killed": True}


SCENARIOS = {
    "plain": scenario_plain,
    "containment": scenario_containment,
    "failed_segment": scenario_failed_segment,
    "many_live": scenario_many_live,
    "retry_containment": scenario_retry_containment,
    "recovery": scenario_recovery,
    "integrity_failstop": scenario_integrity_failstop,
}


@pytest.fixture(scope="module", params=sorted(SCENARIOS))
def finished_run(request):
    runtime, expect = SCENARIOS[request.param]()
    stats = runtime.run()
    return request.param, runtime, stats, expect


class TestWorkloadMatrixInvariants:
    def test_run_completes(self, finished_run):
        name, runtime, stats, expect = finished_run
        assert len(stats.errors) == expect["errors"], stats.errors
        if expect.get("killed"):
            # Integrity fail-stop: the app must NOT run to completion —
            # its saved state is untrusted, so the runtime tears it down
            # with a typed error instead of limping on (or "recovering").
            assert stats.exit_code != 0, f"{name}: app was not torn down"
            assert stats.errors[0].kind == "infra_integrity"
            assert stats.recovery_rollbacks == 0
            assert not list(runtime.trace.events(tev.ROLLBACK))
            assert list(runtime.trace.events(tev.INTEGRITY_FAIL))
            return
        assert stats.exit_code == 0, f"{name}: app did not finish"
        # The app's own output is never lost, even when a fault was
        # detected (containment) or repaired (recovery) along the way.
        assert len(stats.stdout.splitlines()) >= 5

    def test_invariants_hold(self, finished_run):
        name, runtime, stats, expect = finished_run
        violations = check_runtime(runtime)
        assert violations == [], (
            f"{name}: " + "; ".join(str(v) for v in violations))

    def test_chrome_export_valid(self, finished_run, tmp_path):
        name, runtime, stats, expect = finished_run
        path = tmp_path / f"{name}.json"
        runtime.trace.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert {"i", "X", "M"} <= {e["ph"] for e in events}
        assert all("ts" in e for e in events if e["ph"] != "M")
        checked = [e for e in events
                   if e["ph"] == "i" and e["name"] == tev.SEGMENT_CHECKED]
        assert len(checked) == stats.segments_checked

    def test_scenario_preconditions(self, finished_run):
        """The matrix only regresses the wake bugs if the scenarios really
        exercise the paths: recovery rolled back, the many-live stall had
        several earlier live segments, the failed-segment scenario stalled
        on the segment that failed."""
        name, runtime, stats, expect = finished_run
        if "min_rollbacks" in expect:
            assert stats.recovery_rollbacks >= expect["min_rollbacks"]
        if "min_waiting_on" in expect:
            stalls = [e for e in runtime.trace.events(tev.MAIN_STALL)
                      if e.payload.get("reason") == tev.STALL_CONTAINMENT]
            assert stalls, "scenario never stalled for containment"
            assert max(len(e.payload.get("waiting_on", []))
                       for e in stalls) >= expect["min_waiting_on"]
        if name == "failed_segment":
            assert stats.errors[0].kind == "syscall_divergence"

    def test_retire_emitted_once_per_segment(self, finished_run):
        """Regression: segment retirement used to re-enter via the checker
        exit hook, double-counting checker time and emitting duplicate
        retire events."""
        name, runtime, stats, expect = finished_run
        retires = [e.segment for e in
                   runtime.trace.events(tev.SEGMENT_RETIRE)]
        assert len(retires) == len(set(retires))

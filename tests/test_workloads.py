"""Tests for the SPEC-like workload suite and the synthetic generator."""

import pytest

from repro.workloads import (
    SENSITIVITY_TRIO,
    all_benchmarks,
    benchmark,
    fp_benchmarks,
    int_benchmarks,
    synthetic_program,
    synthetic_source,
)

from helpers import run_program, stdout_of


class TestRegistry:
    def test_sixteen_benchmarks(self):
        registry = all_benchmarks()
        assert len(registry) == 16

    def test_int_fp_split(self):
        assert len(int_benchmarks()) == 10
        assert len(fp_benchmarks()) == 6
        assert {b.suite for b in all_benchmarks().values()} == {"int", "fp"}

    def test_sensitivity_trio_exists(self):
        for name in SENSITIVITY_TRIO:
            assert benchmark(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            benchmark("nonexistent")

    def test_paper_input_structure(self):
        assert benchmark("gcc").n_inputs == 9     # paper §5.5: 9 inputs
        assert benchmark("bzip2").n_inputs == 6   # SPEC's six inputs
        assert benchmark("mcf").n_inputs == 1

    def test_input_seeds(self):
        assert benchmark("gcc").input_seeds() == list(range(1, 10))


@pytest.mark.parametrize("name", sorted(all_benchmarks()))
class TestEveryBenchmark:
    def test_runs_and_produces_output(self, name):
        bench = benchmark(name)
        program = bench.program(1, 1)
        kernel, executor, proc = run_program(program, files=bench.files(1, 1))
        assert proc.exit_code == 0
        output = stdout_of(kernel)
        assert output.strip(), f"{name} produced no checksum"
        int(output.strip().splitlines()[-1])  # checksum is an integer

    def test_deterministic_across_runs(self, name):
        bench = benchmark(name)

        def run_once():
            kernel, _, proc = run_program(bench.program(1, 1),
                                          files=bench.files(1, 1))
            return stdout_of(kernel), proc.cpu.branches_retired
        assert run_once() == run_once()

    def test_inputs_differ(self, name):
        bench = benchmark(name)
        if bench.n_inputs < 2:
            pytest.skip("single-input benchmark")
        out = set()
        for seed in bench.input_seeds()[:2]:
            kernel, _, _ = run_program(bench.program(1, seed),
                                       files=bench.files(1, seed))
            out.add(stdout_of(kernel))
        assert len(out) == 2, "inputs should produce different results"


class TestCharacteristics:
    def test_compute_bound_benchmarks_are_cache_resident(self):
        """sjeng/povray/namd/gobmk must fit the little cache: that is what
        makes their checkers cheap (paper: sjeng ~2x slowdown)."""
        from repro.sim import apple_m2
        platform = apple_m2()
        for name in ("sjeng", "povray", "namd", "gobmk"):
            bench = benchmark(name)
            _, _, proc = run_program(bench.program(1, 1),
                                     files=bench.files(1, 1))
            assert proc.mem.rss_bytes() <= platform.little_cache_bytes, name

    def test_memory_bound_benchmarks_exceed_little_cache(self):
        from repro.sim import apple_m2
        platform = apple_m2()
        for name in ("mcf", "milc", "lbm", "libquantum"):
            bench = benchmark(name)
            _, _, proc = run_program(bench.program(1, 1),
                                     files=bench.files(1, 1))
            assert proc.mem.rss_bytes() > 1.5 * platform.little_cache_bytes, \
                name

    def test_slowdown_ordering_matches_paper(self):
        """Little-core slowdowns: sjeng ~ smallest, lbm ~ largest
        (paper: 2.0x for sjeng, >4x for mcf, lbm worst of all)."""
        from repro.sim import apple_m2
        platform = apple_m2()
        slowdowns = {}
        for name in ("sjeng", "gcc", "mcf", "lbm"):
            bench = benchmark(name)
            _, _, proc = run_program(bench.program(1, 1),
                                     files=bench.files(1, 1))
            ratio = proc.cpu.mem_ops_retired / proc.cpu.instr_retired
            slowdowns[name] = platform.little_slowdown(
                ratio, proc.mem.rss_bytes())
        assert slowdowns["sjeng"] < 2.2
        assert slowdowns["mcf"] > 3.0
        assert slowdowns["lbm"] > slowdowns["mcf"]
        assert slowdowns["sjeng"] < slowdowns["gcc"] < slowdowns["lbm"]


class TestSyntheticGenerator:
    def test_default_program_runs(self):
        kernel, _, proc = run_program(synthetic_program(total_iters=2000))
        assert proc.exit_code == 0
        assert stdout_of(kernel).strip()

    def test_mem_ops_parameter_controls_intensity(self):
        def ratio(mem_ops):
            program = synthetic_program(total_iters=3000,
                                        mem_ops_per_iter=mem_ops,
                                        compute_ops_per_iter=4)
            _, _, proc = run_program(program)
            return proc.cpu.mem_ops_retired / proc.cpu.instr_retired
        assert ratio(6) > 2 * ratio(1)

    def test_footprint_parameter_controls_rss(self):
        small = synthetic_program(total_iters=100, footprint_bytes=32768)
        large = synthetic_program(total_iters=100, footprint_bytes=524288)
        _, _, proc_small = run_program(small)
        _, _, proc_large = run_program(large)
        assert proc_large.mem.rss_bytes() > proc_small.mem.rss_bytes() + 400000

    def test_write_fraction_zero_means_read_only_heap(self):
        source = synthetic_source(total_iters=500, write_fraction_pct=0)
        assert "poke64(buf" not in source

    def test_deterministic(self):
        program = synthetic_program(total_iters=1500, seed=9)
        outs = {stdout_of(run_program(program)[0]) for _ in range(2)}
        assert len(outs) == 1

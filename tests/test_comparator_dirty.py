"""Unit tests: state comparator and dirty-page tracking (paper §4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ComparisonStrategy,
    DirtyPageBackend,
    DirtyPageTracker,
    StateComparator,
)
from repro.cpu import CpuContext
from repro.isa import DATA_BASE, assemble
from repro.kernel import Kernel
from repro.minic import compile_source

PAGE = 16384


def spawn_pair(kernel=None):
    """A process and its fork (checkpoint-style), sharing all frames."""
    kernel = kernel or Kernel(page_size=PAGE, seed=0)
    program = compile_source("""
    global data[8192];
    func main() {
        var i;
        for (i = 0; i < 2048; i = i + 1) { data[i] = i; }
        print_int(0);
    }
    """)
    proc = kernel.spawn(program)
    twin, _ = kernel.fork(proc, paused=True)
    return kernel, proc, twin


class TestComparator:
    def test_identical_forks_match_full(self):
        _, proc, twin = spawn_pair()
        comparator = StateComparator(ComparisonStrategy.FULL_MEMORY, PAGE)
        assert comparator.compare(proc, twin).match

    def test_identical_forks_match_dirty_hash_empty_set(self):
        _, proc, twin = spawn_pair()
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        result = comparator.compare(proc, twin, dirty_vpns=set())
        assert result.match
        assert result.pages_compared == 0

    def test_memory_divergence_detected(self):
        _, proc, twin = spawn_pair()
        proc.mem.store_word(DATA_BASE + 800, 0xBAD)
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        result = comparator.compare(
            proc, twin, dirty_vpns={DATA_BASE // PAGE})
        assert not result.match
        assert result.reason == "memory"
        assert result.mismatched_vpns == [DATA_BASE // PAGE]

    def test_register_divergence_detected_before_memory(self):
        _, proc, twin = spawn_pair()
        proc.cpu.regs.gprs[5] ^= 1 << 33
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        result = comparator.compare(proc, twin, dirty_vpns=set())
        assert not result.match
        assert result.register_mismatch

    def test_pc_divergence_detected(self):
        _, proc, twin = spawn_pair()
        proc.cpu.pc += 4
        comparator = StateComparator(ComparisonStrategy.FULL_MEMORY, PAGE)
        result = comparator.compare(proc, twin)
        assert not result.match and result.pc_mismatch

    def test_fp_and_vector_registers_compared(self):
        _, proc, twin = spawn_pair()
        proc.cpu.regs.flip_bit("vec", 2, 130)
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        assert not comparator.compare(proc, twin, dirty_vpns=set()).match

    def test_dirty_union_equals_full_compare(self):
        """The paper's optimization is sound: comparing only the union of
        both sides' dirty pages gives the same verdict as comparing all
        memory, because clean pages share frames."""
        kernel, proc, twin = spawn_pair()
        # Both sides write different pages; one writes a conflicting value.
        proc.mem.store_word(DATA_BASE + 8, 111)
        twin.mem.store_word(DATA_BASE + PAGE + 8, 222)

        full = StateComparator(ComparisonStrategy.FULL_MEMORY, PAGE)
        hashed = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        tracker = DirtyPageTracker(DirtyPageBackend.MAP_COUNT, PAGE)
        union = set(tracker.dirty_vpns(proc)) | set(tracker.dirty_vpns(twin))
        assert full.compare(proc, twin).match is False
        assert hashed.compare(proc, twin, union).match is False

        # Now make them agree again: verdicts match again.
        twin.mem.store_word(DATA_BASE + 8, 111)
        proc.mem.store_word(DATA_BASE + PAGE + 8, 222)
        union = set(tracker.dirty_vpns(proc)) | set(tracker.dirty_vpns(twin))
        assert full.compare(proc, twin).match
        assert hashed.compare(proc, twin, union).match

    def test_page_mapped_on_one_side_only_mismatches(self):
        from repro.mem.address_space import (MAP_ANONYMOUS, MAP_FIXED,
                                             MAP_PRIVATE, PROT_READ,
                                             PROT_WRITE)
        _, proc, twin = spawn_pair()
        addr = proc.mem.mmap(0x3000_0000, PAGE, PROT_READ | PROT_WRITE,
                             MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED)
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        result = comparator.compare(proc, twin,
                                    dirty_vpns={addr // PAGE})
        assert not result.match

    def test_page_mapped_on_twin_side_only_mismatches(self):
        """Asymmetry goes both ways: a page present only in the
        *checkpoint* (right side) must mismatch just like one present
        only in the checker — ``_page_or_none`` returns None for exactly
        one side in either order."""
        from repro.mem.address_space import (MAP_ANONYMOUS, MAP_FIXED,
                                             MAP_PRIVATE, PROT_READ,
                                             PROT_WRITE)
        _, proc, twin = spawn_pair()
        addr = twin.mem.mmap(0x3000_0000, PAGE, PROT_READ | PROT_WRITE,
                             MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED)
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        result = comparator.compare(proc, twin, dirty_vpns={addr // PAGE})
        assert not result.match
        assert result.reason == "memory"
        assert result.mismatched_vpns == [addr // PAGE]

    def test_one_sided_mappings_mismatch_in_both_orders(self):
        """Swapping the argument order must flip nothing: whichever side
        lacks the page, the verdict is the same mismatch."""
        from repro.mem.address_space import (MAP_ANONYMOUS, MAP_FIXED,
                                             MAP_PRIVATE, PROT_READ,
                                             PROT_WRITE)
        _, proc, twin = spawn_pair()
        addr = proc.mem.mmap(0x3000_0000, PAGE, PROT_READ | PROT_WRITE,
                             MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED)
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        forward = comparator.compare(proc, twin, dirty_vpns={addr // PAGE})
        backward = comparator.compare(twin, proc, dirty_vpns={addr // PAGE})
        assert not forward.match and not backward.match
        assert forward.mismatched_vpns == backward.mismatched_vpns

    def test_hash_disagreement_with_equal_bytes_is_defensive_hash_reason(
            self, monkeypatch):
        """The ``"hash"`` branch: per-page byte compares all pass but the
        running digests disagree.  Unreachable with a working hash;
        reachable exactly when the digest logic itself is broken, which
        is what a stubbed hasher simulates."""
        import repro.core.comparator as comparator_module

        class BrokenHash:
            _instances = 0

            def __init__(self):
                BrokenHash._instances += 1
                self._id = BrokenHash._instances

            def update(self, data):
                pass

            def digest(self):
                return self._id  # every instance disagrees with every other

        monkeypatch.setattr(comparator_module, "Xxh3_64", BrokenHash)
        _, proc, twin = spawn_pair()
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        result = comparator.compare(proc, twin,
                                    dirty_vpns={DATA_BASE // PAGE})
        assert not result.match
        assert result.reason == "hash"
        assert result.describe() == "hash"

    def test_dirty_hash_requires_vpns(self):
        _, proc, twin = spawn_pair()
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        with pytest.raises(ValueError):
            comparator.compare(proc, twin, dirty_vpns=None)

    @given(st.integers(min_value=0, max_value=PAGE // 8 - 1),
           st.integers(min_value=0, max_value=63))
    @settings(max_examples=25, deadline=None)
    def test_any_single_bit_flip_detected(self, word, bit):
        _, proc, twin = spawn_pair()
        address = DATA_BASE + word * 8
        proc.mem.store_word(address, proc.mem.load_word(address) ^ (1 << bit))
        comparator = StateComparator(ComparisonStrategy.DIRTY_HASH, PAGE)
        result = comparator.compare(proc, twin,
                                    dirty_vpns={DATA_BASE // PAGE})
        assert not result.match


class TestDirtyTracker:
    def test_soft_dirty_backend_clears_and_tracks(self):
        kernel, proc, twin = spawn_pair()
        tracker = DirtyPageTracker(DirtyPageBackend.SOFT_DIRTY, PAGE)
        pages = tracker.begin_segment(proc)
        assert pages == proc.mem.mapped_pages
        assert tracker.dirty_vpns(proc) == []
        proc.mem.store_word(DATA_BASE, 5)
        assert tracker.dirty_vpns(proc) == [DATA_BASE // PAGE]

    def test_map_count_backend_needs_no_clearing(self):
        kernel, proc, twin = spawn_pair()
        tracker = DirtyPageTracker(DirtyPageBackend.MAP_COUNT, PAGE)
        assert tracker.begin_segment(proc) == 0
        assert tracker.dirty_vpns(proc) == []
        proc.mem.store_word(DATA_BASE, 5)
        assert DATA_BASE // PAGE in tracker.dirty_vpns(proc)

    def test_backends_agree_on_write_sets(self):
        kernel, proc, twin = spawn_pair()
        soft = DirtyPageTracker(DirtyPageBackend.SOFT_DIRTY, PAGE)
        mapc = DirtyPageTracker(DirtyPageBackend.MAP_COUNT, PAGE)
        soft.begin_segment(proc)
        for offset in (0, PAGE, 3 * PAGE + 64):
            proc.mem.store_word(DATA_BASE + (offset // 8) * 8, offset)
        assert soft.dirty_vpns(proc) == mapc.dirty_vpns(proc)

    def test_cost_counters_accumulate(self):
        kernel, proc, twin = spawn_pair()
        tracker = DirtyPageTracker(DirtyPageBackend.SOFT_DIRTY, PAGE)
        tracker.begin_segment(proc)
        tracker.dirty_vpns(proc)
        assert tracker.pages_cleared > 0
        assert tracker.pages_scanned > 0

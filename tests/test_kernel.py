"""Tests for the kernel: fork, signals, tracing hooks, counters, costs."""

import pytest

from repro import abi
from repro.cpu.state import CpuContext
from repro.kernel import Kernel, ProcessState, SyscallAction, Tracer
from repro.minic import compile_source
from repro.sim import Executor, apple_m2

from helpers import make_machine, run_minic, stdout_of


def spawn_minic(kernel, executor, source, name="prog"):
    proc = kernel.spawn(compile_source(source, name=name))
    executor.schedule_default(proc)
    return proc


class TestSpawnAndExit:
    def test_exit_code_recorded(self):
        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, "func main() { exit(9); }")
        executor.run()
        assert proc.state == ProcessState.ZOMBIE
        assert proc.exit_code == 9

    def test_exit_time_recorded(self):
        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, """
        func main() { var i; for (i = 0; i < 5000; i = i + 1) {} }
        """)
        executor.run()
        assert proc.exit_time is not None and proc.exit_time > 0

    def test_core_freed_after_exit(self):
        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, "func main() {}")
        core = proc.core
        executor.run()
        assert core.occupant is None

    def test_reap_releases_memory(self):
        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, "func main() {}")
        executor.run()
        assert proc.mem.mapped_pages > 0
        kernel.reap(proc)
        assert proc.state == ProcessState.DEAD
        assert proc.mem.mapped_pages == 0


class TestFork:
    def test_fork_clones_state(self):
        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, """
        global x;
        func main() {
            var i;
            x = 5;
            for (i = 0; i < 100000; i = i + 1) { }
            print_int(x);
        }
        """)
        # Run a little, fork, then let both finish.
        for _ in range(5):
            executor.step()
        child, cost = kernel.fork(proc, name="child")
        assert cost > 0
        assert child.cpu.pc == proc.cpu.pc
        assert child.cpu.regs.snapshot() == proc.cpu.regs.snapshot()
        executor.schedule_default(child)
        child.state = ProcessState.RUNNING
        executor.run()
        # Both wrote 5 to the shared console.
        assert stdout_of(kernel) == "5\n5\n"

    def test_forked_child_memory_isolated(self):
        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, "func main() {}")
        child, _ = kernel.fork(proc, paused=True)
        from repro.isa.program import DATA_BASE
        proc.mem.store_word(DATA_BASE, 111)
        assert child.mem.load_word(DATA_BASE) != 111

    def test_fork_cost_scales_with_pages(self):
        kernel, executor = make_machine()
        small = spawn_minic(kernel, executor, "func main() {}")
        big = spawn_minic(kernel, executor, "func main() { sbrk(1000000); }")
        executor.run()
        _, cost_small = kernel.fork(small)
        _, cost_big = kernel.fork(big)
        assert cost_big > cost_small


class TestSignals:
    def test_fatal_signal_kills(self):
        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, """
        func main() { var i; for (i = 0; i < 1000000; i = i + 1) {} }
        """)
        executor.step()
        kernel.send_signal(proc, abi.SIGTERM, external=True)
        executor.run()
        assert proc.exit_code == 128 + abi.SIGTERM

    def test_custom_handler_runs(self):
        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, """
        global hits;
        func handler(sig) { hits = hits + 1; return 0; }
        func main() {
            var i;
            sigaction(10, addr_of_handler());
            kill(getpid(), 10);
            for (i = 0; i < 100; i = i + 1) {}
            print_int(hits);
        }
        func addr_of_handler() { return 0; }
        """)
        # Patch addr_of_handler: easier to install the handler directly.
        executor.run()
        # The program installed handler address 0 (removed); instead test
        # the kernel API level below.

    def test_handler_via_kernel_api(self):
        kernel, executor = make_machine()
        program = compile_source("""
        global hits;
        func on_sig(sig) { hits = hits + sig; return 0; }
        func main() {
            var i;
            for (i = 0; i < 50000; i = i + 1) {}
            print_int(hits);
        }
        """)
        proc = kernel.spawn(program)
        executor.schedule_default(proc)
        handler_addr = program.address_of("F_on_sig")
        proc.signal_handlers[abi.SIGUSR1] = handler_addr
        executor.step()
        kernel.send_signal(proc, abi.SIGUSR1, external=True)
        executor.run()
        assert stdout_of(kernel) == f"{abi.SIGUSR1}\n"

    def test_segfault_kills_by_default(self):
        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor,
                           "func main() { poke64(1, 1); }")
        executor.run()
        assert proc.exit_code == 128 + abi.SIGSEGV

    def test_divide_by_zero_sigfpe(self):
        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, """
        global zero;
        func main() { print_int(7 / zero); }
        """)
        executor.run()
        assert proc.exit_code == 128 + abi.SIGFPE

    def test_sigreturn_restores_context(self):
        kernel, executor = make_machine()
        program = compile_source("""
        global hits;
        func on_sig(sig) { hits = 1; return 0; }
        func main() {
            var i; var total;
            total = 0;
            for (i = 0; i < 30000; i = i + 1) { total = total + i; }
            print_int(total);
        }
        """)
        proc = kernel.spawn(program)
        executor.schedule_default(proc)
        proc.signal_handlers[abi.SIGUSR1] = program.address_of("F_on_sig")
        for _ in range(3):
            executor.step()
        kernel.send_signal(proc, abi.SIGUSR1, external=True)
        executor.run()
        # The interrupted loop still computes the right total.
        assert stdout_of(kernel) == f"{sum(range(30000))}\n"


class TestCounters:
    def test_instr_overcount_on_syscalls(self):
        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, """
        func main() { var i; for (i = 0; i < 20; i = i + 1) { getpid(); } }
        """)
        executor.run()
        assert proc.cpu.instr_overcount > 0

    def test_branch_counter_no_overcount(self):
        """The branch counter must be deterministic across identical runs
        even though the instruction counter is not (paper §4.2.1)."""
        results = []
        for seed in (1, 2):
            kernel, executor = make_machine(seed=seed)
            proc = spawn_minic(kernel, executor, """
            func main() {
                var i;
                for (i = 0; i < 500; i = i + 1) { getpid(); }
            }
            """)
            executor.run()
            results.append((proc.cpu.branches_retired,
                            proc.cpu.instr_retired + proc.cpu.instr_overcount))
        assert results[0][0] == results[1][0]          # branches deterministic
        # (instruction overcount differs with the RNG seed in general)

    def test_far_branches_counted_separately(self):
        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, """
        func main() { getpid(); getpid(); getpid(); }
        """)
        executor.run()
        # 3 getpid retire as far branches (exit never retires).
        assert proc.cpu.far_branches_retired == 3


class TestTracing:
    def test_syscall_hooks_called(self):
        calls = []

        class Spy(Tracer):
            def on_syscall_entry(self, proc, sysno, args):
                calls.append(("entry", sysno))
                return None

            def on_syscall_exit(self, proc, sysno, args, result):
                calls.append(("exit", sysno, result))

        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, "func main() { getpid(); }")
        kernel.attach_tracer(proc, Spy())
        executor.run()
        entries = [c for c in calls if c[0] == "entry"]
        assert ("entry", abi.SYS_GETPID) in entries
        exits = [c for c in calls if c[0] == "exit" and c[1] == abi.SYS_GETPID]
        assert exits and exits[0][2] == proc.pid

    def test_syscall_emulation(self):
        class FakePid(Tracer):
            def on_syscall_entry(self, proc, sysno, args):
                if sysno == abi.SYS_GETPID:
                    return SyscallAction.emulate(42424)
                return None

        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor,
                           "func main() { print_int(getpid()); }")
        kernel.attach_tracer(proc, FakePid())
        executor.run()
        assert stdout_of(kernel) == "42424\n"

    def test_tracer_arg_rewrite(self):
        """Tracer rewrites write() length — Parallaft-style arg modification."""

        class Truncate(Tracer):
            def on_syscall_entry(self, proc, sysno, args):
                if sysno == abi.SYS_WRITE and args[2] > 3:
                    proc.cpu.regs.gprs[3] = 3
                return None

        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor,
                           'func main() { print_str("abcdef"); }')
        kernel.attach_tracer(proc, Truncate())
        executor.run()
        assert stdout_of(kernel) == "abc"

    def test_tracing_cost_slows_process(self):
        # Use an unscaled platform (cycle_scale=1, as in the §5.7 stress
        # tests) so per-syscall ptrace costs dominate loop time.
        platform = apple_m2()
        platform.cycle_scale = 1

        def timed(traced):
            kernel, executor = make_machine(platform)
            proc = spawn_minic(kernel, executor, """
            func main() { var i; for (i = 0; i < 200; i = i + 1) { getpid(); } }
            """)
            if traced:
                kernel.attach_tracer(proc, Tracer())
            executor.run()
            return proc.user_time + proc.sys_time
        assert timed(True) > timed(False) * 5

    def test_signal_interception(self):
        taken = []

        class Absorb(Tracer):
            def on_signal(self, proc, signo, external):
                taken.append((signo, external))
                return False  # take ownership

        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, """
        func main() { var i; for (i = 0; i < 300000; i = i + 1) {} }
        """)
        kernel.attach_tracer(proc, Absorb())
        executor.step()
        kernel.send_signal(proc, abi.SIGTERM, external=True)
        executor.run()
        # Tracer absorbed it: the process survived to normal exit.
        assert proc.exit_code == 0
        assert taken == [(abi.SIGTERM, True)]

    def test_exit_hook(self):
        exited = []

        class ExitSpy(Tracer):
            def on_process_exit(self, proc):
                exited.append(proc.pid)

        kernel, executor = make_machine()
        proc = spawn_minic(kernel, executor, "func main() { exit(1); }")
        kernel.attach_tracer(proc, ExitSpy())
        executor.run()
        assert exited == [proc.pid]


class TestExecutorScheduling:
    def test_two_processes_on_distinct_cores(self):
        kernel, executor = make_machine()
        a = spawn_minic(kernel, executor, "func main() { print_str(\"a\"); }")
        b = spawn_minic(kernel, executor, "func main() { print_str(\"b\"); }")
        assert a.core is not b.core
        executor.run()
        assert sorted(stdout_of(kernel)) == ["a", "b"]

    def test_core_occupancy_enforced(self):
        from repro.common.errors import SimulationError
        kernel, executor = make_machine()
        a = spawn_minic(kernel, executor, "func main() {}")
        b = kernel.spawn(compile_source("func main() {}"))
        with pytest.raises(SimulationError):
            executor.assign(b, a.core)

    def test_time_advances_monotonically(self):
        kernel, executor = make_machine()
        spawn_minic(kernel, executor, """
        func main() { var i; for (i = 0; i < 50000; i = i + 1) {} }
        """)
        last = 0.0
        while executor.step():
            assert executor.wall_time() >= last
            last = executor.wall_time()
        assert last > 0

    def test_energy_accumulates(self):
        kernel, executor = make_machine()
        spawn_minic(kernel, executor, """
        func main() { var i; for (i = 0; i < 50000; i = i + 1) {} }
        """)
        executor.run()
        assert executor.total_energy_joules() > 0

    def test_sampler_fires(self):
        kernel, executor = make_machine()
        spawn_minic(kernel, executor, """
        func main() { var i; for (i = 0; i < 400000; i = i + 1) {} }
        """)
        samples = []
        executor.add_sampler(0.5, samples.append)
        executor.run()
        assert len(samples) >= 1
        assert samples == sorted(samples)

    def test_little_core_slower_than_big(self):
        source = """
        func main() { var i; for (i = 0; i < 100000; i = i + 1) {} }
        """
        kernel, executor = make_machine()
        proc = kernel.spawn(compile_source(source))
        executor.assign(proc, executor.big_cores[0])
        executor.run()
        big_time = proc.user_time

        kernel2, executor2 = make_machine()
        proc2 = kernel2.spawn(compile_source(source))
        executor2.assign(proc2, executor2.little_cores[0])
        executor2.run()
        little_time = proc2.user_time
        assert little_time > big_time * 1.5

    def test_dvfs_slows_execution(self):
        source = """
        func main() { var i; for (i = 0; i < 100000; i = i + 1) {} }
        """
        def run_at(freq_scale):
            kernel, executor = make_machine()
            proc = kernel.spawn(compile_source(source))
            core = executor.little_cores[0]
            core.set_frequency(core.freq_max_hz * freq_scale)
            executor.assign(proc, core)
            executor.run()
            return proc.user_time, core.energy_joules
        t_full, e_full = run_at(1.0)
        t_half, e_half = run_at(0.5)
        assert t_half > t_full * 1.8
        # Separate voltage domain: halving f cuts power ~8x, so energy for
        # the same work drops even though it takes twice as long.
        assert e_half < e_full

"""Signal handling under Parallaft (paper §4.3.3).

External signals must be delivered to the checker at the *identical
execution point* as the main (custom handlers make delivery position
architecturally visible); internal signals are recorded and matched
against the checker's own faults; self-raised signals via kill() are
drained from the record after the replayed syscall.
"""

import pytest

from repro import abi
from repro.core import Parallaft, ParallaftConfig
from repro.kernel.process import ProcessState
from repro.minic import compile_source
from repro.sim import apple_m2

HANDLER_PROGRAM = """
global hits;
global progress;

func on_usr1(sig) {
    // Handler effect depends on delivery position: captures `progress`.
    hits = hits * 1000003 + progress + sig;
    return 0;
}

func main() {
    var i;
    sigaction(10, 99);
    for (i = 0; i < 60000; i = i + 1) {
        progress = progress + 1;
    }
    print_int(hits % 1000000007);
    print_int(progress);
}
"""


def make_runtime(source, period=300_000_000):
    program = compile_source(source)
    handler = None
    for label, addr in program.labels.items():
        if label == "F_on_usr1":
            handler = addr
    if handler is not None:
        for instr in program.instrs:
            if instr.imm == 99:
                instr.imm = handler
    config = ParallaftConfig()
    config.slicing_period = period
    return Parallaft(program, config=config, platform=apple_m2())


class TestExternalSignals:
    def test_external_signal_replayed_at_identical_point(self):
        """Deliver SIGUSR1 externally mid-run: the handler reads `progress`
        (position-dependent), so any delivery-point divergence between main
        and checker would trip the state comparison."""
        runtime = make_runtime(HANDLER_PROGRAM)
        sent = [0]

        def hook(proc, role):
            if role == "main" and sent[0] < 3 and proc.user_time > 0.002 * (sent[0] + 1):
                runtime.kernel.send_signal(proc, abi.SIGUSR1, external=True)
                sent[0] += 1

        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        assert sent[0] == 3
        assert stats.signals_recorded >= 3
        assert not stats.error_detected, stats.errors
        assert stats.exit_code == 0
        # The handler really ran (hits != 0 printed first).
        first_line = stats.stdout.splitlines()[0]
        assert first_line != "0"

    def test_external_signal_output_matches_unsignalled_progress(self):
        """The final `progress` value is unaffected by signal handling."""
        runtime = make_runtime(HANDLER_PROGRAM)

        def hook(proc, role):
            if role == "main" and proc.user_time > 0.004 and \
                    runtime.stats.signals_recorded == 0:
                runtime.kernel.send_signal(proc, abi.SIGUSR1, external=True)

        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        assert not stats.error_detected
        assert stats.stdout.splitlines()[1] == "60000"

    def test_external_fatal_signal_kills_main_and_checkers_verify(self):
        """SIGTERM (no handler) kills the main mid-run; the final partial
        segment is still verified against the death point."""
        runtime = make_runtime("""
        global progress;
        func main() {
            var i;
            for (i = 0; i < 80000; i = i + 1) { progress = progress + 1; }
            print_int(progress);
        }
        """)
        killed = [False]

        def hook(proc, role):
            if role == "main" and not killed[0] and proc.user_time > 0.004:
                runtime.kernel.send_signal(proc, abi.SIGTERM, external=True)
                killed[0] = True

        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        assert killed[0]
        assert stats.exit_code == 128 + abi.SIGTERM
        # The crash itself is not a detected *error*: checkers verified the
        # truncated execution faithfully.
        assert not stats.error_detected, stats.errors


class TestSelfRaisedSignals:
    def test_kill_self_with_handler_replays(self):
        runtime = make_runtime("""
        global hits;
        func on_usr1(sig) { hits = hits + 1; return 0; }
        func main() {
            var i;
            sigaction(10, 99);
            for (i = 0; i < 10; i = i + 1) {
                kill(getpid(), 10);
            }
            print_int(hits);
        }
        """, period=10**14)
        stats = runtime.run()
        assert not stats.error_detected, stats.errors
        assert stats.stdout == "10\n"

    def test_signal_records_drained_in_order(self):
        """Multiple self-signals interleaved with computation keep the
        record stream consistent."""
        runtime = make_runtime("""
        global hits;
        func on_usr1(sig) { hits = hits + sig; return 0; }
        func main() {
            var i; var burn;
            sigaction(10, 99);
            for (i = 0; i < 6; i = i + 1) {
                kill(getpid(), 10);
                for (burn = 0; burn < 2000; burn = burn + 1) {
                    hits = hits + 0;
                }
            }
            print_int(hits);
        }
        """, period=200_000_000)
        stats = runtime.run()
        assert not stats.error_detected, stats.errors
        assert stats.stdout == "60\n"


class TestInternalFaultSignals:
    def test_deterministic_crash_reproduced_not_flagged(self):
        """A program that segfaults deterministically crashes both main
        and checker at the same point: faithfully reproduced, not a
        divergence."""
        runtime = make_runtime("""
        global progress;
        func main() {
            var i;
            for (i = 0; i < 30000; i = i + 1) { progress = progress + 1; }
            poke64(64, 1);  // unmapped: SIGSEGV
            print_int(progress);
        }
        """, period=250_000_000)
        stats = runtime.run()
        assert stats.exit_code == 128 + abi.SIGSEGV
        assert not stats.error_detected, stats.errors
        assert stats.stdout == ""  # never reached the print

    def test_divide_by_zero_crash_reproduced(self):
        runtime = make_runtime("""
        global zero;
        func main() {
            var i; var x;
            for (i = 0; i < 20000; i = i + 1) { x = x + i; }
            x = x / zero;
            print_int(x);
        }
        """, period=10**14)
        stats = runtime.run()
        assert stats.exit_code == 128 + abi.SIGFPE
        assert not stats.error_detected, stats.errors

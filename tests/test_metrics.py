"""Unit tests for the metric registry, exporters and the RunStats view.

Covers the tentpole's registry semantics (typed metrics, label sets,
kind conflicts), the histogram quantile estimator at bucket boundaries,
exact exporter round-trips, and the two RunStats satellites: ``to_dict``
byte-compatibility with the pre-registry output and the source-scan
guarantee that every counter incremented anywhere in ``src/repro``
appears in the dict dump.
"""

import json
import math
import re
from dataclasses import fields as dataclass_fields
from pathlib import Path

import pytest

from repro.core.stats import STAT_SCHEMA, DetectedError, RunStats
from repro.metrics import (
    Dashboard,
    Histogram,
    MetricKindError,
    MetricRegistry,
    PhaseProfile,
    collapsed_stacks,
    json_snapshot,
    parse_collapsed,
    parse_prometheus_text,
    prometheus_text,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


class TestRegistry:
    def test_counter_increments(self):
        reg = MetricRegistry()
        c = reg.counter("a.b")
        c.inc()
        c.inc(2.5)
        assert reg.value("a.b") == 3.5

    def test_counter_rejects_negative_and_decrease(self):
        reg = MetricRegistry()
        c = reg.counter("a.b")
        c.inc(5)
        with pytest.raises(ValueError):
            c.inc(-1)
        with pytest.raises(ValueError):
            c.set(4)
        c.set(5)  # no-op set is fine
        assert c.value == 5

    def test_gauge_moves_both_ways(self):
        reg = MetricRegistry()
        g = reg.gauge("x")
        g.set(10)
        g.dec(4)
        g.inc(1)
        assert reg.value("x") == 7

    def test_labels_are_distinct_series(self):
        reg = MetricRegistry()
        reg.counter("hits", core="big").inc(3)
        reg.counter("hits", core="little").inc(1)
        # Label order must not matter for identity.
        reg.counter("hits", core="big").inc()
        assert reg.value("hits", core="big") == 4
        assert reg.value("hits", core="little") == 1
        assert reg.value("hits", core="absent") == 0.0

    def test_kind_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("m")
        with pytest.raises(MetricKindError):
            reg.gauge("m")
        with pytest.raises(MetricKindError):
            reg.histogram("m", bounds=(1.0,))

    def test_iteration_sorted(self):
        reg = MetricRegistry()
        reg.counter("b")
        reg.gauge("a")
        reg.counter("c", z="1")
        names = [m.name for m in reg]
        assert names == sorted(names)

    def test_sample_pull_gauges_and_series(self):
        reg = MetricRegistry()
        state = {"v": 1.0}
        g = reg.gauge("pulled")
        g.fn = lambda: state["v"]
        reg.sample(0.5)
        state["v"] = 2.0
        reg.sample(1.0)
        assert g.series == [(0.5, 1.0), (1.0, 2.0)]


class TestHistogramQuantiles:
    def bucketed(self):
        h = Histogram("h", (), bounds=(10.0, 20.0, 30.0))
        for v in (5, 10, 15, 20, 25, 30, 35, 40):
            h.observe(v)
        return h

    def test_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("h", (), bounds=(2.0, 1.0))

    def test_empty_histogram(self):
        h = Histogram("h", (), bounds=(1.0,))
        assert h.quantile(0.5) == 0.0
        assert h.count == 0

    def test_quantile_at_bucket_boundaries(self):
        h = self.bucketed()
        # Buckets (upper bounds): 10 -> 2 obs, 20 -> 2, 30 -> 2, +inf -> 2.
        assert h.quantile(0.25) == 10.0   # exactly the first boundary
        assert h.quantile(0.5) == 20.0
        assert h.quantile(0.75) == 30.0
        assert h.quantile(0.251) == 20.0  # just past a boundary: next bucket

    def test_overflow_quantile_reports_max_observed(self):
        h = self.bucketed()
        assert h.quantile(1.0) == 40.0

    def test_mean_and_count(self):
        h = self.bucketed()
        assert h.count == 8
        assert h.mean == pytest.approx(sum((5, 10, 15, 20, 25, 30, 35, 40))
                                       / 8)


def populated_registry():
    reg = MetricRegistry()
    reg.counter("seg.checked").inc(13)
    reg.counter("work.cycles", core="big").inc(1.5e9 + 0.123)
    reg.gauge("pool.bytes").set(4096.75)
    h = reg.histogram("compare.pages", bounds=(1.0, 8.0, 64.0))
    for v in (0, 3, 9, 100):
        h.observe(v)
    return reg


class TestMergeAndSnapshot:
    """Shard-aggregation semantics: counters sum, gauges last-write-wins
    by virtual time, histograms add bucket-wise — plus the JSON snapshot
    round-trip campaign journals use to ship a shard's registry."""

    def test_counters_sum(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("seg", bench="x").inc(3)
        b.counter("seg", bench="x").inc(4)
        b.counter("other").inc(1)
        a.merge(b)
        assert a.value("seg", bench="x") == 7.0
        assert a.value("other") == 1.0
        assert b.value("seg", bench="x") == 4.0    # other side untouched

    def test_gauges_take_last_write_by_virtual_time(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.gauge("pool").set(10.0)
        a.sample(5.0)
        b.gauge("pool").set(99.0)
        b.sample(2.0)                              # older write
        a.merge(b)
        assert a.value("pool") == 10.0             # newest write wins
        assert a.gauge("pool").series == [(2.0, 99.0), (5.0, 10.0)]
        c = MetricRegistry()
        c.gauge("pool").set(123.0)
        c.sample(9.0)
        a.merge(c)
        assert a.value("pool") == 123.0

    def test_unsampled_gauge_loses_to_sampled_but_still_merges(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.gauge("pool").set(10.0)
        a.sample(1.0)
        b.gauge("pool").set(99.0)                  # never sampled
        a.merge(b)
        assert a.value("pool") == 10.0
        fresh = MetricRegistry()
        fresh.merge(b)                             # both unsampled:
        assert fresh.value("pool") == 99.0         # incoming wins

    def test_histograms_add_bucketwise(self):
        a, b = MetricRegistry(), MetricRegistry()
        for v in (0.5, 3.0):
            a.histogram("lat", bounds=(1.0, 8.0)).observe(v)
        for v in (5.0, 100.0):
            b.histogram("lat", bounds=(1.0, 8.0)).observe(v)
        a.merge(b)
        h = a.histogram("lat", bounds=(1.0, 8.0))
        assert h.count == 4
        assert h.bucket_counts == [1, 2, 1]
        assert h.sum == 108.5
        assert h.max_observed == 100.0

    def test_histogram_bounds_mismatch_raises(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.histogram("lat", bounds=(1.0,)).observe(0.5)
        b.histogram("lat", bounds=(2.0,)).observe(0.5)
        with pytest.raises(MetricKindError):
            a.merge(b)

    def test_kind_conflict_raises_on_merge(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1.0)
        with pytest.raises(MetricKindError):
            a.merge(b)

    def test_snapshot_round_trip_is_exact(self):
        reg = populated_registry()
        reg.sample(3.25)
        doc = json.loads(json.dumps(reg.to_snapshot()))  # via real JSON
        back = MetricRegistry.from_snapshot(doc)
        assert back.value("seg.checked") == 13.0
        assert back.value("work.cycles", core="big") == 1.5e9 + 0.123
        assert back.gauge("pool.bytes").series == [(3.25, 4096.75)]
        assert back.gauge("pool.bytes").last_write == 3.25
        h = back.histogram("compare.pages", bounds=(1.0, 8.0, 64.0))
        assert h.bucket_counts == [1, 1, 1, 1]
        assert h.sum == 112.0
        # Snapshot of the rebuilt registry is identical: a fixed point.
        assert back.to_snapshot() == reg.to_snapshot()

    def test_merge_of_snapshot_equals_merge_of_original(self):
        a1, a2 = MetricRegistry(), MetricRegistry()
        b = populated_registry()
        a1.merge(b)
        a2.merge(MetricRegistry.from_snapshot(b.to_snapshot()))
        assert a1.to_snapshot() == a2.to_snapshot()


class TestExporters:
    def test_prometheus_round_trip_is_exact(self):
        reg = populated_registry()
        parsed = parse_prometheus_text(prometheus_text(reg))
        assert parsed["seg_checked"] == 13.0
        assert parsed['work_cycles{core="big"}'] == 1.5e9 + 0.123  # bit-exact
        assert parsed["pool_bytes"] == 4096.75
        assert parsed['compare_pages_bucket{le="8.0"}'] == 2
        assert parsed['compare_pages_bucket{le="+Inf"}'] == 4
        assert parsed["compare_pages_count"] == 4
        assert parsed["compare_pages_sum"] == 112.0

    def test_collapsed_stacks_round_trip_and_total(self):
        profile = PhaseProfile(
            cycles={"main_exec": 100.25, "replay": 50.5, "runtime": 7.0},
            segment_cycles={0: {"main_exec": 60.25, "replay": 50.5},
                            1: {"main_exec": 40.0}},
            total_cycles=157.75)
        text = collapsed_stacks(profile)
        parsed = parse_collapsed(text)
        assert parse_collapsed(collapsed_stacks(profile)) == parsed
        assert parsed["root;seg0;replay"] == 50.5
        # Every charged cycle appears exactly once: segment lines plus
        # the unsegmented remainder sum to the profile total.
        assert sum(parsed.values()) == pytest.approx(profile.total_cycles,
                                                     abs=0.0)
        assert parsed["root;runtime"] == 7.0  # not charged to any segment

    def test_collapsed_drops_drift_level_remainders(self):
        """Per-segment and global ledgers sum identical charges in
        different orders; a few-ulp phantom remainder (which could go
        negative) must not appear in the export."""
        profile = PhaseProfile(
            cycles={"replay": 100.0},
            segment_cycles={0: {"replay": 100.0 + 1e-11}},
            total_cycles=100.0)
        parsed = parse_collapsed(collapsed_stacks(profile))
        assert list(parsed) == ["root;seg0;replay"]

    def test_json_snapshot_parses(self):
        reg = populated_registry()
        reg.sample(1.0)
        doc = json.loads(json_snapshot(reg, profile=PhaseProfile(
            cycles={"main_exec": 1.0}, total_cycles=1.0)))
        assert doc["counters"]["seg.checked"] == 13.0
        assert doc["phase_profile"]["total_cycles"] == 1.0

    def test_dashboard_emits_header_once(self):
        import io
        out = io.StringIO()
        dash = Dashboard(stream=out)
        reg = MetricRegistry()
        reg.gauge("parallaft.live_checkers").set(2)
        dash.update(0.5, reg)
        dash.update(1.0, reg)
        lines = out.getvalue().splitlines()
        assert dash.lines_written == 2
        assert len(lines) == 4  # header + rule + two samples
        assert "checkers" in lines[0]


def distinctive_stats():
    stats = RunStats()
    for i, f in enumerate(dataclass_fields(RunStats)):
        if f.name == "oom_killed":
            setattr(stats, f.name, True)
        elif f.name in ("errors", "pss_samples", "pacer_freq_history",
                        "stdout", "stderr", "exit_code"):
            continue
        else:
            setattr(stats, f.name, i + 1)
    stats.errors.append(DetectedError("state_mismatch", 7))
    stats.exit_code = 0
    return stats


class TestRunStatsView:
    def test_to_dict_matches_pre_registry_output(self):
        """Byte-for-byte compatibility: keys, order and values must equal
        the hand-maintained dict the pre-schema ``to_dict`` returned."""
        stats = distinctive_stats()
        expected = {
            "timing.all_wall_time": stats.all_wall_time,
            "timing.main_wall_time": stats.main_wall_time,
            "timing.main_user_time": stats.main_user_time,
            "timing.main_sys_time": stats.main_sys_time,
            "timing.checker_user_time": stats.checker_user_time,
            "timing.checker_sys_time": stats.checker_sys_time,
            "counter.checkpoint_count": stats.checkpoint_count,
            "fixed_interval_slicer.nr_slices": stats.nr_slices,
            "counter.syscalls_recorded": stats.syscalls_recorded,
            "counter.syscalls_replayed": stats.syscalls_replayed,
            "counter.signals_recorded": stats.signals_recorded,
            "counter.nondet_recorded": stats.nondet_recorded,
            "counter.bytes_recorded": stats.bytes_recorded,
            "counter.segments_checked": stats.segments_checked,
            "counter.checker_retries": stats.checker_retries,
            "counter.checker_migrations": stats.checker_migrations,
            "counter.checkers_finished_on_big":
                stats.checkers_finished_on_big,
            "counter.mmap_splits": stats.mmap_splits,
            "counter.recovery.rollbacks": stats.recovery_rollbacks,
            "counter.recovery.retries": stats.recovery_retries,
            "counter.recovery.wasted_cycles": stats.recovery_wasted_cycles,
            "counter.tmr.votes": stats.tmr_votes,
            "counter.tmr.outvoted": stats.tmr_outvoted,
            "counter.tmr.forward_recoveries": stats.tmr_forward_recoveries,
            "counter.meek.early_checks": stats.meek_early_checks,
            "counter.meek.early_detections": stats.meek_early_detections,
            "counter.integrity.checks": stats.integrity_checks,
            "counter.integrity.failures": stats.integrity_failures,
            "counter.pressure.stalls": stats.pressure_stalls,
            "counter.pressure.sheds": stats.pressure_sheds,
            "counter.pressure.evictions": stats.pressure_evictions,
            "counter.pressure.adaptations": stats.pressure_adaptations,
            "counter.pressure.checker_ooms": stats.checker_ooms,
            "counter.oom_kills": stats.oom_kills,
            "oom_killed": stats.oom_killed,
            "memory.peak_resident_bytes": stats.peak_resident_bytes,
            "work.checker_cycles_big": stats.checker_cycles_big,
            "work.checker_cycles_little": stats.checker_cycles_little,
            "work.big_core_work_fraction": stats.big_core_work_fraction,
            "hwmon.total_energy": stats.energy_joules,
            "errors": ["state_mismatch@7"],
            "exit_code": 0,
        }
        got = stats.to_dict()
        assert got == expected
        assert list(got) == list(expected)  # insertion order too

    def test_every_incremented_counter_is_exported(self):
        """Satellite: scan ``src/repro`` for ``stats.<field> +=`` /
        ``stats.<field> =`` writes; every written RunStats field must
        have a ``to_dict`` key (the pre-schema failure mode was adding a
        counter and forgetting the dict entry)."""
        field_names = {f.name for f in dataclass_fields(RunStats)}
        collections = {"pss_samples", "pacer_freq_history", "errors"}
        writes = set()
        pattern = re.compile(r"\bstats\.(\w+)\s*(?:\+=|-=|=(?!=))")
        for path in SRC_ROOT.rglob("*.py"):
            for name in pattern.findall(path.read_text()):
                if name in field_names and name not in collections:
                    writes.add(name)
        assert writes, "source scan found no stats writes — regex broken?"
        exported = set(stats_attr_to_key())
        missing = writes - exported - {"exit_code", "stdout", "stderr"}
        assert not missing, (
            f"RunStats fields written in src/repro but absent from "
            f"to_dict: {sorted(missing)}")

    def test_registry_mirror_tracks_assignments(self):
        reg = MetricRegistry()
        stats = RunStats()
        stats.segments_checked = 3
        stats.bind_registry(reg)
        assert reg.value("counter.segments_checked") == 3.0
        stats.segments_checked = 5
        stats.oom_killed = True
        assert reg.value("counter.segments_checked") == 5.0
        assert reg.value("oom_killed") == 1.0
        # Binding never changes the dict dump.
        assert stats.to_dict()["counter.segments_checked"] == 5

    def test_schema_covers_every_to_dict_scalar(self):
        stats = RunStats()
        keys = set(stats.to_dict())
        assert {f.key for f in STAT_SCHEMA} == keys - {"errors", "exit_code"}


def stats_attr_to_key():
    return {f.attr: f.key for f in STAT_SCHEMA}

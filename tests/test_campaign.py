"""Campaign engine unit tests: seeds, journals, supervision, merge.

The crash/resume integration tests (SIGKILLed workers and supervisors,
byte-identical resumed reports) live in ``test_campaign_resume.py``;
this file covers the engine's pieces in isolation: the splittable seed
scheme, the checksummed JSONL journal (torn tails vs corruption), the
serial/fleet determinism contract, retry/backoff/quarantine policy and
the ``render_fleet`` / empty-``render_injection`` report paths.
"""

import json
import os
import signal

import pytest

from repro.campaign import (
    DISP_COMPLETED,
    DISP_FAILED,
    DISP_QUARANTINED,
    CampaignEngine,
    named_seed,
    split_seed,
    task_rng,
)
from repro.common.errors import CampaignError, JournalIntegrityError
from repro.core.journal import JournalWriter, journal_checksum, read_journal


def echo_task(task):
    return {"index": task.index, "shard": task.shard,
            "seed": task.seed % 997}


def payloads(n):
    return [{"n": i} for i in range(n)]


class TestSplittableSeeds:
    def test_deterministic(self):
        assert split_seed(1, 2, 3) == split_seed(1, 2, 3)
        assert named_seed(1, "mcf") == named_seed(1, "mcf")

    def test_coordinates_are_independent(self):
        """Nearby (shard, index) pairs must not collide — the classic
        failure of naive ``seed + shard * K + index`` schemes."""
        seen = {split_seed(42, shard, index)
                for shard in range(16) for index in range(64)}
        assert len(seen) == 16 * 64

    def test_campaign_seed_changes_everything(self):
        assert split_seed(1, 0, 0) != split_seed(2, 0, 0)
        assert named_seed(1, "mcf") != named_seed(2, "mcf")

    def test_named_seed_is_order_free(self):
        """A workload's seed depends on its name only, so reordering the
        benchmark list cannot change any workload's draws."""
        assert named_seed(7, "mcf") != named_seed(7, "bzip2")
        # ... and is insensitive to what else is in the campaign: the
        # function takes no positional context at all.

    def test_task_rng_streams_are_reproducible(self):
        a = task_rng(split_seed(5, 1, 2))
        b = task_rng(split_seed(5, 1, 2))
        assert [a.randrange(1000) for _ in range(8)] == \
            [b.randrange(1000) for _ in range(8)]


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with JournalWriter(path) as writer:
            for i in range(5):
                assert writer.append({"v": i}) == i
        assert read_journal(path) == [{"v": i} for i in range(5)]

    def test_torn_final_line_tolerated(self, tmp_path):
        """A writer SIGKILLed mid-line leaves a torn tail: the records
        before it must survive."""
        path = str(tmp_path / "j.jsonl")
        with JournalWriter(path) as writer:
            writer.append({"v": 0})
            writer.append({"v": 1})
        with open(path, "a") as f:
            f.write('{"b": {"v": 2}, "q": 2, "x"')    # no newline, torn
        assert read_journal(path) == [{"v": 0}, {"v": 1}]

    def test_mid_file_garbage_is_integrity_error(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with JournalWriter(path) as writer:
            writer.append({"v": 0})
            writer.append({"v": 1})
        lines = open(path).read().splitlines(True)
        lines[0] = "not json at all\n"
        open(path, "w").writelines(lines)
        with pytest.raises(JournalIntegrityError) as exc:
            read_journal(path)
        assert exc.value.kind == "journal_integrity"
        assert exc.value.position == 0

    def test_checksum_mismatch_is_integrity_error(self, tmp_path):
        """A bit flipped in a stored record — valid JSON, wrong XXH3 —
        is corruption even on the final line, never 'torn tail'."""
        path = str(tmp_path / "j.jsonl")
        with JournalWriter(path) as writer:
            writer.append({"v": 0})
            writer.append({"v": 1})
        lines = open(path).read().splitlines(True)
        record = json.loads(lines[-1])
        record["b"]["v"] = 999                        # storage rot
        lines[-1] = json.dumps(record) + "\n"
        open(path, "w").writelines(lines)
        with pytest.raises(JournalIntegrityError) as exc:
            read_journal(path)
        assert exc.value.position == 1

    def test_sequence_splice_is_integrity_error(self, tmp_path):
        """A record carried over from another position re-checksums fine
        but its seq betrays the splice."""
        path = str(tmp_path / "j.jsonl")
        with JournalWriter(path) as writer:
            writer.append({"v": 0})
            writer.append({"v": 1})
            writer.append({"v": 2})
        lines = open(path).read().splitlines(True)
        lines[1] = lines[2]                           # duplicate seq 2 at 1
        open(path, "w").writelines(lines[:3])
        with pytest.raises(JournalIntegrityError):
            read_journal(path)

    def test_checksum_covers_sequence(self):
        assert journal_checksum(0, {"v": 1}) != journal_checksum(1, {"v": 1})

    def test_flush_cadence_validation(self, tmp_path):
        with pytest.raises(ValueError):
            JournalWriter(str(tmp_path / "j"), flush_every_n=0)
        with pytest.raises(ValueError):
            JournalWriter(str(tmp_path / "j"), fsync_every_n=0)


class TestEngineSerial:
    def test_plan_is_round_robin_with_split_seeds(self):
        engine = CampaignEngine(echo_task, payloads(7), campaign_seed=9,
                                shards=3)
        for g, task in enumerate(engine.tasks):
            assert task.shard == g % 3
            assert task.seed == split_seed(9, task.shard, task.index)
        assert [t.task_id for t in engine.tasks][:4] == \
            ["s0.t0", "s1.t0", "s2.t0", "s0.t1"]

    def test_explicit_seeds_override(self):
        engine = CampaignEngine(echo_task, payloads(3), seeds=[7, 8, 9])
        assert [t.seed for t in engine.tasks] == [7, 8, 9]
        with pytest.raises(CampaignError):
            CampaignEngine(echo_task, payloads(3), seeds=[1])

    def test_invalid_spec_raises(self):
        with pytest.raises(CampaignError):
            CampaignEngine(echo_task, payloads(1), shards=0)
        with pytest.raises(CampaignError):
            CampaignEngine(echo_task, payloads(1), max_task_attempts=0)

    def test_serial_completes_in_plan_order(self):
        result = CampaignEngine(echo_task, payloads(10), campaign_seed=1,
                                shards=4).run()
        assert [r.disposition for r in result.records] == \
            [DISP_COMPLETED] * 10
        assert [(r.shard, r.index) for r in result.records] == \
            sorted((r.shard, r.index) for r in result.records)
        assert result.registry.value("campaign.completed") == 10

    def test_serial_retries_then_fails_typed(self):
        calls = {"n": 0}

        def flaky(task):
            calls["n"] += 1
            raise RuntimeError("always")

        result = CampaignEngine(flaky, payloads(1), max_task_attempts=3).run()
        assert calls["n"] == 3
        record = result.records[0]
        assert record.disposition == DISP_FAILED
        assert record.attempts == 3
        assert "always" in record.detail
        assert result.registry.value("campaign.retries") == 2
        assert result.registry.value("campaign.failed") == 1


class TestEngineFleet:
    def test_fleet_matches_serial_byte_for_byte(self):
        def runs(workers):
            result = CampaignEngine(echo_task, payloads(12),
                                    campaign_seed=3, shards=4,
                                    workers=workers).run()
            return [(r.task_id, r.disposition, r.result)
                    for r in result.records]
        assert runs(0) == runs(3)

    def test_poison_task_is_quarantined(self):
        def poison(task):
            if task.payload.get("kill"):
                os.kill(os.getpid(), signal.SIGKILL)
            return {"ok": task.index}

        plan = payloads(5) + [{"kill": True}]
        result = CampaignEngine(poison, plan, campaign_seed=2, shards=2,
                                workers=2, max_task_attempts=2,
                                backoff_base=0.01, backoff_cap=0.05).run()
        quarantined = result.quarantined
        assert len(quarantined) == 1
        assert quarantined[0].attempts == 2
        assert len(result.completed()) == 5
        registry = result.registry
        assert registry.value("campaign.quarantined") == 1
        assert registry.value("campaign.worker_crashes") >= 2
        assert registry.value("campaign.backoff_seconds") > 0

    def test_in_task_exception_retried_across_respawn(self, tmp_path):
        marker = tmp_path / "attempts"

        def flaky(task):
            if task.payload.get("flaky"):
                n = int(marker.read_text()) if marker.exists() else 0
                marker.write_text(str(n + 1))
                if n == 0:
                    raise RuntimeError("transient")
            return {"ok": task.index}

        result = CampaignEngine(flaky, payloads(3) + [{"flaky": True}],
                                shards=2, workers=2, max_task_attempts=3,
                                backoff_base=0.01, backoff_cap=0.05).run()
        assert len(result.completed()) == 4
        assert result.registry.value("campaign.retries") == 1


class TestEngineJournal:
    def test_journal_resume_skips_completed(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        baseline = CampaignEngine(echo_task, payloads(9), campaign_seed=4,
                                  shards=3, journal_path=journal).run()
        # Keep the header + 4 task records: a half-finished campaign.
        lines = open(journal).read().splitlines(True)
        open(journal, "w").writelines(lines[:5])
        resumed = CampaignEngine(echo_task, payloads(9), campaign_seed=4,
                                 shards=3, journal_path=journal,
                                 resume=True).run()
        assert resumed.resumed_tasks == 4
        assert resumed.registry.value("campaign.resumed") == 4
        assert [(r.task_id, r.result) for r in resumed.records] == \
            [(r.task_id, r.result) for r in baseline.records]
        # The journal is whole again and replays to the same records.
        final = read_journal(journal)
        assert len(final) == 1 + 9

    def test_resume_tolerates_torn_tail(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        CampaignEngine(echo_task, payloads(6), campaign_seed=4,
                       shards=2, journal_path=journal).run()
        lines = open(journal).read().splitlines(True)
        open(journal, "w").writelines(lines[:4])
        with open(journal, "a") as f:
            f.write('{"b": {"ty')               # crashed-writer residue
        resumed = CampaignEngine(echo_task, payloads(6), campaign_seed=4,
                                 shards=2, journal_path=journal,
                                 resume=True).run()
        assert resumed.resumed_tasks == 3
        # The torn bytes were truncated before appending.
        read_journal(journal)

    def test_resume_refuses_shard_mismatch(self, tmp_path):
        """Shard count is campaign identity: task seeds depend on it, so
        resuming under a different sharding would merge records from two
        different campaigns."""
        journal = str(tmp_path / "j.jsonl")
        CampaignEngine(echo_task, payloads(6), campaign_seed=4,
                       shards=2, journal_path=journal).run()
        with pytest.raises(CampaignError):
            CampaignEngine(echo_task, payloads(6), campaign_seed=4,
                           shards=3, journal_path=journal,
                           resume=True).run()

    def test_resume_refuses_corrupt_record(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        CampaignEngine(echo_task, payloads(4), campaign_seed=4,
                       journal_path=journal).run()
        lines = open(journal).read().splitlines(True)
        record = json.loads(lines[2])
        record["b"]["result"]["seed"] = -1      # rot a journaled result
        lines[2] = json.dumps(record) + "\n"
        open(journal, "w").writelines(lines)
        with pytest.raises(JournalIntegrityError):
            CampaignEngine(echo_task, payloads(4), campaign_seed=4,
                           journal_path=journal, resume=True).run()


class TestFleetReport:
    def test_render_fleet_shapes(self):
        from repro.harness.report import render_fleet
        result = CampaignEngine(echo_task, payloads(8), campaign_seed=1,
                                shards=2).run()
        text = render_fleet(result)
        lines = text.splitlines()
        assert lines[0].split()[:3] == ["shard", "tasks", "done"]
        assert any(line.startswith("all") for line in lines)
        assert "counters:" in text
        assert "8 records" in text

    def test_render_injection_empty_campaign_renders_na(self):
        """Regression: a campaign where every injection missed (total ==
        0) must render placeholder cells, not a fake 0.0% distribution."""
        from repro.faults import CampaignResult
        from repro.harness.report import NA, render_injection
        text = render_injection(
            {"empty": CampaignResult(benchmark="empty", missed=4)})
        row = [line for line in text.splitlines()
               if line.startswith("empty")][0]
        assert NA in row
        assert "0.0%" not in row
        assert row.rstrip().endswith("4")       # the missed column
        assert "overall" not in text            # nothing to aggregate


class TestModeMatrix:
    """Detection modes routed through the sharded campaign engine.

    RAFT (and every other registered mode) must compose with sharding:
    the mode only decides per-run detection policy, the engine only
    decides scheduling, and the matrix of (mode x shards) must produce
    identical per-task results however the plan is sharded.
    """

    WORKLOAD = """
    global data[256];
    func main() {
        var i; var round;
        for (round = 0; round < 6; round = round + 1) {
            for (i = 0; i < 256; i = i + 1) {
                data[i] = data[i] * 3 + round + i;
            }
            print_int(data[round] % 1000003);
        }
    }
    """

    @staticmethod
    def _run_mode_task(task):
        from repro.core import Parallaft
        from repro.minic import compile_source
        from repro.modes import get_mode
        from repro.sim import apple_m2

        mode = get_mode(task.payload["mode"])
        config = mode.make_config()
        if mode.slices:
            config.slicing_period = 30_000_000
        runtime = Parallaft(compile_source(TestModeMatrix.WORKLOAD),
                            config=config, platform=apple_m2(),
                            seed=task.seed % (1 << 31))
        stats = runtime.run()
        return {
            "mode": task.payload["mode"],
            "seed": task.seed,
            "exit_code": stats.exit_code,
            "stdout": stats.stdout,
            "error": stats.error_detected,
            "segments_checked": stats.segments_checked,
            "votes": stats.tmr_votes,
        }

    def _matrix(self, shards, workers=0):
        from repro.modes import registered_modes
        modes = registered_modes()
        payloads = [{"mode": m} for m in modes for _ in range(2)]
        seeds = list(range(11, 11 + len(payloads)))
        result = CampaignEngine(self._run_mode_task, payloads,
                                seeds=seeds, shards=shards,
                                workers=workers).run()
        return {(r.result["mode"], r.result["seed"]): r.result
                for r in result.records}

    def test_raft_by_shards_matrix_is_shard_invariant(self):
        """The same (mode, seed) cell must be byte-identical whether the
        engine runs one shard or three."""
        one = self._matrix(shards=1)
        three = self._matrix(shards=3)
        assert one == three
        raft_cells = [v for (m, _), v in one.items() if m == "raft"]
        assert len(raft_cells) == 2
        for cell in raft_cells:
            assert cell["exit_code"] == 0 and not cell["error"]
            # RAFT records exactly one segment; no slicing happened.
            assert cell["segments_checked"] == 1
            assert cell["votes"] == 0

    def test_every_mode_clean_through_engine(self):
        cells = self._matrix(shards=2)
        assert {m for m, _ in cells} == {"parallaft", "raft", "tmr"}
        stdouts = {v["stdout"] for v in cells.values()}
        assert len(stdouts) == 1        # same program, same output
        for (mode, _), cell in cells.items():
            assert cell["exit_code"] == 0 and not cell["error"]
            if mode == "tmr":
                assert cell["votes"] == cell["segments_checked"] > 0

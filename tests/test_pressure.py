"""Finite-RAM kernel and memory-pressure degradation tests.

Three layers, mirroring the subsystem:

* :class:`FramePool` unit tests — exact COW-aware accounting, budget
  enforcement, the reclaim hook, and the ``decref`` regression (negative
  refcounts must raise; bytes must be reclaimed at refcount zero).
* A hypothesis property over random allocate/clone/incref/decref churn:
  ``resident_bytes`` always equals live frames × page size, the peak is a
  true high-water mark, and no refcount ever goes negative.
* End-to-end runs: an unprotected overrunner is OOM-killed (a distinct
  exit class, exit 137, preceded in the trace by ``pressure_exhausted``);
  a protected run under a finite budget degrades through the ladder yet
  commits byte-identical output; rollback onto an evicted checkpoint is
  refused with the typed ``checkpoint_evicted`` error; and the offline
  invariant checker enforces ladder order, OOM provenance and the
  evicted-rollback ban on hand-built traces.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import abi
from repro.common.errors import FramePoolExhausted
from repro.core import Parallaft, ParallaftConfig
from repro.faults import Outcome, classify_run
from repro.mem.frames import FramePool, budget_from_env
from repro.minic import compile_source
from repro.sim import apple_m2
from repro.trace import InvariantChecker, TraceBuffer, check_runtime
from repro.trace import events as tev
from repro.trace.events import TraceEvent

from .helpers import make_machine

PAGE = 16384


# ---------------------------------------------------------------------------
# FramePool units
# ---------------------------------------------------------------------------


class TestFramePool:
    def test_budget_enforced(self):
        pool = FramePool(PAGE, budget_bytes=2 * PAGE)
        pool.allocate()
        pool.allocate()
        with pytest.raises(FramePoolExhausted):
            pool.allocate()
        assert pool.resident_bytes == 2 * PAGE

    def test_clone_counts_against_budget(self):
        pool = FramePool(PAGE, budget_bytes=2 * PAGE)
        frame = pool.allocate(b"x" * 8)
        pool.incref(frame)            # COW share: no new residency
        assert pool.resident_bytes == PAGE
        copy = pool.clone(frame)      # COW break: a second resident frame
        assert pool.resident_bytes == 2 * PAGE
        assert copy.data == frame.data
        with pytest.raises(FramePoolExhausted):
            pool.clone(frame)

    def test_decref_reclaims_bytes(self):
        """Regression: freeing at refcount zero must return the bytes to
        the budget, or a long run leaks its budget away."""
        pool = FramePool(PAGE, budget_bytes=PAGE)
        frame = pool.allocate()
        with pytest.raises(FramePoolExhausted):
            pool.allocate()
        pool.decref(frame)
        assert pool.resident_bytes == 0
        pool.allocate()               # fits again
        assert pool.frames_freed == 1

    def test_decref_dead_frame_raises(self):
        """Regression: a double-free must fail loudly, not drive the
        refcount negative and corrupt the residency accounting."""
        pool = FramePool(PAGE)
        frame = pool.allocate()
        pool.decref(frame)
        with pytest.raises(ValueError):
            pool.decref(frame)
        assert pool.resident_bytes == 0

    def test_reclaim_hook_makes_room(self):
        pool = FramePool(PAGE, budget_bytes=2 * PAGE)
        victims = [pool.allocate(), pool.allocate()]
        calls = []

        def reclaim(needed):
            calls.append(needed)
            pool.decref(victims.pop())

        pool.reclaim_hook = reclaim
        pool.allocate()               # succeeds via the hook
        assert calls == [PAGE]
        assert pool.resident_bytes == 2 * PAGE

    def test_reclaim_hook_insufficient_still_raises(self):
        pool = FramePool(PAGE, budget_bytes=PAGE)
        pool.allocate()
        pool.reclaim_hook = lambda needed: None
        with pytest.raises(FramePoolExhausted):
            pool.allocate()

    def test_peak_is_high_water(self):
        pool = FramePool(PAGE)
        frames = [pool.allocate() for _ in range(3)]
        for frame in frames:
            pool.decref(frame)
        assert pool.resident_bytes == 0
        assert pool.peak_resident_bytes == 3 * PAGE

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            FramePool(PAGE, budget_bytes=0)
        pool = FramePool(PAGE)
        with pytest.raises(ValueError):
            pool.set_budget(-1)
        pool.set_budget(PAGE)
        assert pool.budget_bytes == PAGE
        pool.set_budget(None)
        assert pool.budget_bytes is None

    def test_budget_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEM_BUDGET", raising=False)
        assert budget_from_env() is None
        monkeypatch.setenv("REPRO_MEM_BUDGET", "1048576")
        assert budget_from_env() == 1048576


# ---------------------------------------------------------------------------
# Property: COW churn never breaks the accounting
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("acid"), st.integers(0, 31)),
                max_size=80))
def test_property_cow_churn(ops):
    """Random allocate/clone/incref/decref interleavings: residency is
    exactly live-frames × page-size at every step, the peak only grows,
    and refcounts stay positive."""
    pool = FramePool(PAGE)
    live = []                         # frames with at least one reference
    refs = {}                         # frame_id -> model refcount
    for op, pick in ops:
        if op == "a":
            frame = pool.allocate()
            live.append(frame)
            refs[frame.frame_id] = 1
        elif live:
            frame = live[pick % len(live)]
            if op == "c":
                copy = pool.clone(frame)
                live.append(copy)
                refs[copy.frame_id] = 1
            elif op == "i":
                pool.incref(frame)
                refs[frame.frame_id] += 1
            else:
                pool.decref(frame)
                refs[frame.frame_id] -= 1
                if refs[frame.frame_id] == 0:
                    del refs[frame.frame_id]
                    live.remove(frame)
        assert pool.resident_bytes == len(pool) * PAGE
        assert pool.resident_bytes == len(refs) * PAGE
        assert pool.peak_resident_bytes >= pool.resident_bytes
        assert all(f.refcount == n for f, n in
                   ((pool.live_frame(i), n) for i, n in refs.items()))


# ---------------------------------------------------------------------------
# End-to-end: unprotected overrunner is OOM-killed
# ---------------------------------------------------------------------------

HOG = """
func main() {
    var p; var i; var j;
    for (i = 0; i < 64; i = i + 1) {
        p = sbrk(16384);
        for (j = 0; j < 16384; j = j + 8) { poke64(p + j, i + j); }
    }
    print_int(1);
}
"""


def test_unprotected_oom_kill():
    kernel, executor = make_machine(seed=3)
    kernel.pool.set_budget(20 * PAGE)
    kernel.trace = TraceBuffer()
    proc = kernel.spawn(compile_source(HOG))
    executor.schedule_default(proc)
    executor.run()
    assert proc.oom_killed
    assert proc.exit_code == 128 + abi.SIGKILL
    assert kernel.stats["oom_kills"] == 1
    kinds = [e.kind for e in kernel.trace]
    assert tev.OOM in kinds
    # provenance: the exhaustion record precedes the kill
    assert kinds.index(tev.PRESSURE_EXHAUSTED) < kinds.index(tev.OOM)
    InvariantChecker().assert_ok(kernel.trace)


def test_unprotected_within_budget_untouched():
    kernel, executor = make_machine(seed=3)
    kernel.pool.set_budget(200 * PAGE)
    proc = kernel.spawn(compile_source(HOG))
    executor.schedule_default(proc)
    executor.run()
    assert proc.exit_code == 0
    assert not proc.oom_killed
    assert kernel.console.text() == "1\n"


# ---------------------------------------------------------------------------
# End-to-end: protected runs under pressure
# ---------------------------------------------------------------------------

WORKLOAD = """
global data[2048];
func main() {
    var i; var round;
    srand64(7);
    for (round = 0; round < 24; round = round + 1) {
        for (i = 0; i < 2048; i = i + 1) {
            data[i] = data[i] * 5 + round + i;
        }
        print_int(data[round] % 1000003);
    }
}
"""


def run_workload(budget=None, **overrides):
    config = ParallaftConfig(mem_budget_bytes=budget)
    config.slicing_period = 150_000_000
    for key, value in overrides.items():
        setattr(config, key, value)
    runtime = Parallaft(compile_source(WORKLOAD), config=config,
                        platform=apple_m2())
    return runtime, runtime.run()


def test_pressure_stall_preserves_output():
    _, reference = run_workload(budget=None)
    assert reference.exit_code == 0 and not reference.error_detected
    runtime, stats = run_workload(
        budget=int(reference.peak_resident_bytes * 0.7))
    assert stats.exit_code == 0
    assert not stats.error_detected
    assert not stats.oom_killed
    assert stats.stdout == reference.stdout
    assert stats.pressure_stalls > 0
    assert stats.peak_resident_bytes <= reference.peak_resident_bytes * 0.7
    assert check_runtime(runtime) == []
    exported = stats.to_dict()
    assert exported["counter.pressure.stalls"] == stats.pressure_stalls
    assert (exported["memory.peak_resident_bytes"]
            == stats.peak_resident_bytes)


def test_protected_oom_is_distinct_exit_class():
    runtime, stats = run_workload(budget=8 * PAGE)
    assert stats.oom_killed
    assert stats.errors == []
    assert stats.exit_code == 128 + abi.SIGKILL
    assert classify_run(stats, reference_stdout="") is Outcome.OOM
    assert not Outcome.OOM.is_detected
    kinds = [e.kind for e in runtime.trace]
    assert kinds.index(tev.PRESSURE_EXHAUSTED) < kinds.index(tev.OOM)
    assert check_runtime(runtime) == []


def test_rollback_to_evicted_checkpoint_refused():
    """A main-implicating check failure whose segment lost its recovery
    checkpoint to stage-3 eviction must fail stop with the typed
    ``checkpoint_evicted`` error — never roll back onto freed state."""
    config = ParallaftConfig(mem_budget_bytes=None)
    config.slicing_period = 150_000_000
    config.enable_recovery = True
    runtime = Parallaft(compile_source(WORKLOAD), config=config,
                        platform=apple_m2())
    corrupted = [False]

    def corrupt(proc, role):
        if role == "checker" and not corrupted[0] and proc.user_time > 0.001:
            proc.cpu.regs.flip_bit("gpr", 9, 21)
            corrupted[0] = True

    def evict(segment):
        # Simulate the stage-3 eviction having hit this segment before
        # the comparison runs (eviction reaps the checkpoint and nulls
        # the reference; only the flag remains).
        if corrupted[0] and segment.recovery_checkpoint is not None:
            runtime.kernel.reap(segment.recovery_checkpoint)
            segment.recovery_checkpoint = None
            segment.checkpoint_evicted = True

    runtime.quantum_hooks.append(corrupt)
    runtime.compare_hooks.append(evict)
    stats = runtime.run()
    assert stats.error_detected
    assert any(e.kind == "checkpoint_evicted" for e in stats.errors)
    assert stats.recovery_rollbacks == 0
    assert not any(e.kind == tev.ROLLBACK for e in runtime.trace)
    assert classify_run(stats, reference_stdout="") is Outcome.DETECTED


# ---------------------------------------------------------------------------
# Invariant checker units (hand-built traces)
# ---------------------------------------------------------------------------


def _ev(kind, **kw):
    segment = kw.pop("segment", None)
    pid = kw.pop("pid", None)
    return TraceEvent(ts=0.0, kind=kind, pid=pid, segment=segment,
                      payload=kw)


class TestPressureInvariants:
    def test_ladder_order_violation(self):
        violations = InvariantChecker().check(
            [_ev(tev.EVICT, segment=2, stage=3)])
        assert [v.invariant for v in violations] == ["pressure_ladder"]

    def test_ladder_in_order_ok(self):
        trace = [
            _ev(tev.PRESSURE_STALL, pid=1, stage=1),
            _ev(tev.PRESSURE_SHED, pid=2, segment=1, stage=2),
            _ev(tev.EVICT, segment=0, stage=3),
            _ev(tev.PRESSURE_ADAPT, stage=4),
        ]
        assert InvariantChecker().check(trace) == []

    def test_dry_rung_marker_satisfies_order(self):
        """A dry rung emits its stage event with ``skipped=True``; the
        ladder invariant accepts it as the stage having been reached."""
        trace = [
            _ev(tev.PRESSURE_STALL, pid=1, stage=1),
            _ev(tev.PRESSURE_SHED, stage=2, skipped=True),
            _ev(tev.EVICT, segment=0, stage=3),
        ]
        assert InvariantChecker().check(trace) == []

    def test_oom_provenance(self):
        bad = [_ev(tev.OOM, pid=7)]
        violations = InvariantChecker().check(bad)
        assert [v.invariant for v in violations] == ["oom_provenance"]
        good = [_ev(tev.PRESSURE_EXHAUSTED, pid=7, stage=3),
                _ev(tev.OOM, pid=7)]
        assert InvariantChecker().check(good) == []

    def test_evicted_rollback_refusal(self):
        bad = [
            _ev(tev.PRESSURE_STALL, pid=1, stage=1),
            _ev(tev.PRESSURE_SHED, stage=2, skipped=True),
            _ev(tev.EVICT, segment=5, stage=3),
            _ev(tev.ROLLBACK, segment=5),
        ]
        violations = InvariantChecker().check(bad)
        assert any(v.invariant == "evicted_rollback" for v in violations)
        ok = [
            _ev(tev.PRESSURE_STALL, pid=1, stage=1),
            _ev(tev.PRESSURE_SHED, stage=2, skipped=True),
            _ev(tev.EVICT, segment=5, stage=3),
            _ev(tev.ROLLBACK, segment=6),
        ]
        assert not any(v.invariant == "evicted_rollback"
                       for v in InvariantChecker().check(ok))

"""Tests for the checker scheduler and DVFS pacer (paper §4.5)."""

import pytest

from repro.core import Parallaft, ParallaftConfig
from repro.minic import compile_source
from repro.sim import apple_m2
from repro.workloads import synthetic_source


def run_workload(mem_ops=4, footprint=262144, iters=8000, period=200_000_000,
                 migration=True, pacer=True, checker_cluster="little"):
    source = synthetic_source(total_iters=iters, footprint_bytes=footprint,
                              mem_ops_per_iter=mem_ops)
    config = ParallaftConfig()
    config.slicing_period = period
    config.enable_migration = migration
    config.enable_dvfs_pacer = pacer
    config.checker_cluster = checker_cluster
    runtime = Parallaft(compile_source(source), config=config,
                        platform=apple_m2())
    stats = runtime.run()
    assert not stats.error_detected, stats.errors
    return runtime, stats


import functools


@functools.lru_cache(maxsize=None)
def heavy_run(migration=True):
    return run_workload(mem_ops=5, footprint=393216, migration=migration)


class TestMigration:
    def test_slow_checkers_migrate_to_big(self):
        """A memory-heavy workload whose checkers exceed the little
        cluster's capacity forces oldest-checker migration (figure 4)."""
        _, stats = heavy_run()
        assert stats.checker_migrations > 0
        assert stats.checker_cycles_big > 0

    def test_fast_checkers_stay_on_little(self):
        _, stats = run_workload(mem_ops=1, footprint=16384, iters=15000)
        assert stats.checker_cycles_little > 0
        assert stats.big_core_work_fraction < 0.25

    def test_migration_disabled_keeps_checkers_on_little(self):
        _, stats = heavy_run(migration=False)
        assert stats.checker_migrations == 0
        # All checker work on little cores (except none).
        assert stats.checker_cycles_big == 0

    def test_migration_bounds_last_checker_lag(self):
        _, with_mig = heavy_run()
        _, without = heavy_run(migration=False)
        lag_with = with_mig.all_wall_time - with_mig.main_wall_time
        lag_without = without.all_wall_time - without.main_wall_time
        assert lag_with <= lag_without + 1e-9

    def test_big_cluster_checkers_for_raft_mode(self):
        _, stats = run_workload(checker_cluster="big", migration=False,
                                pacer=False)
        assert stats.checker_cycles_big > 0
        assert stats.checker_cycles_little == 0


class TestPacer:
    def test_pacer_lowers_little_frequency_for_light_checkers(self):
        runtime, stats = run_workload(mem_ops=1, footprint=16384,
                                      iters=10000)
        assert stats.pacer_freq_history, "pacer never updated"
        platform_max = apple_m2().little_freq_max_hz
        assert min(stats.pacer_freq_history) < 0.9 * platform_max

    def test_pacer_saves_energy_on_light_checkers(self):
        _, paced = run_workload(mem_ops=1, footprint=16384, iters=10000)
        _, unpaced = run_workload(mem_ops=1, footprint=16384, iters=10000,
                                  pacer=False)
        assert paced.energy_joules < unpaced.energy_joules

    def test_pacer_disabled_runs_at_max(self):
        _, stats = run_workload(pacer=False)
        assert stats.pacer_freq_history == []

    def test_frequency_restored_at_main_exit(self):
        """After the main exits, stragglers run flat-out (§4.5)."""
        runtime, _ = run_workload(mem_ops=3, footprint=262144)
        for core in runtime.executor.little_cores:
            assert core.freq_hz == core.freq_max_hz


class TestSchedulerQueueing:
    def test_segments_queue_when_no_core_free(self):
        """With migration off and many slow segments, READY segments wait
        in the pending queue instead of crashing or double-assigning."""
        runtime, stats = run_workload(mem_ops=5, footprint=393216,
                                      period=100_000_000, migration=False,
                                      iters=5000)
        assert stats.segments_checked == len(runtime.segments)
        # One occupant per core was maintained throughout (the executor
        # would have raised otherwise).

    def test_checker_core_occupancy_exclusive(self):
        runtime, _ = run_workload()
        for core in runtime.executor.cores:
            assert core.occupant is None  # everything drained at the end

"""Tests for frames, COW address spaces and dirty-page tracking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import MemoryError_
from repro.isa import DATA_BASE, assemble
from repro.mem import (
    MAP_ANONYMOUS,
    MAP_FIXED,
    MAP_PRIVATE,
    MAP_SHARED,
    AddressSpace,
    FramePool,
    PageFault,
)
from repro.mem.address_space import PROT_READ, PROT_WRITE

PAGE = 4096


def make_space(page_size=PAGE, aslr=False):
    pool = FramePool(page_size)
    space = AddressSpace(pool, aslr=aslr)
    return pool, space


def make_loaded_space(page_size=PAGE, data=b"", aslr=False):
    pool, space = make_space(page_size, aslr=aslr)
    program = assemble(".data\nblob: .space 8\n.text\nhalt\n")
    program = type(program)(program.instrs, program.labels,
                            data or program.data, "t")
    space.load_program(program)
    return pool, space


class TestFramePool:
    def test_allocate_zeroed(self):
        pool = FramePool(PAGE)
        frame = pool.allocate()
        assert frame.data == bytearray(PAGE)
        assert frame.refcount == 1

    def test_allocate_with_data(self):
        pool = FramePool(PAGE)
        frame = pool.allocate(b"hello")
        assert frame.data[:5] == b"hello"
        assert frame.data[5:] == bytearray(PAGE - 5)

    def test_oversized_data_rejected(self):
        pool = FramePool(PAGE)
        with pytest.raises(ValueError):
            pool.allocate(b"x" * (PAGE + 1))

    def test_clone_copies_content(self):
        pool = FramePool(PAGE)
        frame = pool.allocate(b"abc")
        copy = pool.clone(frame)
        assert copy.data == frame.data
        copy.data[0] = 0xFF
        assert frame.data[0] == ord("a")

    def test_refcounting_frees(self):
        pool = FramePool(PAGE)
        frame = pool.allocate()
        pool.incref(frame)
        pool.decref(frame)
        assert pool.live_frame(frame.frame_id) is frame
        pool.decref(frame)
        assert pool.live_frame(frame.frame_id) is None
        assert pool.frames_freed == 1

    def test_double_free_raises(self):
        pool = FramePool(PAGE)
        frame = pool.allocate()
        pool.decref(frame)
        with pytest.raises(ValueError):
            pool.decref(frame)

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            FramePool(100)  # not a multiple of 8
        with pytest.raises(ValueError):
            FramePool(0)


class TestLoadStore:
    def test_word_round_trip(self):
        _, space = make_loaded_space()
        space.store_word(DATA_BASE, -123456789)
        assert space.load_word(DATA_BASE) == -123456789

    def test_byte_round_trip(self):
        _, space = make_loaded_space()
        space.store_byte(DATA_BASE + 3, 0xAB)
        assert space.load_byte(DATA_BASE + 3) == 0xAB

    def test_unmapped_read_faults(self):
        _, space = make_loaded_space()
        with pytest.raises(PageFault):
            space.load_word(0x9999_0000)

    def test_misaligned_word_faults(self):
        _, space = make_loaded_space()
        with pytest.raises(PageFault):
            space.load_word(DATA_BASE + 1)
        with pytest.raises(PageFault):
            space.store_word(DATA_BASE + 4, 0)  # 4 is not 8-aligned

    def test_read_write_bytes_cross_page(self):
        _, space = make_loaded_space()
        blob = bytes(range(256)) * 40  # 10240 bytes, crosses pages
        base = space.mmap(0, 3 * PAGE, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS)
        space.write_bytes(base + 100, blob)
        assert space.read_bytes(base + 100, len(blob)) == blob

    def test_word_is_little_endian_in_memory(self):
        _, space = make_loaded_space()
        space.store_word(DATA_BASE, 0x0102030405060708)
        assert space.read_bytes(DATA_BASE, 8) == bytes(
            [8, 7, 6, 5, 4, 3, 2, 1])


class TestMmap:
    def test_anonymous_mapping(self):
        _, space = make_loaded_space()
        addr = space.mmap(0, PAGE, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS)
        assert addr % PAGE == 0
        space.store_word(addr, 7)
        assert space.load_word(addr) == 7

    def test_map_fixed_honored(self):
        _, space = make_loaded_space()
        target = 0x3000_0000
        addr = space.mmap(target, PAGE, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED)
        assert addr == target

    def test_aslr_randomizes_addresses(self):
        import random
        pool = FramePool(PAGE)
        a = AddressSpace(pool, aslr=True, rng=random.Random(1))
        b = AddressSpace(pool, aslr=True, rng=random.Random(2))
        addr_a = a.mmap(0, PAGE, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS)
        addr_b = b.mmap(0, PAGE, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS)
        assert addr_a != addr_b

    def test_no_aslr_is_deterministic(self):
        _, space_a = make_loaded_space()
        _, space_b = make_loaded_space()
        addr_a = space_a.mmap(0, PAGE, PROT_READ, MAP_PRIVATE | MAP_ANONYMOUS)
        addr_b = space_b.mmap(0, PAGE, PROT_READ, MAP_PRIVATE | MAP_ANONYMOUS)
        assert addr_a == addr_b

    def test_munmap_unmaps(self):
        _, space = make_loaded_space()
        addr = space.mmap(0, 2 * PAGE, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS)
        space.munmap(addr, 2 * PAGE)
        with pytest.raises(PageFault):
            space.load_word(addr)

    def test_munmap_releases_frames(self):
        pool, space = make_loaded_space()
        before = len(pool)
        addr = space.mmap(0, 4 * PAGE, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS)
        assert len(pool) == before + 4
        space.munmap(addr, 4 * PAGE)
        assert len(pool) == before

    def test_mprotect_read_only_blocks_writes(self):
        _, space = make_loaded_space()
        addr = space.mmap(0, PAGE, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS)
        space.mprotect(addr, PAGE, PROT_READ)
        with pytest.raises(PageFault):
            space.store_word(addr, 1)
        assert space.load_word(addr) == 0

    def test_brk_grows_heap(self):
        _, space = make_loaded_space()
        start = space.brk(0)
        new_brk = space.brk(start + 3 * PAGE)
        assert new_brk == start + 3 * PAGE
        space.store_word(start, 99)
        assert space.load_word(start) == 99

    def test_brk_query_does_not_grow(self):
        _, space = make_loaded_space()
        start = space.brk(0)
        assert space.brk(0) == start

    def test_bad_length_rejected(self):
        _, space = make_loaded_space()
        with pytest.raises(MemoryError_):
            space.mmap(0, 0, PROT_READ, MAP_PRIVATE)


class TestForkCow:
    def test_fork_shares_frames(self):
        pool, space = make_loaded_space()
        space.store_word(DATA_BASE, 41)
        frames_before = len(pool)
        child = space.fork()
        assert len(pool) == frames_before  # nothing copied yet
        assert child.load_word(DATA_BASE) == 41

    def test_write_after_fork_copies_one_page(self):
        pool, space = make_loaded_space()
        child = space.fork()
        copied_before = pool.frames_copied
        space.store_word(DATA_BASE, 1)
        assert pool.frames_copied == copied_before + 1
        assert child.load_word(DATA_BASE) == 0
        assert space.load_word(DATA_BASE) == 1

    def test_child_write_does_not_leak_to_parent(self):
        _, space = make_loaded_space()
        space.store_word(DATA_BASE, 5)
        child = space.fork()
        child.store_word(DATA_BASE, 6)
        assert space.load_word(DATA_BASE) == 5
        assert child.load_word(DATA_BASE) == 6

    def test_cow_fault_counter(self):
        _, space = make_loaded_space()
        space.fork()
        base = space.cow_faults
        space.store_word(DATA_BASE, 1)
        space.store_word(DATA_BASE + 8, 2)  # same page: only one fault
        assert space.cow_faults == base + 1

    def test_second_fork_of_same_page(self):
        _, space = make_loaded_space()
        child1 = space.fork()
        child2 = space.fork()
        space.store_word(DATA_BASE, 10)
        assert child1.load_word(DATA_BASE) == 0
        assert child2.load_word(DATA_BASE) == 0

    def test_last_owner_write_skips_copy(self):
        pool, space = make_loaded_space()
        child = space.fork()
        child.destroy()
        copied_before = pool.frames_copied
        space.store_word(DATA_BASE, 1)
        # refcount back to 1: no copy needed even though PTE was COW
        assert pool.frames_copied == copied_before

    def test_destroy_releases_everything(self):
        pool, space = make_loaded_space()
        child = space.fork()
        child.destroy()
        space.destroy()
        assert len(pool) == 0

    def test_fork_copies_code_list(self):
        from repro.isa import Instr, make_brk
        _, space = make_loaded_space()
        child = space.fork()
        original = space.code[0]
        space.patch_code(space.code_base, make_brk())
        assert child.code[0] == original

    def test_fork_preserves_brk(self):
        _, space = make_loaded_space()
        space.brk(space.brk(0) + PAGE)
        child = space.fork()
        assert child.brk(0) == space.brk(0)

    def test_shared_mapping_not_cow(self):
        _, space = make_loaded_space()
        addr = space.mmap(0, PAGE, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_ANONYMOUS)
        child = space.fork()
        space.store_word(addr, 123)
        assert child.load_word(addr) == 123  # shared: visible to child


class TestDirtyTracking:
    def test_soft_dirty_set_on_write(self):
        _, space = make_loaded_space()
        space.clear_soft_dirty()
        space.store_word(DATA_BASE, 1)
        vpns = space.soft_dirty_vpns()
        assert vpns == [DATA_BASE // PAGE]

    def test_clear_soft_dirty_resets(self):
        _, space = make_loaded_space()
        space.store_word(DATA_BASE, 1)
        assert space.clear_soft_dirty() >= 1
        assert space.soft_dirty_vpns() == []

    def test_map_count_dirty_after_fork(self):
        _, space = make_loaded_space()
        child = space.fork()
        assert child.map_count_dirty_vpns() == []  # everything shared
        child.store_word(DATA_BASE, 7)
        assert child.map_count_dirty_vpns() == [DATA_BASE // PAGE]

    def test_map_count_includes_new_pages(self):
        _, space = make_loaded_space()
        child = space.fork()
        addr = child.mmap(0, PAGE, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS)
        assert addr // PAGE in child.map_count_dirty_vpns()

    def test_both_backends_agree_after_fork(self):
        _, space = make_loaded_space()
        child = space.fork()
        child.clear_soft_dirty()
        child.store_word(DATA_BASE, 3)
        assert child.soft_dirty_vpns() == child.map_count_dirty_vpns()

    def test_page_bytes_reflects_stores(self):
        _, space = make_loaded_space()
        space.store_byte(DATA_BASE + 5, 0x7F)
        page = space.page_bytes(DATA_BASE // PAGE)
        assert page[5] == 0x7F

    @given(st.lists(st.integers(min_value=0, max_value=PAGE // 8 - 1),
                    min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_dirty_iff_written_property(self, offsets):
        _, space = make_loaded_space()
        child = space.fork()
        child.clear_soft_dirty()
        for offset in offsets:
            child.store_word(DATA_BASE + offset * 8, offset)
        assert child.soft_dirty_vpns() == [DATA_BASE // PAGE]
        # Untouched stack pages stay clean in both backends.
        assert DATA_BASE // PAGE in child.map_count_dirty_vpns()


class TestAccounting:
    def test_pss_splits_shared_frames(self):
        _, space = make_loaded_space()
        rss = space.rss_bytes()
        assert space.pss_bytes() == pytest.approx(rss)
        child = space.fork()
        # All frames now shared by two spaces.
        assert space.pss_bytes() == pytest.approx(rss / 2)
        assert child.pss_bytes() == pytest.approx(rss / 2)

    def test_pss_grows_after_cow(self):
        _, space = make_loaded_space()
        space.fork()
        before = space.pss_bytes()
        space.store_word(DATA_BASE, 1)
        assert space.pss_bytes() > before

    def test_mapped_pages_counts(self):
        _, space = make_loaded_space()
        pages = space.mapped_pages
        space.mmap(0, 2 * PAGE, PROT_READ, MAP_PRIVATE | MAP_ANONYMOUS)
        assert space.mapped_pages == pages + 2

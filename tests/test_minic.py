"""Tests for the mini-C compiler: lexer, parser, codegen, end-to-end runs."""

import pytest

from repro.common.errors import CompileError
from repro.minic import compile_source, compile_to_asm, parse, tokenize
from repro.minic import ast_nodes as ast

from helpers import run_minic, stdout_of


class TestLexer:
    def test_numbers(self):
        tokens = tokenize("42 0x1f 3.5 1e3")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("int", 42), ("int", 31), ("float", 3.5), ("float", 1000.0)]

    def test_identifiers_and_keywords(self):
        tokens = tokenize("func foo while xyz")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("keyword", "func"), ("ident", "foo"),
            ("keyword", "while"), ("ident", "xyz")]

    def test_operators_maximal_munch(self):
        tokens = tokenize("a <= b << c == d")
        ops = [t.value for t in tokens if t.kind == "op"]
        assert ops == ["<=", "<<", "=="]

    def test_comments_stripped(self):
        tokens = tokenize("a // line comment\nb /* block\ncomment */ c")
        idents = [t.value for t in tokens if t.kind == "ident"]
        assert idents == ["a", "b", "c"]

    def test_string_escapes(self):
        tokens = tokenize(r'"hi\n\t"')
        assert tokens[0].value == "hi\n\t"

    def test_char_literal(self):
        tokens = tokenize("'A'")
        assert tokens[0] == tokens[0]._replace(kind="int", value=65)

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        lines = [t.line for t in tokens if t.kind == "ident"]
        assert lines == [1, 2, 4]

    def test_bad_char_raises(self):
        with pytest.raises(CompileError):
            tokenize("a @ b")


class TestParser:
    def test_function_and_globals(self):
        module = parse("""
        global counter;
        global float weights[4];
        func main() { return 0; }
        """)
        assert len(module.globals) == 2
        assert module.globals[1].is_float
        assert module.globals[1].array_size == 4
        assert module.functions[0].name == "main"

    def test_global_initializers(self):
        module = parse("global x = -5; global t[3] = {1, 2, 3}; func main(){}")
        assert module.globals[0].init == [-5]
        assert module.globals[1].init == [1, 2, 3]

    def test_precedence(self):
        module = parse("func main() { var x; x = 1 + 2 * 3; }")
        assign = module.functions[0].body[1]
        assert isinstance(assign.value, ast.Binary)
        assert assign.value.op == "+"
        assert assign.value.right.op == "*"

    def test_if_else_chain(self):
        module = parse("""
        func main() {
            var x;
            if (x < 1) { x = 1; } else if (x < 2) { x = 2; } else { x = 3; }
        }
        """)
        if_stmt = module.functions[0].body[1]
        assert isinstance(if_stmt, ast.If)
        assert isinstance(if_stmt.else_body[0], ast.If)

    def test_for_loop(self):
        module = parse("func main() { var i; for (i = 0; i < 9; i = i + 1) {} }")
        for_stmt = module.functions[0].body[1]
        assert isinstance(for_stmt, ast.For)
        assert for_stmt.cond.op == "<"

    def test_array_assignment_vs_index_expr(self):
        module = parse("""
        global a[4];
        func main() { var x; a[1] = 2; x = a[1]; }
        """)
        body = module.functions[0].body
        assert isinstance(body[1], ast.Assign)
        assert isinstance(body[1].target, ast.Index)
        assert isinstance(body[2].value, ast.Index)

    def test_float_params(self):
        module = parse("func f(a, float b) { return a; } func main() {}")
        params = module.functions[0].params
        assert not params[0].is_float and params[1].is_float

    def test_missing_semicolon_raises(self):
        with pytest.raises(CompileError):
            parse("func main() { var x = 1 }")


class TestCodegenErrors:
    def test_undeclared_variable(self):
        with pytest.raises(CompileError):
            compile_to_asm("func main() { x = 1; }")

    def test_type_mismatch(self):
        with pytest.raises(CompileError):
            compile_to_asm("func main() { var x; x = 1.5; }")

    def test_mixed_arithmetic(self):
        with pytest.raises(CompileError):
            compile_to_asm("func main() { var x; x = 1 + int(2.0) + 3.0; }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError):
            compile_to_asm("func main() { break; }")

    def test_no_main(self):
        with pytest.raises(CompileError):
            compile_to_asm("func helper() { return 1; }")

    def test_call_undefined_function(self):
        with pytest.raises(CompileError):
            compile_to_asm("func main() { frobnicate(1); }")

    def test_prelude_collision(self):
        with pytest.raises(CompileError):
            compile_to_asm("func print_int(n) { return n; } func main() {}")

    def test_duplicate_local(self):
        with pytest.raises(CompileError):
            compile_to_asm("func main() { var x; var x; }")


class TestEndToEnd:
    def test_print_int(self):
        kernel, _, proc = run_minic("func main() { print_int(12345); }")
        assert stdout_of(kernel) == "12345\n"
        assert proc.exit_code == 0

    def test_print_negative_and_zero(self):
        kernel, _, _ = run_minic("""
        func main() { print_int(-42); print_int(0); }
        """)
        assert stdout_of(kernel) == "-42\n0\n"

    def test_arithmetic_program(self):
        kernel, _, _ = run_minic("""
        func main() {
            var i; var total;
            total = 0;
            for (i = 1; i <= 100; i = i + 1) { total = total + i; }
            print_int(total);
        }
        """)
        assert stdout_of(kernel) == "5050\n"

    def test_globals_and_arrays(self):
        kernel, _, _ = run_minic("""
        global cells[16];
        global total;
        func main() {
            var i;
            for (i = 0; i < 16; i = i + 1) { cells[i] = i * i; }
            total = 0;
            for (i = 0; i < 16; i = i + 1) { total = total + cells[i]; }
            print_int(total);
        }
        """)
        assert stdout_of(kernel) == "1240\n"

    def test_function_calls_and_recursion(self):
        kernel, _, _ = run_minic("""
        func fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        func main() { print_int(fib(15)); }
        """)
        assert stdout_of(kernel) == "610\n"

    def test_float_math(self):
        kernel, _, _ = run_minic("""
        func main() {
            float x; float y;
            x = 1.5;
            y = x * 4.0 + 0.25;
            print_int(int(y * 100.0));
        }
        """)
        assert stdout_of(kernel) == "625\n"

    def test_fsqrt_prelude(self):
        kernel, _, _ = run_minic("""
        func main() {
            float r;
            fsqrt(2.0);
            r = float(fsqrt(16.0));
            print_int(int(r + 0.5));
        }
        """)
        assert stdout_of(kernel) == "4\n"

    def test_rand_deterministic(self):
        source = """
        func main() {
            srand64(7);
            print_int(rand_below(1000));
            print_int(rand_below(1000));
        }
        """
        out1 = stdout_of(run_minic(source)[0])
        out2 = stdout_of(run_minic(source)[0])
        assert out1 == out2
        values = [int(x) for x in out1.split()]
        assert all(0 <= v < 1000 for v in values)

    def test_logical_short_circuit(self):
        kernel, _, _ = run_minic("""
        global trace;
        func bump() { trace = trace + 1; return 1; }
        func main() {
            var x;
            x = 0 && bump();
            print_int(trace);
            x = 1 || bump();
            print_int(trace);
            x = 1 && bump();
            print_int(trace);
        }
        """)
        assert stdout_of(kernel) == "0\n0\n1\n"

    def test_while_break_continue(self):
        kernel, _, _ = run_minic("""
        func main() {
            var i; var total;
            i = 0; total = 0;
            while (1) {
                i = i + 1;
                if (i > 10) { break; }
                if (i % 2 == 0) { continue; }
                total = total + i;
            }
            print_int(total);
        }
        """)
        assert stdout_of(kernel) == "25\n"

    def test_sbrk_heap(self):
        kernel, _, _ = run_minic("""
        func main() {
            var p; var i;
            p = sbrk(4096);
            for (i = 0; i < 10; i = i + 1) { poke64(p + i * 8, i * 7); }
            print_int(peek64(p + 9 * 8));
        }
        """)
        assert stdout_of(kernel) == "63\n"

    def test_mmap_anon(self):
        kernel, _, _ = run_minic("""
        func main() {
            var p;
            p = mmap_anon(8192);
            poke64(p + 128, 999);
            print_int(peek64(p + 128));
        }
        """)
        assert stdout_of(kernel) == "999\n"

    def test_read_dev_zero(self):
        kernel, _, _ = run_minic("""
        func main() {
            var fd; var p; var n;
            fd = open("/dev/zero");
            p = mmap_anon(4096);
            n = read(fd, p, 100);
            print_int(n);
            print_int(peek64(p));
        }
        """)
        assert stdout_of(kernel) == "100\n0\n"

    def test_input_file(self):
        kernel, _, _ = run_minic("""
        func main() {
            var fd; var p;
            fd = open("input.bin");
            p = mmap_anon(4096);
            read(fd, p, 8);
            print_int(peek64(p));
        }
        """, files={"input.bin": (777).to_bytes(8, "little")})
        assert stdout_of(kernel) == "777\n"

    def test_exit_code(self):
        _, _, proc = run_minic("func main() { exit(3); }")
        assert proc.exit_code == 3

    def test_main_return_value_is_exit_code(self):
        _, _, proc = run_minic("func main() { return 7; }")
        assert proc.exit_code == 7

    def test_getpid(self):
        kernel, _, proc = run_minic("func main() { print_int(getpid()); }")
        assert stdout_of(kernel).strip() == str(proc.pid)

    def test_string_literal_write(self):
        kernel, _, _ = run_minic("""
        func main() { print_str("hello, world\\n"); }
        """)
        assert stdout_of(kernel) == "hello, world\n"

    def test_deep_expression(self):
        kernel, _, _ = run_minic("""
        func main() {
            var x;
            x = ((1 + 2) * (3 + 4)) + ((5 - 6) * (7 - 8));
            print_int(x);
        }
        """)
        assert stdout_of(kernel) == "22\n"

    def test_args_evaluated_with_live_temps(self):
        kernel, _, _ = run_minic("""
        func add3(a, b, c) { return a + b + c; }
        func main() {
            print_int(1 + add3(2, 3, add3(4, 5, 6)));
        }
        """)
        assert stdout_of(kernel) == "21\n"

    def test_float_function_result(self):
        kernel, _, _ = run_minic("""
        func half(float x) { return x / 2.0; }
        func main() { print_int(int(float(half(9.0)) * 10.0)); }
        """)
        assert stdout_of(kernel) == "45\n"

    def test_gettimeofday_monotone(self):
        kernel, _, _ = run_minic("""
        func main() {
            var a; var b; var i; var burn;
            a = gettimeofday();
            for (i = 0; i < 1000; i = i + 1) { burn = burn + i; }
            b = gettimeofday();
            if (b >= a) { print_int(1); } else { print_int(0); }
        }
        """)
        assert stdout_of(kernel) == "1\n"

    def test_rdtsc_intrinsic(self):
        kernel, _, _ = run_minic("""
        func main() {
            var a; var b;
            a = rdtsc();
            b = rdtsc();
            if (b > a) { print_int(1); } else { print_int(0); }
        }
        """)
        assert stdout_of(kernel) == "1\n"

    def test_global_float_array(self):
        kernel, _, _ = run_minic("""
        global float grid[8];
        func main() {
            var i; float total;
            for (i = 0; i < 8; i = i + 1) { grid[i] = float(i) * 0.5; }
            total = 0.0;
            for (i = 0; i < 8; i = i + 1) { total = total + grid[i]; }
            print_int(int(total));
        }
        """)
        assert stdout_of(kernel) == "14\n"

    def test_many_locals_spill_to_frame(self):
        kernel, _, _ = run_minic("""
        func main() {
            var a; var b; var c; var d; var e; var f; var g; var h;
            a = 1; b = 2; c = 3; d = 4; e = 5; f = 6; g = 7; h = 8;
            print_int(a + b + c + d + e + f + g + h);
        }
        """)
        assert stdout_of(kernel) == "36\n"

"""Dirty-tracking backend equivalence (paper §4.4).

Parallaft uses soft-dirty PTE tracking on x86 and a mapcount-based scan
on Apple Silicon; the correctness argument requires the two to be
interchangeable — same dirty sets, same comparison verdicts, same
output.  This suite runs the trace-invariant workload matrix under both
backends and diffs everything observable: per-segment main dirty sets,
per-segment comparison verdicts, stdout, and error lists.

This is also the regression net for infrastructure-fault work on the
tracker (``repro.faults.infra`` dirty-miss model): suppression must stay
dormant by default, and neither backend may silently under- or
over-report relative to the other.
"""

import pytest

from repro.core import DirtyPageBackend, Parallaft, ParallaftConfig
from repro.minic import compile_source
from repro.sim import apple_m2
from repro.trace import events as tev
from test_trace_invariants import PRINT_LOOP, WIDE_PRINT_LOOP

WORKLOADS = {
    "print_loop": (PRINT_LOOP, 150_000_000),
    "wide_print_loop": (WIDE_PRINT_LOOP, 80_000_000),
}


def run_with_backend(source, period, backend):
    config = ParallaftConfig()
    config.slicing_period = period
    config.dirty_page_backend = backend
    runtime = Parallaft(compile_source(source), config=config,
                        platform=apple_m2())
    stats = runtime.run()
    return runtime, stats


def comparison_verdicts(runtime):
    return [(event.segment, event.payload["match"])
            for event in runtime.trace.events(tev.COMPARISON)]


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def backend_pair(request):
    source, period = WORKLOADS[request.param]
    soft = run_with_backend(source, period, DirtyPageBackend.SOFT_DIRTY)
    mapc = run_with_backend(source, period, DirtyPageBackend.MAP_COUNT)
    return request.param, soft, mapc


class TestBackendEquivalence:
    def test_both_backends_finish_clean(self, backend_pair):
        name, (_, soft_stats), (_, mapc_stats) = backend_pair
        assert soft_stats.exit_code == 0 and mapc_stats.exit_code == 0
        assert not soft_stats.errors and not mapc_stats.errors

    def test_identical_output(self, backend_pair):
        name, (_, soft_stats), (_, mapc_stats) = backend_pair
        assert soft_stats.stdout == mapc_stats.stdout
        assert soft_stats.stderr == mapc_stats.stderr

    def test_identical_per_segment_dirty_sets(self, backend_pair):
        name, (soft_rt, _), (mapc_rt, _) = backend_pair
        assert len(soft_rt.segments) == len(mapc_rt.segments), (
            f"{name}: backends sliced differently")
        for soft_seg, mapc_seg in zip(soft_rt.segments, mapc_rt.segments):
            assert (sorted(soft_seg.main_dirty_vpns)
                    == sorted(mapc_seg.main_dirty_vpns)), (
                f"{name}: segment {soft_seg.index} dirty sets diverge")

    def test_dirty_sets_are_nonempty_where_writes_happened(
            self, backend_pair):
        """Equality of two empty sets proves nothing: the workloads write
        globals every quantum, so almost every segment must report dirty
        pages."""
        name, (soft_rt, _), _ = backend_pair
        nonempty = sum(1 for s in soft_rt.segments if s.main_dirty_vpns)
        assert nonempty >= max(1, len(soft_rt.segments) - 1)

    def test_identical_comparison_verdicts(self, backend_pair):
        name, (soft_rt, _), (mapc_rt, _) = backend_pair
        soft_verdicts = comparison_verdicts(soft_rt)
        assert soft_verdicts == comparison_verdicts(mapc_rt)
        assert soft_verdicts, f"{name}: no comparisons ran"
        assert all(match for _, match in soft_verdicts)

    def test_no_suppression_in_normal_runs(self, backend_pair):
        """The fault-injection suppression hook must be inert unless an
        infra campaign armed it."""
        name, (soft_rt, _), (mapc_rt, _) = backend_pair
        for runtime in (soft_rt, mapc_rt):
            assert not runtime.dirty_tracker.suppressed_vpns
            assert runtime.dirty_tracker.suppressed_hits == 0

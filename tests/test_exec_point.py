"""Unit tests for execution-point record/replay (paper §4.2, figure 3)."""

import pytest

from repro.core.config import ExecPointCounter
from repro.core.exec_point import (
    ExecPoint,
    ExecPointReplayer,
    ReplayOutcome,
    ReplayPhase,
    ReplayStop,
    ReplayStopKind,
)
from repro.cpu import CpuContext, StopReason, run
from repro.isa import assemble
from repro.mem import AddressSpace, FramePool


class ReplayProcess:
    """A process-alike running a deterministic branchy loop."""

    def __init__(self, iters=200, skid=0):
        self.pool = FramePool(4096)
        self.mem = AddressSpace(self.pool, aslr=False)
        self.mem.load_program(assemble(f"""
            li r1, {iters}
        loop:
            addi r2, r2, 3
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """))
        self.cpu = CpuContext()
        self.cpu.pc = self.mem.code_base
        self._skid = skid
        self.nondet = None

    def skid_draw(self):
        return self._skid

    @property
    def loop_addr(self):
        return self.mem.code_base + 4  # first instruction of the loop body


def record_point(iters, stop_after_branches):
    """Run the reference execution, stopping at a branch count: returns the
    (pc, branches) ExecPoint a recorder would capture."""
    proc = ReplayProcess(iters)
    proc.cpu.arm_branch_overflow(stop_after_branches)
    stop = run(proc, 10**6)
    assert stop.reason == StopReason.COUNTER_OVERFLOW
    return ExecPoint(proc.cpu.pc, proc.cpu.branches_retired,
                     proc.cpu.instr_retired)


def drive(proc, replayer, budget=10**6):
    """Drive a checker through its replayer until DONE or divergence."""
    replayer.arm_next()
    while replayer.phase != ReplayPhase.DONE:
        stop = run(proc, budget)
        if stop.reason == StopReason.COUNTER_OVERFLOW:
            outcome = replayer.on_overflow()
        elif stop.reason == StopReason.BREAKPOINT:
            outcome = replayer.on_breakpoint()
        elif stop.reason == StopReason.HALTED:
            return "halted"
        else:
            raise AssertionError(stop)
        if outcome == ReplayOutcome.OVERRUN:
            return "overrun"
        if outcome == ReplayOutcome.REACHED:
            stop_obj = replayer.stops[replayer.index - 1]
            if stop_obj.kind == ReplayStopKind.SEGMENT_END:
                return "reached"
            replayer.arm_next()
    return "done"


class TestReplayExactness:
    @pytest.mark.parametrize("skid", [0, 3, 5])
    @pytest.mark.parametrize("target_branches", [1, 7, 50, 150])
    def test_replay_stops_exactly(self, skid, target_branches):
        point = record_point(200, target_branches)
        checker = ReplayProcess(200, skid=skid)
        replayer = ExecPointReplayer(
            checker, [ReplayStop(point, ReplayStopKind.SEGMENT_END)],
            skid_buffer=8)
        assert drive(checker, replayer) == "reached"
        assert checker.cpu.pc == point.pc
        assert checker.cpu.branches_retired == point.branches

    def test_replay_distinguishes_loop_iterations(self):
        """Same PC, different branch counts: the replayer must pick the
        right iteration (paper footnote 5)."""
        for target in (10, 11, 12):
            point = record_point(100, target)
            checker = ReplayProcess(100)
            replayer = ExecPointReplayer(
                checker, [ReplayStop(point, ReplayStopKind.SEGMENT_END)],
                skid_buffer=4)
            assert drive(checker, replayer) == "reached"
            assert checker.cpu.branches_retired == target

    def test_zero_skid_buffer_with_real_skid_overruns(self):
        """Without the buffer, skid pushes the stop past the target: the
        failure mode §4.2.2's design avoids."""
        point = record_point(200, 50)
        overruns = 0
        for _ in range(5):
            checker = ReplayProcess(200, skid=4)
            replayer = ExecPointReplayer(
                checker, [ReplayStop(point, ReplayStopKind.SEGMENT_END)],
                skid_buffer=0)
            if drive(checker, replayer) == "overrun":
                overruns += 1
        assert overruns > 0

    def test_multiple_stops_in_order(self):
        """Signal stops before the segment end are reached in sequence."""
        p1 = record_point(300, 20)
        p2 = record_point(300, 90)
        end = record_point(300, 250)
        checker = ReplayProcess(300)
        reached = []
        replayer = ExecPointReplayer(
            checker,
            [ReplayStop(end, ReplayStopKind.SEGMENT_END),
             ReplayStop(p1, ReplayStopKind.SIGNAL, signo=10),
             ReplayStop(p2, ReplayStopKind.SIGNAL, signo=12)],
            skid_buffer=8)
        replayer.arm_next()
        while True:
            stop = run(checker, 10**6)
            if stop.reason == StopReason.COUNTER_OVERFLOW:
                outcome = replayer.on_overflow()
            elif stop.reason == StopReason.BREAKPOINT:
                outcome = replayer.on_breakpoint()
            else:
                raise AssertionError(stop)
            if outcome == ReplayOutcome.REACHED:
                reached.append(checker.cpu.branches_retired)
                if replayer.index == len(replayer.stops):
                    break
                replayer.arm_next()
        assert reached == [20, 90, 250]

    def test_target_smaller_than_buffer_breakpoints_immediately(self):
        point = record_point(50, 2)
        checker = ReplayProcess(50)
        replayer = ExecPointReplayer(
            checker, [ReplayStop(point, ReplayStopKind.SEGMENT_END)],
            skid_buffer=64)
        replayer.arm_next()
        assert replayer.phase == ReplayPhase.WAIT_BREAKPOINT
        assert drive(checker, replayer) == "reached"

    def test_explicit_bases_for_late_arming(self):
        """RAFT-style: the checker already ran before the end point became
        known; explicit counter bases keep relative targets correct."""
        point = record_point(300, 200)
        checker = ReplayProcess(300)
        # Let the checker run ahead ~50 branches first.
        checker.cpu.arm_branch_overflow(50)
        assert run(checker, 10**6).reason == StopReason.COUNTER_OVERFLOW
        replayer = ExecPointReplayer(
            checker, [ReplayStop(point, ReplayStopKind.SEGMENT_END)],
            skid_buffer=8, branch_base=0, instr_base=0)
        assert drive(checker, replayer) == "reached"
        assert checker.cpu.branches_retired == 200


class TestExecPointValue:
    def test_equality_and_hash(self):
        a = ExecPoint(0x100, 42)
        b = ExecPoint(0x100, 42)
        c = ExecPoint(0x100, 43)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a point"
        assert repr(a).startswith("ExecPoint")

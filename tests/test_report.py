"""Tests for the plain-text report renderers."""

import pytest

from repro.faults import CampaignResult, InjectionResult, Outcome
from repro.harness.figures import PeriodSweepPoint, SuiteComparison
from repro.harness.overhead import OverheadBreakdown
from repro.harness.report import (
    NA,
    _table,
    render_breakdown,
    render_injection,
    render_memory,
    render_overheads,
    render_period_sweep,
    render_phase_breakdown,
)
from repro.harness.runner import BenchmarkResult, InputResult
from repro.metrics import COMPARISON, MAIN_EXEC, REPLAY, PhaseProfile


def fake_comparison():
    comparison = SuiteComparison(platform="apple_m2")
    for name, base, para, raft in (("alpha", 10.0, 11.0, 12.0),
                                   ("beta", 20.0, 26.0, 22.0)):
        def result(mode, wall):
            r = BenchmarkResult(name, mode)
            r.inputs.append(InputResult(
                wall_time=wall, main_wall_time=wall, user_time=wall,
                sys_time=0.0, energy_joules=wall * 7,
                pss_samples=[wall * 100]))
            return r
        comparison.baseline[name] = result("baseline", base)
        comparison.parallaft[name] = result("parallaft", para)
        comparison.raft[name] = result("raft", raft)
    return comparison


class TestRenderers:
    def test_render_perf_overheads(self):
        text = render_overheads(fake_comparison(), "perf")
        assert "alpha" in text and "geomean" in text
        assert "+10.0%" in text   # alpha parallaft
        assert "+20.0%" in text   # alpha raft

    def test_render_energy_overheads(self):
        text = render_overheads(fake_comparison(), "energy")
        assert "energy overhead" in text

    def test_render_memory(self):
        text = render_memory(fake_comparison())
        assert "1.10x" in text  # alpha parallaft pss ratio

    def test_render_breakdown(self):
        text = render_breakdown({
            "alpha": OverheadBreakdown("alpha", 20.0, 5.0, 8.0, 4.0, 3.0)})
        assert "fork+cow" in text and "20.0" in text

    def test_render_period_sweep(self):
        points = [PeriodSweepPoint(1e9, 30.0, 20.0, 2.0),
                  PeriodSweepPoint(5e9, 18.0, 8.0, 6.0)]
        text = render_period_sweep({"mcf": points})
        assert "sweet spot 5B" in text
        assert "1Billion" in text

    def test_render_injection(self):
        campaign = CampaignResult("alpha")
        campaign.injections.append(InjectionResult(
            Outcome.DETECTED, "gpr", 3, 7, 0, 0.1))
        campaign.injections.append(InjectionResult(
            Outcome.BENIGN, "vec", 1, 9, 1, 0.2))
        text = render_injection({"alpha": campaign})
        assert "50.0%" in text
        assert "overall" in text

    def test_columns_align(self):
        text = render_overheads(fake_comparison(), "perf")
        lines = text.splitlines()[1:]
        assert len({line.index("  ") for line in lines if "  " in line}) >= 1

    def test_numeric_columns_right_aligned(self):
        text = _table(("name", "count"),
                      [("a", "5"), ("longer-name", "12345")])
        lines = text.splitlines()
        # The numeric column is right-aligned: every line ends flush,
        # so all lines are exactly the same length.
        assert len({len(line) for line in lines}) == 1
        assert lines[2].endswith("    5")
        # Word columns stay left-aligned.
        assert lines[2].startswith("a ")

    def test_word_column_not_right_aligned(self):
        text = _table(("budget",), [("unbounded",), ("1024",)])
        assert text.splitlines()[3] == "1024"  # ljust, trailing rstrip

    def test_placeholder_cells_right_align_with_numbers(self):
        text = _table(("v",), [("1234",), (NA,), ("-",)])
        lines = text.splitlines()
        assert lines[2] == "1234"
        assert lines[3] == "   " + NA
        assert lines[4] == "   -"


class TestPhaseBreakdown:
    def profile(self, **cycles):
        full = {MAIN_EXEC: 1000.0, REPLAY: 400.0}
        full.update(cycles)
        return PhaseProfile(cycles=full,
                            total_cycles=sum(full.values()),
                            stall_seconds={"containment_stall": 1.25})

    def test_percentages_of_main_exec(self):
        text = render_phase_breakdown({"mcf": self.profile(
            comparison=250.0)})
        row = text.splitlines()[-1]
        assert "65.0" in row          # total%: (400+250)/1000
        assert "40.0" in row          # replay
        assert "25.0" in row          # compare
        assert "1.250" in row         # containment stall seconds

    def test_never_executed_phase_renders_em_dash(self):
        """A RAFT run records exactly 0.0 for e.g. the comparison phase;
        the table must show an absent measurement, not a tiny number."""
        text = render_phase_breakdown({"raft-run": self.profile()})
        header, _, row = text.splitlines()[1:4]
        compare_at = header.index("compare")
        assert NA in row
        cell = row[compare_at:compare_at + len("compare")].strip()
        assert cell in ("", NA)
        # ...but a phase that did run still renders its number.
        assert "40.0" in row

    def test_components_sum_to_total_column(self):
        profile = self.profile(comparison=250.0, checkpoint_fork=1.0)
        components = profile.overhead_components()
        assert sum(components.values()) == 651.0
        text = render_phase_breakdown({"x": profile})
        assert "65.1" in text.splitlines()[-1]


class TestVoteColumn:
    """The TMR vote phase in the phase-breakdown table."""

    def profile(self, **cycles):
        full = {MAIN_EXEC: 1000.0}
        full.update(cycles)
        return PhaseProfile(cycles=full, total_cycles=sum(full.values()))

    def test_vote_column_present_and_renders(self):
        from repro.metrics import VOTE
        text = render_phase_breakdown({"tmr-run": self.profile(
            **{VOTE: 50.0})})
        header = text.splitlines()[1]
        assert "vote" in header
        assert "5.0" in text.splitlines()[-1]

    def test_vote_column_na_for_non_tmr(self):
        """Parallaft/RAFT never vote: the cell must be the NA
        placeholder, not 0.0."""
        text = render_phase_breakdown({"para-run": self.profile(
            comparison=250.0)})
        header, _, row = text.splitlines()[1:4]
        vote_at = header.index("vote")
        assert row[vote_at:vote_at + len("vote")].strip() in ("", NA)


class TestRunStatsModeCounters:
    def test_tmr_and_meek_counters_surface(self):
        from repro.core.stats import RunStats
        stats = RunStats()
        stats.tmr_votes = 12
        stats.tmr_forward_recoveries = 1
        stats.meek_early_checks = 24
        from repro.harness.report import render_run_stats
        text = render_run_stats(stats)
        assert "counter.tmr.votes" in text
        assert "counter.tmr.forward_recoveries" in text
        assert "counter.meek.early_checks" in text
        # Zero-valued mode counters stay hidden (they'd be noise for
        # every non-TMR run).
        assert "counter.tmr.outvoted" not in text

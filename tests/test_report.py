"""Tests for the plain-text report renderers."""

import pytest

from repro.faults import CampaignResult, InjectionResult, Outcome
from repro.harness.figures import PeriodSweepPoint, SuiteComparison
from repro.harness.overhead import OverheadBreakdown
from repro.harness.report import (
    render_breakdown,
    render_injection,
    render_memory,
    render_overheads,
    render_period_sweep,
)
from repro.harness.runner import BenchmarkResult, InputResult


def fake_comparison():
    comparison = SuiteComparison(platform="apple_m2")
    for name, base, para, raft in (("alpha", 10.0, 11.0, 12.0),
                                   ("beta", 20.0, 26.0, 22.0)):
        def result(mode, wall):
            r = BenchmarkResult(name, mode)
            r.inputs.append(InputResult(
                wall_time=wall, main_wall_time=wall, user_time=wall,
                sys_time=0.0, energy_joules=wall * 7,
                pss_samples=[wall * 100]))
            return r
        comparison.baseline[name] = result("baseline", base)
        comparison.parallaft[name] = result("parallaft", para)
        comparison.raft[name] = result("raft", raft)
    return comparison


class TestRenderers:
    def test_render_perf_overheads(self):
        text = render_overheads(fake_comparison(), "perf")
        assert "alpha" in text and "geomean" in text
        assert "+10.0%" in text   # alpha parallaft
        assert "+20.0%" in text   # alpha raft

    def test_render_energy_overheads(self):
        text = render_overheads(fake_comparison(), "energy")
        assert "energy overhead" in text

    def test_render_memory(self):
        text = render_memory(fake_comparison())
        assert "1.10x" in text  # alpha parallaft pss ratio

    def test_render_breakdown(self):
        text = render_breakdown({
            "alpha": OverheadBreakdown("alpha", 20.0, 5.0, 8.0, 4.0, 3.0)})
        assert "fork+cow" in text and "20.0" in text

    def test_render_period_sweep(self):
        points = [PeriodSweepPoint(1e9, 30.0, 20.0, 2.0),
                  PeriodSweepPoint(5e9, 18.0, 8.0, 6.0)]
        text = render_period_sweep({"mcf": points})
        assert "sweet spot 5B" in text
        assert "1Billion" in text

    def test_render_injection(self):
        campaign = CampaignResult("alpha")
        campaign.injections.append(InjectionResult(
            Outcome.DETECTED, "gpr", 3, 7, 0, 0.1))
        campaign.injections.append(InjectionResult(
            Outcome.BENIGN, "vec", 1, 9, 1, 0.2))
        text = render_injection({"alpha": campaign})
        assert "50.0%" in text
        assert "overall" in text

    def test_columns_align(self):
        text = render_overheads(fake_comparison(), "perf")
        lines = text.splitlines()[1:]
        assert len({line.index("  ") for line in lines if "  " in line}) >= 1

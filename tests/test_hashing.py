"""Tests for the pure-Python xxHash implementations."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import Xxh3_64, Xxh64, xxh3_64, xxh64


class TestXxh64KnownVectors:
    def test_empty_seed0(self):
        # Canonical vector from the xxHash specification.
        assert xxh64(b"") == 0xEF46DB3751D8E999

    def test_empty_nonzero_seed_differs(self):
        assert xxh64(b"", seed=1) != xxh64(b"")

    def test_deterministic(self):
        data = b"the quick brown fox jumps over the lazy dog"
        assert xxh64(data) == xxh64(data)

    def test_seed_changes_digest(self):
        data = b"payload" * 10
        assert xxh64(data, seed=1) != xxh64(data, seed=2)

    def test_long_input_all_paths(self):
        # >32 bytes exercises the striped path plus every tail size.
        base = bytes(range(256)) * 2
        digests = {xxh64(base[:n]) for n in range(len(base))}
        assert len(digests) == len(base)

    def test_result_is_64_bit(self):
        assert 0 <= xxh64(b"x" * 1000) < (1 << 64)


class TestXxh64Streaming:
    def test_matches_oneshot_single_update(self):
        data = bytes(range(200))
        assert Xxh64().update(data).digest() == xxh64(data)

    def test_matches_oneshot_split_updates(self):
        data = bytes(range(251)) * 3
        for split in (0, 1, 31, 32, 33, 100, len(data)):
            hasher = Xxh64()
            hasher.update(data[:split])
            hasher.update(data[split:])
            assert hasher.digest() == xxh64(data), f"split={split}"

    def test_seeded_streaming(self):
        data = b"abcdefgh" * 10
        assert Xxh64(seed=42).update(data).digest() == xxh64(data, seed=42)

    def test_digest_idempotent(self):
        hasher = Xxh64().update(b"hello world, this is a test payload!")
        assert hasher.digest() == hasher.digest()

    @given(st.binary(max_size=500), st.integers(min_value=0, max_value=500))
    @settings(max_examples=60, deadline=None)
    def test_streaming_equals_oneshot_property(self, data, split):
        split = min(split, len(data))
        hasher = Xxh64()
        hasher.update(data[:split]).update(data[split:])
        assert hasher.digest() == xxh64(data)


class TestXxh3:
    def test_deterministic(self):
        data = b"z" * 4096
        assert xxh3_64(data) == xxh3_64(data)

    def test_short_input_uses_xxh64_path(self):
        assert 0 <= xxh3_64(b"short") < (1 << 64)

    def test_page_sized_inputs_disperse(self):
        pages = [bytes([i]) * 4096 for i in range(64)]
        digests = {xxh3_64(page) for page in pages}
        assert len(digests) == 64

    def test_single_bit_flip_changes_digest(self):
        page = bytearray(16384)
        baseline = xxh3_64(bytes(page))
        for bit_byte in (0, 100, 8191, 16383):
            page[bit_byte] ^= 1
            assert xxh3_64(bytes(page)) != baseline
            page[bit_byte] ^= 1

    def test_seed_changes_digest(self):
        data = bytes(128)
        assert xxh3_64(data, seed=1) != xxh3_64(data, seed=2)

    def test_tail_bytes_affect_digest(self):
        data = bytearray(100)  # 64-byte stripe + 36-byte tail
        baseline = xxh3_64(bytes(data))
        data[99] ^= 0x80
        assert xxh3_64(bytes(data)) != baseline

    @given(st.binary(min_size=64, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_avalanche_property(self, data):
        mutated = bytearray(data)
        mutated[0] ^= 1
        assert xxh3_64(bytes(mutated)) != xxh3_64(data)


class TestXxh3Streaming:
    def test_order_sensitive(self):
        a, b = b"a" * 4096, b"b" * 4096
        digest_ab = Xxh3_64().update(a).update(b).digest()
        digest_ba = Xxh3_64().update(b).update(a).digest()
        assert digest_ab != digest_ba

    def test_deterministic(self):
        pages = [bytes([i]) * 256 for i in range(8)]
        first = Xxh3_64()
        second = Xxh3_64()
        for page in pages:
            first.update(page)
            second.update(page)
        assert first.digest() == second.digest()

    def test_update_returns_self(self):
        hasher = Xxh3_64()
        assert hasher.update(b"x") is hasher

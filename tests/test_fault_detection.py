"""Fault-injection and error-detection tests (paper §5.6 mechanisms)."""

import pytest

from repro.core import Parallaft, ParallaftConfig
from repro.faults import FaultInjector, Outcome
from repro.minic import compile_source
from repro.sim import apple_m2

WORKLOAD = """
global data[128];
func main() {
    var i; var round; var total;
    srand64(11);
    for (round = 0; round < 30; round = round + 1) {
        for (i = 0; i < 128; i = i + 1) {
            data[i] = data[i] * 3 + round + i;
        }
    }
    total = 0;
    for (i = 0; i < 128; i = i + 1) { total = total + data[i]; }
    print_int(total);
}
"""


def make_runtime(source=WORKLOAD, period=400_000_000, **kwargs):
    config = ParallaftConfig()
    config.slicing_period = period
    return Parallaft(compile_source(source), config=config,
                     platform=apple_m2(), **kwargs)


class TestDirectedFaults:
    """Flip specific state and confirm the specific detector fires."""

    def _run_with_hook(self, hook, period=400_000_000):
        runtime = make_runtime(period=period)
        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        return runtime, stats

    def test_memory_corruption_detected_as_state_mismatch(self):
        """Corrupt a checker's data page mid-segment: the dirty-page hash
        comparison must catch it."""
        from repro.isa.program import DATA_BASE
        fired = [False]

        def hook(proc, role):
            if role == "checker" and not fired[0] and proc.user_time > 0.001:
                proc.mem.store_word(DATA_BASE + 64, 0x0BAD)
                fired[0] = True

        _, stats = self._run_with_hook(hook)
        assert fired[0]
        assert stats.error_detected
        assert stats.errors[0].kind in ("state_mismatch",
                                        "syscall_divergence")

    def test_register_corruption_detected(self):
        fired = [False]

        def hook(proc, role):
            if role == "checker" and not fired[0] and proc.user_time > 0.001:
                proc.cpu.regs.flip_bit("gpr", 8, 17)  # a live local register
                fired[0] = True

        _, stats = self._run_with_hook(hook)
        assert fired[0]
        assert stats.error_detected

    def test_pc_corruption_detected_as_exception_or_timeout(self):
        fired = [False]

        def hook(proc, role):
            if role == "checker" and not fired[0] and proc.user_time > 0.001:
                proc.cpu.pc = 0x0F00_0000  # jump into unmapped space
                fired[0] = True

        _, stats = self._run_with_hook(hook)
        assert fired[0]
        assert stats.error_detected
        assert stats.errors[0].kind in ("exception", "timeout")

    def test_infinite_loop_detected_as_timeout(self):
        """Corrupt a loop counter so the checker loops (almost) forever:
        the 1.1x instruction budget kills it (paper §4.2.2)."""
        fired = [False]

        def hook(proc, role):
            if role == "checker" and not fired[0] and proc.user_time > 0.0005:
                # Reset the outer loop counter register repeatedly: the
                # checker can never finish.
                proc.cpu.regs.gprs[7] = 0
                proc.cpu.regs.gprs[8] = 0
                fired[0] = True
                # keep firing: make it truly stuck
                fired[0] = False

        runtime = make_runtime()
        hits = [0]

        def persistent_hook(proc, role):
            if role == "checker":
                proc.cpu.regs.gprs[7] = 0
                hits[0] += 1

        runtime.quantum_hooks.append(persistent_hook)
        stats = runtime.run()
        assert hits[0] > 0
        assert stats.error_detected
        assert any(e.kind in ("timeout", "state_mismatch",
                              "exec_point_overrun", "syscall_divergence",
                              "exception")
                   for e in stats.errors)

    def test_write_data_corruption_detected_via_syscall_comparison(self):
        """Corrupt the checker's write buffer just before the output
        syscall: caught by input-data comparison (paper §4.3.1)."""
        source = """
        global buf[16];
        func main() {
            var i; var total;
            total = 0;
            for (i = 0; i < 30000; i = i + 1) { total = total + i; }
            print_int(total);
        }
        """
        runtime = make_runtime(source, period=10**14)  # single segment

        def hook(proc, role):
            if role == "checker":
                # Continuously trash the itoa buffer so the printed bytes
                # differ when the checker's write is replayed/compared.
                from repro.isa.program import DATA_BASE
                try:
                    proc.mem.store_byte(DATA_BASE + 7, 0x58)
                except Exception:
                    pass

        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        assert stats.error_detected

    def test_fault_in_main_detected_too(self):
        """Symmetry: the comparison also catches faults in the *main* copy
        (a real SEU could hit either)."""
        from repro.isa.program import DATA_BASE
        fired = [False]

        def hook(proc, role):
            if role == "main" and not fired[0] and proc.user_time > 0.002:
                proc.mem.store_word(DATA_BASE + 32, 0x0BAD)
                fired[0] = True

        _, stats = self._run_with_hook(hook)
        assert fired[0]
        assert stats.error_detected


class TestInjectorCampaign:
    def test_profile_returns_per_segment_times(self):
        injector = FaultInjector(
            compile_source(WORKLOAD),
            config_factory=lambda: ParallaftConfig(
                slicing_period=400_000_000),
            platform_factory=apple_m2)
        times, reference = injector.profile()
        assert len(times) >= 2
        assert all(t > 0 for t in times)
        assert reference.endswith("\n")

    def test_campaign_classifies_every_injection(self):
        injector = FaultInjector(
            compile_source(WORKLOAD),
            config_factory=lambda: ParallaftConfig(
                slicing_period=800_000_000),
            platform_factory=apple_m2, seed=3)
        campaign = injector.run_campaign(injections_per_segment=3,
                                         benchmark_name="unit")
        assert campaign.total >= 3
        for result in campaign.injections:
            assert isinstance(result.outcome, Outcome)
        # Everything is either detected (any flavour) or benign; fractions
        # sum to 1.
        assert sum(campaign.summary().values()) == pytest.approx(1.0)

    def test_campaign_finds_both_benign_and_detected(self):
        """With enough injections over 92 registers, some hit dead state
        (benign) and some hit live state (detected)."""
        injector = FaultInjector(
            compile_source(WORKLOAD),
            config_factory=lambda: ParallaftConfig(
                slicing_period=600_000_000),
            platform_factory=apple_m2, seed=1)
        campaign = injector.run_campaign(injections_per_segment=6,
                                         benchmark_name="unit")
        assert campaign.count(Outcome.BENIGN) > 0
        detected = campaign.total - campaign.count(Outcome.BENIGN)
        assert detected > 0
        assert campaign.detected_fraction + campaign.fraction(
            Outcome.BENIGN) == pytest.approx(1.0)

    def test_detected_faults_never_corrupt_output(self):
        """Faults are injected into checkers, so the program output always
        matches the reference (the paper's 'benign' definition relies on
        this)."""
        injector = FaultInjector(
            compile_source(WORKLOAD),
            config_factory=lambda: ParallaftConfig(
                slicing_period=10**14),
            platform_factory=apple_m2, seed=2)
        times, reference = injector.profile()
        result = injector.inject_once(0, times[0] * 0.5, ("gpr", 7, 5),
                                      reference)
        assert result is not None

    def test_missed_injection_returns_none(self):
        injector = FaultInjector(
            compile_source(WORKLOAD),
            config_factory=lambda: ParallaftConfig(slicing_period=10**14),
            platform_factory=apple_m2)
        times, reference = injector.profile()
        result = injector.inject_once(0, times[0] * 50.0, ("gpr", 1, 1),
                                      reference)
        assert result is None

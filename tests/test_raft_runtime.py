"""Tests for the RAFT model's distinctive behaviours (paper §2.3, §5.1)."""

import pytest

from repro import abi
from repro.core import Parallaft, ParallaftConfig, RuntimeMode
from repro.kernel.process import ProcessState
from repro.minic import compile_source
from repro.sim import apple_m2
from repro.workloads import synthetic_source

from helpers import run_minic, stdout_of


def raft_run(source, files=None, seed=0):
    runtime = Parallaft(compile_source(source),
                        config=ParallaftConfig.raft(),
                        platform=apple_m2(), files=files, seed=seed)
    stats = runtime.run()
    return runtime, stats


class TestRaftConcurrency:
    def test_checker_runs_concurrently_with_main(self):
        """RAFT's checker starts at program start: by the time the main
        exits, the checker has already made progress (asynchronous
        duplication, figure 1(a))."""
        runtime, stats = raft_run("""
        func main() {
            var i; var x;
            for (i = 0; i < 40000; i = i + 1) { x = x + i; }
            print_int(x % 1000003);
        }
        """)
        assert not stats.error_detected
        segment = runtime.segments[0]
        # Checker started long before the main finished.
        assert segment.check_started_time is not None
        assert segment.check_started_time < stats.main_wall_time / 2

    def test_checker_stalls_when_catching_up(self):
        """A syscall-dense program forces the RAFT checker to catch up with
        the record log and block until the main produces the next record
        (the synchronization RAFT's speculation avoids paying elsewhere)."""
        runtime, stats = raft_run("""
        global acc;
        func main() {
            var i; var j;
            for (i = 0; i < 25; i = i + 1) {
                acc = acc + getpid() % 3 + gettimeofday() % 5;
                for (j = 0; j < 1500; j = j + 1) { acc = acc + 1; }
            }
            print_int(acc % 1000003);
        }
        """)
        assert not stats.error_detected
        assert stats.syscalls_replayed >= 25

    def test_single_segment_whole_program(self):
        runtime, stats = raft_run(synthetic_source(total_iters=8000))
        assert len(runtime.segments) == 1
        assert stats.nr_slices == 0

    def test_exec_point_still_verified_at_end(self):
        """Even without state comparison, the RAFT checker must reach the
        main's final execution point (counter + breakpoint replay)."""
        runtime, stats = raft_run(synthetic_source(total_iters=8000))
        segment = runtime.segments[0]
        assert segment.end_point is not None
        assert stats.segments_checked == 1


class TestRaftDetectionGap:
    def test_syscall_data_fault_detected(self):
        """RAFT detects faults that reach syscall data."""
        source = """
        func main() {
            var i; var x;
            for (i = 0; i < 20000; i = i + 1) { x = x + i; }
            print_int(x);
        }
        """
        runtime = Parallaft(compile_source(source),
                            config=ParallaftConfig.raft(),
                            platform=apple_m2())
        corrupted = [False]

        def hook(proc, role):
            if role == "checker" and not corrupted[0] and \
                    proc.user_time > 0.001:
                # Corrupt the checker's running sum: it flows into the
                # printed value, i.e. into write() data.
                for reg in range(7, 13):
                    proc.cpu.regs.gprs[reg] ^= 1 << 20
                corrupted[0] = True

        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        assert corrupted[0]
        assert stats.error_detected
        assert stats.errors[0].kind == "syscall_divergence"

    def test_silent_state_fault_missed(self):
        """...but faults that never reach a syscall escape RAFT entirely
        (Table 2's missing detection guarantee)."""
        source = """
        global scratch[128];
        func main() {
            var i;
            for (i = 0; i < 20000; i = i + 1) {
                scratch[i % 128] = scratch[i % 128] + i;
            }
            print_int(7);
        }
        """
        runtime = Parallaft(compile_source(source),
                            config=ParallaftConfig.raft(),
                            platform=apple_m2())
        corrupted = [False]

        def hook(proc, role):
            if role == "checker" and not corrupted[0] and \
                    proc.user_time > 0.001:
                from repro.isa.program import DATA_BASE
                proc.mem.store_word(DATA_BASE + 64, 0xBAD)
                corrupted[0] = True

        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        assert corrupted[0]
        assert not stats.error_detected   # RAFT's blind spot
        assert stats.exit_code == 0


class TestRaftOutput:
    def test_output_appears_once(self):
        _, stats = raft_run('func main() { print_str("once"); }')
        assert stats.stdout == "once"

    def test_output_matches_native(self):
        source = synthetic_source(total_iters=5000, seed=3)
        kernel, _, _ = run_minic(source)
        _, stats = raft_run(source)
        assert stats.stdout == stdout_of(kernel)


class TestRaftFileMmap:
    def test_file_backed_mmap_splits_even_in_raft(self):
        """The paper's RAFT model still checkpoints around file-backed
        mmaps (§5.1): the fd is not live in the checker otherwise."""
        runtime, stats = raft_run("""
        func main() {
            var fd; var p; var i; var total;
            fd = open("blob.bin");
            p = mmap_file(fd, 4096);
            total = 0;
            for (i = 0; i < 40; i = i + 1) { total = total + peek64(p + i * 8); }
            print_int(total);
        }
        """, files={"blob.bin": b"".join(i.to_bytes(8, "little")
                                         for i in range(512))})
        assert not stats.error_detected, stats.errors
        assert stats.mmap_splits == 1
        assert len(runtime.segments) == 2
        assert stats.stdout == f"{sum(range(40))}\n"

"""Tests for the future-work extensions (paper Table 2):
checker-retry error recovery and error containment in the SoR.
"""

import pytest

from repro import abi
from repro.core import Parallaft, ParallaftConfig
from repro.minic import compile_source
from repro.sim import apple_m2

WORKLOAD = """
global data[256];
func main() {
    var i; var round; var total;
    for (round = 0; round < 40; round = round + 1) {
        for (i = 0; i < 256; i = i + 1) {
            data[i] = data[i] * 3 + round;
        }
    }
    total = 0;
    for (i = 0; i < 256; i = i + 1) { total = total + data[i]; }
    print_int(total);
}
"""


def make_runtime(retry=False, containment=False, period=500_000_000,
                 source=WORKLOAD):
    config = ParallaftConfig()
    config.slicing_period = period
    config.retry_failed_checkers = retry
    config.error_containment = containment
    return Parallaft(compile_source(source), config=config,
                     platform=apple_m2())


def transient_checker_fault(runtime, once=True):
    """Hook flipping one register bit in the first checker seen (once)."""
    fired = [0]

    def hook(proc, role):
        if role == "checker" and fired[0] == 0 and proc.user_time > 0.001:
            proc.cpu.regs.flip_bit("gpr", 8, 13)
            fired[0] += 1

    runtime.quantum_hooks.append(hook)
    return fired


class TestCheckerRetry:
    def test_transient_checker_fault_recovered(self):
        """A one-off checker fault is absorbed by a retry: the application
        survives with correct output and no reported error."""
        runtime = make_runtime(retry=True)
        fired = transient_checker_fault(runtime)
        stats = runtime.run()
        assert fired[0] == 1
        assert stats.checker_retries >= 1
        assert not stats.error_detected, stats.errors
        assert stats.exit_code == 0

    def test_without_retry_same_fault_kills_the_app(self):
        runtime = make_runtime(retry=False)
        fired = transient_checker_fault(runtime)
        stats = runtime.run()
        assert fired[0] == 1
        assert stats.error_detected

    def test_persistent_main_fault_still_reported(self):
        """A fault in the *main* copy survives the retry (the fresh checker
        disagrees with the corrupted end checkpoint again) and is reported."""
        from repro.isa.program import DATA_BASE
        runtime = make_runtime(retry=True)
        fired = [False]

        def hook(proc, role):
            if role == "main" and not fired[0] and proc.user_time > 0.002:
                proc.mem.store_word(DATA_BASE + 128, 0xBAD)
                fired[0] = True

        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        assert fired[0]
        assert stats.error_detected
        assert stats.checker_retries >= 1   # it tried

    def test_fault_free_run_unaffected_by_retry_mode(self):
        runtime = make_runtime(retry=True)
        stats = runtime.run()
        assert not stats.error_detected
        assert stats.checker_retries == 0

    def test_retry_timeout_fault(self):
        """Control-flow corruption (timeout detection) is also retryable."""
        runtime = make_runtime(retry=True)
        fired = [0]

        def hook(proc, role):
            if role == "checker" and fired[0] < 4 and proc.user_time > 0.001 \
                    and proc.name.startswith("checker-1") \
                    and "retry" not in proc.name:
                proc.cpu.regs.gprs[7] = 0  # reset loop counter: never ends
                fired[0] += 1

        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        assert fired[0] > 0
        assert not stats.error_detected, stats.errors
        assert stats.checker_retries >= 1


class TestErrorContainment:
    def test_output_held_until_previous_segments_verified(self):
        """With containment on, no write escapes while an earlier segment
        is still unverified: at every write, all previous segments are
        already CHECKED."""
        source = """
        global acc;
        func main() {
            var i; var j;
            for (i = 0; i < 8; i = i + 1) {
                for (j = 0; j < 6000; j = j + 1) { acc = acc + j; }
                print_int(acc % 1000003);
            }
        }
        """
        runtime = make_runtime(containment=True, period=150_000_000,
                               source=source)
        violations = []
        original_entry = runtime._main_syscall_entry

        def checked_entry(proc, sysno, args):
            action = original_entry(proc, sysno, args)
            from repro.kernel.process import ProcessState
            if sysno == abi.SYS_WRITE and proc.state == ProcessState.RUNNING:
                # The write is about to escape: every earlier segment must
                # already be verified.
                current = runtime.current.index if runtime.current else 1e9
                for segment in runtime.segments:
                    if segment.index < current and segment.live:
                        violations.append(segment.index)
            return action

        runtime._main_syscall_entry = checked_entry
        stats = runtime.run()
        assert not stats.error_detected
        assert stats.exit_code == 0
        assert violations == []

    def test_containment_costs_performance(self):
        source = """
        global acc;
        func main() {
            var i; var j;
            for (i = 0; i < 6; i = i + 1) {
                for (j = 0; j < 5000; j = j + 1) { acc = acc + j; }
                print_int(acc % 1000003);
            }
        }
        """
        contained = make_runtime(containment=True, period=150_000_000,
                                 source=source).run()
        free = make_runtime(containment=False, period=150_000_000,
                            source=source).run()
        assert not contained.error_detected and not free.error_detected
        assert contained.stdout == free.stdout
        # Holding syscalls until verification serializes main and checkers:
        # the paper rejects it for overhead reasons (§3.4).
        assert contained.main_wall_time > free.main_wall_time

    def test_containment_off_by_default(self):
        assert ParallaftConfig().error_containment is False


PRINT_LOOP = """
global acc;
func main() {
    var i; var j;
    for (i = 0; i < 6; i = i + 1) {
        for (j = 0; j < 5000; j = j + 1) { acc = acc + j; }
        print_int(acc % 1000003);
    }
}
"""


class TestContainmentWakeRegressions:
    """Regressions for two bugs in the containment stall/wake protocol.

    Both were caught by the trace invariant suite
    (tests/test_trace_invariants.py); these tests pin the user-visible
    symptoms directly.
    """

    def test_failed_segment_wakes_stalled_main(self):
        """Deadlock regression: with ``stop_on_error=False`` a FAILed
        segment never retires.  The error path must wake a main stalled
        waiting for that segment's verification — previously only the
        cap stall was woken, so the app hung forever (main WAITING, no
        runnable process) with its output truncated."""
        config = ParallaftConfig()
        config.slicing_period = 150_000_000
        config.error_containment = True
        config.stop_on_error = False
        config.max_live_segments = 2
        runtime = Parallaft(compile_source(PRINT_LOOP), config=config,
                            platform=apple_m2())
        corrupted = [None]

        def hook(proc, role):
            if corrupted[0] is not None or role != "checker":
                return
            if not runtime._main_stalled_for_containment:
                return
            current = runtime.current
            if current is None:
                return
            segment = runtime.segment_of_checker.get(proc.pid)
            if segment is None or segment.index >= current.index \
                    or not segment.live:
                return
            proc.cpu.regs.flip_bit("gpr", 8, 13)
            corrupted[0] = segment.index

        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        assert corrupted[0] is not None, "fault never fired"
        # The divergence is still reported...
        assert stats.error_detected
        assert stats.errors[0].segment_index == corrupted[0]
        # ...but the application runs to completion with full output.
        assert stats.exit_code == 0
        assert len(stats.stdout.splitlines()) == 6
        assert not runtime._main_stalled_for_containment

    def test_retirement_only_wakes_main_when_no_earlier_segment_live(self):
        """Premature-wake regression: any segment retirement used to
        clear the containment stall unconditionally, waking the main
        while *other* earlier segments were still unverified.  The wake
        must re-check the stall predicate (the held syscall is then
        re-issued, not skipped)."""
        from repro.trace import events as tev
        source = """
        global acc;
        func main() {
            var i; var j;
            for (i = 0; i < 5; i = i + 1) {
                for (j = 0; j < 20000; j = j + 1) { acc = acc + j; }
                print_int(acc % 1000003);
            }
        }
        """
        config = ParallaftConfig()
        config.slicing_period = 80_000_000
        config.error_containment = True
        config.max_live_segments = 6
        runtime = Parallaft(compile_source(source), config=config,
                            platform=apple_m2())
        stats = runtime.run()
        assert not stats.error_detected
        assert stats.exit_code == 0
        assert len(stats.stdout.splitlines()) == 5

        # The scenario must actually pile up several earlier live
        # segments at a containment stall, else it proves nothing.
        stalls = [e for e in runtime.trace.events(tev.MAIN_STALL)
                  if e.payload.get("reason") == tev.STALL_CONTAINMENT]
        assert stalls
        assert max(len(e.payload.get("waiting_on", [])) for e in stalls) >= 2

        # Replay the trace: at every containment wake, no earlier
        # segment may still be live.
        live = set()
        premature = []
        for event in runtime.trace:
            if event.kind == tev.SEGMENT_START:
                live.add(event.segment)
            elif event.kind in tev.SEGMENT_TERMINAL:
                live.discard(event.segment)
            elif (event.kind == tev.MAIN_WAKE
                  and event.payload.get("reason") == tev.STALL_CONTAINMENT):
                earlier = [s for s in live if s < event.segment]
                if earlier:
                    premature.append((event.segment, earlier))
        assert premature == []

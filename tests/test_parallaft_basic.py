"""Integration tests: programs run correctly under Parallaft and RAFT."""

import pytest

from repro.core import Parallaft, ParallaftConfig, RuntimeMode, SegmentStatus
from repro.minic import compile_source
from repro.sim import apple_m2, intel_14700

LOOP_PROGRAM = """
global cells[64];
func main() {
    var i; var round; var total;
    for (round = 0; round < 40; round = round + 1) {
        for (i = 0; i < 64; i = i + 1) {
            cells[i] = cells[i] + round * i;
        }
    }
    total = 0;
    for (i = 0; i < 64; i = i + 1) { total = total + cells[i]; }
    print_int(total);
}
"""
LOOP_EXPECTED = f"{sum(sum(r * i for r in range(40)) for i in range(64))}\n"


def run_protected(source, config=None, platform=None, files=None,
                  slicing_period=None, **kwargs):
    config = config or ParallaftConfig()
    if slicing_period is not None:
        config.slicing_period = slicing_period
    runtime = Parallaft(compile_source(source), config=config,
                        platform=platform or apple_m2(), files=files,
                        **kwargs)
    stats = runtime.run()
    return runtime, stats


class TestParallaftBasic:
    def test_simple_program_completes(self):
        runtime, stats = run_protected(LOOP_PROGRAM,
                                       slicing_period=2_000_000_000)
        assert stats.exit_code == 0
        assert stats.stdout == LOOP_EXPECTED
        assert not stats.error_detected

    def test_multiple_segments_created_and_checked(self):
        runtime, stats = run_protected(LOOP_PROGRAM,
                                       slicing_period=500_000_000)
        assert len(runtime.segments) >= 3
        assert all(s.status == SegmentStatus.CHECKED
                   for s in runtime.segments)
        assert stats.segments_checked == len(runtime.segments)

    def test_single_segment_when_period_huge(self):
        runtime, stats = run_protected(LOOP_PROGRAM,
                                       slicing_period=10**15)
        assert len(runtime.segments) == 1
        assert stats.segments_checked == 1

    def test_output_not_duplicated(self):
        """Checker writes are replayed, never passed to the OS."""
        _, stats = run_protected(
            'func main() { print_str("once\\n"); }')
        assert stats.stdout == "once\n"

    def test_checkers_run_on_little_cores(self):
        runtime, stats = run_protected(LOOP_PROGRAM,
                                       slicing_period=500_000_000)
        assert stats.checker_cycles_little > 0
        assert stats.all_wall_time >= stats.main_wall_time

    def test_syscall_results_replayed(self):
        """getpid/gettimeofday are nondeterministic between main and
        checker: without record/replay the checker would diverge."""
        _, stats = run_protected("""
        global stamp[4];
        func main() {
            var i;
            stamp[0] = getpid();
            stamp[1] = gettimeofday();
            for (i = 0; i < 30000; i = i + 1) {
                stamp[2] = stamp[2] + stamp[0] + stamp[1];
            }
            print_int(stamp[2] % 1000000);
        }
        """, slicing_period=300_000_000)
        assert not stats.error_detected
        assert stats.syscalls_replayed > 0

    def test_nondet_instructions_replayed(self):
        """rdtsc / cpu_model diverge across cores and time; the runtime
        traps and replays them (paper §4.3.4)."""
        _, stats = run_protected("""
        global trace[4];
        func main() {
            var i; var acc;
            trace[0] = rdtsc();
            trace[1] = cpu_model();
            acc = 0;
            for (i = 0; i < 30000; i = i + 1) {
                acc = acc + trace[0] % 97 + trace[1] % 89;
            }
            trace[2] = rdtsc();
            print_int(acc % 100000);
        }
        """, slicing_period=300_000_000)
        assert not stats.error_detected
        assert stats.nondet_recorded >= 3

    def test_cpu_model_would_diverge_without_replay(self):
        """Sanity: a little core really does report a different cpu model,
        so the mrs trap is load-bearing."""
        from repro.cpu.nondet import MIDR_BIG, MIDR_LITTLE
        assert MIDR_BIG != MIDR_LITTLE

    def test_read_input_file_replayed(self):
        _, stats = run_protected("""
        func main() {
            var fd; var p; var i; var total;
            fd = open("data.bin");
            p = mmap_anon(16384);
            read(fd, p, 800);
            total = 0;
            for (i = 0; i < 100; i = i + 1) {
                total = total + peek64(p + i * 8);
            }
            print_int(total);
        }
        """, files={"data.bin": b"".join(i.to_bytes(8, "little")
                                         for i in range(100))},
            slicing_period=200_000_000)
        assert stats.stdout == f"{sum(range(100))}\n"
        assert not stats.error_detected

    def test_aslr_mmap_replay(self):
        """ASLR gives main and checker different mmap addresses unless the
        runtime pins the checker's call with MAP_FIXED (paper §4.3.2)."""
        _, stats = run_protected("""
        func main() {
            var p; var i;
            p = mmap_anon(32768);
            for (i = 0; i < 1000; i = i + 1) { poke64(p + i * 8, i); }
            print_int(peek64(p + 999 * 8) + p % 2);
        }
        """, slicing_period=100_000_000)
        assert not stats.error_detected

    def test_getrandom_replayed(self):
        _, stats = run_protected("""
        func main() {
            var p; var i; var total;
            p = mmap_anon(4096);
            getrandom(p, 64);
            total = 0;
            for (i = 0; i < 8; i = i + 1) { total = total + peek8(p + i); }
            print_int(total);
        }
        """, slicing_period=100_000_000)
        assert not stats.error_detected

    def test_file_backed_mmap_splits_segment(self):
        runtime, stats = run_protected("""
        func main() {
            var fd; var p; var i; var total;
            fd = open("blob.bin");
            p = mmap_file(fd, 4096);
            total = 0;
            for (i = 0; i < 50; i = i + 1) { total = total + peek64(p + i * 8); }
            print_int(total);
        }
        """, files={"blob.bin": b"".join(i.to_bytes(8, "little")
                                         for i in range(512))})
        assert stats.stdout == f"{sum(range(50))}\n"
        assert stats.mmap_splits == 1
        assert not stats.error_detected

    def test_sbrk_heap_replay(self):
        _, stats = run_protected("""
        func main() {
            var p; var i;
            p = sbrk(65536);
            for (i = 0; i < 2000; i = i + 1) { poke64(p + i * 8, i * 3); }
            print_int(peek64(p + 1999 * 8));
        }
        """, slicing_period=100_000_000)
        assert stats.stdout == f"{1999 * 3}\n"
        assert not stats.error_detected

    def test_stats_keys(self):
        _, stats = run_protected(LOOP_PROGRAM, slicing_period=500_000_000)
        dump = stats.to_dict()
        assert dump["timing.all_wall_time"] >= dump["timing.main_wall_time"]
        assert dump["counter.checkpoint_count"] >= 1
        assert dump["hwmon.total_energy"] > 0

    def test_x86_trap_nondet_path(self):
        _, stats = run_protected("""
        global t[2];
        func main() {
            var i; var acc;
            t[0] = rdtsc();
            t[1] = cpuid();
            acc = 0;
            for (i = 0; i < 20000; i = i + 1) { acc = acc + i + t[0] % 3; }
            print_int(acc % 10007);
        }
        """, platform=intel_14700(), slicing_period=300_000_000)
        assert not stats.error_detected
        assert stats.nondet_recorded >= 2


class TestRaftMode:
    def test_raft_completes_and_matches(self):
        config = ParallaftConfig.raft()
        runtime, stats = run_protected(LOOP_PROGRAM, config=config)
        assert stats.exit_code == 0
        assert stats.stdout == LOOP_EXPECTED
        assert not stats.error_detected
        assert len(runtime.segments) == 1

    def test_raft_checker_on_big_core(self):
        config = ParallaftConfig.raft()
        _, stats = run_protected(LOOP_PROGRAM, config=config)
        assert stats.checker_cycles_big > 0
        assert stats.checker_cycles_little == 0

    def test_raft_syscall_comparison_still_works(self):
        config = ParallaftConfig.raft()
        _, stats = run_protected("""
        func main() {
            var i; var x;
            x = getpid() + gettimeofday();
            for (i = 0; i < 10000; i = i + 1) { x = x + i; }
            print_int(x % 65536);
        }
        """, config=config)
        assert not stats.error_detected
        assert stats.syscalls_replayed > 0

    def test_raft_does_no_state_comparison(self):
        config = ParallaftConfig.raft()
        runtime, stats = run_protected(LOOP_PROGRAM, config=config)
        assert runtime.dirty_tracker.pages_scanned == 0


class TestDeterminismUnderRuntime:
    def test_output_identical_to_native(self):
        from helpers import run_minic, stdout_of
        kernel, _, _ = run_minic(LOOP_PROGRAM)
        native = stdout_of(kernel)
        _, stats = run_protected(LOOP_PROGRAM, slicing_period=400_000_000)
        assert stats.stdout == native

    def test_repeated_runs_identical(self):
        outs = set()
        for seed in (0, 1, 2):
            _, stats = run_protected(LOOP_PROGRAM,
                                     slicing_period=400_000_000, seed=seed)
            assert not stats.error_detected
            outs.add(stats.stdout)
        assert len(outs) == 1

"""Tests for the platform/timing/energy simulation layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.kernel import Kernel
from repro.minic import compile_source
from repro.sim import (
    Executor,
    apple_m2,
    intel_14700,
    make_cores,
    platform_by_name,
)

from helpers import make_machine


class TestPlatformConfig:
    def test_presets_by_name(self):
        assert platform_by_name("apple_m2").name == "apple_m2"
        assert platform_by_name("intel_14700").arch == "x86_64"
        with pytest.raises(ValueError):
            platform_by_name("riscv")

    def test_apple_m2_matches_table3(self):
        platform = apple_m2()
        assert platform.n_big == 4 and platform.n_little == 4
        assert platform.page_size == 16384
        assert platform.arch == "aarch64"
        assert platform.big_freq_hz == pytest.approx(3.5e9)
        assert platform.separate_voltage_domain

    def test_intel_differences(self):
        intel = intel_14700()
        assert intel.page_size == 4096
        assert not intel.separate_voltage_domain
        assert intel.branch_counter_includes_far
        assert intel.slicing_unit == "instructions"

    def test_miss_factor_monotone_in_footprint(self):
        platform = apple_m2()
        values = [platform.miss_factor("little", kb << 10)
                  for kb in (16, 64, 128, 192, 256, 512)]
        assert values == sorted(values)
        assert values[0] == 0.0
        assert values[-1] == 1.0

    def test_cache_sharing_raises_misses(self):
        platform = apple_m2()
        footprint = 200 << 10
        alone = platform.miss_factor("big", footprint, n_active=1)
        shared = platform.miss_factor("big", footprint, n_active=2)
        assert shared > alone

    def test_cpi_grows_with_memory_intensity(self):
        platform = apple_m2()
        fp = 400 << 10
        assert platform.cpi("little", 0.3, fp) > platform.cpi("little", 0.0, fp)
        assert platform.cpi("little", 0.3, fp) > platform.cpi("big", 0.3, fp)

    def test_little_slowdown_range(self):
        platform = apple_m2()
        compute = platform.little_slowdown(0.05, 48 << 10)
        memory = platform.little_slowdown(0.25, 400 << 10)
        assert 1.3 < compute < 2.5       # paper: sjeng ~2x
        assert 3.0 < memory < 9.0        # paper: mcf >4x, up to 8x

    def test_dvfs_power_scaling(self):
        platform = apple_m2()
        full = platform.core_dyn_power_w("little", platform.little_freq_max_hz)
        half = platform.core_dyn_power_w("little",
                                         platform.little_freq_max_hz / 2)
        assert half == pytest.approx(full / 8)   # separate rail: f^3
        intel = intel_14700()
        ifull = intel.core_dyn_power_w("little", intel.little_freq_max_hz)
        ihalf = intel.core_dyn_power_w("little",
                                       intel.little_freq_max_hz / 2)
        assert ihalf == pytest.approx(ifull / 2)  # shared rail: f^1

    @given(st.floats(min_value=0.0, max_value=0.5),
           st.integers(min_value=0, max_value=1 << 21),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_cpi_always_at_least_base(self, ratio, footprint, n_active):
        platform = apple_m2()
        assert platform.cpi("big", ratio, footprint, n_active) >= \
            platform.big_cpi_base
        assert platform.cpi("little", ratio, footprint, n_active) >= \
            platform.little_cpi_base


class TestCores:
    def test_make_cores_layout(self):
        cores = make_cores(4, 4, 3.5e9, 2.42e9, 0.6e9)
        assert sum(1 for c in cores if c.is_big) == 4
        assert cores[0].is_big and not cores[7].is_big
        assert cores[4].freq_hz == pytest.approx(2.42e9)

    def test_set_frequency_clamped(self):
        cores = make_cores(1, 1, 3.5e9, 2.42e9, 0.6e9)
        little = cores[1]
        little.set_frequency(10e9)
        assert little.freq_hz == pytest.approx(2.42e9)
        little.set_frequency(0.1e9)
        assert little.freq_hz == pytest.approx(0.6e9)

    def test_bad_cluster_rejected(self):
        from repro.sim.cores import Core
        with pytest.raises(ValueError):
            Core(0, "medium", 1e9, 1e9, 1e9)


class TestExecutor:
    def test_page_size_mismatch_rejected(self):
        kernel = Kernel(page_size=4096)
        with pytest.raises(SimulationError):
            Executor(kernel, apple_m2())

    def test_free_core_prefers_least_busy(self):
        kernel, executor = make_machine()
        a = executor.free_core("big")
        a.local_time = 5.0
        b = executor.free_core("big")
        assert b is not a

    def test_charge_advances_core_time_and_energy(self):
        kernel, executor = make_machine()
        proc = kernel.spawn(compile_source("func main() {}"))
        core = executor.schedule_default(proc)
        before = core.energy_joules
        seconds = executor.charge(proc, 3.5e9)  # one second of big cycles
        assert seconds == pytest.approx(1.0)
        assert core.local_time >= 1.0
        assert core.energy_joules > before
        assert proc.sys_time == pytest.approx(1.0)

    def test_charge_without_core_raises(self):
        """Charging a core-less process used to silently bill big-core
        frequency with no energy or core-time accounting; it is now a
        programming error."""
        kernel, executor = make_machine()
        proc = kernel.spawn(compile_source("func main() {}"))
        assert proc.core is None
        with pytest.raises(SimulationError, match="charge_deferred"):
            executor.charge(proc, 1e6)
        assert proc.sys_time == 0.0

    def test_charge_deferred_parks_until_placement(self):
        kernel, executor = make_machine()
        proc = kernel.spawn(compile_source("func main() {}"))
        executor.charge_deferred(proc, 3.5e9)
        assert proc.pending_charges
        assert proc.sys_time == 0.0
        core = executor.schedule_default(proc)
        # Placement flushes the parked cycles at the real core frequency,
        # with energy and core-time accounted.
        assert proc.pending_charges == []
        assert proc.sys_time == pytest.approx(3.5e9 / core.freq_hz)
        assert core.energy_joules > 0.0

    def test_charge_deferred_immediate_when_placed(self):
        kernel, executor = make_machine()
        proc = kernel.spawn(compile_source("func main() {}"))
        executor.schedule_default(proc)
        executor.charge_deferred(proc, 3.5e9)
        assert proc.pending_charges == []
        assert proc.sys_time == pytest.approx(1.0)

    def test_total_energy_includes_idle_and_dram(self):
        kernel, executor = make_machine()
        proc = kernel.spawn(compile_source(
            "func main() { var i; for (i = 0; i < 30000; i = i + 1) {} }"))
        executor.schedule_default(proc)
        executor.run()
        wall = executor.wall_time()
        total = executor.total_energy_joules()
        busy_only = sum(c.energy_joules for c in executor.cores)
        assert total > busy_only  # DRAM background + idle statics
        assert total > apple_m2().dram_background_w * wall

    def test_run_guard_against_livelock(self):
        kernel, executor = make_machine()
        proc = kernel.spawn(compile_source("""
        func main() { var i; while (1) { i = i + 1; } }
        """))
        executor.schedule_default(proc)
        with pytest.raises(SimulationError):
            executor.run(max_steps=50)

    def test_shutdown_stops_stepping(self):
        kernel, executor = make_machine()
        proc = kernel.spawn(compile_source(
            "func main() { var i; for (i = 0; i < 99999; i = i + 1) {} }"))
        executor.schedule_default(proc)
        executor.step()
        executor.shutdown()
        assert executor.step() is False


class TestContention:
    def test_corunner_slows_memory_bound_process(self):
        """Two memory-bound processes on the big cluster run slower than
        one alone (the RAFT contention mechanism)."""
        from repro.workloads import synthetic_source
        source = synthetic_source(total_iters=6000, footprint_bytes=393216,
                                  mem_ops_per_iter=4)

        def wall_time(pair):
            kernel, executor = make_machine()
            a = kernel.spawn(compile_source(source))
            executor.assign(a, executor.big_cores[0])
            if pair:
                b = kernel.spawn(compile_source(source))
                executor.assign(b, executor.big_cores[1])
            executor.run()
            return a.user_time

        assert wall_time(True) > 1.05 * wall_time(False)

    def test_compute_bound_processes_barely_interfere(self):
        source = """
        func main() { var i; var x; for (i = 0; i < 30000; i = i + 1) { x = x * 3 + i; } }
        """

        def user_time(pair):
            kernel, executor = make_machine()
            a = kernel.spawn(compile_source(source))
            executor.assign(a, executor.big_cores[0])
            if pair:
                b = kernel.spawn(compile_source(source))
                executor.assign(b, executor.big_cores[1])
            executor.run()
            return a.user_time

        assert user_time(True) < 1.1 * user_time(False)

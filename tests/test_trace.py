"""Unit tests for the event-trace subsystem (repro.trace).

Covers the ring buffer, the Chrome trace_event / text exporters, and each
invariant of the offline :class:`InvariantChecker` on hand-built event
lists (so every violation class is exercised without a full runtime run —
tests/test_trace_invariants.py does the end-to-end matrix).
"""

import json

import pytest

from repro.trace import (
    InvariantChecker,
    NULL_TRACE,
    TraceBuffer,
    TraceEvent,
)
from repro.trace import events as tev


class TestTraceBuffer:
    def test_emit_records_event(self):
        trace = TraceBuffer()
        event = trace.emit(tev.SEGMENT_START, pid=3, role="main",
                           segment=1, ts=0.5, checker_pid=4)
        assert len(trace) == 1
        assert event.kind == tev.SEGMENT_START
        assert event.pid == 3
        assert event.segment == 1
        assert event.payload == {"checker_pid": 4}

    def test_disabled_buffer_is_a_noop(self):
        trace = TraceBuffer(enabled=False)
        assert trace.emit(tev.ERROR, pid=1) is None
        assert len(trace) == 0
        assert len(NULL_TRACE) == 0

    def test_clock_supplies_timestamps(self):
        now = [0.0]
        trace = TraceBuffer(clock=lambda: now[0])
        trace.emit(tev.SEGMENT_START, segment=0)
        now[0] = 1.25
        trace.emit(tev.SEGMENT_CHECKED, segment=0)
        first, second = trace.events()
        assert first.ts == 0.0
        assert second.ts == 1.25

    def test_ring_drops_oldest_and_counts(self):
        trace = TraceBuffer(capacity=4)
        for i in range(10):
            trace.emit(tev.SYSCALL_RECORD, pid=1, sysno=i)
        assert len(trace) == 4
        assert trace.dropped == 6
        assert [e.payload["sysno"] for e in trace] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_events_filter_by_kind(self):
        trace = TraceBuffer()
        trace.emit(tev.SEGMENT_START, segment=0)
        trace.emit(tev.SYSCALL_RECORD, pid=1)
        trace.emit(tev.SEGMENT_START, segment=1)
        assert len(trace.events(tev.SEGMENT_START)) == 2
        assert len(trace.events(tev.ROLLBACK)) == 0

    def test_describe_mentions_fields(self):
        event = TraceEvent(ts=0.001, kind=tev.MAIN_STALL, pid=7,
                           role="main", core="big0", segment=3,
                           payload={"reason": tev.STALL_CAP})
        text = event.describe()
        assert tev.MAIN_STALL in text
        assert "pid=7" in text
        assert "big0" in text
        assert "reason=cap" in text


class TestChromeExport:
    def make_trace(self):
        trace = TraceBuffer()
        trace.emit(tev.SEGMENT_START, pid=1, role="main", segment=0,
                   ts=0.0)
        trace.emit(tev.SYSCALL_RECORD, pid=1, role="main", segment=0,
                   ts=0.001, sysno=64, classification="global")
        trace.emit(tev.SEGMENT_CHECKED, pid=2, role="checker", segment=0,
                   ts=0.002)
        return trace

    def test_structure_and_json_round_trip(self):
        doc = self.make_trace().chrome_trace()
        text = json.dumps(doc)
        again = json.loads(text)
        assert again["displayTimeUnit"] == "ms"
        events = again["traceEvents"]
        assert all(isinstance(e["ph"], str) for e in events)
        instants = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in instants] == [
            tev.SEGMENT_START, tev.SYSCALL_RECORD, tev.SEGMENT_CHECKED]
        # Timestamps are microseconds.
        assert instants[1]["ts"] == pytest.approx(1000.0)
        assert instants[1]["args"]["classification"] == "global"

    def test_segment_span_synthesized(self):
        doc = self.make_trace().chrome_trace()
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        span = spans[0]
        assert span["pid"] == 0
        assert span["dur"] == pytest.approx(2000.0)
        assert span["args"]["outcome"] == tev.SEGMENT_CHECKED

    def test_process_name_metadata(self):
        doc = self.make_trace().chrome_trace()
        names = {e["pid"]: e["args"]["name"]
                 for e in doc["traceEvents"] if e["ph"] == "M"}
        assert names[0] == "segments"
        assert "main" in names[1]
        assert "checker" in names[2]

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "out.json"
        self.make_trace().write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestTimeline:
    def test_timeline_tail_and_drop_notice(self):
        trace = TraceBuffer(capacity=3)
        for i in range(5):
            trace.emit(tev.SYSCALL_RECORD, pid=1, ts=i * 0.001, sysno=i)
        text = trace.timeline(last=2)
        assert "2 earlier events dropped" in text
        assert text.count(tev.SYSCALL_RECORD) == 2

    def test_timeline_all_events(self):
        trace = TraceBuffer()
        trace.emit(tev.SEGMENT_START, segment=0)
        trace.emit(tev.SEGMENT_CHECKED, segment=0)
        assert len(trace.timeline().splitlines()) == 2


def _clean_run_events():
    """A minimal well-formed trace: two segments, clean lifecycle."""
    trace = TraceBuffer()
    trace.emit(tev.SEGMENT_START, pid=1, role="main", segment=0, ts=0.0)
    trace.emit(tev.CORE_ASSIGN, pid=1, core="big0", ts=0.0)
    trace.emit(tev.SEGMENT_READY, pid=1, segment=0, ts=0.001)
    trace.emit(tev.SEGMENT_START, pid=1, role="main", segment=1, ts=0.001)
    trace.emit(tev.CORE_ASSIGN, pid=2, role="checker", core="little0",
               segment=0, ts=0.001)
    trace.emit(tev.SEGMENT_CHECKED, pid=2, segment=0, ts=0.002)
    trace.emit(tev.CORE_UNASSIGN, pid=2, core="little0", ts=0.002)
    trace.emit(tev.SEGMENT_READY, pid=1, segment=1, ts=0.003)
    trace.emit(tev.SEGMENT_CHECKED, pid=2, segment=1, ts=0.004)
    return trace


class TestInvariantChecker:
    def test_clean_trace_passes_all_invariants(self):
        checker = InvariantChecker(error_containment=True, recovery=True)
        assert checker.check(_clean_run_events()) == []
        checker.assert_ok(_clean_run_events())

    # -- (a) containment ------------------------------------------------

    def test_global_syscall_with_earlier_live_segment_flagged(self):
        trace = TraceBuffer()
        trace.emit(tev.SEGMENT_START, pid=1, segment=0, ts=0.0)
        trace.emit(tev.SEGMENT_START, pid=1, segment=1, ts=0.001)
        trace.emit(tev.SYSCALL_RECORD, pid=1, segment=1, ts=0.002,
                   sysno=64, classification="global")
        violations = InvariantChecker(error_containment=True).check(trace)
        assert [v.invariant for v in violations] == ["containment"]
        # Without containment configured the same trace is legal.
        assert InvariantChecker().check(trace) == []

    def test_premature_containment_wake_flagged(self):
        trace = TraceBuffer()
        trace.emit(tev.SEGMENT_START, pid=1, segment=0, ts=0.0)
        trace.emit(tev.SEGMENT_START, pid=1, segment=1, ts=0.001)
        trace.emit(tev.MAIN_STALL, pid=1, segment=1, ts=0.002,
                   reason=tev.STALL_CONTAINMENT)
        trace.emit(tev.MAIN_WAKE, pid=1, segment=1, ts=0.003,
                   reason=tev.STALL_CONTAINMENT)
        trace.emit(tev.SEGMENT_CHECKED, pid=2, segment=0, ts=0.004)
        trace.emit(tev.SEGMENT_CHECKED, pid=2, segment=1, ts=0.005)
        violations = InvariantChecker(error_containment=True).check(trace)
        assert [v.invariant for v in violations] == ["containment"]

    def test_wake_after_verification_is_legal(self):
        trace = TraceBuffer()
        trace.emit(tev.SEGMENT_START, pid=1, segment=0, ts=0.0)
        trace.emit(tev.SEGMENT_START, pid=1, segment=1, ts=0.001)
        trace.emit(tev.MAIN_STALL, pid=1, segment=1, ts=0.002,
                   reason=tev.STALL_CONTAINMENT)
        trace.emit(tev.SEGMENT_CHECKED, pid=2, segment=0, ts=0.003)
        trace.emit(tev.MAIN_WAKE, pid=1, segment=1, ts=0.004,
                   reason=tev.STALL_CONTAINMENT)
        trace.emit(tev.SEGMENT_CHECKED, pid=2, segment=1, ts=0.005)
        assert InvariantChecker(error_containment=True).check(trace) == []

    # -- (b) stall pairing ----------------------------------------------

    def test_unpaired_stall_flagged(self):
        trace = TraceBuffer()
        trace.emit(tev.MAIN_STALL, pid=1, ts=0.0,
                   reason=tev.STALL_CONTAINMENT)
        violations = InvariantChecker().check(trace)
        assert [v.invariant for v in violations] == ["stall_pairing"]
        assert "pid 1" in violations[0].message

    @pytest.mark.parametrize("resolution", [
        tev.MAIN_WAKE, tev.PROCESS_EXIT])
    def test_resolved_stall_passes(self, resolution):
        trace = TraceBuffer()
        trace.emit(tev.MAIN_STALL, pid=1, ts=0.0, reason=tev.STALL_CAP)
        trace.emit(resolution, pid=1, ts=0.001)
        assert InvariantChecker().check(trace) == []

    def test_app_terminate_excuses_pending_stalls(self):
        trace = TraceBuffer()
        trace.emit(tev.CHECKER_STALL, pid=2, ts=0.0)
        trace.emit(tev.APP_TERMINATE, ts=0.001)
        assert InvariantChecker().check(trace) == []

    def test_dropped_events_skip_pairing_checks(self):
        trace = TraceBuffer(capacity=2)
        trace.emit(tev.SYSCALL_RECORD, pid=1, sysno=0)
        trace.emit(tev.SYSCALL_RECORD, pid=1, sysno=1)
        trace.emit(tev.MAIN_STALL, pid=1, reason=tev.STALL_CAP)
        assert trace.dropped > 0
        assert InvariantChecker().check(trace) == []

    # -- (c) core exclusivity -------------------------------------------

    def test_double_booked_core_flagged(self):
        trace = TraceBuffer()
        trace.emit(tev.CORE_ASSIGN, pid=1, core="big0", ts=0.0)
        trace.emit(tev.CORE_ASSIGN, pid=2, core="big0", ts=0.001)
        violations = InvariantChecker().check(trace)
        assert [v.invariant for v in violations] == ["core_exclusivity"]

    def test_unassign_frees_core(self):
        trace = TraceBuffer()
        trace.emit(tev.CORE_ASSIGN, pid=1, core="big0", ts=0.0)
        trace.emit(tev.CORE_UNASSIGN, pid=1, core="big0", ts=0.001)
        trace.emit(tev.CORE_ASSIGN, pid=2, core="big0", ts=0.002)
        assert InvariantChecker().check(trace) == []

    # -- (d) segment completion -----------------------------------------

    def test_ready_segment_without_terminal_flagged(self):
        trace = TraceBuffer()
        trace.emit(tev.SEGMENT_START, pid=1, segment=0, ts=0.0)
        trace.emit(tev.SEGMENT_READY, pid=1, segment=0, ts=0.001)
        violations = InvariantChecker().check(trace)
        assert [v.invariant for v in violations] == ["segment_completion"]

    @pytest.mark.parametrize("terminal", [
        tev.SEGMENT_CHECKED, tev.SEGMENT_FAILED, tev.SEGMENT_ROLLED_BACK])
    def test_any_terminal_state_completes_segment(self, terminal):
        trace = TraceBuffer()
        trace.emit(tev.SEGMENT_START, pid=1, segment=0, ts=0.0)
        trace.emit(tev.SEGMENT_READY, pid=1, segment=0, ts=0.001)
        trace.emit(terminal, pid=1, segment=0, ts=0.002)
        assert InvariantChecker().check(trace) == []

    # -- (e) output commit ----------------------------------------------

    def _rolled_back_write(self, truncate_to):
        trace = TraceBuffer()
        trace.emit(tev.SEGMENT_START, pid=1, segment=0, ts=0.0)
        trace.emit(tev.CONSOLE_WRITE, pid=1, segment=0, ts=0.001,
                   stream="stdout", start=0, end=4)
        if truncate_to is not None:
            trace.emit(tev.CONSOLE_TRUNCATE, ts=0.002, stream="stdout",
                       length=truncate_to)
        trace.emit(tev.SEGMENT_ROLLED_BACK, segment=0, ts=0.003)
        return trace

    def test_untruncated_rolled_back_output_flagged(self):
        violations = InvariantChecker(recovery=True).check(
            self._rolled_back_write(truncate_to=None))
        assert [v.invariant for v in violations] == ["output_commit"]

    def test_truncated_rolled_back_output_passes(self):
        assert InvariantChecker(recovery=True).check(
            self._rolled_back_write(truncate_to=0)) == []

    def test_partial_truncate_does_not_cover_write(self):
        # Truncating back to length 2 leaves bytes [0:2] of the write in
        # place — the write is not fully revoked.
        violations = InvariantChecker(recovery=True).check(
            self._rolled_back_write(truncate_to=2))
        assert [v.invariant for v in violations] == ["output_commit"]

    def test_recovery_gate(self):
        assert InvariantChecker(recovery=False).check(
            self._rolled_back_write(truncate_to=None)) == []

    # -- assert_ok ------------------------------------------------------

    def test_assert_ok_raises_with_detail(self):
        trace = TraceBuffer()
        trace.emit(tev.MAIN_STALL, pid=9, ts=0.0, reason=tev.STALL_CAP)
        with pytest.raises(AssertionError, match="stall_pairing"):
            InvariantChecker().assert_ok(trace)

"""Property tests for the ISA toolchain: encode/decode and
assemble/disassemble round trips over randomly generated instructions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (
    Instr,
    assemble,
    decode_instr,
    decode_program_code,
    disassemble_program,
    encode_instr,
    encode_program_code,
)
from repro.isa import instructions as ins
from repro.isa.program import CODE_BASE, INSTR_SIZE, Program
from repro.isa.registers import NUM_FPR, NUM_GPR, NUM_VEC


def _reg_for(op, field):
    """Legal register index range for an opcode/field pair."""
    fp_ops = {ins.FADD, ins.FSUB, ins.FMUL, ins.FDIV, ins.FLI, ins.FMOV}
    vec_ops = {ins.VADD, ins.VMUL, ins.VXOR}
    if op in fp_ops:
        return st.integers(0, NUM_FPR - 1)
    if op in vec_ops:
        return st.integers(0, NUM_VEC - 1)
    return st.integers(0, NUM_GPR - 1)


@st.composite
def instructions(draw, n_instrs=8):
    """A random but *assemblable* instruction (labels resolved in-range)."""
    shapes = {
        "r3": [ins.ADD, ins.SUB, ins.MUL, ins.AND, ins.OR, ins.XOR,
               ins.SLT, ins.FADD, ins.FMUL, ins.VADD, ins.VXOR],
        "r2imm": [ins.ADDI, ins.ANDI, ins.SLLI, ins.LD, ins.ST],
        "r1imm": [ins.LI, ins.MRS],
        "r2": [ins.MOV, ins.FMOV],
        "branch": [ins.BEQ, ins.BNE, ins.BLT, ins.BGE],
        "imm": [ins.JMP, ins.JAL],
        "none": [ins.NOP, ins.SYSCALL, ins.HALT],
    }
    shape = draw(st.sampled_from(sorted(shapes)))
    op = draw(st.sampled_from(shapes[shape]))
    imm_small = st.integers(-(2**31), 2**31 - 1)
    target = st.integers(0, n_instrs - 1).map(
        lambda i: CODE_BASE + i * INSTR_SIZE)
    if shape == "r3":
        return Instr(op, draw(_reg_for(op, "a")), draw(_reg_for(op, "b")),
                     draw(_reg_for(op, "c")))
    if shape == "r2imm":
        return Instr(op, draw(_reg_for(op, "a")), draw(_reg_for(op, "b")),
                     imm=draw(imm_small))
    if shape == "r1imm":
        return Instr(op, draw(_reg_for(op, "a")), imm=draw(imm_small))
    if shape == "r2":
        return Instr(op, draw(_reg_for(op, "a")), draw(_reg_for(op, "b")))
    if shape == "branch":
        return Instr(op, b=draw(st.integers(0, NUM_GPR - 1)),
                     c=draw(st.integers(0, NUM_GPR - 1)), imm=draw(target))
    if shape == "imm":
        return Instr(op, imm=draw(target))
    return Instr(op)


class TestEncodingRoundTrip:
    @given(instructions())
    @settings(max_examples=120, deadline=None)
    def test_encode_decode_identity(self, instr):
        assert decode_instr(encode_instr(instr)) == instr

    @given(st.lists(instructions(), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_program_blob_round_trip(self, instrs):
        blob = encode_program_code(instrs)
        assert decode_program_code(blob) == instrs

    @given(st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=40, deadline=None)
    def test_float_imm_round_trip(self, value):
        instr = Instr(ins.FLI, 3, imm=value)
        assert decode_instr(encode_instr(instr)).imm == value


class TestDisassemblerRoundTrip:
    @given(st.lists(instructions(), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_disassemble_reassemble_identity(self, instrs):
        program = Program(list(instrs), labels={}, name="prop")
        text = disassemble_program(program)
        reassembled = assemble(text)
        assert reassembled.instrs == program.instrs

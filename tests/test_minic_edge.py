"""Edge-case tests for the mini-C compiler and the runtime prelude."""

import pytest

from repro.common.errors import CompileError
from repro.minic import compile_source, compile_to_asm

from helpers import run_minic, stdout_of


class TestPreludeEdgeCases:
    def test_print_int_min_int(self):
        kernel, _, _ = run_minic(
            "func main() { print_int(0 - 9223372036854775807 - 1); }")
        assert stdout_of(kernel) == "-9223372036854775808\n"

    def test_print_int_max_int(self):
        kernel, _, _ = run_minic(
            "func main() { print_int(9223372036854775807); }")
        assert stdout_of(kernel) == "9223372036854775807\n"

    def test_print_float_values(self):
        kernel, _, _ = run_minic("""
        func main() {
            print_float(3.25);
            print_float(0.0 - 1.5);
            print_float(0.0);
        }
        """)
        lines = stdout_of(kernel).splitlines()
        assert lines[0] == "3.250000"
        assert lines[1] == "-1.500000"
        assert lines[2] == "0.000000"

    def test_fsqrt_accuracy(self):
        kernel, _, _ = run_minic("""
        func main() {
            float r;
            r = float(fsqrt(2.0));
            print_int(int(r * 1000000.0));
        }
        """)
        value = int(stdout_of(kernel).strip())
        assert abs(value - 1414213) <= 2

    def test_fsqrt_of_nonpositive_is_zero(self):
        kernel, _, _ = run_minic("""
        func main() {
            print_int(int(float(fsqrt(0.0 - 4.0))));
            print_int(int(float(fsqrt(0.0))));
        }
        """)
        assert stdout_of(kernel) == "0\n0\n"

    def test_rand_below_bounds(self):
        kernel, _, _ = run_minic("""
        func main() {
            var i; var v; var bad;
            srand64(99);
            bad = 0;
            for (i = 0; i < 200; i = i + 1) {
                v = rand_below(17);
                if (v < 0 || v >= 17) { bad = bad + 1; }
            }
            print_int(bad);
        }
        """)
        assert stdout_of(kernel) == "0\n"

    def test_srand_zero_becomes_nonzero(self):
        kernel, _, _ = run_minic("""
        func main() {
            srand64(0);
            print_int(rand64() != 0);
        }
        """)
        assert stdout_of(kernel) == "1\n"


class TestCompilerEdgeCases:
    def test_else_if_chain_four_deep(self):
        kernel, _, _ = run_minic("""
        func classify(x) {
            if (x < 10) { return 1; }
            else if (x < 20) { return 2; }
            else if (x < 30) { return 3; }
            else { return 4; }
        }
        func main() {
            print_int(classify(5) * 1000 + classify(15) * 100
                      + classify(25) * 10 + classify(99));
        }
        """)
        assert stdout_of(kernel) == "1234\n"

    def test_nested_loops_with_break_continue(self):
        kernel, _, _ = run_minic("""
        func main() {
            var i; var j; var total;
            for (i = 0; i < 5; i = i + 1) {
                j = 0;
                while (1) {
                    j = j + 1;
                    if (j > i) { break; }
                    if (j % 2 == 0) { continue; }
                    total = total + j;
                }
            }
            print_int(total);
        }
        """)
        # i=0:0  i=1:1  i=2:1  i=3:1+3  i=4:1+3 -> 10
        assert stdout_of(kernel) == "10\n"

    def test_six_parameter_function(self):
        kernel, _, _ = run_minic("""
        func pack(a, b, c, d, e, f) {
            return a + b * 10 + c * 100 + d * 1000 + e * 10000 + f * 100000;
        }
        func main() { print_int(pack(1, 2, 3, 4, 5, 6)); }
        """)
        assert stdout_of(kernel) == "654321\n"

    def test_seven_parameters_rejected(self):
        with pytest.raises(CompileError):
            compile_to_asm("""
            func f(a, b, c, d, e, g, h) { return 0; }
            func main() {}
            """)

    def test_mixed_int_float_params(self):
        kernel, _, _ = run_minic("""
        func blend(a, float x, b, float y) {
            return a + b + int(x * 10.0) + int(y * 100.0);
        }
        func main() { print_int(blend(1, 0.5, 2, 0.25)); }
        """)
        assert stdout_of(kernel) == "33\n"

    def test_recursive_float_function(self):
        kernel, _, _ = run_minic("""
        func fpower(float base, n) {
            if (n == 0) { return 1.0; }
            return base * float(fpower(base, n - 1));
        }
        func main() { print_int(int(float(fpower(2.0, 10)))); }
        """)
        assert stdout_of(kernel) == "1024\n"

    def test_global_initializer_list(self):
        kernel, _, _ = run_minic("""
        global primes[8] = {2, 3, 5, 7, 11, 13, 17, 19};
        func main() {
            var i; var total;
            for (i = 0; i < 8; i = i + 1) { total = total + primes[i]; }
            print_int(total);
        }
        """)
        assert stdout_of(kernel) == "77\n"

    def test_float_global_initializer(self):
        kernel, _, _ = run_minic("""
        global float weights[3] = {0.5, 1.5, -2.0};
        func main() {
            print_int(int((weights[0] + weights[1] + weights[2]) * 10.0));
        }
        """)
        assert stdout_of(kernel) == "0\n"

    def test_bare_array_name_is_base_address(self):
        kernel, _, _ = run_minic("""
        global buf[4];
        func main() {
            var p;
            p = buf;
            poke64(p + 16, 777);
            print_int(buf[2]);
        }
        """)
        assert stdout_of(kernel) == "777\n"

    def test_comparison_chaining_via_logical(self):
        kernel, _, _ = run_minic("""
        func main() {
            var x;
            x = 15;
            print_int(10 <= x && x < 20);
            print_int(x < 10 || x >= 20);
        }
        """)
        assert stdout_of(kernel) == "1\n0\n"

    def test_unary_not_and_bitnot(self):
        kernel, _, _ = run_minic("""
        func main() {
            print_int(!0);
            print_int(!7);
            print_int(~0);
            print_int(~5);
        }
        """)
        assert stdout_of(kernel) == "1\n0\n-1\n-6\n"

    def test_whole_array_assignment_rejected(self):
        with pytest.raises(CompileError):
            compile_to_asm("""
            global a[4];
            func main() { a = 5; }
            """)

    def test_float_condition_rejected(self):
        with pytest.raises(CompileError):
            compile_to_asm("func main() { if (1.5) { } }")

    def test_float_array_index_rejected(self):
        with pytest.raises(CompileError):
            compile_to_asm("""
            global a[4];
            func main() { var x; x = a[1.5]; }
            """)

    def test_string_in_expression_positions(self):
        kernel, _, _ = run_minic("""
        func main() {
            var s;
            s = "hey";          // strings evaluate to their address
            print_int(peek8(s) == 'h');
        }
        """)
        assert stdout_of(kernel) == "1\n"

"""Tests for the shared utility layer (units, errors)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import (
    BILLION,
    DEFAULT_CYCLE_SCALE,
    MismatchError,
    ReproError,
    cycles_to_seconds,
    format_cycles,
    hw_to_virtual_cycles,
    seconds_to_cycles,
    virtual_to_hw_cycles,
)
from repro.common.errors import AssemblerError, CompileError


class TestUnits:
    def test_hw_virtual_round_trip(self):
        hw = 5 * BILLION
        virtual = hw_to_virtual_cycles(hw)
        assert virtual == 50_000
        assert virtual_to_hw_cycles(virtual) == hw

    def test_hw_to_virtual_never_zero(self):
        assert hw_to_virtual_cycles(1) == 1

    def test_cycles_seconds_round_trip(self):
        assert cycles_to_seconds(3.5e9, 3.5e9) == pytest.approx(1.0)
        assert seconds_to_cycles(2.0, 3.5e9) == pytest.approx(7.0e9)

    def test_format_cycles(self):
        assert format_cycles(5 * BILLION) == "5 billion"
        assert format_cycles(2_500_000) == "2.5 million"
        assert format_cycles(42) == "42"

    @given(st.integers(min_value=1, max_value=10**14))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_within_scale(self, hw):
        virtual = hw_to_virtual_cycles(hw)
        back = virtual_to_hw_cycles(virtual)
        assert abs(back - hw) < DEFAULT_CYCLE_SCALE


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(AssemblerError, ReproError)
        assert issubclass(CompileError, ReproError)
        assert issubclass(MismatchError, ReproError)

    def test_line_numbers_in_messages(self):
        assert "line 7" in str(AssemblerError("bad", line=7))
        assert "line" not in str(AssemblerError("bad"))
        assert "line 3" in str(CompileError("oops", line=3))

    def test_mismatch_detail_payload(self):
        error = MismatchError("diverged", detail={"page": 3})
        assert error.detail == {"page": 3}

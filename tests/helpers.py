"""Shared test helpers: compile and run programs on the simulated machine."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.isa import Program
from repro.kernel import Kernel
from repro.minic import compile_source
from repro.sim import Executor, PlatformConfig, apple_m2


def make_machine(platform: Optional[PlatformConfig] = None, seed: int = 0,
                 aslr: bool = True, quantum: int = 2000
                 ) -> Tuple[Kernel, Executor]:
    platform = platform or apple_m2()
    kernel = Kernel(page_size=platform.page_size, seed=seed, aslr=aslr)
    executor = Executor(kernel, platform, quantum=quantum)
    return kernel, executor


def run_program(program: Program,
                files: Optional[Dict[str, bytes]] = None,
                platform: Optional[PlatformConfig] = None,
                seed: int = 0, quantum: int = 2000):
    """Run a program natively (no fault-tolerance runtime).

    Returns (kernel, executor, process).
    """
    kernel, executor = make_machine(platform, seed=seed, quantum=quantum)
    for path, data in (files or {}).items():
        kernel.vfs.register(path, data)
    proc = kernel.spawn(program)
    executor.schedule_default(proc)
    executor.run()
    return kernel, executor, proc


def run_minic(source: str, files: Optional[Dict[str, bytes]] = None,
              platform: Optional[PlatformConfig] = None, seed: int = 0,
              quantum: int = 2000):
    """Compile mini-C and run it natively; returns (kernel, executor, proc)."""
    return run_program(compile_source(source), files=files,
                       platform=platform, seed=seed, quantum=quantum)


def stdout_of(kernel: Kernel) -> str:
    return kernel.console.text()

"""Make tests/ importable as a flat namespace (helpers.py)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

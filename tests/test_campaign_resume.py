"""Crash/resume integration tests for the campaign engine.

The contract under test: a sharded campaign interrupted by SIGKILL — of
a *worker* or of the *supervisor itself* — resumes from its JSONL
journal and produces a merged result byte-identical to an uninterrupted
serial run of the same plan.  (``attempts`` is execution history, not
campaign output, so comparisons cover task identity, disposition and
result payloads — exactly what the drivers merge and the reports
render.)
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.campaign import CampaignEngine, DISP_COMPLETED
from repro.core.journal import read_journal

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash/resume fleet tests need fork workers")

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def slow_echo(task):
    time.sleep(0.05)
    return {"index": task.index, "shard": task.shard,
            "seed": task.seed % 997}


def merged(result):
    return [(r.task_id, r.disposition, r.result) for r in result.records]


class TestWorkerSigkill:
    def test_killed_worker_is_retried_to_the_serial_result(self):
        """SIGKILL one worker mid-task: the supervisor must charge the
        in-flight task an attempt, respawn the shard and still converge
        on the exact serial result."""
        baseline = CampaignEngine(slow_echo, [{"n": i} for i in range(10)],
                                  campaign_seed=6, shards=2).run()

        killed = threading.Event()

        def killer():
            deadline = time.time() + 10.0
            while not killed.is_set() and time.time() < deadline:
                children = multiprocessing.active_children()
                if children:
                    os.kill(children[0].pid, signal.SIGKILL)
                    killed.set()
                    return
                time.sleep(0.01)

        thread = threading.Thread(target=killer)
        thread.start()
        result = CampaignEngine(slow_echo, [{"n": i} for i in range(10)],
                                campaign_seed=6, shards=2, workers=2,
                                max_task_attempts=3, backoff_base=0.01,
                                backoff_cap=0.05).run()
        thread.join()
        assert killed.is_set(), "no worker appeared to kill"
        assert merged(result) == merged(baseline)
        assert result.registry.value("campaign.worker_crashes") >= 1
        assert result.registry.value("campaign.retries") >= 1


SUPERVISOR_SCRIPT = textwrap.dedent("""
    import sys, time
    sys.path.insert(0, {src!r})
    from repro.campaign import CampaignEngine

    def slow_echo(task):
        time.sleep(0.15)
        return {{"index": task.index, "shard": task.shard,
                 "seed": task.seed % 997}}

    CampaignEngine(slow_echo, [{{"n": i}} for i in range(12)],
                   campaign_seed=6, shards=3, workers=2,
                   journal_path={journal!r}).run()
""")


class TestSupervisorSigkill:
    def test_resume_after_supervisor_and_worker_die(self, tmp_path):
        """SIGKILL the whole process group — supervisor and its workers
        — mid-campaign, then resume from the journal: completed tasks
        are skipped and the merged result is byte-identical to an
        uninterrupted serial run."""
        journal = str(tmp_path / "j.jsonl")
        proc = subprocess.Popen(
            [sys.executable, "-c",
             SUPERVISOR_SCRIPT.format(src=SRC, journal=journal)],
            start_new_session=True)
        try:
            deadline = time.time() + 60.0
            while time.time() < deadline:
                if os.path.exists(journal) \
                        and len(open(journal).read().splitlines()) >= 4:
                    break                     # header + a few tasks
                if proc.poll() is not None:
                    pytest.fail("campaign finished before it was killed")
                time.sleep(0.02)
            else:
                pytest.fail("journal never grew")
            os.killpg(proc.pid, signal.SIGKILL)
        finally:
            proc.wait()

        baseline = CampaignEngine(slow_echo, [{"n": i} for i in range(12)],
                                  campaign_seed=6, shards=3).run()
        resumed = CampaignEngine(slow_echo, [{"n": i} for i in range(12)],
                                 campaign_seed=6, shards=3, workers=2,
                                 journal_path=journal, resume=True).run()
        assert resumed.resumed_tasks >= 1
        assert merged(resumed) == merged(baseline)
        assert resumed.registry.value("campaign.resumed") >= 1
        # The repaired journal replays whole: header + every task (a
        # record journaled twice would double-count on the next resume).
        bodies = read_journal(journal)
        task_ids = [b["task_id"] for b in bodies if b.get("type") == "task"]
        assert sorted(task_ids) == sorted(
            r.task_id for r in resumed.records)


WORKLOAD = """
global data[64];
func main() {
    var i; var round; var total;
    for (round = 0; round < 12; round = round + 1) {
        for (i = 0; i < 64; i = i + 1) {
            data[i] = data[i] * 3 + round + i;
        }
    }
    total = 0;
    for (i = 0; i < 64; i = i + 1) { total = total + data[i]; }
    print_int(total);
}
"""


class TestInjectorCampaignResume:
    """The same contract through a real driver: a sharded FaultInjector
    fleet, interrupted and resumed, renders the same report bytes as an
    uninterrupted serial campaign."""

    def _injector(self):
        from repro.core import ParallaftConfig
        from repro.faults import FaultInjector
        from repro.minic import compile_source
        from repro.sim import apple_m2
        return FaultInjector(
            compile_source(WORKLOAD),
            config_factory=lambda: ParallaftConfig(
                slicing_period=600_000_000),
            platform_factory=apple_m2, seed=1)

    def _campaign(self, **kwargs):
        return self._injector().run_campaign(
            injections_per_segment=1, max_segments=2,
            benchmark_name="wl", shards=2, **kwargs)

    def test_interrupted_fleet_report_matches_serial(self, tmp_path):
        from repro.harness.report import render_injection
        journal = str(tmp_path / "wl.jsonl")
        serial = self._campaign()
        fleet = self._campaign(workers=2, journal_path=journal)
        # Interrupt: drop everything after the first completed task.
        lines = open(journal).read().splitlines(True)
        open(journal, "w").writelines(lines[:2])
        resumed = self._campaign(workers=2, journal_path=journal,
                                 resume=True)
        assert resumed.fleet.resumed_tasks == 1
        for campaign in (fleet, resumed):
            assert render_injection({"wl": campaign}) == \
                render_injection({"wl": serial})
            assert [r.to_dict() for r in campaign.injections] == \
                [r.to_dict() for r in serial.injections]
            assert campaign.missed == serial.missed

"""Tests for kernel odds and ends: VFS, cost model, nondet sources, ABI."""

import pytest

from repro import abi
from repro.common.rng import RngPool
from repro.cpu.nondet import (
    CPUID_BIG,
    CPUID_LITTLE,
    MIDR_BIG,
    MIDR_LITTLE,
    SYSREG_CNTFRQ,
    SYSREG_MIDR,
    SYSREG_MPIDR,
    NondetSource,
)
from repro.kernel import Kernel, KernelCostModel
from repro.kernel.vfs import Console, DevUrandom, DevZero, MemFile, NullSink, Vfs


class TestVfs:
    def test_dev_zero(self):
        assert DevZero().read(16) == b"\x00" * 16
        assert DevZero().write(b"abc") == 3

    def test_dev_urandom_changes_per_read(self):
        import random
        dev = DevUrandom(random.Random(1))
        assert dev.read(32) != dev.read(32)

    def test_console_captures(self):
        console = Console()
        console.write(b"hello ")
        console.write(b"world")
        assert console.text() == "hello world"
        assert console.read(10) == b""

    def test_null_sink_swallows(self):
        sink = NullSink()
        assert sink.write(b"secret") == 6
        assert sink.read(4) == b""

    def test_memfile_offset_and_write(self):
        f = MemFile("x", b"abcdef")
        assert f.read(3) == b"abc"
        assert f.read(10) == b"def"
        assert f.read(1) == b""
        g = MemFile("y", b"abcdef")
        g.read(2)
        g.write(b"XY")
        assert g.content() == b"abXYef"

    def test_memfile_clone_independent_offset(self):
        f = MemFile("x", b"abcdef")
        f.read(3)
        clone = f.clone()
        assert clone.read(3) == b"def"
        assert f.read(3) == b"def"

    def test_vfs_registry_and_devices(self):
        import random
        vfs = Vfs(random.Random(0))
        vfs.register("in.dat", b"payload")
        assert vfs.open("in.dat").read(7) == b"payload"
        assert isinstance(vfs.open("/dev/zero"), DevZero)
        assert isinstance(vfs.open("/dev/urandom"), DevUrandom)
        assert vfs.open("missing") is None

    def test_memfile_mappable_console_not(self):
        assert MemFile("x", b"").mappable
        assert not Console().mappable


class TestCostModel:
    def test_fork_cost_scales_with_pages(self):
        costs = KernelCostModel()
        assert costs.fork_cycles(100) > costs.fork_cycles(10)

    def test_cow_cost_scales_with_page_size(self):
        costs = KernelCostModel()
        assert costs.cow_cycles(16384) > costs.cow_cycles(4096)

    def test_page_population_scale_applies(self):
        small = KernelCostModel(page_population_scale=1.0)
        big = KernelCostModel(page_population_scale=100.0)
        assert big.cow_cycles(4096) == pytest.approx(
            100.0 * small.cow_cycles(4096))
        assert big.hash_cycles(4096) == pytest.approx(
            100.0 * small.hash_cycles(4096))
        assert big.dirty_clear_cycles(10) == pytest.approx(
            100.0 * small.dirty_clear_cycles(10))

    def test_syscall_cost_has_per_byte_term(self):
        costs = KernelCostModel()
        assert costs.syscall_cycles(1 << 20) > 2 * costs.syscall_cycles(0)


class TestNondetSource:
    def make(self, core=None):
        times = iter(range(1, 100))

        class FakeCore:
            def __init__(self, is_big, index):
                self.is_big = is_big
                self.index = index

        box = [FakeCore(*core) if core else None]
        source = NondetSource(lambda: next(times) * 0.001, lambda: box[0])
        return source, box

    def test_tsc_monotonic(self):
        source, _ = self.make()
        values = [source.read_tsc() for _ in range(5)]
        assert values == sorted(values)
        assert len(set(values)) == 5

    def test_midr_differs_by_core_kind(self):
        big, _ = self.make(core=(True, 0))
        little, _ = self.make(core=(False, 5))
        assert big.read_sysreg(SYSREG_MIDR) == MIDR_BIG
        assert little.read_sysreg(SYSREG_MIDR) == MIDR_LITTLE
        assert big.cpuid() == CPUID_BIG
        assert little.cpuid() == CPUID_LITTLE

    def test_mpidr_is_core_index(self):
        source, _ = self.make(core=(False, 6))
        assert source.read_sysreg(SYSREG_MPIDR) == 6

    def test_unknown_sysreg_reads_zero(self):
        source, _ = self.make(core=(True, 0))
        assert source.read_sysreg(77) == 0

    def test_cntfrq_constant(self):
        source, _ = self.make(core=(True, 0))
        assert source.read_sysreg(SYSREG_CNTFRQ) > 0


class TestRngPool:
    def test_streams_reproducible(self):
        a = RngPool(5).stream("x")
        b = RngPool(5).stream("x")
        assert [a.random() for _ in range(4)] == [b.random() for _ in range(4)]

    def test_streams_decorrelated(self):
        pool = RngPool(5)
        assert pool.stream("x").random() != pool.stream("y").random()

    def test_same_name_same_stream(self):
        pool = RngPool(0)
        assert pool.stream("x") is pool.stream("x")


class TestAbi:
    def test_syscall_names_cover_table(self):
        from repro.kernel.kernel import Kernel as K
        for sysno in K._SYSCALLS:
            assert sysno in abi.SYSCALL_NAMES

    def test_fatal_signal_set(self):
        assert abi.SIGSEGV in abi.FATAL_SIGNALS
        assert abi.SIGUSR1 not in abi.FATAL_SIGNALS

    def test_mmap_flags_match_mem_module(self):
        from repro import mem
        assert abi.MAP_PRIVATE == mem.MAP_PRIVATE
        assert abi.MAP_SHARED == mem.MAP_SHARED
        assert abi.MAP_ANONYMOUS == mem.MAP_ANONYMOUS
        assert abi.MAP_FIXED == mem.MAP_FIXED
        assert abi.PROT_READ == mem.PROT_READ
        assert abi.PROT_WRITE == mem.PROT_WRITE


class TestKernelEdgeCases:
    def test_unknown_syscall_returns_enosys(self):
        from repro.minic import compile_source
        from repro.sim import Executor, apple_m2
        kernel = Kernel(page_size=16384)
        executor = Executor(kernel, apple_m2())
        # Hand-written assembly issuing syscall 999.
        from repro.isa import assemble
        program = assemble("""
            li r0, 999
            syscall
            mov r7, r0
            li r0, 60
            li r1, 0
            syscall
            halt
        """)
        proc = kernel.spawn(program)
        executor.schedule_default(proc)
        executor.run()
        assert proc.cpu.regs.gprs[7] == -abi.ENOSYS

    def test_bad_fd_operations(self):
        from repro.isa import assemble
        from repro.sim import Executor, apple_m2
        kernel = Kernel(page_size=16384)
        executor = Executor(kernel, apple_m2())
        program = assemble(f"""
            li r0, {abi.SYS_WRITE}
            li r1, 42
            li r2, 0x1000000
            li r3, 4
            syscall
            mov r7, r0
            halt
        """)
        proc = kernel.spawn(program)
        executor.schedule_default(proc)
        executor.run()
        assert proc.cpu.regs.gprs[7] == -abi.EBADF

    def test_kill_invalid_pid(self):
        kernel = Kernel(page_size=16384)
        from repro.minic import compile_source
        from repro.sim import Executor, apple_m2
        executor = Executor(kernel, apple_m2())
        proc = kernel.spawn(compile_source(
            "func main() { print_int(kill(424242, 9)); }"))
        executor.schedule_default(proc)
        executor.run()
        assert kernel.console.text().strip() == str(-abi.EINVAL)

    def test_sigaction_rejects_sigkill(self):
        from repro.minic import compile_source
        from repro.sim import Executor, apple_m2
        kernel = Kernel(page_size=16384)
        executor = Executor(kernel, apple_m2())
        proc = kernel.spawn(compile_source(
            f"func main() {{ print_int(sigaction({abi.SIGKILL}, 4096)); }}"))
        executor.schedule_default(proc)
        executor.run()
        assert kernel.console.text().strip() == str(-abi.EINVAL)

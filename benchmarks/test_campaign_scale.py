"""Campaign-engine scale test: a ≥1,000-injection sharded fleet that
survives a worker SIGKILL and a supervisor crash, then resumes.

The contract (the same one `tests/test_campaign_resume.py` checks at
unit scale): no matter what dies mid-campaign, the merged
`render_injection` report is byte-identical to an uninterrupted serial
run of the same plan, and the journal replays with exactly one record
per task.  Three legs:

1. **serial** — `workers=0` over the sharded plan, the baseline;
2. **fleet + worker kill** — 4 shards / 4 workers, journaled; a killer
   thread SIGKILLs one live worker mid-campaign, the supervisor
   charges the in-flight task, respawns the shard, and the fleet still
   converges on the serial report;
3. **resume** — the journal is truncated to its first half (a
   simulated supervisor crash), and the resumed fleet skips the
   journaled prefix yet renders the same bytes again.

``REPRO_CAMPAIGN_TASKS`` scales the plan (default 1024 ≥ the 1,000 the
CI job pins).
"""

import multiprocessing
import os
import signal
import threading
import time

import pytest
from conftest import print_rows

from repro.core import ParallaftConfig
from repro.core.journal import read_journal
from repro.faults import FaultInjector
from repro.harness.report import render_fleet, render_injection
from repro.minic import compile_source
from repro.sim import apple_m2

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet scale test needs fork workers")

#: Small, fast workload — the scale is in the task count, not the run.
WORKLOAD = """
global data[32];
func main() {
    var i; var round; var total;
    for (round = 0; round < 6; round = round + 1) {
        for (i = 0; i < 32; i = i + 1) {
            data[i] = data[i] * 3 + round + i;
        }
    }
    total = 0;
    for (i = 0; i < 32; i = i + 1) { total = total + data[i]; }
    print_int(total);
}
"""

#: Two segments at this period; tasks = 2 * injections_per_segment.
PERIOD = 400_000_000
TASKS = int(os.environ.get("REPRO_CAMPAIGN_TASKS", "1024"))
SHARDS = 4


def make_injector():
    return FaultInjector(
        compile_source(WORKLOAD),
        config_factory=lambda: ParallaftConfig(slicing_period=PERIOD),
        platform_factory=apple_m2, seed=11)


def run_campaign(**kwargs):
    return make_injector().run_campaign(
        injections_per_segment=TASKS // 2, benchmark_name="scale",
        shards=SHARDS, **kwargs)


def kill_one_worker(killed):
    deadline = time.time() + 30.0
    while time.time() < deadline:
        children = multiprocessing.active_children()
        if children:
            os.kill(children[0].pid, signal.SIGKILL)
            killed.set()
            return
        time.sleep(0.01)


class TestCampaignScale:
    def test_fleet_survives_kill_and_resume(self, tmp_path):
        journal = str(tmp_path / "scale.jsonl")

        t0 = time.time()
        serial = run_campaign()
        serial_wall = time.time() - t0
        plan = serial.total + serial.missed
        assert plan >= 1000, f"campaign too small: {plan} tasks"

        killed = threading.Event()
        killer = threading.Thread(target=kill_one_worker, args=(killed,))
        killer.start()
        t0 = time.time()
        fleet = run_campaign(workers=4, journal_path=journal)
        fleet_wall = time.time() - t0
        killer.join()
        assert killed.is_set(), "no worker appeared to kill"
        assert fleet.fleet.registry.value("campaign.worker_crashes") >= 1

        serial_report = render_injection({"scale": serial})
        assert render_injection({"scale": fleet}) == serial_report

        # Supervisor crash: keep the header and the first half of the
        # journal, then resume the fleet from it.
        lines = open(journal).read().splitlines(True)
        open(journal, "w").writelines(lines[:1 + plan // 2])
        t0 = time.time()
        resumed = run_campaign(workers=4, journal_path=journal,
                               resume=True)
        resume_wall = time.time() - t0
        assert resumed.fleet.resumed_tasks == plan // 2
        assert render_injection({"scale": resumed}) == serial_report

        # The repaired journal replays whole: one record per task.
        bodies = read_journal(journal)
        task_ids = [b["task_id"] for b in bodies if b.get("type") == "task"]
        assert len(task_ids) == plan
        assert len(set(task_ids)) == plan

        print_rows(
            f"campaign scale: {plan} injection tasks, {SHARDS} shards",
            [f"serial   {serial_wall:6.1f}s  (baseline report)",
             f"fleet    {fleet_wall:6.1f}s  (1 worker SIGKILLed, "
             f"{int(fleet.fleet.registry.value('campaign.retries'))} retries)",
             f"resume   {resume_wall:6.1f}s  "
             f"({resumed.fleet.resumed_tasks} tasks from journal)",
             "reports byte-identical across all three runs"])
        print(render_fleet(resumed.fleet))

"""Figure 10: fault-injection results.

Paper result: across SPEC CPU2006, on average 43.3% of injected register
bit flips are benign (no observable effect); *every* non-benign fault is
detected — via state comparison (detected), a checker exception, or the
1.1x instruction-budget timeout.  100% coverage of single-event upsets in
user-space execution.
"""

import pytest
from conftest import injections_per_segment, print_rows

from repro.common.units import BILLION
from repro.faults import Outcome
from repro.harness.figures import injection_summary, run_fault_injection

#: A period giving a handful of segments per run keeps the campaign's
#: full-program-per-injection cost manageable.
CAMPAIGN_PERIOD = 20 * BILLION
CAMPAIGN_BENCHMARKS = ("bzip2", "gobmk", "sphinx3", "mcf")
MAX_SEGMENTS = 4


@pytest.fixture(scope="module")
def campaigns():
    return run_fault_injection(names=CAMPAIGN_BENCHMARKS,
                               injections_per_segment=injections_per_segment(),
                               paper_period=CAMPAIGN_PERIOD,
                               max_segments=MAX_SEGMENTS)


def test_fig10_fault_injection(benchmark, campaigns):
    result = benchmark.pedantic(lambda: campaigns, rounds=1, iterations=1)

    rows = []
    for name, campaign in sorted(result.items()):
        summary = campaign.summary()
        rows.append(
            f"{name:12s} n={campaign.total:3d}  "
            f"detected {100 * summary['detected']:5.1f}%  "
            f"exception {100 * summary['exception']:5.1f}%  "
            f"timeout {100 * summary['timeout']:5.1f}%  "
            f"benign {100 * summary['benign']:5.1f}%")
    overall = injection_summary(result)
    rows.append(f"{'OVERALL':12s}       "
                f"detected {100 * overall['detected']:5.1f}%  "
                f"exception {100 * overall['exception']:5.1f}%  "
                f"timeout {100 * overall['timeout']:5.1f}%  "
                f"benign {100 * overall['benign']:5.1f}%")
    print_rows("Figure 10: fault injection outcomes", rows,
               "43.3% benign on average; all other faults detected")

    total = sum(c.total for c in result.values())
    assert total >= 16, "campaign too small to be meaningful"

    # Shape criteria:
    # 1. Outcomes partition completely: benign + detected classes = 100%.
    assert sum(overall.values()) == pytest.approx(1.0)
    # 2. A benign fraction exists (flips masked by register overwrites
    #    before the segment-end comparison).  Ours is well below the
    #    paper's 43.3%: mini-C binaries use a small register subset, so
    #    flips in never-rewritten FP/vector registers survive to the
    #    bit-exact comparison, whereas real SPEC binaries continuously
    #    rewrite those registers through vectorized libc code.  See
    #    EXPERIMENTS.md.
    assert 0.02 < overall["benign"] < 0.6
    # 3. Every non-benign outcome is a *detection* - nothing corrupted the
    #    program output silently (the injector classifies an output
    #    mismatch without a runtime error as DETECTED; assert none).
    for campaign in result.values():
        for injection in campaign.injections:
            assert injection.outcome in (Outcome.BENIGN, Outcome.DETECTED,
                                         Outcome.EXCEPTION, Outcome.TIMEOUT)
    # 4. More than one detection mechanism fires across the campaign
    #    (state compare plus exceptions and/or timeouts).
    mechanisms = {i.outcome for c in result.values() for i in c.injections
                  if i.outcome is not Outcome.BENIGN}
    assert len(mechanisms) >= 2, mechanisms


def test_fig10_overwrite_masking(benchmark):
    """The paper's benign class comes from flips masked by register
    overwrites before the comparison point: flips targeted at the
    constantly-rewritten integer temporaries are benign far more often
    than flips across the whole (mostly idle) register space."""
    from repro.faults import FaultInjector
    from repro.harness.figures import _period_config
    from repro.minic import compile_source
    from repro.sim import platform_by_name
    from repro.workloads import benchmark as get_benchmark

    def campaign_with_sites(sites, n):
        bench = get_benchmark("bzip2")
        source, files = bench.build(1, 1)
        injector = FaultInjector(
            compile_source(source),
            config_factory=lambda: _period_config(CAMPAIGN_PERIOD),
            platform_factory=lambda: platform_by_name("apple_m2"),
            files=files, seed=5)
        injector._sites = sites
        return injector.run_campaign(injections_per_segment=n,
                                     max_segments=3,
                                     benchmark_name="bzip2")

    # Hot sites: the caller-saved integer temporaries, overwritten every
    # few instructions by compiled code.
    hot = [("gpr", r, b) for r in range(1, 7) for b in range(64)]
    # Cold sites: vector registers this program never touches.
    cold = [("vec", r, b) for r in range(4) for b in range(256)]

    def experiment():
        return (campaign_with_sites(hot, 4), campaign_with_sites(cold, 4))

    hot_campaign, cold_campaign = benchmark.pedantic(
        experiment, rounds=1, iterations=1)
    print_rows("Figure 10 mechanism: overwrite masking", [
        f"hot integer temps: benign "
        f"{100 * hot_campaign.fraction(Outcome.BENIGN):.0f}% of "
        f"{hot_campaign.total}",
        f"cold vector regs:  benign "
        f"{100 * cold_campaign.fraction(Outcome.BENIGN):.0f}% of "
        f"{cold_campaign.total}",
    ], "benign faults are overwritten before the comparison point")
    assert hot_campaign.fraction(Outcome.BENIGN) > \
        cold_campaign.fraction(Outcome.BENIGN)
    # Cold-register flips are essentially always detected (they survive to
    # the bit-exact register comparison).
    assert cold_campaign.fraction(Outcome.BENIGN) < 0.15

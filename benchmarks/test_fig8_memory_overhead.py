"""Figure 8: normalized memory usage of Parallaft and RAFT.

Paper result: summed PSS of main+checker+runtime processes, sampled every
0.5 s, normalized to baseline: Parallaft 3.32x vs RAFT 1.95x geomean.
Parallaft deliberately keeps more copies of the execution alive to exploit
heterogeneous parallelism, so it uses more memory than RAFT; checkpoints'
private memory is excluded (swappable without performance impact).
"""

from conftest import print_rows

from repro.common.units import geomean

PAPER_PARALLAFT = 3.32
PAPER_RAFT = 1.95


def test_fig8_memory_overhead(benchmark, suite_cache):
    comparison = benchmark.pedantic(
        lambda: suite_cache.get_comparison(sample_memory=True),
        rounds=1, iterations=1)

    para = comparison.memory_normalized("parallaft")
    raft = comparison.memory_normalized("raft")
    rows = [f"{name:12s} parallaft {para[name]:5.2f}x   raft {raft[name]:5.2f}x"
            for name in sorted(para)]
    para_geo = geomean(v for v in para.values() if v > 0)
    raft_geo = geomean(v for v in raft.values() if v > 0)
    rows.append(f"{'GEOMEAN':12s} parallaft {para_geo:5.2f}x   "
                f"raft {raft_geo:5.2f}x")
    print_rows("Figure 8: normalized memory usage (PSS)", rows,
               f"Parallaft {PAPER_PARALLAFT}x, RAFT {PAPER_RAFT}x")

    # Shape criteria:
    # 1. Both systems use more memory than the baseline (duplicated
    #    execution); PSS sharing keeps it well under naive duplication
    #    times live-copy count.
    assert para_geo > 1.2
    assert raft_geo > 1.2
    # 2. Parallaft keeps more live copies than RAFT, so most benchmarks
    #    use more memory under it (geomeans can tie: heavy PSS sharing
    #    discounts benchmarks whose checkers barely diverge - see
    #    EXPERIMENTS.md).
    more = sum(1 for n in para if para[n] > raft[n])
    assert more >= len(para) // 2, (para, raft)
    assert para_geo > 0.85 * raft_geo
    assert max(para.values()) > max(raft.values())
    # 3. Magnitudes stay in the paper's ballpark (a few x, not tens).
    assert para_geo < 8.0
    assert raft_geo < 5.0

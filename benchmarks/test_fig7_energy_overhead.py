"""Figure 7: energy overhead of Parallaft and RAFT.

Paper result: Parallaft 44.3% geomean vs RAFT 87.8% — about half, because
checkers run on energy-efficient little cores while RAFT's checker burns a
second big core.  lbm is the sole exception (checkers do half their work on
big cores to keep up), costing Parallaft more energy than RAFT.
"""

from conftest import print_rows

PAPER_PARALLAFT = 44.3
PAPER_RAFT = 87.8


def test_fig7_energy_overhead(benchmark, suite_cache):
    comparison = benchmark.pedantic(
        lambda: suite_cache.get_comparison(sample_memory=True),
        rounds=1, iterations=1)

    para = comparison.energy_overheads("parallaft")
    raft = comparison.energy_overheads("raft")
    rows = [f"{name:12s} parallaft +{para[name]:6.1f}%   "
            f"raft +{raft[name]:6.1f}%" for name in sorted(para)]
    para_geo = comparison.energy_geomean("parallaft")
    raft_geo = comparison.energy_geomean("raft")
    rows.append(f"{'GEOMEAN':12s} parallaft +{para_geo:6.1f}%   "
                f"raft +{raft_geo:6.1f}%")
    print_rows("Figure 7: energy overhead", rows,
               f"Parallaft {PAPER_PARALLAFT}%, RAFT {PAPER_RAFT}% "
               "(about half); lbm the only Parallaft loss")

    # Shape criteria:
    # 1. RAFT's energy overhead approaches a doubled machine (the paper's
    #    ~88%): well above 60%.
    assert raft_geo > 60.0
    # 2. Parallaft costs roughly half of RAFT's energy overhead.
    assert para_geo < 0.72 * raft_geo
    # 3. Little cores win on every compute-bound benchmark by a wide
    #    margin.
    for light in ("sjeng", "bzip2"):
        assert para[light] < 0.5 * raft[light], light
    # 4. lbm is Parallaft's worst energy case and beats RAFT nowhere near
    #    as clearly as the others (paper: the only outright loss).
    assert para["lbm"] == max(para.values())
    assert para["lbm"] > 0.85 * raft["lbm"]

"""Shared infrastructure for the figure/table reproduction benchmarks.

Each ``test_fig*.py`` regenerates one evaluation artifact from the paper and
prints a paper-vs-measured comparison.  Heavyweight experiment results are
cached at session scope so figures sharing data (5/6/7/8 all come from one
suite sweep) do not re-run it.

Environment:

* ``REPRO_FULL_SUITE=1`` — run all 16 benchmarks instead of the 8 the
  paper's figures call out by name (default keeps wall time manageable).
* ``REPRO_INJECTIONS=N`` — injections per segment for figure 10 (default 2;
  the paper uses 5).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

#: The benchmarks the paper's text discusses by name.
NAMED_SUBSET = ("bzip2", "gcc", "mcf", "milc", "libquantum", "lbm",
                "sjeng", "soplex")


def suite_names():
    if os.environ.get("REPRO_FULL_SUITE"):
        return None  # all benchmarks
    return NAMED_SUBSET


def injections_per_segment():
    return int(os.environ.get("REPRO_INJECTIONS", "2"))


class _SuiteCache:
    """Lazily-computed shared experiment results."""

    def __init__(self):
        self.comparison = None         # figures 5/7/8 (+6 inputs)
        self.comparison_memory = None  # with PSS sampling, figure 8

    def get_comparison(self, sample_memory=False):
        from repro.harness.figures import run_suite_comparison
        if sample_memory:
            if self.comparison_memory is None:
                self.comparison_memory = run_suite_comparison(
                    names=suite_names(), sample_memory=True)
            return self.comparison_memory
        if self.comparison is None:
            # The memory-sampled run contains a superset of the data.
            if self.comparison_memory is not None:
                return self.comparison_memory
            self.comparison = run_suite_comparison(names=suite_names())
        return self.comparison


_CACHE = _SuiteCache()


@pytest.fixture(scope="session")
def suite_cache():
    return _CACHE


def print_rows(title, rows, paper_note=""):
    print(f"\n=== {title} ===")
    if paper_note:
        print(f"    (paper: {paper_note})")
    for row in rows:
        print("   ", row)

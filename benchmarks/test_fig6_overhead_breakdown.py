"""Figure 6: Parallaft performance-overhead breakdown.

Paper result: for most benchmarks, resource contention and fork-and-COW
dominate; last-checker sync matters for benchmarks split into multiple
short processes (bzip2, gcc, soplex); runtime work is small everywhere.
"""

from conftest import print_rows, suite_names

from repro.harness.overhead import breakdown


def test_fig6_overhead_breakdown(benchmark, suite_cache):
    comparison = benchmark.pedantic(
        lambda: suite_cache.get_comparison(sample_memory=True),
        rounds=1, iterations=1)

    breakdowns = {
        name: breakdown(comparison.parallaft[name],
                        comparison.baseline[name])
        for name in comparison.parallaft
    }
    rows = [
        f"{name:12s} total {bd.total_pct:6.1f}%  "
        f"fork+cow {bd.fork_and_cow_pct:5.1f}  "
        f"contention {bd.resource_contention_pct:5.1f}  "
        f"last-sync {bd.last_checker_sync_pct:5.1f}  "
        f"runtime {bd.runtime_work_pct:5.1f}"
        for name, bd in sorted(breakdowns.items())
    ]
    print_rows("Figure 6: Parallaft overhead breakdown", rows,
               "contention and fork+COW dominate; sync high for "
               "multi-input benchmarks (bzip2/gcc/soplex)")

    # Components must (by construction) sum to the total.
    for name, bd in breakdowns.items():
        parts = (bd.fork_and_cow_pct + bd.resource_contention_pct
                 + bd.last_checker_sync_pct + bd.runtime_work_pct)
        assert abs(parts - bd.total_pct) < 1e-6, name

    # Shape criteria:
    # 1. Memory-intensive benchmarks have the highest fork+COW or
    #    contention components.
    assert breakdowns["mcf"].fork_and_cow_pct > \
        breakdowns["sjeng"].fork_and_cow_pct
    assert breakdowns["lbm"].resource_contention_pct > \
        breakdowns["sjeng"].resource_contention_pct + 5
    # 2. Benchmarks split into many short processes show elevated
    #    last-checker sync (paper: bzip2, gcc, soplex).
    multi_short = [breakdowns[n].last_checker_sync_pct
                   for n in ("bzip2", "gcc", "soplex")]
    assert max(multi_short) > breakdowns["sjeng"].last_checker_sync_pct
    # 3. Runtime work is a small component everywhere.
    for name, bd in breakdowns.items():
        assert abs(bd.runtime_work_pct) < 10.0, name

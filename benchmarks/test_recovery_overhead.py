"""Recovery extension: fault-free tax and end-to-end recovery campaign.

The paper stops at detection (Section 8 sketches recovery as future
work).  This suite measures what the implemented recovery mode adds:

1. The *recovery tax* — fault-free overhead of ``enable_recovery`` over
   detection-only Parallaft.  Retaining a segment-start checkpoint per
   in-flight segment costs extra COW forks and memory, nothing else.
2. The acceptance campaign — register/memory bit-flips injected into the
   **main** process.  With recovery on, every non-benign fault must end
   RECOVERED with stdout byte-identical to the fault-free reference;
   with recovery off, the same seeds must merely stop (detected).
"""

import pytest
from conftest import injections_per_segment, print_rows

from repro.common.units import BILLION
from repro.faults import Outcome
from repro.harness.figures import (
    RECOVERY_BENCHMARKS,
    _period_config,
    run_recovery_campaign,
)
from repro.harness.runner import overhead_pct, run_baseline, run_protected
from repro.sim import platform_by_name
from repro.workloads import all_benchmarks

#: Same period/segment budget rationale as the figure-10 campaign: each
#: injection costs a full program run.
CAMPAIGN_PERIOD = 20 * BILLION
MAX_SEGMENTS = 3


def campaign_injections():
    # The acceptance bar for the recovery campaign is at least three
    # injections per sampled segment (REPRO_INJECTIONS can only raise it).
    return max(3, injections_per_segment())


@pytest.fixture(scope="module")
def campaign_arms():
    recovery = run_recovery_campaign(
        names=RECOVERY_BENCHMARKS,
        injections_per_segment=campaign_injections(),
        paper_period=CAMPAIGN_PERIOD, max_segments=MAX_SEGMENTS,
        recovery=True)
    control = run_recovery_campaign(
        names=RECOVERY_BENCHMARKS,
        injections_per_segment=campaign_injections(),
        paper_period=CAMPAIGN_PERIOD, max_segments=MAX_SEGMENTS,
        recovery=False)
    return recovery, control


def test_recovery_tax_fault_free(benchmark):
    """enable_recovery on a clean run: overhead over detection-only."""
    registry = all_benchmarks()

    def experiment():
        rows = {}
        for name in RECOVERY_BENCHMARKS:
            bench = registry[name]
            platform = platform_by_name("apple_m2")
            base = run_baseline(bench, platform=platform)
            detect = run_protected(bench, platform=platform,
                                   config=_period_config(CAMPAIGN_PERIOD))
            config = _period_config(CAMPAIGN_PERIOD)
            config.enable_recovery = True
            recover = run_protected(bench, platform=platform, config=config)
            rows[name] = (overhead_pct(detect, base),
                          overhead_pct(recover, base))
        return rows

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = []
    for name, (detect_pct, recover_pct) in sorted(result.items()):
        lines.append(f"{name:12s} detection +{detect_pct:5.1f}%   "
                     f"recovery +{recover_pct:5.1f}%   "
                     f"tax {recover_pct - detect_pct:+5.1f}pp")
    print_rows("Recovery tax (fault-free)", lines,
               "recovery retains one extra checkpoint per segment")

    for name, (detect_pct, recover_pct) in result.items():
        # The extra segment-start checkpoint is a COW fork: the tax exists
        # but must stay small relative to the detection overhead itself.
        assert recover_pct >= detect_pct - 1.0, name
        assert recover_pct - detect_pct < 15.0, name


def test_recovery_campaign(benchmark, campaign_arms):
    recovery, control = benchmark.pedantic(lambda: campaign_arms,
                                           rounds=1, iterations=1)

    rows = []
    for name in sorted(recovery):
        campaign = recovery[name]
        rows.append(
            f"{name:12s} n={campaign.total:3d}  "
            f"recovered {100 * campaign.fraction(Outcome.RECOVERED):5.1f}%  "
            f"benign {100 * campaign.fraction(Outcome.BENIGN):5.1f}%  "
            f"missed {campaign.missed}")
        detect = control[name]
        rows.append(
            f"{'  (no recovery)':12s} n={detect.total:3d}  "
            f"detected {100 * detect.detected_fraction:5.1f}%  "
            f"benign {100 * detect.fraction(Outcome.BENIGN):5.1f}%  "
            f"missed {detect.missed}")
    print_rows("Recovery campaign: main-process bit flips", rows,
               "beyond the paper: every detected main fault is repaired")

    total = sum(c.total for c in recovery.values())
    assert total >= 2 * MAX_SEGMENTS * campaign_injections() - \
        sum(c.missed for c in recovery.values())
    assert len(recovery) >= 2

    recovered = 0
    for campaign in recovery.values():
        for injection in campaign.injections:
            # With recovery on, nothing may merely stop: a fault either
            # never mattered (benign) or was rolled back and re-executed
            # to the exact fault-free output.
            assert injection.outcome in (Outcome.BENIGN, Outcome.RECOVERED), \
                injection
            if injection.outcome is Outcome.RECOVERED:
                recovered += 1
                assert injection.output_matched
    assert recovered >= 1, "campaign produced no recoveries to validate"

    for campaign in control.values():
        for injection in campaign.injections:
            # The control arm has no rollback: every non-benign fault
            # stops the run through one of the detection mechanisms.
            assert injection.outcome in (Outcome.BENIGN, Outcome.DETECTED,
                                         Outcome.EXCEPTION, Outcome.TIMEOUT), \
                injection

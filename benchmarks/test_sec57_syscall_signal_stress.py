"""§5.7: syscall and signal handling overhead under stress.

Paper result: repeatedly calling getpid slows down 124.5x under Parallaft
(dominated by ptrace stops); reading 1 MB blocks from /dev/zero slows
18.5x (dominated by recording the data read); raising SIGUSR1 with an
empty handler slows 39.8x.  RAFT incurs almost identical syscall slowdown
because the syscall-handling logic is shared.
"""

import pytest
from conftest import print_rows

from repro.harness.figures import run_syscall_signal_stress

PAPER = {"getpid": 124.5, "read_1mb": 18.5, "sigusr1": 39.8}


@pytest.fixture(scope="module")
def stress():
    return run_syscall_signal_stress()


def test_sec57_stress_slowdowns(benchmark, stress):
    results = benchmark.pedantic(lambda: stress, rounds=1, iterations=1)
    rows = [f"{name:10s} slowdown {r.slowdown:7.1f}x   "
            f"(paper {PAPER[name]}x)" for name, r in results.items()]
    print_rows("§5.7: syscall/signal stress", rows)

    # Shape criteria: each slowdown lands within ~2x of the paper's value,
    # and the ordering getpid >> sigusr1 >> read holds.
    for name, r in results.items():
        assert PAPER[name] / 2.2 < r.slowdown < PAPER[name] * 2.2, name
    assert results["getpid"].slowdown > results["sigusr1"].slowdown
    assert results["sigusr1"].slowdown > results["read_1mb"].slowdown


def test_sec57_raft_shares_syscall_cost(benchmark):
    """RAFT's getpid slowdown is nearly identical to Parallaft's (the
    interception path is shared)."""
    from repro.core import ParallaftConfig
    from repro.harness.figures import _GETPID_STRESS
    from repro.kernel import Kernel
    from repro.minic import compile_source
    from repro.core import Parallaft
    from repro.sim import Executor, apple_m2

    program = compile_source(_GETPID_STRESS % {"iters": 300})

    def run(config):
        platform = apple_m2()
        platform.cycle_scale = 1
        if config is None:
            kernel = Kernel(page_size=platform.page_size)
            executor = Executor(kernel, platform)
            proc = kernel.spawn(program)
            executor.schedule_default(proc)
            executor.run()
            return (proc.exit_time or executor.wall_time()) - proc.spawn_time
        return Parallaft(program, config=config,
                         platform=platform).run().main_wall_time

    base = benchmark.pedantic(lambda: run(None), rounds=1, iterations=1)
    parallaft_slow = run(ParallaftConfig()) / base
    raft_slow = run(ParallaftConfig.raft()) / base
    print_rows("§5.7: getpid slowdown, Parallaft vs RAFT",
               [f"parallaft {parallaft_slow:.1f}x   raft {raft_slow:.1f}x"],
               "RAFT incurs almost identical slowdown (shared logic)")
    assert abs(parallaft_slow - raft_slow) / parallaft_slow < 0.35

"""Graceful degradation under memory pressure (headline table).

Sweeps three dirty-page-heavy workloads down a ladder of frame-pool
budgets (unbounded, then ``base + f * (peak - base)`` for f = 1.5, 0.8,
0.5, 0.25 — ``base`` is the unprotected footprint, ``peak`` the unbounded
protected high-water mark) and asserts the degradation contract:

* every non-OOM run commits byte-identical output with zero errors and a
  clean invariant trace (ladder order, OOM provenance, no rollback to an
  evicted checkpoint);
* protection overhead is monotonically non-decreasing as the budget
  shrinks — pressure costs latency, never correctness;
* the fault campaign replayed at every surviving budget keeps zero SDC
  escapes and zero missed detections;
* the bottom rung ends in a clean OOM exit (a distinct class), proving
  the ladder fails stop rather than wedging or silently corrupting;
* the unbounded default is inert: no pressure events, no counters — the
  existing figure benchmarks are bit-for-bit unaffected by this subsystem.

``REPRO_PRESSURE_INJECTIONS=N`` scales the per-budget campaign (default 1).
"""

import os

import pytest
from conftest import print_rows

from repro.core import Parallaft, ParallaftConfig
from repro.faults import Outcome
from repro.harness.pressure import DEFAULT_FRACTIONS, run_pressure_campaign
from repro.harness.report import render_pressure_campaign
from repro.minic import compile_source
from repro.sim import apple_m2
from repro.trace import events as tev
from repro.workloads.registry import benchmark as get_benchmark

#: Dirty-page-heavy trio with monotone budget/overhead curves.
PRESSURE_BENCHMARKS = ("mcf", "sjeng", "lbm")


def pressure_injections():
    return int(os.environ.get("REPRO_PRESSURE_INJECTIONS", "1"))


@pytest.fixture(scope="module")
def sweeps():
    return run_pressure_campaign(
        [get_benchmark(name) for name in PRESSURE_BENCHMARKS],
        fractions=DEFAULT_FRACTIONS,
        injections_per_segment=pressure_injections())


def test_pressure_degradation(benchmark, sweeps):
    result = benchmark.pedantic(lambda: sweeps, rounds=1, iterations=1)

    print_rows("Graceful degradation under memory pressure",
               render_pressure_campaign(result).splitlines())

    assert set(result) == set(PRESSURE_BENCHMARKS)
    for name, sweep in result.items():
        assert len(sweep.runs) == 1 + len(DEFAULT_FRACTIONS)
        for run in sweep.runs:
            assert run.invariant_violations == [], (name, run.budget_bytes)
            if run.oom:
                # A clean OOM: the distinct exit class, not an error.
                assert not run.error_kinds, (name, run.budget_bytes)
                continue
            # Non-OOM rungs: byte-identical output, zero errors.
            assert run.output_matched, (name, run.budget_bytes)
            assert not run.error_kinds, (name, run.budget_bytes)
            if run.budget_bytes is not None:
                assert (run.peak_resident_bytes
                        <= run.budget_bytes), (name, run.budget_bytes)
        # Overhead grows monotonically as the budget shrinks.
        assert sweep.overhead_monotone, [
            (r.budget_bytes, r.wall_time) for r in sweep.runs]
        # The ladder bottoms out in an OOM rather than a wrong answer.
        assert sweep.runs[-1].oom, name


def test_pressure_campaign_keeps_detection(sweeps):
    """Fault campaigns replayed under pressure: zero SDC escapes, zero
    missed detections at every surviving budget."""
    campaigns = [(name, run.budget_bytes, run.campaign)
                 for name, sweep in sweeps.items()
                 for run in sweep.runs if run.campaign is not None]
    assert campaigns, "no surviving budget ran a campaign"
    for name, budget, campaign in campaigns:
        assert campaign.total > 0, (name, budget)
        assert campaign.count(Outcome.SDC) == 0, (name, budget)
        for injection in campaign.injections:
            assert (injection.outcome.is_detected
                    or injection.outcome in (Outcome.BENIGN, Outcome.OOM)), (
                name, budget, injection.outcome)


def test_unbounded_default_is_inert():
    """With no budget (the default), the pressure subsystem must be
    completely invisible: no controller, no pressure events, all
    counters zero — so every existing figure benchmark is bit-for-bit
    unchanged."""
    source, files = get_benchmark("bzip2").build(1, 1)
    runtime = Parallaft(compile_source(source, name="bzip2"),
                        config=ParallaftConfig(), platform=apple_m2(),
                        files=files, seed=1)
    stats = runtime.run()
    assert stats.exit_code == 0 and not stats.error_detected
    assert runtime.pressure is None
    assert stats.pressure_stalls == 0
    assert stats.pressure_sheds == 0
    assert stats.pressure_evictions == 0
    assert stats.pressure_adaptations == 0
    assert stats.oom_kills == 0 and not stats.oom_killed
    pressure_kinds = {tev.PRESSURE_STALL, tev.PRESSURE_SHED, tev.EVICT,
                      tev.PRESSURE_ADAPT, tev.PRESSURE_EXHAUSTED, tev.OOM}
    assert not [e for e in runtime.trace if e.kind in pressure_kinds]
    # Deterministic re-run: the virtual timeline is unchanged.
    rerun = Parallaft(compile_source(source, name="bzip2"),
                      config=ParallaftConfig(), platform=apple_m2(),
                      files=files, seed=1).run()
    assert rerun.stdout == stats.stdout
    assert rerun.all_wall_time == stats.all_wall_time

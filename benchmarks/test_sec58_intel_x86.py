"""§5.8: overhead on an Intel x86_64 heterogeneous processor.

Paper result (i7-14700, 4 KB pages, instruction-based slicing):
Parallaft 26.2% performance / 46.7% energy; RAFT 12.9% / 50.2%.
Parallaft is *worse* on Intel than Apple (smaller pages quadruple
checkpointing work; harsher cache contention), and its energy advantage
over RAFT disappears (the E-cores share the P-cores' voltage domain).
"""

import pytest
from conftest import print_rows, suite_names

from repro.harness.figures import run_suite_comparison


@pytest.fixture(scope="module")
def intel(suite_cache):
    return run_suite_comparison(platform_name="intel_14700",
                                names=suite_names())


def test_sec58_intel_overheads(benchmark, intel, suite_cache):
    comparison = benchmark.pedantic(lambda: intel, rounds=1, iterations=1)
    apple = suite_cache.get_comparison()

    intel_para = comparison.perf_geomean("parallaft")
    intel_raft = comparison.perf_geomean("raft")
    intel_para_e = comparison.energy_geomean("parallaft")
    intel_raft_e = comparison.energy_geomean("raft")
    apple_para = apple.perf_geomean("parallaft")
    apple_raft = apple.perf_geomean("raft")
    apple_para_e = apple.energy_geomean("parallaft")
    apple_raft_e = apple.energy_geomean("raft")

    print_rows("§5.8: Intel vs Apple geomeans", [
        f"intel  perf: parallaft +{intel_para:5.1f}%  raft +{intel_raft:5.1f}%"
        "   (paper 26.2% / 12.9%)",
        f"intel  energy: parallaft +{intel_para_e:5.1f}%  raft +{intel_raft_e:5.1f}%"
        "   (paper 46.7% / 50.2%)",
        f"apple  perf: parallaft +{apple_para:5.1f}%  raft +{apple_raft:5.1f}%",
        f"apple  energy: parallaft +{apple_para_e:5.1f}%  raft +{apple_raft_e:5.1f}%",
    ])

    # Shape criteria:
    # 1. On Intel, Parallaft's performance overhead exceeds RAFT's (the
    #    reverse of the rough parity on Apple): 4 KB pages make
    #    checkpointing more expensive.
    assert intel_para > intel_raft
    # 2. Parallaft's Apple energy advantage over RAFT (roughly half)
    #    disappears on Intel: near-parity (within ~25% of each other),
    #    because the E-cores share the P-cores' voltage rail.
    assert intel_para_e > 0.75 * intel_raft_e
    assert apple_para_e < 0.72 * apple_raft_e
    # 3. Per-platform slicing semantics: Intel slices by instructions
    #    (rep-prefix hazard, paper footnote 14).
    from repro.sim import intel_14700, apple_m2
    assert intel_14700().slicing_unit == "instructions"
    assert apple_m2().slicing_unit == "cycles"
    # 4. Page-size difference is real in the substrate: same footprint
    #    means ~4x the pages on Intel.
    assert apple_m2().page_size == 4 * intel_14700().page_size

"""Figure 9: slicing-period performance tradeoffs (gcc / mcf / sjeng).

Paper result:
  (a) fork+COW overhead falls as the period grows (fewer checkpoints and
      fewer COW rounds), most steeply for memory-intensive mcf;
  (b) last-checker-sync overhead rises with the period (more lag between
      main and checkers), prominent for short-input gcc and slow-checker
      mcf, while long-running sjeng is nearly insensitive;
  (c) the combination gives each benchmark a sweet spot: gcc 2B, mcf 5B,
      sjeng 20B cycles.
"""

import pytest
from conftest import print_rows

from repro.common.units import BILLION
from repro.harness.figures import run_period_sweep, sweet_spot


@pytest.fixture(scope="module")
def sweep():
    return run_period_sweep()


def test_fig9_period_sweep(benchmark, sweep):
    result = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    for name, points in result.items():
        rows = [f"{p.label:10s} total {p.total_pct:5.1f}%  "
                f"fork+cow {p.fork_and_cow_pct:5.1f}%  "
                f"last-sync {p.last_checker_sync_pct:5.1f}%"
                for p in points]
        rows.append(f"sweet spot: {sweet_spot(points) / BILLION:g}B")
        print_rows(f"Figure 9: {name}", rows,
                   "sweet spots gcc 2B / mcf 5B / sjeng 20B")

    gcc, mcf, sjeng = result["gcc"], result["mcf"], result["sjeng"]

    # (a) fork+COW decreases monotonically with the period, for all three.
    for points in (gcc, mcf, sjeng):
        fc = [p.fork_and_cow_pct for p in points]
        assert all(a >= b - 0.5 for a, b in zip(fc, fc[1:])), fc
    # mcf's fork+COW is the steepest (most pages COWed per segment).
    assert mcf[0].fork_and_cow_pct > gcc[0].fork_and_cow_pct
    assert mcf[0].fork_and_cow_pct > sjeng[0].fork_and_cow_pct

    # (b) last-checker sync grows with the period for gcc and mcf...
    for points in (gcc, mcf):
        assert points[-1].last_checker_sync_pct > \
            points[0].last_checker_sync_pct
    # ... gcc (many short inputs) has the most sync of the trio ...
    assert gcc[-1].last_checker_sync_pct > mcf[-1].last_checker_sync_pct
    assert gcc[-1].last_checker_sync_pct > sjeng[-1].last_checker_sync_pct
    # ... and sjeng (longest run, fast checkers) stays nearly flat.
    sjeng_range = (max(p.last_checker_sync_pct for p in sjeng)
                   - min(p.last_checker_sync_pct for p in sjeng))
    assert sjeng_range < 6.0

    # (c) interior sweet spots in the paper's ordering: gcc earliest.
    assert sweet_spot(gcc) <= 2 * BILLION
    assert sweet_spot(mcf) >= 5 * BILLION
    assert sweet_spot(sjeng) >= 5 * BILLION
    assert sweet_spot(gcc) < sweet_spot(mcf)

"""Infrastructure-fault coverage: SDC escapes with and without hardening.

The application campaign (figure 10) attacks the *protected program*;
this campaign attacks the *protector* — dirty-page tracking, the R/R log,
retained recovery checkpoints and the comparator's hash path (see
:mod:`repro.faults.infra`).  Shape criteria:

1. With hardening **off**, infrastructure faults escape silently: the
   SDC fraction is nonzero for at least ``dirty-miss`` and
   ``log-corrupt`` (a suppressed dirty bit removes the corrupted page
   from comparison entirely; a rotten log record under recovery rolls
   the innocent main back, and the re-execution re-draws ``getrandom``
   entropy — silently different output, empty error list).
2. With hardening **on** (checksummed log records, checkpoint digests,
   clean-page audit, redundant compare), the SDC fraction is exactly
   zero for *every* kind on *every* workload: each corruption either
   never matters or is converted into a typed, fail-stop error.
"""

import pytest
from conftest import print_rows

from repro.core import ParallaftConfig
from repro.faults import INFRA_KINDS, Outcome, run_infra_campaign
from repro.harness.report import render_infra_campaign
from repro.minic import compile_source
from repro.sim import apple_m2

#: ~8 segments per run on these workloads: enough distinct injection
#: points, cheap enough that every injection can be a full program run.
CAMPAIGN_PERIOD = 12_000_000_000
INJECTIONS_PER_KIND = 3

# Three structurally different workloads.  Each draws fresh kernel
# entropy every round (so a wrongful rollback visibly re-draws it),
# keeps a full 16 KiB data page hot (so dirty-page faults always have a
# target), prints per-round progress and a final whole-array aggregate
# (so any surviving corruption reaches stdout).
WORKLOADS = {
    "stencil": """
global grid[2048];
global ent[1];
func main() {
    var i; var round; var total;
    srand64(7);
    for (round = 0; round < 20; round = round + 1) {
        getrandom(ent, 8);
        for (i = 0; i < 2048; i = i + 1) {
            grid[i] = grid[i] * 3 + round - i;
        }
        print_int((grid[round] + peek8(ent)) % 1000003);
    }
    total = 0;
    for (i = 0; i < 2048; i = i + 1) { total = total + grid[i]; }
    print_int(total);
}
""",
    "scatter": """
global grid[2048];
global ent[1];
func main() {
    var i; var round; var h; var total;
    srand64(11);
    for (round = 0; round < 18; round = round + 1) {
        getrandom(ent, 8);
        h = peek8(ent) + 256 * round;
        for (i = 0; i < 2048; i = i + 1) {
            grid[(i * 7 + h) % 2048] = grid[(i * 7 + h) % 2048] + i + h;
        }
        print_int(grid[h % 2048]);
    }
    total = 0;
    for (i = 0; i < 2048; i = i + 1) { total = total + grid[i] * (i + 1); }
    print_int(total % 1000003);
}
""",
    "cascade": """
global grid[2048];
global ent[1];
func main() {
    var i; var round; var carry; var total;
    srand64(23);
    for (round = 0; round < 16; round = round + 1) {
        getrandom(ent, 8);
        carry = peek8(ent);
        for (i = 0; i < 2048; i = i + 1) {
            carry = (grid[i] + carry * 31 + round) % 1000003;
            grid[i] = carry;
        }
        print_int(carry);
    }
    total = 0;
    for (i = 0; i < 2048; i = i + 1) { total = total + grid[i]; }
    print_int(total);
}
""",
}


def make_config():
    config = ParallaftConfig()
    config.slicing_period = CAMPAIGN_PERIOD
    config.enable_recovery = True
    return config


def run_arm(hardening):
    results = {}
    for seed, (name, source) in enumerate(sorted(WORKLOADS.items())):
        results[name] = run_infra_campaign(
            compile_source(source), make_config, apple_m2,
            injections_per_kind=INJECTIONS_PER_KIND,
            hardening=hardening, seed=seed + 1, benchmark_name=name)
    return results


@pytest.fixture(scope="module")
def unhardened():
    return run_arm(hardening=False)


@pytest.fixture(scope="module")
def hardened():
    return run_arm(hardening=True)


def _kind_totals(results, kind):
    campaigns = [per[kind] for per in results.values()]
    injected = sum(c.total for c in campaigns)
    sdc = sum(c.count(Outcome.SDC) for c in campaigns)
    return injected, sdc


def test_unhardened_infrastructure_faults_escape(unhardened):
    print("\n=== infrastructure-fault campaign, hardening OFF ===")
    print(render_infra_campaign(unhardened))
    for kind in INFRA_KINDS:
        injected, _ = _kind_totals(unhardened, kind)
        assert injected >= 3, f"{kind}: campaign too small"
    # The headline: unprotected infrastructure lets corruption escape
    # silently.  dirty-miss and log-corrupt are the reliable escapes;
    # the other kinds are allowed (but not required) to escape too.
    for kind in ("dirty-miss", "log-corrupt"):
        _, sdc = _kind_totals(unhardened, kind)
        assert sdc > 0, f"{kind}: expected silent escapes without hardening"


def test_hardened_infrastructure_faults_never_escape(hardened):
    print("\n=== infrastructure-fault campaign, hardening ON ===")
    print(render_infra_campaign(hardened))
    rows = []
    for name, per_kind in sorted(hardened.items()):
        for kind in INFRA_KINDS:
            campaign = per_kind[kind]
            assert campaign.total >= 1, f"{name}/{kind}: nothing landed"
            # The acceptance bar: hardening drives SDC to exactly zero,
            # per kind, per workload — not merely "lower".
            assert campaign.count(Outcome.SDC) == 0, (
                f"{name}/{kind}: {campaign.count(Outcome.SDC)} silent "
                f"escape(s) survived hardening")
            rows.append(f"{name:10s} {kind:20s} n={campaign.total}  "
                        f"sdc=0  detected "
                        f"{100 * campaign.detected_fraction:5.1f}%")
    print_rows("hardening closes every escape channel", rows,
               "SDC == 0 for every kind once integrity layers are on")


def test_hardening_reduces_escape_rate(unhardened, hardened):
    total_soft = sum(c.count(Outcome.SDC)
                     for per in unhardened.values() for c in per.values())
    total_hard = sum(c.count(Outcome.SDC)
                     for per in hardened.values() for c in per.values())
    assert total_soft > 0
    assert total_hard == 0

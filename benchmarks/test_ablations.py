"""Ablations of Parallaft's design choices (DESIGN.md's list).

Each ablation disables one mechanism the paper argues for and shows the
failure/cost that motivates it:

* branch counters (deterministic) vs the raw instruction counter
  (nondeterministic overcount, paper §4.2.1) for execution points;
* the skid buffer in execution-point replay (paper §4.2.2);
* dirty-page hashing vs full-memory comparison (paper §4.4);
* checker migration + DVFS pacing (paper §4.5).
"""

from conftest import print_rows

from repro.common.units import BILLION
from repro.core import (
    ComparisonStrategy,
    ExecPointCounter,
    Parallaft,
    ParallaftConfig,
)
from repro.harness.periods import effective_period
from repro.minic import compile_source
from repro.sim import apple_m2
from repro.workloads import benchmark as get_benchmark

SYSCALL_HEAVY = """
global acc;
func main() {
    var i; var j;
    for (i = 0; i < 40; i = i + 1) {
        acc = acc + getpid() % 7;
        for (j = 0; j < 3000; j = j + 1) { acc = acc + j; }
    }
    print_int(acc % 100000);
}
"""


def _run_with(config, source=SYSCALL_HEAVY, seed=0):
    runtime = Parallaft(compile_source(source), config=config,
                        platform=apple_m2(), seed=seed)
    return runtime.run()


def test_ablation_instruction_counter_misreplays(benchmark):
    """Replaying to instruction counts fails where branch counts succeed:
    the instruction counter overcounts nondeterministically at every trap
    (the paper's whole reason for branch counters)."""

    def experiment():
        outcomes = {}
        for counter in (ExecPointCounter.BRANCHES,
                        ExecPointCounter.INSTRUCTIONS):
            failures = 0
            for seed in range(3):
                config = ParallaftConfig()
                config.slicing_period = 150_000_000
                config.exec_point_counter = counter
                stats = _run_with(config, seed=seed)
                if stats.error_detected:
                    failures += 1
            outcomes[counter.value] = failures
        return outcomes

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_rows("Ablation: exec-point counter choice",
               [f"{k}: {v}/3 runs with false positives"
                for k, v in outcomes.items()],
               "branch counters are deterministic; instruction "
               "counters overcount (§4.2.1)")
    assert outcomes["branches"] == 0
    assert outcomes["instructions"] > 0


def test_ablation_skid_buffer(benchmark):
    """Without the skid buffer, counter-overflow skid makes the checker
    overrun the recorded execution point (paper §4.2.2, figure 3)."""

    def experiment():
        results = {}
        for buffer_branches in (0, 64):
            failures = 0
            for seed in range(3):
                config = ParallaftConfig()
                config.slicing_period = 150_000_000
                config.skid_buffer_branches = buffer_branches
                stats = _run_with(config, seed=seed)
                if any(e.kind == "exec_point_overrun"
                       for e in stats.errors):
                    failures += 1
            results[buffer_branches] = failures
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_rows("Ablation: skid buffer",
               [f"buffer={k} branches: {v}/3 runs overran the target"
                for k, v in results.items()],
               "stopping short of the target absorbs skid")
    assert results[64] == 0
    assert results[0] > 0


def test_ablation_dirty_hash_vs_full_memory(benchmark):
    """Comparing only dirty pages is much cheaper than hashing all mapped
    memory, with identical verdicts (paper §4.4)."""
    bench = get_benchmark("sjeng")
    source, files = bench.build(1, 1)

    def run(strategy):
        config = ParallaftConfig()
        config.slicing_period = effective_period(5 * BILLION)
        config.comparison = strategy
        runtime = Parallaft(compile_source(source), config=config,
                            platform=apple_m2(), files=files)
        stats = runtime.run()
        assert not stats.error_detected
        return stats

    def experiment():
        return (run(ComparisonStrategy.DIRTY_HASH),
                run(ComparisonStrategy.FULL_MEMORY))

    hashed, full = benchmark.pedantic(experiment, rounds=1, iterations=1)
    # Hashing costs land in the checkers' system time (the injected hasher
    # plus kernel page walks); user time is the replay itself.
    print_rows("Ablation: state-comparison strategy", [
        f"dirty-hash:  checker sys time {hashed.checker_sys_time:.3f}s",
        f"full-memory: checker sys time {full.checker_sys_time:.3f}s",
    ], "hash only modified pages (§4.4)")
    assert full.checker_sys_time > 1.5 * hashed.checker_sys_time


def test_ablation_migration_and_pacer(benchmark):
    """Without big-core migration, slow checkers pile up and the
    last-checker wait balloons; without the DVFS pacer, little cores run
    flat-out and burn energy (paper §4.5)."""
    bench = get_benchmark("lbm")
    source, files = bench.build(1, 1)

    def run(migration, pacer):
        config = ParallaftConfig()
        config.slicing_period = effective_period(5 * BILLION)
        config.enable_migration = migration
        config.enable_dvfs_pacer = pacer
        runtime = Parallaft(compile_source(source), config=config,
                            platform=apple_m2(), files=files)
        stats = runtime.run()
        assert not stats.error_detected
        return stats

    def experiment():
        return {
            "full": run(True, True),
            "no_migration": run(False, True),
            "no_pacer": run(True, False),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [f"{name:13s} wall {s.all_wall_time:6.2f}s  "
            f"energy {s.energy_joules:7.1f}J  "
            f"migrations {s.checker_migrations}"
            for name, s in results.items()]
    print_rows("Ablation: checker scheduling/pacing (lbm)", rows,
               "migration bounds the checker lag; pacing saves energy")

    # Migration keeps the wall time down on the worst-case benchmark.
    assert results["no_migration"].all_wall_time > \
        1.05 * results["full"].all_wall_time
    assert results["no_migration"].checker_migrations == 0
    # The pacer saves energy relative to running little cores flat-out
    # (allow a little slack: lbm keeps littles busy either way).
    assert results["full"].energy_joules <= \
        1.02 * results["no_pacer"].energy_joules

"""Figure 5: performance overhead of Parallaft and RAFT.

Paper result: Parallaft geomean 15.9%, RAFT 16.2% — comparable performance,
with memory-intensive benchmarks (mcf, milc, lbm) the most expensive for
both systems.
"""

from conftest import print_rows

PAPER_PARALLAFT_GEOMEAN = 15.9
PAPER_RAFT_GEOMEAN = 16.2


def test_fig5_performance_overhead(benchmark, suite_cache):
    comparison = benchmark.pedantic(
        lambda: suite_cache.get_comparison(sample_memory=True),
        rounds=1, iterations=1)

    para = comparison.perf_overheads("parallaft")
    raft = comparison.perf_overheads("raft")
    rows = [f"{name:12s} parallaft +{para[name]:6.1f}%   "
            f"raft +{raft[name]:6.1f}%" for name in sorted(para)]
    rows.append(f"{'GEOMEAN':12s} parallaft +{comparison.perf_geomean('parallaft'):6.1f}%   "
                f"raft +{comparison.perf_geomean('raft'):6.1f}%")
    print_rows("Figure 5: performance overhead", rows,
               f"Parallaft {PAPER_PARALLAFT_GEOMEAN}%, "
               f"RAFT {PAPER_RAFT_GEOMEAN}%")

    para_geo = comparison.perf_geomean("parallaft")
    raft_geo = comparison.perf_geomean("raft")

    # Shape criteria (EXPERIMENTS.md):
    # 1. Both overheads are small double-digit percentages, same ballpark
    #    as the paper's 15.9% / 16.2%.
    assert 5.0 < para_geo < 35.0
    assert 5.0 < raft_geo < 35.0
    # 2. Parallaft's overhead is comparable to RAFT's (within a factor ~2).
    assert para_geo < 2.2 * raft_geo + 5
    # 3. The memory-intensive benchmarks are the expensive ones for
    #    Parallaft: every one of mcf/milc/lbm costs more than every
    #    compute-bound benchmark.
    for heavy in ("mcf", "milc", "lbm"):
        for light in ("sjeng",):
            assert para[heavy] > para[light], (heavy, light)
    # 4. Compute-bound benchmarks are cheap under both systems.
    assert para["sjeng"] < 12.0
    assert raft["sjeng"] < 12.0

"""Table 2: error containment, detection, and recovery capabilities.

Paper: Parallaft guarantees error detection (within the configurable
latency bound of max-segment-length x max-live-segments); RAFT does not
(its syscall-mismatch-only policy plus misspeculation recovery can hide an
error in the non-speculative process forever).  Neither system contains
errors in the sphere of replication or recovers (future work for
Parallaft, impossible for RAFT).

This bench demonstrates the *detection guarantee* row empirically: a
state-corrupting fault between two syscalls is detected by Parallaft's
periodic checkpoint comparison but sails past RAFT's syscall-only
comparison when it never reaches an output.
"""

from conftest import print_rows

from repro.core import Parallaft, ParallaftConfig
from repro.harness.figures import table2_capabilities
from repro.minic import compile_source
from repro.sim import apple_m2

# A fault in state that is live (compared at segment ends) but never
# escapes through a syscall: dead-end scratch data.
PROGRAM = """
global scratch[512];
global live[64];
func main() {
    var i; var round; var total;
    for (round = 0; round < 40; round = round + 1) {
        for (i = 0; i < 512; i = i + 1) {
            scratch[i] = scratch[i] + round;
        }
        for (i = 0; i < 64; i = i + 1) {
            live[i] = live[i] + scratch[i * 8];
        }
    }
    total = 0;
    for (i = 0; i < 64; i = i + 1) { total = total + i; }
    print_int(total);
}
"""


def _run(config, corrupt_scratch):
    runtime = Parallaft(compile_source(PROGRAM), config=config,
                        platform=apple_m2())
    fired = [False]

    def hook(proc, role):
        if role == "checker" and not fired[0] and proc.user_time > 0.002:
            from repro.isa.program import DATA_BASE
            # Flip a bit in `scratch` - state that never reaches a syscall.
            proc.mem.store_word(DATA_BASE + 128,
                                proc.mem.load_word(DATA_BASE + 128) ^ 1)
            fired[0] = True

    if corrupt_scratch:
        runtime.quantum_hooks.append(hook)
    stats = runtime.run()
    return fired[0], stats


def test_table2_detection_guarantee(benchmark):
    def experiment():
        config = ParallaftConfig()
        config.slicing_period = 400_000_000
        fired_p, parallaft_stats = _run(config, corrupt_scratch=True)
        fired_r, raft_stats = _run(ParallaftConfig.raft(),
                                   corrupt_scratch=True)
        return fired_p, parallaft_stats, fired_r, raft_stats

    fired_p, para, fired_r, raft = benchmark.pedantic(
        experiment, rounds=1, iterations=1)

    capabilities = table2_capabilities()
    rows = [f"{system:10s} " + "  ".join(f"{k}={v}" for k, v in caps.items())
            for system, caps in capabilities.items()]
    rows.append(f"measured: parallaft detected={para.error_detected} "
                f"raft detected={raft.error_detected}")
    print_rows("Table 2: capability matrix", rows,
               "Parallaft guarantees detection; RAFT does not")

    assert fired_p and fired_r, "corruption hooks must have fired"
    # Parallaft's periodic state comparison catches the silent corruption.
    assert para.error_detected
    assert para.errors[0].kind == "state_mismatch"
    # RAFT compares only at syscalls: the corrupted scratch state never
    # escapes, so the error goes undetected and the program "succeeds".
    assert not raft.error_detected
    assert raft.exit_code == 0

"""Setup shim for environments without the `wheel` package (offline installs).

With no [build-system] table in pyproject.toml, pip falls back to the legacy
`setup.py develop` path for editable installs, which works without wheel.
"""

from setuptools import setup

setup()

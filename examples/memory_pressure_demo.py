#!/usr/bin/env python3
"""Memory-pressure demo: watch Parallaft degrade gracefully on finite RAM.

Checkpoints and checkers pin copy-on-write frames, so protection costs
memory (paper §5.5).  This demo gives the simulated machine *less* RAM
than the unbounded run wants and shows the pressure controller walk its
degradation ladder instead of crashing or corrupting:

  stage 1  stall the main (backpressure stops new dirty pages)
  stage 2  shed the youngest in-flight checker, re-queue its segment
  stage 3  evict retained recovery checkpoints, oldest first
  stage 4  shorten the slicing period from the observed dirty-page rate

Each rung costs latency, never correctness: every surviving budget must
commit output byte-identical to the unbounded run, and a budget below the
workload's own footprint ends in a clean OOM exit — a distinct class from
fault detections.

    python examples/memory_pressure_demo.py
    python examples/memory_pressure_demo.py --trace /tmp/pressure.json
"""

import argparse

from repro import Parallaft, ParallaftConfig, compile_source
from repro.sim import apple_m2
from repro.trace import InvariantChecker
from repro.trace import events as tev

WORKLOAD = """
global grid[4096];

func main() {
    var i; var round;
    srand64(9);
    for (round = 0; round < 24; round = round + 1) {
        for (i = 0; i < 4096; i = i + 1) {
            grid[i] = grid[i] * 3 + round + i;
        }
        print_int(grid[round] % 1000003);
    }
}
"""

PAGE = 16384


def run(budget=None):
    config = ParallaftConfig(mem_budget_bytes=budget)
    config.slicing_period = 150_000_000
    runtime = Parallaft(compile_source(WORKLOAD), config=config,
                        platform=apple_m2())
    return runtime, runtime.run()


def describe(stats, reference):
    if stats.oom_killed:
        return "OOM (clean kill, exit %d)" % stats.exit_code
    verdict = "output identical" if stats.stdout == reference.stdout \
        else "OUTPUT DIVERGED"
    overhead = (stats.all_wall_time / reference.all_wall_time - 1) * 100
    return (f"{verdict}, overhead {overhead:+6.1f}%, "
            f"stalls {stats.pressure_stalls}, sheds {stats.pressure_sheds}, "
            f"evictions {stats.pressure_evictions}, "
            f"adaptations {stats.pressure_adaptations}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="write the tightest surviving "
                                        "run's Chrome trace JSON here")
    args = parser.parse_args()

    print("== unbounded reference ==")
    _, reference = run(budget=None)
    assert reference.exit_code == 0 and not reference.error_detected
    peak = int(reference.peak_resident_bytes)
    print(f"peak resident: {peak} bytes ({peak // PAGE} pages), "
          f"wall {reference.all_wall_time:.1f}")

    print("\n== shrinking the machine ==")
    tight_runtime = None
    for fraction in (0.9, 0.7, 0.5, 0.1):
        budget = max(PAGE, int(peak * fraction))
        runtime, stats = run(budget=budget)
        violations = InvariantChecker().check(runtime.trace)
        assert not violations, violations
        print(f"budget {budget:8d} ({fraction:.0%} of peak): "
              f"{describe(stats, reference)}")
        if not stats.oom_killed and stats.pressure_stalls:
            tight_runtime = runtime

    if tight_runtime is not None:
        counts = {}
        for event in tight_runtime.trace:
            if event.kind in (tev.PRESSURE_STALL, tev.PRESSURE_SHED,
                              tev.EVICT, tev.PRESSURE_ADAPT,
                              tev.PRESSURE_EXHAUSTED, tev.OOM):
                counts[event.kind] = counts.get(event.kind, 0) + 1
        print("\npressure events in the tightest surviving run:")
        for kind, count in sorted(counts.items()):
            print(f"  {kind:20s} {count}")
        if args.trace:
            tight_runtime.trace.write_chrome_trace(args.trace)
            print(f"\ntrace written to {args.trace}")

    print("\nEvery surviving budget committed byte-identical output; "
          "pressure cost latency, never correctness.")


if __name__ == "__main__":
    main()

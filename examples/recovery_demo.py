#!/usr/bin/env python3
"""Recovery demo: watch Parallaft repair a fault in the *main* process.

The paper's campaigns corrupt checkers — the main is the trusted copy.
This demo goes further: it flips a bit in the main itself, lets the
segment check fail, and shows the runtime diagnose the failure, roll the
main back to the last verified checkpoint, and re-execute — finishing
with output byte-identical to a fault-free run.

    python examples/recovery_demo.py
    python examples/recovery_demo.py --trace /tmp/recovery_trace.json

``--trace`` exports the recovery run's event trace as Chrome trace_event
JSON (load it in Perfetto / about://tracing) and prints the tail of the
text timeline — rollback, console truncation and re-execution included.
"""

import argparse

from repro import Parallaft, ParallaftConfig, compile_source
from repro.faults import FaultInjector, Outcome, TARGET_MAIN
from repro.harness.report import render_timeline
from repro.sim import apple_m2
from repro.trace import InvariantChecker

WORKLOAD = """
global grid[256];

func main() {
    var i; var round; var total;
    srand64(42);
    for (round = 0; round < 30; round = round + 1) {
        for (i = 0; i < 256; i = i + 1) {
            grid[i] = grid[i] * 5 + round - i;
        }
        print_int(grid[round]);
    }
    total = 0;
    for (i = 0; i < 256; i = i + 1) { total = total + grid[i]; }
    print_int(total);
}
"""


def make_config(recovery=True):
    config = ParallaftConfig()
    config.slicing_period = 400_000_000
    config.enable_recovery = recovery
    return config


def run_with_main_fault(recovery):
    runtime = Parallaft(compile_source(WORKLOAD),
                        config=make_config(recovery), platform=apple_m2())
    fired = [0]

    def flip_main_register(proc, role):
        if role == "main" and fired[0] == 0 and proc.user_time > 0.002:
            proc.cpu.regs.flip_bit("gpr", 8, 17)
            fired[0] += 1

    runtime.quantum_hooks.append(flip_main_register)
    return runtime.run(), runtime


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="export the recovery run's event trace as "
                             "Chrome trace_event JSON")
    args = parser.parse_args(argv)
    reference = Parallaft(compile_source(WORKLOAD),
                          config=make_config(recovery=False),
                          platform=apple_m2()).run()
    print("fault-free run:")
    print(f"  output tail {reference.stdout.split()[-1]!r}, "
          f"{len(reference.stdout.splitlines())} lines")

    print("\nsame workload, one bit flipped in the MAIN, recovery off:")
    detected, _ = run_with_main_fault(recovery=False)
    error = detected.errors[0]
    print(f"  detected: {error.kind} in segment {error.segment_index} "
          "-> run stops (paper behaviour)")

    print("\nsame fault, recovery on:")
    stats, runtime = run_with_main_fault(recovery=True)
    dump = stats.to_dict()
    print(f"  diagnostic re-checks : {dump['counter.recovery.retries']}")
    print(f"  rollbacks            : {dump['counter.recovery.rollbacks']}")
    print(f"  wasted checker cycles: "
          f"{dump['counter.recovery.wasted_cycles']:.3g}")
    matched = stats.stdout == reference.stdout
    print(f"  errors surfaced      : {len(stats.errors)}")
    print(f"  output == reference  : {matched}")
    assert matched and not stats.errors
    assert dump["counter.recovery.rollbacks"] >= 1

    if args.trace:
        InvariantChecker(recovery=True).assert_ok(runtime.trace)
        runtime.trace.write_chrome_trace(args.trace)
        print(f"\ntrace: {len(runtime.trace)} events -> {args.trace} "
              "(invariants OK; load in Perfetto)")
        print(render_timeline(runtime.trace, last=15))

    print("\nmini campaign (register+memory flips in the main, "
          "recovery on vs off):")
    for recovery in (True, False):
        injector = FaultInjector(compile_source(WORKLOAD),
                                 config_factory=lambda r=recovery:
                                     make_config(r),
                                 platform_factory=apple_m2, seed=7)
        campaign = injector.run_campaign(
            injections_per_segment=2, max_segments=2,
            benchmark_name="demo", target=TARGET_MAIN,
            verify_recovered_output=recovery)
        label = "recovery on " if recovery else "recovery off"
        parts = ", ".join(f"{o.value} {campaign.count(o)}"
                          for o in Outcome if campaign.count(o))
        print(f"  {label}: n={campaign.total}  {parts}")
        if recovery:
            assert all(r.outcome in (Outcome.BENIGN, Outcome.RECOVERED)
                       for r in campaign.injections)

    print("\nevery fault the control arm only *detects*, the recovery arm "
          "repairs — same output as if the fault never happened.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Recovery demo: watch Parallaft repair a fault in the *main* process.

The paper's campaigns corrupt checkers — the main is the trusted copy.
This demo goes further: it flips a bit in the main itself, lets the
segment check fail, and shows the runtime diagnose the failure, roll the
main back to the last verified checkpoint, and re-execute — finishing
with output byte-identical to a fault-free run.

    python examples/recovery_demo.py
    python examples/recovery_demo.py --trace /tmp/recovery_trace.json
    python examples/recovery_demo.py --infra

``--trace`` exports the recovery run's event trace as Chrome trace_event
JSON (load it in Perfetto / about://tracing) and prints the tail of the
text timeline — rollback, console truncation and re-execution included.

``--infra`` attacks the *protector* instead of the program: one bit is
flipped in a stored record/replay log entry (``repro.faults.infra``
log-corrupt model).  Without hardening, the rotten record makes the
checker diverge, recovery wrongly blames the innocent main, and the
rollback re-draws ``getrandom`` entropy — the run ends "clean" with
silently different output.  With ``log_checksums`` on, the corruption is
caught at the record itself, reported as a typed ``log_integrity`` error,
and no rollback ever runs.
"""

import argparse

from repro import Parallaft, ParallaftConfig, compile_source
from repro.core.rr_log import SyscallRecord
from repro.faults import FaultInjector, Outcome, TARGET_MAIN, classify_run
from repro.faults.infra import (INFRA_LOG_CORRUPT, InfraFaultController,
                                InfraFaultSite, harden)
from repro.harness.report import render_timeline
from repro.sim import apple_m2
from repro.trace import InvariantChecker
from repro.trace import events as tev

WORKLOAD = """
global grid[256];

func main() {
    var i; var round; var total;
    srand64(42);
    for (round = 0; round < 30; round = round + 1) {
        for (i = 0; i < 256; i = i + 1) {
            grid[i] = grid[i] * 5 + round - i;
        }
        print_int(grid[round]);
    }
    total = 0;
    for (i = 0; i < 256; i = i + 1) { total = total + grid[i]; }
    print_int(total);
}
"""


# The --infra workload consumes kernel entropy each round: a *wrongful*
# rollback re-executes getrandom, draws fresh entropy, and finishes with
# silently different output — the escape the hardened arm must close.
INFRA_WORKLOAD = """
global grid[1024];
global ent[1];

func main() {
    var i; var round;
    for (round = 0; round < 12; round = round + 1) {
        getrandom(ent, 8);
        for (i = 0; i < 1024; i = i + 1) {
            grid[i] = grid[i] * 7 + round - i;
        }
        print_int((grid[round] + peek8(ent)) % 1000003);
    }
}
"""


def make_config(recovery=True):
    config = ParallaftConfig()
    config.slicing_period = 400_000_000
    config.enable_recovery = recovery
    return config


def make_infra_config(hardened):
    config = ParallaftConfig()
    config.slicing_period = 12_000_000_000
    config.enable_recovery = True
    if hardened:
        harden(config)
    return config


def run_infra_arm(site_kwargs, hardened):
    runtime = Parallaft(compile_source(INFRA_WORKLOAD),
                        config=make_infra_config(hardened),
                        platform=apple_m2())
    InfraFaultController(runtime, InfraFaultSite(**site_kwargs))
    return runtime.run(), runtime


def run_infra_demo():
    reference_rt = Parallaft(compile_source(INFRA_WORKLOAD),
                             config=make_infra_config(hardened=False),
                             platform=apple_m2())
    reference = reference_rt.run()
    print("fault-free run:")
    print(f"  output tail {reference.stdout.split()[-1]!r}, "
          f"{len(reference.stdout.splitlines())} lines")

    # Target the last entropy record of segment 1: its output_data is
    # still live at the end-of-segment check, and bit 9 (byte 1) never
    # reaches stdout, so the main's own output stays clean while the
    # checker's replay diverges.
    records = reference_rt.segments[1].log.records
    rank = max(index for index, record in enumerate(records)
               if isinstance(record, SyscallRecord) and record.output_data)
    site = dict(kind=INFRA_LOG_CORRUPT, segment_index=1, bit=9,
                record_rank=rank, field_rank=1)
    print(f"\ninfra fault: flip one bit in stored log record {rank} of "
          "segment 1 (a getrandom result)")

    print("\nunhardened arm — the protector trusts its own log:")
    soft, _ = run_infra_arm(site, hardened=False)
    outcome = classify_run(soft, reference)
    print(f"  errors surfaced      : {len(soft.errors)}")
    print(f"  rollbacks            : {soft.recovery_rollbacks} "
          "(recovery wrongly blamed the innocent main)")
    print(f"  output == reference  : {soft.stdout == reference.stdout}")
    print(f"  outcome              : {outcome.value} "
          "(silent data corruption — no error on the books)")
    assert outcome is Outcome.SDC
    assert not soft.errors and soft.recovery_rollbacks >= 1

    print("\nhardened arm — per-record checksums (log_checksums=True):")
    hard, hard_rt = run_infra_arm(site, hardened=True)
    error = hard.errors[0]
    integrity_fails = list(hard_rt.trace.events(tev.INTEGRITY_FAIL))
    print(f"  detected             : {error.kind} in segment "
          f"{error.segment_index}")
    print(f"  rollbacks            : {hard.recovery_rollbacks} "
          "(integrity failures never roll back)")
    print(f"  integrity_fail events: {len(integrity_fails)}")
    assert error.kind == "log_integrity"
    assert hard.recovery_rollbacks == 0 and integrity_fails
    InvariantChecker(recovery=True).assert_ok(hard_rt.trace)

    print("\nsame bit flip, opposite endings: unhardened it silently "
          "corrupts the output through a wrongful\nrollback; hardened it "
          "becomes a typed integrity error and the checkpoint stays "
          "untouched.")


def run_with_main_fault(recovery):
    runtime = Parallaft(compile_source(WORKLOAD),
                        config=make_config(recovery), platform=apple_m2())
    fired = [0]

    def flip_main_register(proc, role):
        if role == "main" and fired[0] == 0 and proc.user_time > 0.002:
            proc.cpu.regs.flip_bit("gpr", 8, 17)
            fired[0] += 1

    runtime.quantum_hooks.append(flip_main_register)
    return runtime.run(), runtime


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="export the recovery run's event trace as "
                             "Chrome trace_event JSON")
    parser.add_argument("--infra", action="store_true",
                        help="inject an infrastructure fault (log-corrupt) "
                             "instead of an application fault and show the "
                             "integrity-hardening detection")
    args = parser.parse_args(argv)
    if args.infra:
        return run_infra_demo()
    reference = Parallaft(compile_source(WORKLOAD),
                          config=make_config(recovery=False),
                          platform=apple_m2()).run()
    print("fault-free run:")
    print(f"  output tail {reference.stdout.split()[-1]!r}, "
          f"{len(reference.stdout.splitlines())} lines")

    print("\nsame workload, one bit flipped in the MAIN, recovery off:")
    detected, _ = run_with_main_fault(recovery=False)
    error = detected.errors[0]
    print(f"  detected: {error.kind} in segment {error.segment_index} "
          "-> run stops (paper behaviour)")

    print("\nsame fault, recovery on:")
    stats, runtime = run_with_main_fault(recovery=True)
    dump = stats.to_dict()
    print(f"  diagnostic re-checks : {dump['counter.recovery.retries']}")
    print(f"  rollbacks            : {dump['counter.recovery.rollbacks']}")
    print(f"  wasted checker cycles: "
          f"{dump['counter.recovery.wasted_cycles']:.3g}")
    matched = stats.stdout == reference.stdout
    print(f"  errors surfaced      : {len(stats.errors)}")
    print(f"  output == reference  : {matched}")
    assert matched and not stats.errors
    assert dump["counter.recovery.rollbacks"] >= 1

    if args.trace:
        InvariantChecker(recovery=True).assert_ok(runtime.trace)
        runtime.trace.write_chrome_trace(args.trace)
        print(f"\ntrace: {len(runtime.trace)} events -> {args.trace} "
              "(invariants OK; load in Perfetto)")
        print(render_timeline(runtime.trace, last=15))

    print("\nmini campaign (register+memory flips in the main, "
          "recovery on vs off):")
    for recovery in (True, False):
        injector = FaultInjector(compile_source(WORKLOAD),
                                 config_factory=lambda r=recovery:
                                     make_config(r),
                                 platform_factory=apple_m2, seed=7)
        campaign = injector.run_campaign(
            injections_per_segment=2, max_segments=2,
            benchmark_name="demo", target=TARGET_MAIN,
            verify_recovered_output=recovery)
        label = "recovery on " if recovery else "recovery off"
        parts = ", ".join(f"{o.value} {campaign.count(o)}"
                          for o in Outcome if campaign.count(o))
        print(f"  {label}: n={campaign.total}  {parts}")
        if recovery:
            assert all(r.outcome in (Outcome.BENIGN, Outcome.RECOVERED)
                       for r in campaign.injections)

    print("\nevery fault the control arm only *detects*, the recovery arm "
          "repairs — same output as if the fault never happened.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Campaign-engine demo: sharded fleets, durable journals, resume.

Runs one fault-injection campaign three ways and shows they agree:

1. **serial** — in-process, the determinism baseline;
2. **fleet** — the same sharded plan fanned out across worker
   processes under supervision (heartbeats, retries, quarantine),
   streaming every completed injection to a checksummed JSONL journal;
3. **resumed** — the journal is truncated to simulate a crash
   mid-campaign, then the fleet resumes from it, skipping what already
   finished.

All three produce the same merged outcome table byte-for-byte, because
every injection's draws come from a splittable seed of
``(campaign_seed, shard, index)`` — no matter which worker ran it, or
whether it ran at all this time.

    python examples/campaign_demo.py
"""

import os
import tempfile

from repro import FaultInjector, ParallaftConfig, compile_source
from repro.harness.report import render_fleet, render_injection
from repro.sim import apple_m2

WORKLOAD = """
global grid[128];

func main() {
    var i; var round; var total;
    srand64(42);
    for (round = 0; round < 20; round = round + 1) {
        for (i = 0; i < 128; i = i + 1) {
            grid[i] = grid[i] * 5 + round - i;
        }
    }
    total = 0;
    for (i = 0; i < 128; i = i + 1) { total = total + grid[i]; }
    print_int(total);
}
"""


def make_injector():
    def make_config():
        config = ParallaftConfig()
        config.slicing_period = 1_200_000_000
        return config
    return FaultInjector(compile_source(WORKLOAD),
                         config_factory=make_config,
                         platform_factory=apple_m2, seed=7)


def run(label, **kwargs):
    campaign = make_injector().run_campaign(
        injections_per_segment=2, max_segments=2,
        benchmark_name="demo", shards=2, **kwargs)
    print(f"== {label} ==")
    print(render_injection({"demo": campaign}))
    print()
    return campaign


def main():
    serial = run("serial (workers=0, the baseline)")

    with tempfile.TemporaryDirectory() as scratch:
        journal = os.path.join(scratch, "demo.jsonl")
        fleet = run("fleet (2 workers, journaled)",
                    workers=2, journal_path=journal)
        print(render_fleet(fleet.fleet))
        print()

        # Simulate a crash: keep the journal header and the first two
        # completed injections, lose the rest.
        lines = open(journal).read().splitlines(True)
        open(journal, "w").writelines(lines[:3])

        resumed = run("resumed from a truncated journal",
                      workers=2, journal_path=journal, resume=True)
        print(f"resumed {resumed.fleet.resumed_tasks} injections from "
              f"the journal, re-ran the rest")

    tables = [render_injection({"demo": c})
              for c in (serial, fleet, resumed)]
    assert tables[0] == tables[1] == tables[2]
    print("serial, fleet and resumed reports are byte-identical")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: protect a program with Parallaft.

Compiles a small mini-C program, runs it natively, then runs it under
Parallaft on the simulated Apple M2 and prints the runtime's statistics
(the same keys the paper's artifact dumps, appendix A.7).

    python examples/quickstart.py
"""

from repro import Parallaft, ParallaftConfig, apple_m2, compile_source
from repro.kernel import Kernel
from repro.sim import Executor

PROGRAM = """
// Sum the first N squares, with a little memory traffic for flavour.
global table[256];

func main() {
    var i; var total;
    for (i = 0; i < 256; i = i + 1) {
        table[i] = i * i;
    }
    total = 0;
    for (i = 0; i < 256; i = i + 1) {
        total = total + table[i];
    }
    print_str("sum of squares: ");
    print_int(total);
}
"""


def run_native(program):
    """Run without any fault-tolerance runtime (the baseline)."""
    platform = apple_m2()
    kernel = Kernel(page_size=platform.page_size)
    executor = Executor(kernel, platform)
    proc = kernel.spawn(program)
    executor.schedule_default(proc)
    executor.run()
    wall = (proc.exit_time or executor.wall_time()) - proc.spawn_time
    return kernel.console.text(), wall


def main():
    program = compile_source(PROGRAM)

    output, wall = run_native(program)
    print("--- native run ---")
    print(output, end="")
    print(f"(virtual wall time: {wall * 1000:.2f} ms)\n")

    config = ParallaftConfig()
    config.slicing_period = 100_000_000  # short segments for the demo
    runtime = Parallaft(compile_source(PROGRAM), config=config,
                        platform=apple_m2())
    stats = runtime.run()

    print("--- protected run (Parallaft) ---")
    print(stats.stdout, end="")
    assert stats.stdout == output, "protected output must match native"
    assert not stats.error_detected

    print("\nruntime statistics (artifact-style keys):")
    for key, value in stats.to_dict().items():
        print(f"  {key}: {value}")
    print(f"\nsegments checked: {stats.segments_checked}, "
          f"all verified against end-of-segment checkpoints.")


if __name__ == "__main__":
    main()

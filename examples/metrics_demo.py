#!/usr/bin/env python3
"""Metrics demo: watch a protected run through the observability layer.

Runs one workload under full Parallaft and under the RAFT model with the
virtual-time metrics sampler on, then shows each surface of
`repro.metrics`:

  * the live dashboard line the `--metrics` runner flag prints,
  * the Fig. 6-style phase-attribution table — every simulated cycle
    charged to exactly one phase, with `—` marking phases a mode never
    executes (RAFT has no dirty-scan/compare machinery),
  * a Prometheus text export and a collapsed-stack (flamegraph) profile
    of the phase ledger,
  * the conservation check: the profiler's phase sum equals the
    executor's independently accumulated cycle total.

    python examples/metrics_demo.py
    python examples/metrics_demo.py --prom /tmp/run.prom \
        --collapsed /tmp/run.folded
"""

import argparse

from repro import Parallaft, ParallaftConfig, compile_source
from repro.harness.report import render_phase_breakdown
from repro.metrics import Dashboard, collapsed_stacks, prometheus_text
from repro.sim import apple_m2

WORKLOAD = """
global data[1024];
func main() {
    var i; var round;
    srand64(11);
    for (round = 0; round < 16; round = round + 1) {
        for (i = 0; i < 1024; i = i + 1) {
            data[i] = data[i] * 3 + round + i;
        }
        print_int(data[round] % 1000003);
    }
}
"""


def protected_run(mode):
    if mode == "raft":
        config = ParallaftConfig.raft()
    else:
        config = ParallaftConfig()
        config.slicing_period = 150_000_000
    runtime = Parallaft(compile_source(WORKLOAD), config=config,
                        platform=apple_m2())
    print(f"\n-- {mode}: live dashboard (virtual-time samples) --")
    runtime.enable_metrics_sampling(1.0, callback=Dashboard().update)
    stats = runtime.run()
    assert stats.exit_code == 0, stats.errors
    return runtime, stats


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--prom", metavar="PATH",
                        help="write the Parallaft run's registry as "
                             "Prometheus text")
    parser.add_argument("--collapsed", metavar="PATH",
                        help="write the Parallaft run's phase profile as "
                             "collapsed stacks (flamegraph.pl input)")
    args = parser.parse_args()

    profiles = {}
    exports = None
    for mode in ("parallaft", "raft"):
        runtime, stats = protected_run(mode)
        profiles[mode] = stats.phase_profile
        if mode == "parallaft":
            exports = (runtime.metrics, stats.phase_profile)
        charged = runtime.executor.charged_cycles
        attributed = sum(stats.phase_profile.cycles.values())
        print(f"{mode}: executor charged {charged:.0f} cycles, "
              f"profiler attributed {attributed:.0f} "
              f"(drift {attributed - charged:+.2g})")

    print("\n-- phase-attributed overhead (Fig. 6 decomposition) --")
    print(render_phase_breakdown(profiles))

    registry, profile = exports
    if args.prom:
        with open(args.prom, "w") as f:
            f.write(prometheus_text(registry))
        print(f"\nwrote Prometheus export to {args.prom}")
    if args.collapsed:
        with open(args.collapsed, "w") as f:
            f.write(collapsed_stacks(profile))
        print(f"wrote collapsed stacks to {args.collapsed}")


if __name__ == "__main__":
    main()

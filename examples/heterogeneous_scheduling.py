#!/usr/bin/env python3
"""Checker scheduling and pacing on a heterogeneous processor (paper §4.5).

Runs a memory-intensive workload (whose checkers are several times slower
on little cores) and shows the scheduler/pacer in action: checkers fill the
little cluster, the oldest migrates to a big core when the cluster is full,
the DVFS pacer trims the little-core frequency to the measured demand, and
the energy bill is compared against the homogeneous RAFT model.

    python examples/heterogeneous_scheduling.py
"""

from repro import Parallaft, ParallaftConfig, compile_source
from repro.raft import Raft
from repro.sim import apple_m2
from repro.workloads import benchmark


def run(bench_name, mode):
    bench = benchmark(bench_name)
    source, files = bench.build(1, 1)
    program = compile_source(source, name=bench_name)
    if mode == "raft":
        runtime = Raft(program, platform=apple_m2(), files=files)
    else:
        config = ParallaftConfig()
        config.slicing_period = 625_000_000  # paper-equivalent 5B cycles
        runtime = Parallaft(program, config=config, platform=apple_m2(),
                            files=files)
    stats = runtime.run()
    assert not stats.error_detected
    return stats


def main():
    name = "lbm"  # the paper's worst case: checkers ~50% on big cores
    print(f"workload: {name} (memory-intensive; slow on little cores)\n")

    stats = run(name, "parallaft")
    print("--- Parallaft (heterogeneous) ---")
    print(f"  wall time            {stats.all_wall_time:8.2f} s "
          f"(main alone: {stats.main_wall_time:.2f} s)")
    print(f"  energy               {stats.energy_joules:8.1f} J")
    print(f"  segments checked     {stats.segments_checked:8d}")
    print(f"  checker migrations   {stats.checker_migrations:8d} "
          "(little -> big when the little cluster fills, figure 4)")
    print(f"  checker work on big  {100 * stats.big_core_work_fraction:7.1f} %")
    if stats.pacer_freq_history:
        freqs = stats.pacer_freq_history
        print(f"  pacer frequency      {min(freqs) / 1e9:5.2f}-"
              f"{max(freqs) / 1e9:.2f} GHz across {len(freqs)} updates")

    raft = run(name, "raft")
    print("\n--- RAFT model (homogeneous big-core checker) ---")
    print(f"  wall time            {raft.all_wall_time:8.2f} s")
    print(f"  energy               {raft.energy_joules:8.1f} J")

    ratio = stats.energy_joules / raft.energy_joules
    print(f"\nParallaft used {100 * ratio:.0f}% of RAFT's energy on this "
          "workload.")
    print("(lbm is the paper's pathological case - on most workloads "
          "Parallaft's\n energy overhead is about half of RAFT's; try "
          "name='sjeng' above.)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fault-injection demo: watch Parallaft catch single-event upsets.

Runs the paper's §5.6 methodology on one workload: a fault-free profile
run, then a series of runs each flipping one random register bit in a
checker at a random point, classifying every outcome
(detected / exception / timeout / benign).

    python examples/fault_injection_demo.py
"""

from repro import FaultInjector, Outcome, ParallaftConfig, compile_source
from repro.sim import apple_m2

WORKLOAD = """
global grid[256];

func main() {
    var i; var round; var total;
    srand64(42);
    for (round = 0; round < 30; round = round + 1) {
        for (i = 0; i < 256; i = i + 1) {
            grid[i] = grid[i] * 5 + round - i;
        }
    }
    total = 0;
    for (i = 0; i < 256; i = i + 1) { total = total + grid[i]; }
    print_int(total);
}
"""


def make_config():
    config = ParallaftConfig()
    config.slicing_period = 2_000_000_000
    return config


def main():
    injector = FaultInjector(compile_source(WORKLOAD),
                             config_factory=make_config,
                             platform_factory=apple_m2,
                             seed=7)

    times, reference = injector.profile()
    print(f"profile run: {len(times)} segments, "
          f"reference output {reference.strip()!r}")

    campaign = injector.run_campaign(injections_per_segment=3,
                                     benchmark_name="demo")
    print(f"\ninjected {campaign.total} faults:")
    for result in campaign.injections:
        target = (f"{result.register_file}[{result.register_index}] "
                  f"bit {result.bit}")
        print(f"  segment {result.segment_index}: flip {target:22s} "
              f"-> {result.outcome.value:9s} {result.detail[:50]}")

    print("\nsummary:")
    for outcome in Outcome:
        print(f"  {outcome.value:10s} {100 * campaign.fraction(outcome):5.1f}%")
    detected = campaign.detected_fraction
    print(f"\n{100 * detected:.1f}% of faults detected; the rest were benign "
          "(overwritten before the segment-end comparison).")
    assert detected + campaign.fraction(Outcome.BENIGN) == 1.0


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Slicing-period tradeoff study (paper §5.5, figure 9).

Sweeps the checkpoint period on one benchmark and prints the overhead
decomposition at each point: short periods pay for forking and
copy-on-write, long periods pay for waiting on the last checkers, and
somewhere in between sits the sweet spot.

    python examples/slicing_tradeoff.py [benchmark]
"""

import sys

from repro.common.units import BILLION
from repro.harness.figures import run_period_sweep, sweet_spot


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    print(f"sweeping the slicing period on {name} "
          "(paper-equivalent periods)\n")
    sweep = run_period_sweep(names=(name,))
    points = sweep[name]

    print(f"{'period':>10s} {'total':>8s} {'fork+COW':>9s} {'last-sync':>10s}")
    for p in points:
        bar = "#" * max(1, int(p.total_pct / 2))
        print(f"{p.label:>10s} {p.total_pct:7.1f}% {p.fork_and_cow_pct:8.1f}% "
              f"{p.last_checker_sync_pct:9.1f}%  {bar}")

    best = sweet_spot(points)
    print(f"\nsweet spot: {best / BILLION:g} billion cycles")
    print("(paper's figure 9: gcc 2B, mcf 5B, sjeng 20B - short-input "
          "benchmarks\n want short periods, memory-heavy ones want to "
          "amortize COW, long\n compute-bound ones barely care)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Detection-modes demo: one workload, one injection plan, three modes.

The `repro.modes` registry turns detection policy into a pluggable
object: Parallaft (sliced segments, little-core checkers, pairwise
compare), RAFT (one segment, concurrent big-core checker, syscall-level
detection only) and TMR (three replicas per segment, majority vote,
*forward* recovery — the winning replica is promoted, nothing is rolled
back).

This demo runs the same program under all three, first fault-free (so
the overhead column is honest), then under an identical set of
main-targeted bit flips drawn once and replayed per mode, and renders
the cross-mode table: detection fraction, SDC escapes, detection
latency, and how each mode survived — rollbacks vs forward recoveries.

    python examples/modes_demo.py
    python examples/modes_demo.py --injections 8 --meek-split 0.5
"""

import argparse

from repro import compile_source
from repro.harness.report import render_mode_comparison
from repro.modes import registered_modes, run_mode_comparison

WORKLOAD = """
global data[2048];
func main() {
    var i; var round; var acc;
    srand64(7);
    acc = 0;
    for (round = 0; round < 24; round = round + 1) {
        for (i = 0; i < 2048; i = i + 1) {
            data[i] = data[i] * 5 + round - i;
            acc = acc + data[i];
        }
        print_int(acc % 1000003);
    }
}
"""


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--injections", type=int, default=4,
                        help="size of the shared injection plan "
                             "(default 4; each costs one run per mode)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--meek-split", type=float, default=0.0,
                        metavar="S",
                        help="MEEK split knob: fraction of the compare "
                             "taken early at replica arrival (default 0, "
                             "all at the boundary)")
    args = parser.parse_args()

    modes = registered_modes()
    print(f"registered detection modes: {', '.join(modes)}")
    overrides = {}
    if args.meek_split > 0:
        overrides["meek_split"] = args.meek_split

    summaries = run_mode_comparison(
        compile_source(WORKLOAD, name="modes-demo"), modes=modes,
        injections=args.injections, seed=args.seed,
        config_overrides=overrides or None)

    print()
    print(render_mode_comparison(summaries))

    para = summaries.get("parallaft")
    tmr = summaries.get("tmr")
    if para is not None and tmr is not None:
        superset = tmr.detected_fault_indices >= para.detected_fault_indices
        print()
        print(f"TMR detected every fault Parallaft detected: {superset}")
        print(f"TMR rollbacks: {tmr.total_rollbacks} (forward recovery "
              f"only: {tmr.total_forward_recoveries} promotions)")
        assert superset, "TMR lost a detection Parallaft had"
        assert tmr.total_rollbacks == 0, "TMR must never roll back"


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Run an arbitrary program under Parallaft (artifact appendix A.7 style).

Takes a mini-C source file (or uses a built-in demo), a platform and a
checkpoint period, runs it under protection and dumps the statistics the
real artifact prints (timing.*, counter.*, hwmon.*).

    python examples/protect_binary.py [source.mc] [--platform apple_m2|intel_14700]
                                      [--period CYCLES] [--raft]
"""

import argparse
import sys

from repro import Parallaft, ParallaftConfig, compile_source, platform_by_name
from repro.raft import raft_config

DEMO = """
// Demo workload: hash a stream of pseudo-random records.
global buckets[512];

func main() {
    var i; var value; var slot;
    srand64(2024);
    for (i = 0; i < 8000; i = i + 1) {
        value = rand64();
        slot = value % 512;
        if (slot < 0) { slot = slot + 512; }
        buckets[slot] = buckets[slot] + 1;
    }
    value = 0;
    for (i = 0; i < 512; i = i + 1) {
        value = (value * 31 + buckets[i]) % 1000000007;
    }
    print_int(value);
}
"""


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("source", nargs="?", help="mini-C source file")
    parser.add_argument("--platform", default="apple_m2",
                        choices=["apple_m2", "intel_14700"])
    parser.add_argument("--period", type=float, default=625_000_000,
                        help="checkpoint period in cycles/instructions "
                             "(PARALLAFT_CHECKPOINT_PERIOD equivalent)")
    parser.add_argument("--raft", action="store_true",
                        help="run the RAFT model instead of Parallaft")
    args = parser.parse_args()

    source = open(args.source).read() if args.source else DEMO
    program = compile_source(source,
                             name=args.source or "demo")

    if args.raft:
        config = raft_config()
    else:
        config = ParallaftConfig()
        config.slicing_period = args.period

    runtime = Parallaft(program, config=config,
                        platform=platform_by_name(args.platform))
    stats = runtime.run()

    print("--- program output ---")
    sys.stdout.write(stats.stdout)
    print("--- statistics ---")
    dump = stats.to_dict()
    dump["fixed_interval_slicer.nr_slices"] = stats.nr_slices
    dump["counter.checkpoint_count"] = stats.checkpoint_count
    dump["hwmon.macsmc_hwmon/total"] = f"{stats.energy_joules:.2f} J"
    for key in sorted(dump):
        print(f"{key}: {dump[key]}")
    if stats.error_detected:
        print("!! errors detected:", stats.errors)
        sys.exit(1)


if __name__ == "__main__":
    main()

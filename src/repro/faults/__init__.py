"""Fault injection: campaigns, outcome classification (paper §5.6),
plus infrastructure-fault campaigns attacking the protector itself
(:mod:`repro.faults.infra`)."""

from repro.faults.infra import (
    INFRA_CHECKPOINT_CORRUPT,
    INFRA_DIGEST_CORRUPT,
    INFRA_DIRTY_MISS,
    INFRA_KINDS,
    INFRA_LOG_CORRUPT,
    InfraFaultController,
    InfraFaultSite,
    InfraInjector,
    harden,
    run_infra_campaign,
)
from repro.faults.injector import FaultInjector
from repro.faults.outcomes import (
    CampaignResult,
    ERROR_KIND_TO_OUTCOME,
    InjectionResult,
    Outcome,
    classify_run,
)
from repro.faults.sites import (
    FaultSite,
    KIND_MEMORY,
    KIND_REGISTER,
    TARGET_CHECKER,
    TARGET_MAIN,
)

__all__ = [
    "FaultInjector",
    "FaultSite",
    "CampaignResult",
    "InjectionResult",
    "Outcome",
    "ERROR_KIND_TO_OUTCOME",
    "classify_run",
    "KIND_MEMORY",
    "KIND_REGISTER",
    "TARGET_CHECKER",
    "TARGET_MAIN",
    "INFRA_DIRTY_MISS",
    "INFRA_LOG_CORRUPT",
    "INFRA_CHECKPOINT_CORRUPT",
    "INFRA_DIGEST_CORRUPT",
    "INFRA_KINDS",
    "InfraFaultSite",
    "InfraFaultController",
    "InfraInjector",
    "harden",
    "run_infra_campaign",
]

"""Fault injection: campaigns, outcome classification (paper §5.6)."""

from repro.faults.injector import FaultInjector
from repro.faults.outcomes import (
    CampaignResult,
    ERROR_KIND_TO_OUTCOME,
    InjectionResult,
    Outcome,
)

__all__ = [
    "FaultInjector",
    "CampaignResult",
    "InjectionResult",
    "Outcome",
    "ERROR_KIND_TO_OUTCOME",
]

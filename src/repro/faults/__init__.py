"""Fault injection: campaigns, outcome classification (paper §5.6)."""

from repro.faults.injector import FaultInjector
from repro.faults.outcomes import (
    CampaignResult,
    ERROR_KIND_TO_OUTCOME,
    InjectionResult,
    Outcome,
)
from repro.faults.sites import (
    FaultSite,
    KIND_MEMORY,
    KIND_REGISTER,
    TARGET_CHECKER,
    TARGET_MAIN,
)

__all__ = [
    "FaultInjector",
    "FaultSite",
    "CampaignResult",
    "InjectionResult",
    "Outcome",
    "ERROR_KIND_TO_OUTCOME",
    "KIND_MEMORY",
    "KIND_REGISTER",
    "TARGET_CHECKER",
    "TARGET_MAIN",
]

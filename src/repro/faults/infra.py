"""Infrastructure fault injection: attacking the detection machinery.

The application campaign (:class:`repro.faults.FaultInjector`) flips bits
in the *protected program's* architectural state and asks whether
Parallaft notices.  This module attacks the **protector itself** — the
single points of failure the paper's argument quietly trusts:

* ``dirty-miss`` — a vpn vanishes from every
  :class:`~repro.core.dirty_tracker.DirtyPageTracker` scan (a lost
  soft-dirty bit / a PAGEMAP_SCAN under-report, §4.4), paired with a bit
  flip in that page of the main.  The comparator skips the one page that
  diverges, so the corruption sails through every segment check.
* ``log-corrupt`` — a bit flips in a stored ``SyscallRecord`` /
  ``NondetRecord`` value before the replay cursor consumes it (rr's
  log-integrity assumption, §4.2/§4.3).  Unhardened, the checker
  misdiagnoses the rotten record as an application divergence; under
  recovery the *main* is then wrongly implicated and rolled back, and a
  re-executed ``getrandom`` draws fresh kernel entropy — silently
  different output with no error on the books.
* ``checkpoint-corrupt`` — a bit flips in a retained
  ``recovery_checkpoint`` page after the fork, paired with an application
  fault that makes recovery *use* that checkpoint.  Blind promotion
  "recovers" into a corrupt timeline that then re-records itself
  consistently.
* ``digest-corrupt`` — the comparator's hash path reports a collision
  (differing pages digest equal) for the segment where an application
  memory fault landed, so the one comparison that mattered lies.

Outcomes are classified exactly like application faults
(:func:`repro.faults.outcomes.classify_run`); the headline metric is the
:attr:`~repro.faults.outcomes.Outcome.SDC` fraction — runs whose final
output silently diverged from the fault-free reference.  :func:`harden`
flips on the config-gated integrity layers (``log_checksums``,
``checkpoint_digests``, ``clean_page_audit``, ``redundant_compare``) whose
value :func:`run_infra_campaign` measures as escape-rate reduction:
hardening must drive every kind's SDC fraction to exactly zero
(``benchmarks/test_infra_coverage.py`` asserts both arms).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign import CampaignEngine, CampaignTask, DISP_COMPLETED, \
    task_rng
from repro.common.rng import RngPool
from repro.core import Parallaft, ParallaftConfig
from repro.core.segment import Segment, SegmentStatus
from repro.faults.drawing import draw_until_fired
from repro.faults.outcomes import CampaignResult, InjectionResult, classify_run
from repro.faults.sites import FaultSite
from repro.isa import DATA_BASE, STACK_SIZE, STACK_TOP
from repro.isa.program import Program
from repro.sim.platform import PlatformConfig

INFRA_DIRTY_MISS = "dirty-miss"
INFRA_LOG_CORRUPT = "log-corrupt"
INFRA_CHECKPOINT_CORRUPT = "checkpoint-corrupt"
INFRA_DIGEST_CORRUPT = "digest-corrupt"

INFRA_KINDS: Tuple[str, ...] = (
    INFRA_DIRTY_MISS,
    INFRA_LOG_CORRUPT,
    INFRA_CHECKPOINT_CORRUPT,
    INFRA_DIGEST_CORRUPT,
)


def harden(config: ParallaftConfig) -> ParallaftConfig:
    """Enable every integrity-hardening layer on ``config`` (in place;
    returned for chaining).  This is the campaign's hardened arm."""
    config.log_checksums = True
    config.checkpoint_digests = True
    config.clean_page_audit = 4
    config.redundant_compare = True
    return config


class InfraFaultSite:
    """One infrastructure fault: what breaks, where, and when.

    Ranks (``record_rank``/``field_rank``/``page_rank``) index into
    whatever population exists at strike time (modulo its size), so one
    drawn site stays meaningful whatever the run's shape turns out to be
    — the same convention as :class:`repro.faults.sites.FaultSite`.
    ``when`` is the fraction of the target segment's recorded
    instructions at which the paired application fault (and the
    dirty-miss strike) fires; ``app_bit`` is the register bit the
    checkpoint-corrupt model flips to force recovery to *use* the
    corrupted checkpoint.
    """

    __slots__ = ("kind", "segment_index", "bit", "record_rank",
                 "field_rank", "page_rank", "when", "app_bit")

    def __init__(self, kind: str, segment_index: int, bit: int = 0,
                 record_rank: int = 0, field_rank: int = 0,
                 page_rank: int = 0, when: float = 0.85,
                 app_bit: int = 17):
        if kind not in INFRA_KINDS:
            raise ValueError(f"unknown infra fault kind: {kind!r}")
        self.kind = kind
        self.segment_index = segment_index
        self.bit = bit
        self.record_rank = record_rank
        self.field_rank = field_rank
        self.page_rank = page_rank
        self.when = when
        self.app_bit = app_bit

    def describe(self) -> str:
        return (f"{self.kind}@segment{self.segment_index} bit={self.bit} "
                f"when={self.when:.2f}")

    def __repr__(self) -> str:
        return f"InfraFaultSite({self.describe()})"


def _flip_int(value: int, bit: int) -> int:
    return value ^ (1 << (bit % 64))


def _flip_bytes(data: bytes, bit: int) -> bytes:
    buf = bytearray(data)
    pos = (bit // 8) % len(buf)
    buf[pos] ^= 1 << (bit % 8)
    return bytes(buf)


class InfraFaultController:
    """Applies one :class:`InfraFaultSite` to a live runtime via its
    ``quantum_hooks`` / ``compare_hooks``.

    ``fired`` reports whether the fault actually landed: ``log-corrupt``
    needs only the record strike; the other kinds pair an infrastructure
    strike with an application fault and require both (a lost dirty bit
    on a page nobody corrupted, or a rotten checkpoint nobody promotes,
    is unmeasurable — the classic fault-injection "miss").
    """

    def __init__(self, runtime: Parallaft, site: InfraFaultSite,
                 app_threshold: Optional[float] = None):
        self.runtime = runtime
        self.site = site
        #: Instruction progress through the target segment at which the
        #: paired application fault strikes (``site.when`` × the profiled
        #: segment length).
        self.app_threshold = app_threshold
        self.infra_fired = False
        self.app_fired = False
        self._log_missed = False
        runtime.quantum_hooks.append(self._on_quantum)
        if site.kind == INFRA_DIGEST_CORRUPT:
            runtime.compare_hooks.append(self._on_compare)

    @property
    def fired(self) -> bool:
        if self.site.kind == INFRA_LOG_CORRUPT:
            return self.infra_fired
        return self.infra_fired and self.app_fired

    # -- helpers -----------------------------------------------------------

    def _segment_progress(self, proc) -> float:
        segment = self.runtime.current
        if segment is None or segment.index != self.site.segment_index:
            return -1.0
        return (self.runtime._instr_reading(proc)
                - segment.start_instructions)

    def _data_vpns(self, vpns) -> List[int]:
        """Restrict to the program's data region: globals the workload
        actually computes with (not code, not stack frames)."""
        page_size = self.runtime.platform.page_size
        lo = DATA_BASE // page_size
        hi = (STACK_TOP - STACK_SIZE) // page_size
        return sorted(v for v in vpns if lo <= v < hi)

    def _flip_page_bit(self, proc, vpn: int) -> None:
        page_size = proc.mem.page_size
        offset = (self.site.bit // 8) % page_size
        address = vpn * page_size + offset
        value = proc.mem.load_byte(address)
        proc.mem.store_byte(address, value ^ (1 << (self.site.bit % 8)))

    # -- quantum hook ------------------------------------------------------

    def _on_quantum(self, proc, role: str) -> None:
        kind = self.site.kind
        if kind == INFRA_DIRTY_MISS:
            self._strike_dirty_miss(proc, role)
        elif kind == INFRA_LOG_CORRUPT:
            self._strike_log(proc, role)
        elif kind == INFRA_CHECKPOINT_CORRUPT:
            self._strike_checkpoint(proc, role)
        elif kind == INFRA_DIGEST_CORRUPT:
            self._strike_digest_app(proc, role)

    def _strike_dirty_miss(self, proc, role: str) -> None:
        """Flip a bit in a dirty data page of the main AND drop that vpn
        from every tracker scan (stuck-bit model: never re-reported).
        The tracker is shared by the main's finalize scan and the
        checker's replay scan, so the page leaves the comparison union
        entirely — the flip is compared by nobody."""
        if self.infra_fired or role != "main":
            return
        if self._segment_progress(proc) < self.app_threshold:
            return
        tracker = self.runtime.dirty_tracker
        dirty = self._data_vpns(tracker.dirty_vpns(proc))
        if not dirty:
            return
        vpn = dirty[self.site.page_rank % len(dirty)]
        self._flip_page_bit(proc, vpn)
        tracker.suppressed_vpns.add(vpn)
        self.infra_fired = True
        self.app_fired = True

    def _strike_log(self, proc, role: str) -> None:
        """Flip a bit in a stored record of the target segment's R/R log
        before the replay cursor reaches it."""
        if self.infra_fired or self._log_missed:
            return
        runtime = self.runtime
        if self.site.segment_index >= len(runtime.segments):
            return
        segment = runtime.segments[self.site.segment_index]
        records = segment.log.records
        if segment.status == SegmentStatus.RECORDING:
            # Strike as soon as the ranked record exists; it is stamped
            # (seq+checksum, when hardened) at append, so the corruption
            # lands *after* stamping, exactly like storage rot.
            if self.site.record_rank >= len(records):
                return
            index = self.site.record_rank
        else:
            if not records:
                self._log_missed = True
                return
            # The segment went READY before the ranked record appeared:
            # wrap the rank, but never behind the replay cursor — a
            # consumed record is beyond reach.
            index = max(self.site.record_rank % len(records),
                        segment.cursor.position)
        index = self._corruptible_index(records, index)
        if index is None:
            if segment.status != SegmentStatus.RECORDING:
                self._log_missed = True
            return
        self._corrupt_record(records[index])
        self.infra_fired = True

    @staticmethod
    def _corruptible_index(records, start: int) -> Optional[int]:
        for i in range(start, len(records)):
            if records[i].kind in ("syscall", "nondet"):
                return i
        return None

    def _corrupt_record(self, record) -> None:
        bit = self.site.bit
        if record.kind == "nondet":
            record.value = _flip_int(record.value, bit)
            return
        fields = ["result"]
        if record.input_data:
            fields.append("input_data")
        if record.output_data:
            fields.append("output_data")
        field = fields[self.site.field_rank % len(fields)]
        if field == "result":
            record.result = _flip_int(record.result, bit)
        else:
            setattr(record, field, _flip_bytes(getattr(record, field), bit))

    def _strike_checkpoint(self, proc, role: str) -> None:
        """Flip a bit in a retained recovery checkpoint's data page right
        after the fork, then fault the main so recovery trusts it."""
        runtime = self.runtime
        if (not self.infra_fired
                and self.site.segment_index < len(runtime.segments)):
            segment = runtime.segments[self.site.segment_index]
            checkpoint = segment.recovery_checkpoint
            if checkpoint is not None and checkpoint.alive:
                mapped = self._data_vpns(checkpoint.mem.pages)
                if mapped:
                    vpn = mapped[self.site.page_rank % len(mapped)]
                    # store_byte COW-resolves privately: only the paused
                    # checkpoint copy rots, never the main's frame.
                    self._flip_page_bit(checkpoint, vpn)
                    self.infra_fired = True
        if self.app_fired or not self.infra_fired or role != "main":
            return
        if self._segment_progress(proc) < self.app_threshold:
            return
        FaultSite.register("gpr", 8, self.site.app_bit,
                           target="main").apply(proc)
        self.app_fired = True

    def _strike_digest_app(self, proc, role: str) -> None:
        """The application half of the digest-fault model: flip a bit in
        a dirty data page of the main.  The memory stage is the only one
        the collision covers, so the fault must live in a compared page
        (a register flip would be caught by the register stage)."""
        if self.app_fired or role != "main":
            return
        if self._segment_progress(proc) < self.app_threshold:
            return
        tracker = self.runtime.dirty_tracker
        dirty = self._data_vpns(tracker.dirty_vpns(proc))
        if not dirty:
            return
        vpn = dirty[self.site.page_rank % len(dirty)]
        self._flip_page_bit(proc, vpn)
        self.app_fired = True

    # -- compare hook (digest-corrupt only) --------------------------------

    def _on_compare(self, segment: Segment) -> None:
        """Arm the comparator's collision fault for every comparison of
        the target segment (retries re-compare the same segment, and a
        real hash-path fault would lie to them too)."""
        if segment.index != self.site.segment_index or not self.app_fired:
            return
        self.runtime.comparator.fault_next_digest_collision = True
        self.infra_fired = True


class InfraInjector:
    """Runs infrastructure fault campaigns against one program/config.

    Mirrors :class:`repro.faults.FaultInjector`'s methodology: a
    fault-free profile run per arm (hardening changes cycle charges, so
    segment boundaries — and the reference output's timing — are
    arm-specific), then one full run per injection, classified against
    the profile's stdout/stderr.
    """

    def __init__(self, program: Program,
                 config_factory: Callable[[], ParallaftConfig],
                 platform_factory: Callable[[], PlatformConfig],
                 files: Optional[Dict[str, bytes]] = None,
                 seed: int = 0, quantum: int = 2000,
                 hardening: bool = False):
        self.program = program
        self.config_factory = config_factory
        self.platform_factory = platform_factory
        self.files = files or {}
        self.seed = seed
        self.quantum = quantum
        self.hardening = hardening
        self.rng = RngPool(seed).stream("infra-campaign")
        self._profile_main_instructions: Optional[List[int]] = None
        self._profile_stdout: Optional[str] = None
        self._profile_stderr: Optional[str] = None

    def _make_config(self) -> ParallaftConfig:
        config = self.config_factory()
        if self.hardening:
            harden(config)
        return config

    def _fresh_runtime(self) -> Parallaft:
        return Parallaft(self.program, config=self._make_config(),
                         platform=self.platform_factory(), files=self.files,
                         seed=self.seed, quantum=self.quantum)

    def profile(self) -> Tuple[List[int], str]:
        """Fault-free run: per-segment instruction counts + reference
        output, for this arm's config (hardened or not)."""
        runtime = self._fresh_runtime()
        stats = runtime.run()
        if stats.error_detected:
            raise RuntimeError(f"profile run detected errors: "
                               f"{stats.errors}")
        self._profile_main_instructions = [
            segment.main_instructions for segment in runtime.segments]
        self._profile_stdout = stats.stdout
        self._profile_stderr = stats.stderr
        return self._profile_main_instructions, stats.stdout

    # -- single injection --------------------------------------------------

    def inject_site(self, site: InfraFaultSite) -> Optional[InjectionResult]:
        """Run the program once with ``site`` applied; None on a miss."""
        if self._profile_main_instructions is None:
            self.profile()
        instr = self._profile_main_instructions
        if site.segment_index >= len(instr) \
                or instr[site.segment_index] <= 0:
            return None
        runtime = self._fresh_runtime()
        controller = InfraFaultController(
            runtime, site,
            app_threshold=site.when * instr[site.segment_index])
        stats = runtime.run()
        if not controller.fired:
            return None
        outcome = classify_run(stats, self._profile_stdout,
                               self._profile_stderr)
        rank = (site.record_rank if site.kind == INFRA_LOG_CORRUPT
                else site.page_rank)
        return InjectionResult(
            outcome=outcome,
            register_file="infra",
            register_index=rank,
            bit=site.bit,
            segment_index=site.segment_index,
            inject_time=site.when,
            detail=stats.errors[0].detail if stats.errors else "",
            target="infra",
            site_kind=site.kind,
            rolled_back=stats.recovery_rollbacks > 0,
            output_matched=(stats.stdout == self._profile_stdout
                            and stats.stderr == self._profile_stderr))

    # -- campaign ----------------------------------------------------------

    def _draw_site(self, kind: str, eligible: List[int],
                   rng=None) -> InfraFaultSite:
        rng = rng if rng is not None else self.rng
        return InfraFaultSite(
            kind=kind,
            segment_index=rng.choice(eligible),
            bit=rng.randrange(1 << 17),
            record_rank=rng.randrange(64),
            field_rank=rng.randrange(8),
            page_rank=rng.randrange(1 << 16),
            when=rng.uniform(0.55, 0.9),
            app_bit=rng.randrange(8, 32),
        )

    def run_campaign(self, kinds: Tuple[str, ...] = INFRA_KINDS,
                     injections_per_kind: int = 6,
                     max_attempts_per_injection: int = 6,
                     benchmark_name: str = "workload",
                     shards: int = 1, workers: int = 0,
                     campaign_seed: Optional[int] = None,
                     journal_path: Optional[str] = None,
                     resume: bool = False,
                     registry=None,
                     engine_options: Optional[Dict] = None,
                     ) -> Dict[str, CampaignResult]:
        """Per kind: ``injections_per_kind`` injections at drawn sites,
        each retried up to ``max_attempts_per_injection`` times before
        being counted as missed.  Returns ``{kind: CampaignResult}``.

        One engine plan covers every kind (the payload carries the kind),
        so sharding and resume account the whole campaign as a unit; each
        task draws from its splittable ``(campaign_seed, shard, index)``
        seed, quarantined/exhausted tasks count as misses of their kind,
        and the engine's fleet accounting is attached to every per-kind
        result as ``campaign.fleet``.
        """
        if self._profile_main_instructions is None:
            self.profile()
        instr = self._profile_main_instructions
        eligible = [i for i, n in enumerate(instr) if n > 0]
        if len(eligible) > 1:
            # The final segment ends at exit: faults there have no later
            # output to corrupt, so they only dilute the campaign.
            eligible = eligible[:-1]
        payloads = [{"kind": kind, "shot": shot}
                    for kind in kinds
                    for shot in range(injections_per_kind)]

        def run_task(task: CampaignTask) -> Dict:
            rng = task_rng(task.seed)
            kind = task.payload["kind"]
            result = draw_until_fired(
                lambda: self._draw_site(kind, eligible, rng=rng),
                self.inject_site, max_attempts_per_injection)
            if result is None:
                return {"kind": kind, "missed": True}
            return {"kind": kind, "injection": result.to_dict()}

        engine = CampaignEngine(
            run_task, payloads,
            campaign_seed=(campaign_seed if campaign_seed is not None
                           else self.seed),
            shards=shards, workers=workers,
            name=f"infra:{benchmark_name}",
            fingerprint_extra={"kinds": list(kinds),
                               "injections_per_kind": injections_per_kind,
                               "hardening": self.hardening},
            journal_path=journal_path, resume=resume,
            registry=registry,
            **(engine_options or {}))
        fleet = engine.run()

        results: Dict[str, CampaignResult] = {
            kind: CampaignResult(benchmark=benchmark_name)
            for kind in kinds}
        by_id = {t.task_id: t for t in engine.tasks}
        for record in fleet.records:
            kind = by_id[record.task_id].payload["kind"]
            campaign = results[kind]
            if record.disposition != DISP_COMPLETED \
                    or record.result.get("missed"):
                campaign.missed += 1
                continue
            campaign.injections.append(
                InjectionResult.from_dict(record.result["injection"]))
        for campaign in results.values():
            campaign.fleet = fleet
        return results


def run_infra_campaign(program: Program,
                       config_factory: Callable[[], ParallaftConfig],
                       platform_factory: Callable[[], PlatformConfig],
                       *,
                       kinds: Tuple[str, ...] = INFRA_KINDS,
                       injections_per_kind: int = 6,
                       max_attempts_per_injection: int = 6,
                       hardening: bool = False,
                       seed: int = 0,
                       quantum: int = 2000,
                       files: Optional[Dict[str, bytes]] = None,
                       benchmark_name: str = "workload",
                       shards: int = 1, workers: int = 0,
                       journal_path: Optional[str] = None,
                       resume: bool = False,
                       ) -> Dict[str, CampaignResult]:
    """One-call campaign: per-kind results for one workload and one arm
    (``hardening`` off = measure the escape rate, on = prove it zero)."""
    injector = InfraInjector(program, config_factory, platform_factory,
                             files=files, seed=seed, quantum=quantum,
                             hardening=hardening)
    return injector.run_campaign(
        kinds=kinds, injections_per_kind=injections_per_kind,
        max_attempts_per_injection=max_attempts_per_injection,
        benchmark_name=benchmark_name, shards=shards, workers=workers,
        journal_path=journal_path, resume=resume)

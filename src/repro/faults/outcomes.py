"""Fault-injection outcome classification (paper §5.6, extended).

* **Detected** — Parallaft's segment-end comparison (or syscall/data
  comparison) flagged the fault.
* **Exception** — the fault caused an exception in the checker (a special
  case of detected).
* **Timeout** — the checker exceeded the 1.1x instruction budget, i.e.
  control flow was corrupted so it never reached the end point (also
  detected).
* **Recovered** — extension beyond the paper (Table 2 future work): the
  fault was detected *and survived* — a checker retry absorbed it or the
  main was rolled back to the last verified checkpoint and re-executed —
  and the program finished with output identical to the fault-free
  reference.
* **SDC** — silent data corruption escaped the sphere of replication: the
  end-of-run stdout/stderr differs from the fault-free reference and *no*
  error was ever reported.  Unreachable for the paper's checker-side
  campaign (the main is the oracle there); reachable for main-side faults
  that evade comparison, and the headline metric for *infrastructure*
  faults (:mod:`repro.faults.infra`), where the detection machinery itself
  is under attack.
* **Benign** — the fault had no observable effect: the program finished
  with correct output and all segment checks passed.
* **OOM** — the run did not survive *memory pressure*: the main process
  overran the finite frame-pool budget and was OOM-killed.  A resource
  exit, not a verdict on the fault — neither a detection nor an SDC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Outcome(enum.Enum):
    DETECTED = "detected"
    EXCEPTION = "exception"
    TIMEOUT = "timeout"
    RECOVERED = "recovered"
    SDC = "sdc"
    BENIGN = "benign"
    OOM = "oom"

    @property
    def is_detected(self) -> bool:
        """Every class except benign, SDC and OOM counts as a successful
        detection (a recovered fault was detected first, then survived).
        An SDC run is the opposite of a detection: the corruption escaped
        with no error reported.  An OOM run never finished at all — it
        says nothing about detection either way."""
        return self not in (Outcome.BENIGN, Outcome.SDC, Outcome.OOM)

    @property
    def is_survived(self) -> bool:
        """The application finished with correct output: either the fault
        never mattered (benign) or recovery undid it."""
        return self in (Outcome.BENIGN, Outcome.RECOVERED)


#: Map runtime error kinds to injection outcomes.
ERROR_KIND_TO_OUTCOME = {
    "state_mismatch": Outcome.DETECTED,
    "syscall_divergence": Outcome.DETECTED,
    "exec_point_overrun": Outcome.DETECTED,
    "exception": Outcome.EXCEPTION,
    "timeout": Outcome.TIMEOUT,
    # Recovery gave up: the re-executed main blew its watchdog budget.
    # The fault was still detected, just not survived.
    "recovery_watchdog": Outcome.TIMEOUT,
    # Integrity hardening tripped: a corrupted R/R record failed its
    # checksum (retryable) or untrusted saved state forced a fail-stop.
    # Both are successful detections of an infrastructure fault.
    "log_integrity": Outcome.DETECTED,
    "infra_integrity": Outcome.DETECTED,
    # The fault was detected but its recovery checkpoint had been evicted
    # under memory pressure: fail-stop instead of rollback — a detection.
    "checkpoint_evicted": Outcome.DETECTED,
    # TMR: no two of the three boundary states agreed (or the
    # forward-recovery budget is spent) — adopting any state would be a
    # guess, so the run fail-stops.  Still a successful detection.
    "vote_inconclusive": Outcome.DETECTED,
}


def classify_run(stats, reference_stdout: str,
                 reference_stderr: Optional[str] = None) -> Outcome:
    """Classify one finished run against the fault-free reference.

    Shared by the application-fault campaign (:class:`FaultInjector`) and
    the infrastructure campaign (:mod:`repro.faults.infra`): a reported
    error maps through :data:`ERROR_KIND_TO_OUTCOME`; silent output
    divergence is an :attr:`Outcome.SDC` escape; a clean finish after a
    rollback or checker retry is :attr:`Outcome.RECOVERED`.
    """
    if getattr(stats, "oom_killed", False):
        # The main died of memory exhaustion before the run could finish;
        # classified first because a truncated run's output never matches
        # the reference and must not masquerade as an SDC.
        return Outcome.OOM
    if stats.errors:
        kind = stats.errors[0].kind
        return ERROR_KIND_TO_OUTCOME.get(kind, Outcome.DETECTED)
    if stats.stdout != reference_stdout \
            or (reference_stderr is not None
                and stats.stderr != reference_stderr):
        # No error was reported yet the committed output is corrupt: the
        # fault escaped the sphere of replication silently.
        return Outcome.SDC
    if (stats.recovery_rollbacks > 0 or stats.checker_retries > 0
            or getattr(stats, "tmr_outvoted", 0) > 0
            or getattr(stats, "tmr_forward_recoveries", 0) > 0):
        # The run survived a detected fault: a rollback re-executed the
        # corrupted region, a checker retry absorbed it, or a TMR vote
        # outvoted the faulty copy (forward recovery when that copy was
        # the main) — and the output above already proved equal to the
        # reference.
        return Outcome.RECOVERED
    return Outcome.BENIGN


@dataclass
class InjectionResult:
    """One fault injection and what happened."""

    outcome: Outcome
    register_file: str          # "mem" for memory faults
    register_index: int
    bit: int
    segment_index: int
    inject_time: float
    detail: str = ""
    target: str = "checker"     # which copy was hit: "main" | "checker"
    site_kind: str = "register"
    #: The run rolled the main back at least once (recovery engaged).
    rolled_back: bool = False
    #: Final stdout matched the fault-free reference.
    output_matched: bool = True

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form, for campaign journals (the enum maps
        to its value; everything else is already plain)."""
        return {
            "outcome": self.outcome.value,
            "register_file": self.register_file,
            "register_index": self.register_index,
            "bit": self.bit,
            "segment_index": self.segment_index,
            "inject_time": self.inject_time,
            "detail": self.detail,
            "target": self.target,
            "site_kind": self.site_kind,
            "rolled_back": self.rolled_back,
            "output_matched": self.output_matched,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "InjectionResult":
        doc = dict(doc)
        doc["outcome"] = Outcome(doc["outcome"])
        return cls(**doc)


@dataclass
class CampaignResult:
    """Aggregated results of a fault-injection campaign on one workload."""

    benchmark: str
    injections: List[InjectionResult] = field(default_factory=list)
    #: Injections that never fired within ``max_attempts_per_injection``
    #: attempts (the paper discards these; we count them so campaigns
    #: cannot silently lose planned injections).
    missed: int = 0
    #: The engine's :class:`repro.campaign.FleetResult` when the campaign
    #: ran through :class:`~repro.campaign.CampaignEngine` — shard
    #: accounting and ``counter.campaign.*`` metrics for ``render_fleet``.
    #: Excluded from equality/serialization: two campaigns are the same
    #: campaign whatever fleet executed them.
    fleet: Optional[object] = field(default=None, compare=False,
                                    repr=False)

    def count(self, outcome: Outcome) -> int:
        return sum(1 for r in self.injections if r.outcome == outcome)

    @property
    def total(self) -> int:
        return len(self.injections)

    @property
    def planned(self) -> int:
        """Everything the campaign tried: landed injections + misses."""
        return self.total + self.missed

    def fraction(self, outcome: Outcome) -> float:
        return self.count(outcome) / self.total if self.total else 0.0

    @property
    def detected_fraction(self) -> float:
        """All non-benign outcomes: the paper reports 100% of non-benign
        faults detected."""
        return sum(1 for r in self.injections
                   if r.outcome.is_detected) / self.total if self.total else 0.0

    @property
    def recovered_fraction(self) -> float:
        return self.fraction(Outcome.RECOVERED)

    @property
    def sdc_fraction(self) -> float:
        """Silent escapes: corrupted output with no error reported.  The
        headline metric for infrastructure-fault campaigns — hardening is
        judged by how far it pushes this toward zero."""
        return self.fraction(Outcome.SDC)

    @property
    def survived_fraction(self) -> float:
        """Runs that ended with correct output (benign + recovered)."""
        return sum(1 for r in self.injections
                   if r.outcome.is_survived) / self.total if self.total else 0.0

    def summary(self) -> Dict[str, float]:
        return {outcome.value: self.fraction(outcome) for outcome in Outcome}

    def to_dict(self) -> Dict[str, object]:
        return {"benchmark": self.benchmark,
                "injections": [r.to_dict() for r in self.injections],
                "missed": self.missed}

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "CampaignResult":
        return cls(benchmark=doc["benchmark"],
                   injections=[InjectionResult.from_dict(r)
                               for r in doc["injections"]],
                   missed=doc["missed"])

"""Fault-injection outcome classification (paper §5.6, extended).

* **Detected** — Parallaft's segment-end comparison (or syscall/data
  comparison) flagged the fault.
* **Exception** — the fault caused an exception in the checker (a special
  case of detected).
* **Timeout** — the checker exceeded the 1.1x instruction budget, i.e.
  control flow was corrupted so it never reached the end point (also
  detected).
* **Recovered** — extension beyond the paper (Table 2 future work): the
  fault was detected *and survived* — a checker retry absorbed it or the
  main was rolled back to the last verified checkpoint and re-executed —
  and the program finished with output identical to the fault-free
  reference.
* **Benign** — the fault had no observable effect: the program finished
  with correct output and all segment checks passed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Outcome(enum.Enum):
    DETECTED = "detected"
    EXCEPTION = "exception"
    TIMEOUT = "timeout"
    RECOVERED = "recovered"
    BENIGN = "benign"

    @property
    def is_detected(self) -> bool:
        """Every class except benign counts as a successful detection
        (a recovered fault was detected first, then survived)."""
        return self is not Outcome.BENIGN

    @property
    def is_survived(self) -> bool:
        """The application finished with correct output: either the fault
        never mattered (benign) or recovery undid it."""
        return self in (Outcome.BENIGN, Outcome.RECOVERED)


#: Map runtime error kinds to injection outcomes.
ERROR_KIND_TO_OUTCOME = {
    "state_mismatch": Outcome.DETECTED,
    "syscall_divergence": Outcome.DETECTED,
    "exec_point_overrun": Outcome.DETECTED,
    "exception": Outcome.EXCEPTION,
    "timeout": Outcome.TIMEOUT,
    # Recovery gave up: the re-executed main blew its watchdog budget.
    # The fault was still detected, just not survived.
    "recovery_watchdog": Outcome.TIMEOUT,
}


@dataclass
class InjectionResult:
    """One fault injection and what happened."""

    outcome: Outcome
    register_file: str          # "mem" for memory faults
    register_index: int
    bit: int
    segment_index: int
    inject_time: float
    detail: str = ""
    target: str = "checker"     # which copy was hit: "main" | "checker"
    site_kind: str = "register"
    #: The run rolled the main back at least once (recovery engaged).
    rolled_back: bool = False
    #: Final stdout matched the fault-free reference.
    output_matched: bool = True


@dataclass
class CampaignResult:
    """Aggregated results of a fault-injection campaign on one workload."""

    benchmark: str
    injections: List[InjectionResult] = field(default_factory=list)
    #: Injections that never fired within ``max_attempts_per_injection``
    #: attempts (the paper discards these; we count them so campaigns
    #: cannot silently lose planned injections).
    missed: int = 0

    def count(self, outcome: Outcome) -> int:
        return sum(1 for r in self.injections if r.outcome == outcome)

    @property
    def total(self) -> int:
        return len(self.injections)

    @property
    def planned(self) -> int:
        """Everything the campaign tried: landed injections + misses."""
        return self.total + self.missed

    def fraction(self, outcome: Outcome) -> float:
        return self.count(outcome) / self.total if self.total else 0.0

    @property
    def detected_fraction(self) -> float:
        """All non-benign outcomes: the paper reports 100% of non-benign
        faults detected."""
        return sum(1 for r in self.injections
                   if r.outcome.is_detected) / self.total if self.total else 0.0

    @property
    def recovered_fraction(self) -> float:
        return self.fraction(Outcome.RECOVERED)

    @property
    def survived_fraction(self) -> float:
        """Runs that ended with correct output (benign + recovered)."""
        return sum(1 for r in self.injections
                   if r.outcome.is_survived) / self.total if self.total else 0.0

    def summary(self) -> Dict[str, float]:
        return {outcome.value: self.fraction(outcome) for outcome in Outcome}

"""Fault-injection outcome classification (paper §5.6).

* **Detected** — Parallaft's segment-end comparison (or syscall/data
  comparison) flagged the fault.
* **Exception** — the fault caused an exception in the checker (a special
  case of detected).
* **Timeout** — the checker exceeded the 1.1x instruction budget, i.e.
  control flow was corrupted so it never reached the end point (also
  detected).
* **Benign** — the fault had no observable effect: the program finished
  with correct output and all segment checks passed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Outcome(enum.Enum):
    DETECTED = "detected"
    EXCEPTION = "exception"
    TIMEOUT = "timeout"
    BENIGN = "benign"

    @property
    def is_detected(self) -> bool:
        """Every class except benign counts as a successful detection."""
        return self is not Outcome.BENIGN


#: Map runtime error kinds to injection outcomes.
ERROR_KIND_TO_OUTCOME = {
    "state_mismatch": Outcome.DETECTED,
    "syscall_divergence": Outcome.DETECTED,
    "exec_point_overrun": Outcome.DETECTED,
    "exception": Outcome.EXCEPTION,
    "timeout": Outcome.TIMEOUT,
}


@dataclass
class InjectionResult:
    """One fault injection and what happened."""

    outcome: Outcome
    register_file: str
    register_index: int
    bit: int
    segment_index: int
    inject_time: float
    detail: str = ""


@dataclass
class CampaignResult:
    """Aggregated results of a fault-injection campaign on one workload."""

    benchmark: str
    injections: List[InjectionResult] = field(default_factory=list)

    def count(self, outcome: Outcome) -> int:
        return sum(1 for r in self.injections if r.outcome == outcome)

    @property
    def total(self) -> int:
        return len(self.injections)

    def fraction(self, outcome: Outcome) -> float:
        return self.count(outcome) / self.total if self.total else 0.0

    @property
    def detected_fraction(self) -> float:
        """All non-benign outcomes: the paper reports 100% of non-benign
        faults detected."""
        return sum(1 for r in self.injections
                   if r.outcome.is_detected) / self.total if self.total else 0.0

    def summary(self) -> Dict[str, float]:
        return {outcome.value: self.fraction(outcome) for outcome in Outcome}

"""Fault injection campaigns (paper §5.6, extended with main-side faults).

Methodology, mirrored from the paper:

1. A profile run measures each segment's checker execution time ``t`` (and
   the main's per-segment instruction counts) without faults.
2. For each segment, the program is re-run with one injection.  Checker
   faults fire at a point drawn uniformly from ``[0, 1.1 t)`` of the
   checker's execution; main faults fire when the main's instruction
   progress through the segment crosses a uniformly drawn fraction.  The
   flipped bit lives in a random register (GPR/FPR/vector) or — beyond the
   paper — in a random *dirty page* of the target (see
   :mod:`repro.faults.sites`).  Injections that miss (the target finished
   first, or had no dirty page yet) are retried and, if they never fire,
   counted on ``CampaignResult.missed`` instead of silently vanishing.
3. The run's outcome is classified as detected / exception / timeout /
   recovered / benign (see :mod:`repro.faults.outcomes`).

Main-side injection needs recovery (or at least checker retries) enabled
for faults to be *survived*; without it they are merely detected, which is
what the recovery benchmarks use as the control arm.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign import CampaignEngine, CampaignTask, DISP_COMPLETED, \
    task_rng
from repro.common.rng import RngPool
from repro.core import Parallaft, ParallaftConfig
from repro.core.stats import RunStats
from repro.faults.drawing import draw_until_fired
from repro.faults.outcomes import (
    CampaignResult,
    InjectionResult,
    Outcome,
    classify_run,
)
from repro.faults.sites import (
    FaultSite,
    KIND_MEMORY,
    KIND_REGISTER,
    TARGET_CHECKER,
    TARGET_MAIN,
)
from repro.isa.program import Program
from repro.isa.registers import all_fault_sites
from repro.sim.platform import PlatformConfig


class FaultInjector:
    """Runs injection campaigns against one program/config combination."""

    def __init__(self, program: Program,
                 config_factory: Callable[[], ParallaftConfig],
                 platform_factory: Callable[[], PlatformConfig],
                 files: Optional[Dict[str, bytes]] = None,
                 seed: int = 0, quantum: int = 2000):
        self.program = program
        self.config_factory = config_factory
        self.platform_factory = platform_factory
        self.files = files or {}
        self.seed = seed
        self.quantum = quantum
        # Campaign draws come from the substrate's named-stream scheme, so
        # the campaign seed composes with kernel/ASLR/skid seeding instead
        # of using an ad-hoc generator.
        self.rng = RngPool(seed).stream("fault-campaign")
        self._sites = all_fault_sites()
        self._profile_times: Optional[List[float]] = None
        self._profile_main_instructions: Optional[List[int]] = None
        self._profile_stdout: Optional[str] = None
        self._profile_stderr: Optional[str] = None

    def _fresh_runtime(self) -> Parallaft:
        return Parallaft(self.program, config=self.config_factory(),
                         platform=self.platform_factory(), files=self.files,
                         seed=self.seed, quantum=self.quantum)

    # -- profile ----------------------------------------------------------

    def profile(self) -> Tuple[List[float], str]:
        """Fault-free run: per-segment checker times + reference output.

        Also caches per-segment main instruction counts, which main-side
        injection uses to convert a drawn progress fraction into an
        instruction threshold.
        """
        runtime = self._fresh_runtime()
        stats = runtime.run()
        if stats.error_detected:
            raise RuntimeError(
                f"profile run detected errors: {stats.errors}")
        times = []
        for segment in runtime.segments:
            checker = segment.checker
            times.append(checker.user_time if checker is not None else 0.0)
        self._profile_times = times
        self._profile_main_instructions = [
            segment.main_instructions for segment in runtime.segments]
        self._profile_stdout = stats.stdout
        self._profile_stderr = stats.stderr
        return times, stats.stdout

    # -- single injection ----------------------------------------------------

    def inject_once(self, segment_index: int, inject_time: float,
                    site: Tuple[str, int, int],
                    reference_output: str) -> Optional[InjectionResult]:
        """Legacy entry point: flip one register bit in one checker at
        ``inject_time`` seconds of its execution (the paper's campaign)."""
        return self.inject_site(segment_index, inject_time,
                                FaultSite.from_legacy(site),
                                reference_output)

    def inject_site(self, segment_index: int, when: float, site: FaultSite,
                    reference_output: str) -> Optional[InjectionResult]:
        """Run the program once, applying ``site`` during segment
        ``segment_index``.

        ``when`` is target-relative: seconds of checker execution for
        checker faults, a fraction of the segment's recorded instructions
        for main faults.  Returns None when the injection missed (the
        paper discards and retries these; campaigns also count them).
        """
        if site.target == TARGET_MAIN \
                and self._profile_main_instructions is None:
            self.profile()
        runtime = self._fresh_runtime()
        fired = [False]

        if site.target == TARGET_MAIN:
            instr = self._profile_main_instructions
            if segment_index >= len(instr):
                return None
            threshold = when * instr[segment_index]

            def hook(proc, role: str) -> None:
                if fired[0] or role != "main":
                    return
                segment = runtime.current
                if segment is None or segment.index != segment_index:
                    return
                progress = (runtime._instr_reading(proc)
                            - segment.start_instructions)
                if progress >= threshold:
                    fired[0] = site.apply(
                        proc, runtime.dirty_tracker.dirty_vpns(proc))
        else:
            def hook(proc, role: str) -> None:
                if fired[0] or role != "checker":
                    return
                if segment_index >= len(runtime.segments):
                    return
                segment = runtime.segments[segment_index]
                if segment.replica_of(proc.pid) is None:
                    return
                if proc.user_time >= when:
                    fired[0] = site.apply(
                        proc, runtime.dirty_tracker.dirty_vpns(proc))

        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        if not fired[0]:
            return None
        # stderr is part of the sphere of replication too: a recovered run
        # must reproduce the fault-free stderr as well as stdout (None when
        # no profile ran, e.g. direct inject_site calls with an external
        # reference).
        reference_stderr = self._profile_stderr
        outcome = self._classify(stats, reference_output, reference_stderr)
        return InjectionResult(
            outcome=outcome,
            register_file=(site.register_file
                           if site.kind == KIND_REGISTER else "mem"),
            register_index=(site.register_index
                            if site.kind == KIND_REGISTER else site.page_rank),
            bit=site.bit,
            segment_index=segment_index, inject_time=when,
            detail=stats.errors[0].detail if stats.errors else "",
            target=site.target, site_kind=site.kind,
            rolled_back=stats.recovery_rollbacks > 0,
            output_matched=(stats.stdout == reference_output
                            and (reference_stderr is None
                                 or stats.stderr == reference_stderr)))

    @staticmethod
    def _classify(stats: RunStats, reference_output: str,
                  reference_stderr: Optional[str] = None) -> Outcome:
        """Delegates to :func:`repro.faults.outcomes.classify_run`; in
        particular, output divergence with no reported error is an SDC
        escape, *not* a detection (it used to be misfiled as DETECTED,
        silently inflating ``detected_fraction``)."""
        return classify_run(stats, reference_output, reference_stderr)

    # -- campaign ----------------------------------------------------------------

    def _draw_site(self, target: str, site_kinds: Tuple[str, ...],
                   rng=None) -> FaultSite:
        rng = rng if rng is not None else self.rng
        kind = site_kinds[0] if len(site_kinds) == 1 \
            else rng.choice(list(site_kinds))
        if kind == KIND_MEMORY:
            return FaultSite.memory(rng.randrange(1 << 16),
                                    rng.randrange(1 << 20),
                                    target=target)
        file_name, index, bit = rng.choice(self._sites)
        return FaultSite.register(file_name, index, bit, target=target)

    def run_campaign(self, injections_per_segment: int = 5,
                     max_attempts_per_injection: int = 8,
                     benchmark_name: str = "workload",
                     max_segments: Optional[int] = None,
                     target: str = TARGET_CHECKER,
                     site_kinds: Tuple[str, ...] = (KIND_REGISTER,),
                     verify_recovered_output: bool = False,
                     shards: int = 1, workers: int = 0,
                     campaign_seed: Optional[int] = None,
                     journal_path: Optional[str] = None,
                     resume: bool = False,
                     registry=None,
                     engine_options: Optional[Dict] = None
                     ) -> CampaignResult:
        """The paper's campaign, generalized: per segment,
        ``injections_per_segment`` injections into ``target`` at uniform
        points, drawing each site from ``site_kinds``.

        ``max_segments`` samples that many segments evenly across the run
        instead of injecting into every segment (each injection costs a
        full program run, exactly as in the paper's methodology).
        ``verify_recovered_output`` asserts that every RECOVERED run's
        end-of-run stdout equals the fault-free reference — the recovery
        campaign's correctness oracle, applied when the engine's records
        are merged so resumed fleets check journaled runs too.

        Execution routes through :class:`repro.campaign.CampaignEngine`:
        each planned injection is one engine task whose draws come from a
        splittable seed (``campaign_seed``, shard, index), so any
        injection is reproducible in isolation and the merged result of a
        sharded fleet (``workers > 0``) is byte-identical to the serial
        run of the same plan.  ``journal_path`` + ``resume`` continue a
        half-finished campaign, skipping journaled injections.  Tasks
        whose worker was quarantined or that exhausted their attempts are
        counted on ``CampaignResult.missed`` (the campaign still sums to
        plan).  The engine's :class:`~repro.campaign.FleetResult` is
        attached as ``campaign.fleet`` for :func:`render_fleet`.
        """
        times, reference = self.profile()
        if target == TARGET_MAIN:
            weights = self._profile_main_instructions
        else:
            weights = times
        indices = [i for i, w in enumerate(weights) if w > 0]
        if max_segments is not None and len(indices) > max_segments:
            stride = len(indices) / max_segments
            indices = [indices[int(i * stride)] for i in range(max_segments)]
        payloads = [{"segment_index": segment_index, "shot": shot}
                    for segment_index in indices
                    for shot in range(injections_per_segment)]
        site_kinds = tuple(site_kinds)

        def run_task(task: CampaignTask) -> Dict:
            segment_index = task.payload["segment_index"]
            t_profile = times[segment_index]
            rng = task_rng(task.seed)

            def draw() -> Tuple[FaultSite, float]:
                site = self._draw_site(target, site_kinds, rng=rng)
                if target == TARGET_MAIN:
                    # Stay clear of the boundary so the flip lands
                    # inside the recorded segment despite counter
                    # overcount noise.
                    when = rng.uniform(0.0, 0.95)
                else:
                    when = rng.uniform(0, 1.1 * t_profile)
                return site, when

            result = draw_until_fired(
                lambda: draw(),
                lambda drawn: self.inject_site(segment_index, drawn[1],
                                               drawn[0], reference),
                max_attempts_per_injection)
            if result is None:
                # The paper discards these; counting them keeps the
                # campaign report summing to what was planned.
                return {"missed": True}
            return {"injection": result.to_dict()}

        engine = CampaignEngine(
            run_task, payloads,
            campaign_seed=(campaign_seed if campaign_seed is not None
                           else self.seed),
            shards=shards, workers=workers,
            name=f"faults:{benchmark_name}",
            fingerprint_extra={"target": target, "site_kinds": site_kinds,
                               "injections_per_segment":
                                   injections_per_segment},
            journal_path=journal_path, resume=resume,
            registry=registry,
            **(engine_options or {}))
        fleet = engine.run()

        campaign = CampaignResult(benchmark=benchmark_name)
        for record in fleet.records:
            if record.disposition != DISP_COMPLETED \
                    or record.result.get("missed"):
                campaign.missed += 1
                continue
            result = InjectionResult.from_dict(record.result["injection"])
            if (verify_recovered_output
                    and result.outcome == Outcome.RECOVERED
                    and not result.output_matched):
                raise AssertionError(
                    f"recovered run diverged from the fault-free "
                    f"reference (segment {result.segment_index})")
            campaign.injections.append(result)
        campaign.fleet = fleet
        return campaign

"""Fault injection campaigns (paper §5.6).

Methodology, mirrored from the paper:

1. A profile run measures each segment's checker execution time ``t``
   without faults.
2. For each segment, the program is re-run with one injection: at a point
   drawn uniformly from ``[0, 1.1 t)`` of the target checker's execution, a
   random bit is flipped in a random register (general-purpose, floating
   point or vector).  Injections that miss (the checker finished first) are
   discarded and retried.
3. The run's outcome is classified as detected / exception / timeout /
   benign (see :mod:`repro.faults.outcomes`).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import Parallaft, ParallaftConfig
from repro.core.stats import RunStats
from repro.faults.outcomes import (
    CampaignResult,
    ERROR_KIND_TO_OUTCOME,
    InjectionResult,
    Outcome,
)
from repro.isa.program import Program
from repro.isa.registers import all_fault_sites
from repro.sim.platform import PlatformConfig


class FaultInjector:
    """Runs injection campaigns against one program/config combination."""

    def __init__(self, program: Program,
                 config_factory: Callable[[], ParallaftConfig],
                 platform_factory: Callable[[], PlatformConfig],
                 files: Optional[Dict[str, bytes]] = None,
                 seed: int = 0, quantum: int = 2000):
        self.program = program
        self.config_factory = config_factory
        self.platform_factory = platform_factory
        self.files = files or {}
        self.seed = seed
        self.quantum = quantum
        self.rng = random.Random(seed * 7919 + 13)
        self._sites = all_fault_sites()

    def _fresh_runtime(self) -> Parallaft:
        return Parallaft(self.program, config=self.config_factory(),
                         platform=self.platform_factory(), files=self.files,
                         seed=self.seed, quantum=self.quantum)

    # -- profile ----------------------------------------------------------

    def profile(self) -> Tuple[List[float], str]:
        """Fault-free run: per-segment checker times + reference output."""
        runtime = self._fresh_runtime()
        stats = runtime.run()
        if stats.error_detected:
            raise RuntimeError(
                f"profile run detected errors: {stats.errors}")
        times = []
        for segment in runtime.segments:
            checker = segment.checker
            times.append(checker.user_time if checker is not None else 0.0)
        return times, stats.stdout

    # -- single injection ----------------------------------------------------

    def inject_once(self, segment_index: int, inject_time: float,
                    site: Tuple[str, int, int],
                    reference_output: str) -> Optional[InjectionResult]:
        """Run the program, flipping one register bit in one checker.

        Returns None when the injection missed (checker finished before the
        injection point), mirroring the paper's discarded injections.
        """
        runtime = self._fresh_runtime()
        fired = [False]
        file_name, reg_index, bit = site

        def hook(proc, role: str) -> None:
            if fired[0] or role != "checker":
                return
            if segment_index >= len(runtime.segments):
                return
            segment = runtime.segments[segment_index]
            if segment.checker is not proc:
                return
            if proc.user_time >= inject_time:
                proc.cpu.regs.flip_bit(file_name, reg_index, bit)
                fired[0] = True

        runtime.quantum_hooks.append(hook)
        stats = runtime.run()
        if not fired[0]:
            return None
        outcome = self._classify(stats, reference_output)
        return InjectionResult(
            outcome=outcome, register_file=file_name,
            register_index=reg_index, bit=bit,
            segment_index=segment_index, inject_time=inject_time,
            detail=stats.errors[0].detail if stats.errors else "")

    @staticmethod
    def _classify(stats: RunStats, reference_output: str) -> Outcome:
        if stats.errors:
            kind = stats.errors[0].kind
            return ERROR_KIND_TO_OUTCOME.get(kind, Outcome.DETECTED)
        if stats.stdout != reference_output:
            # Should be unreachable: faults are injected into checkers, so
            # the main's output is never corrupted; kept as a tripwire.
            return Outcome.DETECTED
        return Outcome.BENIGN

    # -- campaign ----------------------------------------------------------------

    def run_campaign(self, injections_per_segment: int = 5,
                     max_attempts_per_injection: int = 8,
                     benchmark_name: str = "workload",
                     max_segments: Optional[int] = None) -> CampaignResult:
        """The paper's campaign: per segment, ``injections_per_segment``
        injections at uniform points in [0, 1.1 t).

        ``max_segments`` samples that many segments evenly across the run
        instead of injecting into every segment (each injection costs a
        full program run, exactly as in the paper's methodology).
        """
        times, reference = self.profile()
        campaign = CampaignResult(benchmark=benchmark_name)
        indices = [i for i, t in enumerate(times) if t > 0]
        if max_segments is not None and len(indices) > max_segments:
            stride = len(indices) / max_segments
            indices = [indices[int(i * stride)] for i in range(max_segments)]
        for segment_index in indices:
            t_profile = times[segment_index]
            for _ in range(injections_per_segment):
                result = None
                for _attempt in range(max_attempts_per_injection):
                    inject_time = self.rng.uniform(0, 1.1 * t_profile)
                    site = self.rng.choice(self._sites)
                    result = self.inject_once(segment_index, inject_time,
                                              site, reference)
                    if result is not None:
                        break
                if result is not None:
                    campaign.injections.append(result)
        return campaign

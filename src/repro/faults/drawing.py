"""Shared draw-and-retry loop for injection campaigns.

Both campaign families — application faults
(:meth:`repro.faults.FaultInjector.run_campaign`) and infrastructure
faults (:meth:`repro.faults.InfraInjector.run_campaign`) — plan a fixed
number of injections and, for each one, repeatedly draw a fresh site
until an injection actually *lands* (the target may finish before the
strike point, have no dirty page yet, etc.).  The paper discards these
misses; we cap the re-draws and count the exhausted ones on
``CampaignResult.missed`` so a campaign always sums to what it planned.
This module is that loop, written once.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

from repro.faults.outcomes import InjectionResult

SiteT = TypeVar("SiteT")

__all__ = ["draw_until_fired"]


def draw_until_fired(draw: Callable[[], SiteT],
                     inject: Callable[[SiteT], Optional[InjectionResult]],
                     max_attempts: int) -> Optional[InjectionResult]:
    """One planned injection: draw a site, attempt it, re-draw on a miss.

    Returns the first landed :class:`InjectionResult`, or ``None`` after
    ``max_attempts`` consecutive misses — the caller records the miss.
    Every attempt consumes fresh draws from the caller's RNG, so a miss
    advances the stream exactly as a landed injection would.
    """
    for _attempt in range(max_attempts):
        result = inject(draw())
        if result is not None:
            return result
    return None

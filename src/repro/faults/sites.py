"""Generalized fault-site model.

The paper's §5.6 campaign flips register bits in *checker* processes only
(the main's output is the correctness oracle, so it must stay clean).  With
error recovery the oracle is the fault-free reference output instead, which
frees the campaign to attack the **main** as well, and to attack *memory*:

* ``FaultSite.register(...)`` — flip one bit of one register, in the main
  or a checker (the union of GPR/FPR/vector files, as in the paper).
* ``FaultSite.memory(...)`` — flip one bit in one of the target's *dirty*
  pages (pages written since the segment started).  Dirty pages model the
  SEU-in-DRAM/cache case: a flip in data the program is actively using.
  Clean pages still share frames with checkpoint forks, so flipping them
  would corrupt every copy at once — physically that is a multi-process
  upset, which is outside the single-event fault model.

``apply`` returns False when the site cannot be hit right now (no dirty
pages yet); the injector treats that like the paper's missed injections and
retries at the next quantum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.isa.registers import RegisterSite

#: Valid injection targets: which process copy absorbs the flip.
TARGET_MAIN = "main"
TARGET_CHECKER = "checker"

KIND_REGISTER = "register"
KIND_MEMORY = "memory"


@dataclass(frozen=True)
class FaultSite:
    """One single-event upset: where the bit flips."""

    target: str = TARGET_CHECKER    # "main" | "checker"
    kind: str = KIND_REGISTER       # "register" | "memory"
    # register faults
    register_file: str = "gpr"
    register_index: int = 0
    #: Bit index.  Registers: within the register.  Memory: within the page
    #: (bit // 8 = byte offset, modulo the page size).
    bit: int = 0
    #: Memory faults: rank into the target's sorted dirty-page list at the
    #: moment of injection (modulo its length), so one drawn site stays
    #: meaningful whatever the page count turns out to be.
    page_rank: int = 0

    # -- constructors ------------------------------------------------------

    @classmethod
    def register(cls, file: str, index: int, bit: int,
                 target: str = TARGET_CHECKER) -> "FaultSite":
        return cls(target=target, kind=KIND_REGISTER, register_file=file,
                   register_index=index, bit=bit)

    @classmethod
    def memory(cls, page_rank: int, bit: int,
               target: str = TARGET_CHECKER) -> "FaultSite":
        return cls(target=target, kind=KIND_MEMORY, page_rank=page_rank,
                   bit=bit)

    @classmethod
    def from_legacy(cls, site: Tuple[str, int, int],
                    target: str = TARGET_CHECKER) -> "FaultSite":
        """Adapt the historical ``(file, index, bit)`` tuple form."""
        file, index, bit = site
        return cls.register(file, index, bit, target=target)

    # -- application -------------------------------------------------------

    def apply(self, proc, dirty_vpns: Optional[Iterable[int]] = None) -> bool:
        """Flip the bit in ``proc``.  Returns False if the site cannot be
        hit right now (memory fault with no dirty pages yet)."""
        if self.kind == KIND_REGISTER:
            proc.cpu.regs.flip_bit(self.register_file, self.register_index,
                                   self.bit)
            return True
        vpns = sorted(dirty_vpns or [])
        if not vpns:
            return False
        vpn = vpns[self.page_rank % len(vpns)]
        page_size = proc.mem.page_size
        offset = (self.bit // 8) % page_size
        address = vpn * page_size + offset
        value = proc.mem.load_byte(address)
        proc.mem.store_byte(address, value ^ (1 << (self.bit % 8)))
        return True

    def describe(self) -> str:
        if self.kind == KIND_REGISTER:
            where = str(RegisterSite(self.register_file, self.register_index,
                                     self.bit))
        else:
            where = f"dirty page #{self.page_rank} bit {self.bit}"
        return f"{self.target}:{where}"

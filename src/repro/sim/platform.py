"""Platform configurations: the machines the paper evaluates on.

``apple_m2`` models the paper's primary platform (Table 3): 4 Avalanche big
cores + 4 Blizzard little cores, 16 KB pages, separate voltage domains for
the little cluster (so DVFS there scales power ~f^3), and a deterministic
branch counter.  ``intel_14700`` models §5.8: 4 KB pages (4x the
checkpointing work for the same footprint), little (E-)cores sharing the big
cores' voltage domain (so frequency scaling saves little energy), a raw
branch counter that includes far branches (Parallaft must exclude them), and
instruction-based slicing (footnote 14).

The CPI/contention/power constants are calibration inputs: they are chosen
so the *baseline* machine behaves plausibly (per-workload little-core
slowdowns of ~2-4x, big-core power several watts, little a fraction); every
evaluation number is then produced by running the actual runtime mechanisms
on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.common.units import DEFAULT_CYCLE_SCALE, GHZ


@dataclass
class PlatformConfig:
    name: str
    arch: str                      # 'aarch64' or 'x86_64'
    n_big: int
    n_little: int
    big_freq_hz: float
    little_freq_max_hz: float
    little_freq_min_hz: float
    page_size: int
    #: Hardware cycles represented by one simulated cycle.
    cycle_scale: int = DEFAULT_CYCLE_SCALE

    # CPI model: cpi = base + mem_penalty * mem_ratio * miss_factor, where
    # mem_ratio = mem_ops / instructions and miss_factor grows as the
    # working set exceeds the cluster's *effective* cache capacity.  The
    # effective capacity shrinks when other processes run in the same
    # cluster (shared L2, paper §5.2): that is where RAFT's main-vs-checker
    # contention and Parallaft's migration-pollutes-big-cache effect come
    # from.
    big_cpi_base: float = 0.85
    big_mem_penalty: float = 1.2
    little_cpi_base: float = 1.0
    little_mem_penalty: float = 11.0
    #: Model cache capacities (bytes), scaled to the workload footprints.
    big_cache_bytes: int = 256 << 10
    little_cache_bytes: int = 128 << 10
    #: How strongly a cluster co-runner shrinks the effective capacity:
    #: cache_eff = cache / (1 + share_factor * (n_active - 1)).
    big_cache_share_factor: float = 1.0
    little_cache_share_factor: float = 0.1

    #: DRAM bandwidth contention: CPI multiplier
    #: 1 + dram_coeff * own_dram_intensity * (sum of co-runners' intensity,
    #: weighted by their clock relative to the big cores).
    dram_coeff: float = 0.9
    #: Flat per-co-runner slowdown floor (interconnect arbitration, snoop
    #: traffic): CPI *= 1 + corunner_floor * (n_active - 1).  This is what
    #: keeps cache-resident workloads from seeing literally zero overhead
    #: when sharing a cluster.
    corunner_floor: float = 0.035

    # Power model (watts).
    big_static_w: float = 0.25
    big_dyn_max_w: float = 4.6
    little_static_w: float = 0.03
    little_dyn_max_w: float = 0.7
    dram_background_w: float = 0.9
    #: Energy per memory operation (joules) - models DRAM activity.
    mem_op_energy_j: float = 1.1e-10
    #: True when the little cluster has its own voltage rail: DVFS scales
    #: dynamic power ~ f^3.  False (Intel hybrid): voltage pinned by the big
    #: cluster, so power only scales ~ f.
    separate_voltage_domain: bool = True

    # Performance-counter imperfections.
    instr_overcount_max: int = 3
    skid_max: int = 6
    skid_probability: float = 0.5
    #: Raw branch counter includes far branches (Intel; paper §4.2.1).
    branch_counter_includes_far: bool = False

    #: Default slicing unit: 'cycles' (Apple) or 'instructions' (Intel,
    #: because cycle-slicing can break partially-executed rep-prefixed
    #: instructions - paper footnote 14).
    slicing_unit: str = "cycles"

    def hw_to_virtual(self, hw_count: float) -> int:
        return max(1, round(hw_count / self.cycle_scale))

    def core_dyn_power_w(self, cluster: str, freq_hz: float) -> float:
        """Dynamic power at a DVFS point."""
        if cluster == "big":
            ratio = freq_hz / self.big_freq_hz
            exponent = 3.0
            peak = self.big_dyn_max_w
        else:
            ratio = freq_hz / self.little_freq_max_hz
            exponent = 3.0 if self.separate_voltage_domain else 1.0
            peak = self.little_dyn_max_w
        return peak * (ratio ** exponent)

    def core_static_power_w(self, cluster: str) -> float:
        return self.big_static_w if cluster == "big" else self.little_static_w

    def effective_cache_bytes(self, cluster: str, n_active: int = 1) -> float:
        cache = (self.big_cache_bytes if cluster == "big"
                 else self.little_cache_bytes)
        share = (self.big_cache_share_factor if cluster == "big"
                 else self.little_cache_share_factor)
        return cache / (1.0 + share * max(0, n_active - 1))

    def miss_factor(self, cluster: str, footprint_bytes: float,
                    n_active: int = 1) -> float:
        """Fraction of memory operations that miss the cluster's caches:
        0 while the working set fits the (co-runner-shared) capacity,
        saturating at 1 once it is twice the capacity."""
        cache = self.effective_cache_bytes(cluster, n_active)
        if footprint_bytes <= cache:
            return 0.0
        return min(1.0, (footprint_bytes - cache) / cache)

    def cpi(self, cluster: str, mem_ratio: float,
            footprint_bytes: float = 0.0, n_active: int = 1) -> float:
        effective = mem_ratio * self.miss_factor(cluster, footprint_bytes,
                                                 n_active)
        if cluster == "big":
            base = self.big_cpi_base + self.big_mem_penalty * effective
        else:
            base = (self.little_cpi_base
                    + self.little_mem_penalty * effective)
        return base * (1.0 + self.corunner_floor * max(0, n_active - 1))

    def little_slowdown(self, mem_ratio: float,
                        footprint_bytes: float = 0.0) -> float:
        """Uncontended little/big time ratio for a given memory intensity."""
        big_time = self.cpi("big", mem_ratio,
                            footprint_bytes) / self.big_freq_hz
        little_time = self.cpi("little", mem_ratio,
                               footprint_bytes) / self.little_freq_max_hz
        return little_time / big_time


def apple_m2() -> PlatformConfig:
    """The paper's primary platform (Table 3): Apple M2 Mac Mini."""
    return PlatformConfig(
        name="apple_m2",
        arch="aarch64",
        n_big=4,
        n_little=4,
        big_freq_hz=3.5 * GHZ,
        little_freq_max_hz=2.42 * GHZ,
        little_freq_min_hz=0.6 * GHZ,
        page_size=16384,
        separate_voltage_domain=True,
        branch_counter_includes_far=False,
        slicing_unit="cycles",
    )


def intel_14700() -> PlatformConfig:
    """The §5.8 platform: Intel Core i7-14700 hybrid (P+E cores)."""
    return PlatformConfig(
        name="intel_14700",
        arch="x86_64",
        n_big=4,               # P-cores used in the experiments
        n_little=4,            # E-cores used for checkers
        big_freq_hz=5.3 * GHZ,
        little_freq_max_hz=4.2 * GHZ,
        little_freq_min_hz=1.2 * GHZ,
        page_size=4096,
        # E-cores are larger relative to P-cores than Blizzard is to
        # Avalanche, but share the voltage rail.
        little_cpi_base=1.05,
        little_mem_penalty=4.5,
        big_cache_bytes=192 << 10,
        little_cache_bytes=112 << 10,
        # More severe cache contention from the many competing threads
        # (paper §5.8): co-runners hurt harder on the ring/L3.
        big_cache_share_factor=0.55,
        little_cache_share_factor=0.4,
        dram_coeff=2.2,
        big_static_w=0.35,
        big_dyn_max_w=9.5,
        little_static_w=0.12,
        little_dyn_max_w=3.4,
        dram_background_w=13.0,  # desktop package uncore + DRAM
        separate_voltage_domain=False,
        instr_overcount_max=3,
        skid_max=8,
        skid_probability=0.6,
        branch_counter_includes_far=True,
        slicing_unit="instructions",
    )


def platform_by_name(name: str) -> PlatformConfig:
    if name == "apple_m2":
        return apple_m2()
    if name == "intel_14700":
        return intel_14700()
    raise ValueError(f"unknown platform {name!r}")

"""Heterogeneous cores with DVFS.

Each core runs at most one process at a time (Parallaft pins the main to a
big core and each checker to its own little core, migrating to big cores
under pressure — paper §4.5).  A core keeps a local "busy until" time; the
executor always advances the most-behind runnable core, which keeps cores
loosely synchronized to within one quantum.
"""

from __future__ import annotations

from typing import List, Optional


class Core:
    """One CPU core."""

    def __init__(self, index: int, cluster: str, freq_hz: float,
                 freq_min_hz: float, freq_max_hz: float):
        if cluster not in ("big", "little"):
            raise ValueError(f"bad cluster {cluster!r}")
        self.index = index
        self.cluster = cluster
        self.freq_hz = freq_hz
        self.freq_min_hz = freq_min_hz
        self.freq_max_hz = freq_max_hz
        self.local_time = 0.0       # virtual seconds: busy until
        self.busy_seconds = 0.0
        self.energy_joules = 0.0    # dynamic+static energy while busy
        self.occupant = None        # Process or None

    def __repr__(self) -> str:
        return (f"Core({self.cluster}{self.index}, {self.freq_hz / 1e9:.2f} GHz, "
                f"t={self.local_time:.3f})")

    @property
    def is_big(self) -> bool:
        return self.cluster == "big"

    def set_frequency(self, freq_hz: float) -> None:
        """DVFS: clamp into the core's legal range."""
        self.freq_hz = min(self.freq_max_hz, max(self.freq_min_hz, freq_hz))


def make_cores(n_big: int, n_little: int, big_freq_hz: float,
               little_freq_max_hz: float,
               little_freq_min_hz: float) -> List[Core]:
    """Build the platform's core list: big cores first, then little."""
    cores: List[Core] = []
    for i in range(n_big):
        cores.append(Core(i, "big", big_freq_hz, big_freq_hz, big_freq_hz))
    for i in range(n_little):
        cores.append(Core(n_big + i, "little", little_freq_max_hz,
                          little_freq_min_hz, little_freq_max_hz))
    return cores

"""Heterogeneous-platform simulation: cores, DVFS, timing, energy, executor."""

from repro.sim.cores import Core, make_cores
from repro.sim.executor import Executor, Sampler
from repro.sim.platform import (
    PlatformConfig,
    apple_m2,
    intel_14700,
    platform_by_name,
)

__all__ = [
    "Core",
    "make_cores",
    "Executor",
    "Sampler",
    "PlatformConfig",
    "apple_m2",
    "intel_14700",
    "platform_by_name",
]

"""The co-simulation executor.

Interleaves all runnable processes across the platform's cores in virtual
time.  Each core runs at most one process; the executor always advances the
most-behind runnable process by one quantum, so cores stay synchronized to
within a quantum.  All kernel/tracer activity is charged in hardware cycles
and converted to time at the executing core's current frequency; energy is
accumulated per core from the platform's power model.

This is the component that turns the kernel + CPU substrate into the
*machine* of the paper's Table 3: heterogeneous clusters, DVFS, cache/DRAM
contention, and per-core energy.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro import abi
from repro.common.errors import FramePoolExhausted, SimulationError
from repro.cpu import interpreter
from repro.cpu.exceptions import FaultKind, StopReason
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, ProcessState
from repro.metrics import NULL_PROFILER
from repro.sim.cores import Core, make_cores
from repro.sim.platform import PlatformConfig
from repro.trace import NULL_TRACE
from repro.trace import events as tev


def core_label(core: Core) -> str:
    return f"{core.cluster}{core.index}"

_FAULT_SIGNALS = {
    FaultKind.PAGE_FAULT: abi.SIGSEGV,
    FaultKind.DIVIDE_BY_ZERO: abi.SIGFPE,
    FaultKind.ILLEGAL_INSTRUCTION: abi.SIGILL,
}


class Sampler:
    """Periodic virtual-time callback (power sensor, PSS sampling)."""

    def __init__(self, interval: float, callback: Callable[[float], None],
                 start: float = 0.0):
        self.interval = interval
        self.callback = callback
        self.next_time = start + interval


class Executor:
    def __init__(self, kernel: Kernel, platform: PlatformConfig,
                 quantum: int = 2000):
        if kernel.page_size != platform.page_size:
            raise SimulationError(
                f"kernel page size {kernel.page_size} != platform "
                f"{platform.page_size}")
        self.kernel = kernel
        self.platform = platform
        self.quantum = quantum
        self.cores: List[Core] = make_cores(
            platform.n_big, platform.n_little, platform.big_freq_hz,
            platform.little_freq_max_hz, platform.little_freq_min_hz)
        self.current_time = 0.0
        self.dram_op_energy_j = 0.0
        self.total_mem_ops = 0
        self.samplers: List[Sampler] = []
        self.steps = 0
        #: the process currently inside its quantum; emergency frame
        #: reclaim (pressure controller) must not tear this one down
        self.current_proc: Optional[Process] = None
        kernel.time_fn = lambda: self.current_time
        self._cow_seen = {}
        self._shutdown = False
        #: Event sink; the Parallaft runtime installs its own buffer.
        self.trace = NULL_TRACE
        #: Phase-attribution profiler; the runtime installs a live one.
        self.profiler = NULL_PROFILER
        #: Every hardware cycle ever charged through this executor,
        #: accumulated independently of the profiler's per-phase ledger
        #: so the cycle-conservation invariant compares two bookkeepers.
        self.charged_cycles = 0.0

    # -- core management ----------------------------------------------------

    @property
    def big_cores(self) -> List[Core]:
        return [c for c in self.cores if c.is_big]

    @property
    def little_cores(self) -> List[Core]:
        return [c for c in self.cores if not c.is_big]

    def assign(self, proc: Process, core: Core) -> None:
        """Pin ``proc`` to ``core`` (displacing nothing: core must be free)."""
        if core.occupant is not None and core.occupant is not proc:
            raise SimulationError(
                f"core {core.cluster}{core.index} already occupied by "
                f"pid {core.occupant.pid}")
        if proc.core is not None and proc.core is not core:
            proc.core.occupant = None
            if self.trace.enabled:
                self.trace.emit(tev.CORE_UNASSIGN, pid=proc.pid,
                                core=core_label(proc.core))
        proc.core = core
        core.occupant = proc
        if self.trace.enabled:
            self.trace.emit(tev.CORE_ASSIGN, pid=proc.pid,
                            core=core_label(core))
        self._flush_pending_charges(proc)

    def unassign(self, proc: Process) -> None:
        if proc.core is not None:
            if self.trace.enabled:
                self.trace.emit(tev.CORE_UNASSIGN, pid=proc.pid,
                                core=core_label(proc.core))
            proc.core.occupant = None
            proc.core = None

    def free_core(self, cluster: str) -> Optional[Core]:
        """A free core in the cluster with the smallest local time."""
        free = [c for c in self.cores
                if c.cluster == cluster and c.occupant is None]
        return min(free, key=lambda c: c.local_time) if free else None

    def schedule_default(self, proc: Process) -> Core:
        """Default placement (untraced processes): a free big core."""
        core = self.free_core("big") or self.free_core("little")
        if core is None:
            raise SimulationError("no free core")
        self.assign(proc, core)
        return core

    # -- charging -------------------------------------------------------------

    def charge(self, proc: Process, hw_cycles: float,
               kind: str = "sys", phase: Optional[str] = None) -> float:
        """Charge kernel/runtime work to a process's core; returns seconds.

        Used by the kernel (via the step loop) and by the Parallaft
        coordinator for runtime work on the critical path (fork, dirty-page
        clearing, perf setup, hashing...).  The process must be placed on a
        core — cycles only turn into time and energy somewhere; use
        :meth:`charge_deferred` for work done on behalf of a process that
        may still be queued.  ``phase`` names the profiler phase the
        cycles belong to; None lets the profiler resolve it from the
        process's runtime role.
        """
        core = proc.core
        if core is None:
            raise SimulationError(
                f"charge({hw_cycles:g} cycles) to pid {proc.pid} with no "
                f"core: use charge_deferred for not-yet-placed processes")
        seconds = hw_cycles / core.freq_hz
        if kind == "sys":
            proc.sys_time += seconds
        else:
            proc.user_time += seconds
        core.local_time = max(core.local_time, proc.ready_time) + seconds
        self._account_core_energy(core, seconds)
        proc.ready_time = core.local_time
        self.charged_cycles += hw_cycles
        self.profiler.charge_for(proc, hw_cycles, phase)
        return seconds

    def charge_deferred(self, proc: Process, hw_cycles: float,
                        kind: str = "sys",
                        phase: Optional[str] = None) -> None:
        """Charge work to a process that may not be placed yet.

        If the process is on a core, this is an immediate :meth:`charge`;
        otherwise the cycles (with their phase annotation) are parked on
        the process and charged (at the real core's frequency, with
        energy accounting) the moment :meth:`assign` places it.
        """
        if proc.core is not None:
            self.charge(proc, hw_cycles, kind, phase=phase)
        else:
            proc.pending_charges.append((hw_cycles, kind, phase))

    def _flush_pending_charges(self, proc: Process) -> None:
        if proc.pending_charges:
            pending, proc.pending_charges = proc.pending_charges, []
            for hw_cycles, kind, phase in pending:
                self.charge(proc, hw_cycles, kind, phase=phase)

    def _account_core_energy(self, core: Core, seconds: float) -> None:
        power = (self.platform.core_static_power_w(core.cluster)
                 + self.platform.core_dyn_power_w(core.cluster, core.freq_hz))
        core.energy_joules += power * seconds
        core.busy_seconds += seconds

    # -- contention inputs ---------------------------------------------------------

    def _dram_pressure(self, proc: Process) -> float:
        """Co-runners' DRAM intensity, weighted by their clock relative to
        the big cores (slow little checkers generate less traffic)."""
        pressure = 0.0
        for core in self.cores:
            other = core.occupant
            if other is None or other is proc or not other.runnable:
                continue
            intensity = getattr(other, "_recent_dram", 0.0)
            pressure += intensity * (core.freq_hz / self.platform.big_freq_hz)
        return pressure

    def _cluster_active(self, proc: Process) -> int:
        """Processes (including ``proc``) running in proc's cluster: they
        share its cache capacity."""
        cluster = proc.core.cluster
        count = 0
        for core in self.cores:
            other = core.occupant
            if (core.cluster == cluster and other is not None
                    and other.runnable):
                count += 1
        return max(1, count)

    # -- the step loop -----------------------------------------------------------------

    def _candidates(self) -> List[Process]:
        return [p for p in self.kernel.processes.values()
                if p.runnable and p.core is not None]

    def step(self) -> bool:
        """Advance the most-behind runnable process by one quantum.

        Returns False when nothing is runnable.
        """
        candidates = self._candidates()
        if not candidates or self._shutdown:
            return False
        proc = min(candidates,
                   key=lambda p: max(p.core.local_time, p.ready_time))
        core = proc.core
        start = max(core.local_time, proc.ready_time)
        self.current_time = start
        self.current_proc = proc
        self.steps += 1

        sys_cycles = self.kernel.deliver_pending_signal(proc)

        user_seconds = 0.0
        executed = 0
        if proc.alive and proc.runnable:
            cpu = proc.cpu
            instr_before = cpu.instr_retired
            mem_before = cpu.mem_ops_retired
            cow_before = proc.mem.cow_faults
            try:
                stop = interpreter.run(proc, self.quantum)
            except FramePoolExhausted as exc:
                # Escaped the interpreter's own OOM stop (e.g. raised by
                # non-store machinery): the cpu write-back was skipped, so
                # the process is NOT resumable — never block here.
                stop = None
                self.kernel.oom_kill(proc, exc.needed)
            executed = stop.executed if stop is not None else 0
            instr_delta = cpu.instr_retired - instr_before
            mem_delta = cpu.mem_ops_retired - mem_before
            cow_delta = proc.mem.cow_faults - cow_before

            if instr_delta > 0:
                mem_ratio = mem_delta / instr_delta
                footprint = proc.mem.rss_bytes()
                n_active = self._cluster_active(proc)
                own_dram = mem_ratio * self.platform.miss_factor(
                    core.cluster, footprint, n_active)
                proc._recent_dram = own_dram
                cpi = self.platform.cpi(core.cluster, mem_ratio, footprint,
                                        n_active)
                dram = 1.0 + (self.platform.dram_coeff * own_dram
                              * self._dram_pressure(proc))
                virtual_cycles = instr_delta * cpi * dram
                hw_cycles = virtual_cycles * self.platform.cycle_scale
                user_seconds = hw_cycles / core.freq_hz
                proc.user_cycles += hw_cycles
                self.charged_cycles += hw_cycles
                self.profiler.charge_for(proc, hw_cycles)
                if core.is_big:
                    proc.cycles_big += hw_cycles
                else:
                    proc.cycles_little += hw_cycles
                self.total_mem_ops += mem_delta
                self.dram_op_energy_j += (mem_delta
                                          * self.platform.mem_op_energy_j)

            if cow_delta:
                sys_cycles += self.kernel.costs.cow_cycles(
                    self.platform.page_size, cow_delta)

            self.current_time = start + user_seconds
            if stop is not None:
                try:
                    sys_cycles += self._handle_stop(proc, stop)
                except FramePoolExhausted as exc:
                    # Syscall/replay machinery (e.g. a tracer replaying a
                    # recorded read into a checker) ran out of frames
                    # mid-side-effect: partially-applied state is not
                    # resumable, so blocking is not offered.
                    self.kernel.oom_kill(proc, exc.needed)

        sys_seconds = sys_cycles / core.freq_hz
        if sys_cycles:
            self.charged_cycles += sys_cycles
            self.profiler.charge_for(proc, sys_cycles)
        total = user_seconds + sys_seconds
        proc.user_time += user_seconds
        proc.sys_time += sys_seconds
        core.local_time = start + total
        proc.ready_time = core.local_time
        self._account_core_energy(core, total)
        self.current_time = core.local_time

        if proc.tracer is not None and proc.alive:
            proc.tracer.on_quantum(proc, executed)

        if not proc.alive and proc.core is not None:
            self.unassign(proc)

        self._fire_samplers()
        return True

    def _handle_stop(self, proc: Process, stop) -> float:
        """Dispatch a stop reason; returns extra hw-cycle cost."""
        reason = stop.reason
        if reason in (StopReason.BUDGET,):
            return 0.0
        if reason == StopReason.OOM:
            # The interpreter stopped cleanly on the faulting store (pc
            # un-advanced), so the tracer may park the process and retry
            # the allocation later: blocking is safe here.
            self.kernel.oom_kill(proc, stop.needed, can_block=True)
            return 0.0
        if reason == StopReason.SYSCALL:
            return self.kernel.handle_syscall(proc)
        if reason == StopReason.HALTED:
            self.kernel.exit_process(proc, 0)
            return 0.0
        if reason == StopReason.FAULT:
            if self.kernel.is_sigreturn_fault(stop.fault):
                self.kernel.sigreturn(proc)
                # sigreturn is itself a kernel entry (context restore).
                return self.kernel.costs.signal_delivery_cycles
            signo = _FAULT_SIGNALS.get(stop.fault.kind, abi.SIGILL)
            self.kernel.send_signal(proc, signo, external=False)
            return self.kernel.deliver_pending_signal(proc)
        if reason in (StopReason.BREAKPOINT, StopReason.COUNTER_OVERFLOW,
                      StopReason.INSTR_OVERFLOW, StopReason.BRK,
                      StopReason.NONDET):
            if proc.tracer is not None:
                cost = self.kernel._charge_trace_stop()
                proc.tracer.on_stop(proc, stop)
                return cost
            # Untraced: a brk instruction is a SIGTRAP; stray overflows and
            # breakpoints are disarmed and ignored.
            if reason == StopReason.BRK:
                self.kernel.send_signal(proc, abi.SIGTRAP, external=False)
                return self.kernel.deliver_pending_signal(proc)
            if reason == StopReason.NONDET:
                # trap_nondet without a tracer is a misconfiguration.
                raise SimulationError(
                    f"pid {proc.pid}: nondet trap with no tracer")
            proc.cpu.disarm_branch_overflow()
            proc.cpu.disarm_instr_overflow()
            return 0.0
        raise SimulationError(f"unhandled stop {stop}")

    # -- samplers / run -----------------------------------------------------------

    def add_sampler(self, interval: float,
                    callback: Callable[[float], None]) -> None:
        self.samplers.append(Sampler(interval, callback))

    def _fire_samplers(self) -> None:
        if not self.samplers:
            return
        now = self.wall_time()
        for sampler in self.samplers:
            while sampler.next_time <= now:
                sampler.callback(sampler.next_time)
                sampler.next_time += sampler.interval

    def wall_time(self) -> float:
        return max(core.local_time for core in self.cores)

    def shutdown(self) -> None:
        """Stop the run loop (used on detected errors)."""
        self._shutdown = True

    def run(self, max_steps: int = 50_000_000) -> None:
        """Run until nothing is runnable."""
        for _ in range(max_steps):
            if not self.step():
                return
        raise SimulationError("executor exceeded max_steps (livelock?)")

    # -- energy summary --------------------------------------------------------------

    def total_energy_joules(self, wall: Optional[float] = None) -> float:
        """Total SoC+DRAM energy over the run (paper §5.1 methodology)."""
        wall = self.wall_time() if wall is None else wall
        energy = self.dram_op_energy_j + self.platform.dram_background_w * wall
        for core in self.cores:
            energy += core.energy_joules
            idle = max(0.0, wall - core.busy_seconds)
            energy += self.platform.core_static_power_w(core.cluster) * idle
        return energy

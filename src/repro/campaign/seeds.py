"""Splittable seed derivation for campaign tasks.

Every injection task in a campaign must be reproducible *in isolation*:
retrying a task on a respawned worker, resuming a half-finished campaign
from its journal, or re-running one suspicious task in a debugger must
all see exactly the draws the original task saw — independent of which
tasks ran before it, on which worker, in which order.

The scheme is SplitMix64-style: the campaign seed is mixed with the
task's ``(shard, index)`` coordinates (or a stable name) through two
rounds of the SplitMix64 finalizer, giving decorrelated 64-bit seeds
whose streams do not collide for distinct coordinates.  The derived seed
feeds a :class:`repro.common.rng.RngPool`, so task-local draws compose
with the substrate's named-stream discipline exactly like the old
sequential campaign stream did.
"""

from __future__ import annotations

import random

from repro.common.rng import RngPool

_MASK64 = (1 << 64) - 1

#: Domain-separation constants (odd, as SplitMix64 requires).
_GAMMA_SHARD = 0x9E3779B97F4A7C15
_GAMMA_INDEX = 0xBF58476D1CE4E5B9
_GAMMA_NAME = 0x94D049BB133111EB


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: a bijective avalanche over 64 bits."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def split_seed(campaign_seed: int, shard: int, index: int) -> int:
    """Derive the seed of task ``index`` of logical shard ``shard``.

    Pure function of its three arguments: the same coordinates always
    produce the same seed, and distinct coordinates produce decorrelated
    seeds (two mixing rounds, one per coordinate, so ``(1, 0)`` and
    ``(0, 1)`` do not alias).  The shard count is part of a campaign's
    identity — the journal header records it, and resume refuses a
    mismatch — so a task's coordinates, hence its seed, are stable for
    the campaign's whole lifetime.
    """
    value = _mix64((campaign_seed & _MASK64) ^ _GAMMA_SHARD * (shard + 1))
    value = _mix64(value ^ _GAMMA_INDEX * (index + 1))
    return value


def named_seed(campaign_seed: int, name: str) -> int:
    """Derive a seed from a stable *name* instead of coordinates.

    Used where the task population is keyed by identity rather than
    position — e.g. one pressure sweep per benchmark — so any subset of
    tasks, run in any order, sees the same per-task seeds.
    """
    value = (campaign_seed & _MASK64) ^ _GAMMA_NAME
    for byte in name.encode("utf-8"):
        value = _mix64(value ^ byte)
    return _mix64(value)


def task_rng(seed: int, stream: str = "campaign-task") -> random.Random:
    """The draw stream of one task, from its derived seed."""
    return RngPool(seed).stream(stream)

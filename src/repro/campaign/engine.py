"""Sharded, crash-resilient campaign engine with resumable fleets.

A campaign is a list of JSON-serializable task payloads plus a
``run_task`` callable.  The engine partitions the tasks into
deterministic logical shards, derives a splittable per-task seed
(:mod:`repro.campaign.seeds`) so any task is reproducible in isolation,
and executes the plan either **serially** (``workers=0``, in-process —
the determinism baseline every fleet run must reproduce byte-for-byte)
or as a **fleet** of forked worker processes, one shard at a time per
worker, under supervision:

* **heartbeats** — each worker beats on a side thread; a worker that
  stops beating (wedged, SIGSTOPped) past ``heartbeat_timeout`` is
  killed and its shard retried;
* **straggler detection** — a task running far past the median completed
  task duration is flagged (``counter.campaign.stragglers``) without
  being killed, so slow-but-alive work is visible, not lost;
* **capped exponential backoff** — a shard whose worker died is
  respawned after ``min(backoff_cap, backoff_base * 2**(failures-1))``
  seconds, so a crash-looping environment cannot hot-spin the fleet;
* **poison-task quarantine** — a task that kills its worker
  ``max_task_attempts`` times is journaled with a typed ``QUARANTINED``
  disposition and excluded from further dispatch instead of wedging the
  shard forever.

Every finished task is streamed to a durable JSONL journal
(:mod:`repro.core.journal`: per-record seq + XXH3 checksums,
``flush_every_n`` / ``fsync_every_n`` cadence), so a campaign interrupted
by the death of a worker *or the supervisor itself* resumes from the
journal with completed tasks skipped — and, because task seeds depend
only on ``(campaign_seed, shard, index)``, the resumed fleet's merged
result is byte-identical to an uninterrupted serial run of the same
plan.  The shard count is part of the campaign's identity (recorded in
the journal header; resume refuses a mismatch).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.campaign.seeds import split_seed
from repro.common.errors import CampaignError
from repro.core.journal import JournalWriter, journal_checksum, read_journal
from repro.metrics import MetricRegistry

__all__ = [
    "CampaignEngine",
    "CampaignTask",
    "TaskRecord",
    "ShardOutcome",
    "FleetResult",
    "DISP_COMPLETED",
    "DISP_FAILED",
    "DISP_QUARANTINED",
    "JOURNAL_VERSION",
]

JOURNAL_VERSION = 1

#: Typed task dispositions, as journaled.
DISP_COMPLETED = "completed"
DISP_FAILED = "failed"
DISP_QUARANTINED = "quarantined"


@dataclass(frozen=True)
class CampaignTask:
    """One unit of campaign work: coordinates, derived seed, payload."""

    task_id: str
    shard: int
    index: int
    seed: int
    payload: Dict[str, Any]


@dataclass
class TaskRecord:
    """The journaled outcome of one task."""

    task_id: str
    shard: int
    index: int
    disposition: str
    attempts: int
    result: Optional[Dict[str, Any]] = None
    detail: str = ""

    def body(self) -> Dict[str, Any]:
        return {"type": "task", "task_id": self.task_id,
                "shard": self.shard, "index": self.index,
                "disposition": self.disposition, "attempts": self.attempts,
                "result": self.result, "detail": self.detail}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "TaskRecord":
        return cls(task_id=body["task_id"], shard=body["shard"],
                   index=body["index"], disposition=body["disposition"],
                   attempts=body["attempts"], result=body.get("result"),
                   detail=body.get("detail", ""))


@dataclass
class ShardOutcome:
    """Per-shard fleet accounting for :func:`render_fleet`."""

    shard: int
    tasks: int = 0
    completed: int = 0
    resumed: int = 0            # skipped: already in the journal
    retries: int = 0            # task re-attempts (crash or in-task error)
    crashes: int = 0            # worker processes that died
    heartbeat_timeouts: int = 0
    stragglers: int = 0
    quarantined: int = 0
    failed: int = 0
    respawns: int = 0           # worker processes spawned beyond the first
    wall_time: float = 0.0      # real seconds a worker was active


@dataclass
class FleetResult:
    """Everything one engine run produced."""

    name: str
    records: List[TaskRecord]           # sorted by (shard, index)
    shards: List[ShardOutcome]          # sorted by shard
    registry: MetricRegistry
    wall_time: float = 0.0
    resumed_tasks: int = 0
    journal_path: Optional[str] = None

    def completed(self) -> List[TaskRecord]:
        return [r for r in self.records if r.disposition == DISP_COMPLETED]

    @property
    def quarantined(self) -> List[TaskRecord]:
        return [r for r in self.records
                if r.disposition == DISP_QUARANTINED]


class _ShardState:
    """Supervisor-side bookkeeping for one logical shard."""

    def __init__(self, shard: int):
        self.shard = shard
        self.pending: "OrderedDict[str, CampaignTask]" = OrderedDict()
        self.attempts: Dict[str, int] = {}
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.last_beat = 0.0
        self.spawned_at = 0.0
        self.current_task: Optional[str] = None
        self.current_started = 0.0
        self.failures = 0           # worker deaths / dirty exits, for backoff
        self.backoff_until = 0.0
        self.exited_clean = False
        self.ever_spawned = False
        self.outcome = ShardOutcome(shard=shard)
        self.flagged_stragglers: set = set()
        # File-transport cursor for the current worker epoch.
        self.segment_path = ""
        self.hb_path = ""
        self.segment_offset = 0
        self.segment_buf = ""
        self.hb_mtime = 0.0


def _worker_main(shard: int, tasks: List[CampaignTask],
                 run_task: Callable[[CampaignTask], Dict[str, Any]],
                 segment_path: str, hb_path: str,
                 heartbeat_interval: float,
                 metrics_snapshot: Optional[Callable[[], Dict[str, Any]]]
                 ) -> None:
    """Forked worker: run the shard's tasks, streaming results to a
    per-worker JSONL segment file.

    The transport is a *file*, not a queue, on purpose: every line is
    flushed synchronously before the next task runs, so a worker
    SIGKILLed mid-task leaves at worst a torn final line — which the
    supervisor's incremental reader simply has not consumed yet — never
    a wedged pipe or a lost in-flight marker.  Heartbeats are mtime
    touches of ``hb_path`` from a side thread, so a long-running task
    still beats while a SIGSTOPped worker visibly stops.
    """
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                with open(hb_path, "w") as f:
                    f.write(f"{time.time()}\n")
            except OSError:
                return
    beater = threading.Thread(target=beat, daemon=True)
    beater.start()
    with open(segment_path, "a", encoding="utf-8") as out:
        def emit(doc: Dict[str, Any]) -> None:
            out.write(json.dumps(doc, sort_keys=True,
                                 separators=(",", ":")) + "\n")
            out.flush()

        for task in tasks:
            emit({"type": "start", "task_id": task.task_id})
            try:
                result = run_task(task)
            except BaseException as exc:  # noqa: BLE001 — report, don't die
                emit({"type": "fail", "task_id": task.task_id,
                      "detail": f"{type(exc).__name__}: {exc}"})
                continue
            emit({"type": "done", "task_id": task.task_id,
                  "result": result})
        if metrics_snapshot is not None:
            try:
                emit({"type": "metrics", "snapshot": metrics_snapshot()})
            except Exception as exc:  # noqa: BLE001
                emit({"type": "fail", "task_id": "__metrics__",
                      "detail": f"{type(exc).__name__}: {exc}"})
        emit({"type": "exit"})
    stop.set()


class CampaignEngine:
    """Plan, shard, execute, supervise, journal, resume, merge."""

    def __init__(self, run_task: Callable[[CampaignTask], Dict[str, Any]],
                 payloads: Sequence[Dict[str, Any]], *,
                 campaign_seed: int = 0,
                 shards: int = 1,
                 name: str = "campaign",
                 fingerprint_extra: Optional[Dict[str, Any]] = None,
                 seeds: Optional[Sequence[int]] = None,
                 journal_path: Optional[str] = None,
                 resume: bool = False,
                 workers: int = 0,
                 max_task_attempts: int = 3,
                 heartbeat_interval: float = 0.2,
                 heartbeat_timeout: float = 60.0,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 straggler_factor: float = 4.0,
                 straggler_min_seconds: float = 1.0,
                 flush_every_n: int = 1,
                 fsync_every_n: Optional[int] = None,
                 metrics_snapshot: Optional[
                     Callable[[], Dict[str, Any]]] = None,
                 registry: Optional[MetricRegistry] = None):
        if shards < 1:
            raise CampaignError(f"shards must be >= 1, got {shards}")
        if max_task_attempts < 1:
            raise CampaignError("max_task_attempts must be >= 1")
        if seeds is not None and len(seeds) != len(payloads):
            raise CampaignError("seeds must parallel payloads")
        self.name = name
        self.campaign_seed = campaign_seed
        self.shards = shards
        self.journal_path = journal_path
        self.resume = resume
        self.workers = workers
        self.max_task_attempts = max_task_attempts
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.straggler_factor = straggler_factor
        self.straggler_min_seconds = straggler_min_seconds
        self.flush_every_n = flush_every_n
        self.fsync_every_n = fsync_every_n
        self.metrics_snapshot = metrics_snapshot
        self.run_task = run_task
        self.registry = registry if registry is not None else MetricRegistry()
        self.fingerprint_extra = fingerprint_extra or {}

        # Deterministic plan: global order -> round-robin shard, with the
        # per-shard index counting that shard's tasks.  Seeds derive from
        # (campaign_seed, shard, index) unless the driver supplied its
        # own (e.g. name-keyed pressure sweeps).
        self.tasks: List[CampaignTask] = []
        counts = [0] * shards
        for g, payload in enumerate(payloads):
            shard = g % shards
            index = counts[shard]
            counts[shard] += 1
            seed = (seeds[g] if seeds is not None
                    else split_seed(campaign_seed, shard, index))
            self.tasks.append(CampaignTask(
                task_id=f"s{shard}.t{index}", shard=shard, index=index,
                seed=seed, payload=dict(payload)))
        self._by_id = {t.task_id: t for t in self.tasks}

    # -- campaign identity -------------------------------------------------

    def fingerprint(self) -> str:
        doc = {"name": self.name, "campaign_seed": self.campaign_seed,
               "shards": self.shards, "task_count": len(self.tasks),
               "extra": self.fingerprint_extra}
        body = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return f"{journal_checksum(0, {'fp': body}):#018x}"

    def _header(self) -> Dict[str, Any]:
        return {"type": "header", "version": JOURNAL_VERSION,
                "name": self.name, "campaign_seed": self.campaign_seed,
                "shards": self.shards, "task_count": len(self.tasks),
                "fingerprint": self.fingerprint()}

    # -- counters ----------------------------------------------------------

    def _count(self, what: str, amount: float = 1.0) -> None:
        self.registry.counter(f"campaign.{what}").inc(amount)

    # -- resume ------------------------------------------------------------

    def _load_journal(self) -> "OrderedDict[str, TaskRecord]":
        """Read a prior run's journal; returns its task records.

        Also truncates any torn final line so appending resumes on a
        clean record boundary, and re-merges journaled shard metric
        snapshots into the engine registry.
        """
        records: "OrderedDict[str, TaskRecord]" = OrderedDict()
        if not (self.resume and self.journal_path
                and os.path.exists(self.journal_path)):
            return records
        bodies = read_journal(self.journal_path)
        if not bodies:
            return records
        header = bodies[0]
        if header.get("type") != "header":
            raise CampaignError(
                f"journal {self.journal_path} does not start with a "
                f"campaign header")
        if header.get("fingerprint") != self.fingerprint():
            raise CampaignError(
                f"journal {self.journal_path} belongs to a different "
                f"campaign (seed/shards/task-count/spec mismatch): "
                f"journal {header.get('fingerprint')}, "
                f"spec {self.fingerprint()}")
        for body in bodies[1:]:
            if body.get("type") == "task":
                record = TaskRecord.from_body(body)
                if record.task_id not in self._by_id:
                    raise CampaignError(
                        f"journal task {record.task_id} is not in this "
                        f"campaign's plan")
                records[record.task_id] = record
            elif body.get("type") == "metrics":
                self.registry.merge(
                    MetricRegistry.from_snapshot(body["snapshot"]))
        # Drop a torn tail on disk too, so appended records start on a
        # fresh line.
        self._truncate_to_valid(len(bodies))
        self._journal_seq = len(bodies)
        return records

    def _truncate_to_valid(self, n_records: int) -> None:
        with open(self.journal_path, "rb") as f:
            raw = f.read()
        offset, seen = 0, 0
        while seen < n_records:
            offset = raw.index(b"\n", offset) + 1
            seen += 1
        if offset < len(raw):
            with open(self.journal_path, "r+b") as f:
                f.truncate(offset)

    # -- run ---------------------------------------------------------------

    def run(self) -> FleetResult:
        started = time.monotonic()
        self._count("tasks", len(self.tasks))
        self._journal_seq = 0
        done = self._load_journal()
        resumed_tasks = len(done)
        if resumed_tasks:
            self._count("resumed", resumed_tasks)

        self._writer: Optional[JournalWriter] = None
        if self.journal_path is not None:
            fresh = self._journal_seq == 0
            self._writer = JournalWriter(
                self.journal_path, flush_every_n=self.flush_every_n,
                fsync_every_n=self.fsync_every_n,
                start_seq=self._journal_seq)
            if fresh:
                self._writer.append(self._header())

        states: Dict[int, _ShardState] = {
            s: _ShardState(s) for s in range(self.shards)}
        for task in self.tasks:
            state = states[task.shard]
            state.outcome.tasks += 1
            if task.task_id in done:
                state.outcome.resumed += 1
            else:
                state.pending[task.task_id] = task
        records: Dict[str, TaskRecord] = dict(done)

        try:
            if self.workers <= 0:
                self._run_serial(states, records)
            else:
                self._run_fleet(states, records)
        finally:
            if self._writer is not None:
                self._writer.close()

        ordered = sorted(records.values(), key=lambda r: (r.shard, r.index))
        wall = time.monotonic() - started
        return FleetResult(
            name=self.name,
            records=ordered,
            shards=[states[s].outcome for s in sorted(states)],
            registry=self.registry,
            wall_time=wall,
            resumed_tasks=resumed_tasks,
            journal_path=self.journal_path)

    # -- record bookkeeping ------------------------------------------------

    def _record(self, state: _ShardState, record: TaskRecord,
                records: Dict[str, TaskRecord]) -> None:
        records[record.task_id] = record
        state.pending.pop(record.task_id, None)
        if record.disposition == DISP_COMPLETED:
            state.outcome.completed += 1
            self._count("completed")
        elif record.disposition == DISP_QUARANTINED:
            state.outcome.quarantined += 1
            self._count("quarantined")
        else:
            state.outcome.failed += 1
            self._count("failed")
        if self._writer is not None:
            self._writer.append(record.body())

    # -- serial path -------------------------------------------------------

    def _run_serial(self, states: Dict[int, _ShardState],
                    records: Dict[str, TaskRecord]) -> None:
        """In-process execution of the same sharded plan: the determinism
        baseline.  Task attempts retry in place (no backoff sleeps — the
        serial path is for tests, CI baselines and resume-merge)."""
        for shard in sorted(states):
            state = states[shard]
            t0 = time.monotonic()
            for task in list(state.pending.values()):
                attempts = 0
                while True:
                    attempts += 1
                    try:
                        result = self.run_task(task)
                    except Exception as exc:  # noqa: BLE001
                        if attempts >= self.max_task_attempts:
                            self._record(state, TaskRecord(
                                task.task_id, task.shard, task.index,
                                DISP_FAILED, attempts,
                                detail=f"{type(exc).__name__}: {exc}"),
                                records)
                            break
                        state.outcome.retries += 1
                        self._count("retries")
                        continue
                    self._record(state, TaskRecord(
                        task.task_id, task.shard, task.index,
                        DISP_COMPLETED, attempts, result=result), records)
                    break
            state.outcome.wall_time += time.monotonic() - t0
        if self.metrics_snapshot is not None:
            snapshot = self.metrics_snapshot()
            if self._writer is not None:
                self._writer.append({"type": "metrics", "shard": -1,
                                     "snapshot": snapshot})
            self.registry.merge(MetricRegistry.from_snapshot(snapshot))

    # -- fleet path --------------------------------------------------------

    def _run_fleet(self, states: Dict[int, _ShardState],
                   records: Dict[str, TaskRecord]) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            # No fork (e.g. some non-Linux hosts): closures in run_task
            # cannot cross a spawn boundary — degrade to serial.
            self._run_serial(states, records)
            return
        ctx = multiprocessing.get_context("fork")
        self._done_durations: List[float] = []
        scratch = tempfile.mkdtemp(prefix="repro-campaign-")
        active: Dict[int, _ShardState] = {}
        waiting = [states[s] for s in sorted(states) if states[s].pending]

        def spawn(state: _ShardState) -> None:
            epoch = state.outcome.respawns + (1 if state.ever_spawned else 0)
            state.segment_path = os.path.join(
                scratch, f"seg{state.shard}.{epoch}.jsonl")
            state.hb_path = os.path.join(
                scratch, f"hb{state.shard}.{epoch}")
            state.segment_offset = 0
            state.segment_buf = ""
            state.hb_mtime = 0.0
            tasks = list(state.pending.values())
            process = ctx.Process(
                target=_worker_main,
                args=(state.shard, tasks, self.run_task,
                      state.segment_path, state.hb_path,
                      self.heartbeat_interval, self.metrics_snapshot))
            process.start()
            now = time.monotonic()
            state.process = process
            state.last_beat = now
            state.spawned_at = now
            state.current_task = None
            state.exited_clean = False
            if state.ever_spawned:
                state.outcome.respawns += 1
                self._count("respawns")
            state.ever_spawned = True
            active[state.shard] = state

        try:
            while waiting or active:
                now = time.monotonic()
                # Fill worker slots with shards whose backoff expired.
                for state in list(waiting):
                    if len(active) >= self.workers:
                        break
                    if state.backoff_until > now:
                        continue
                    waiting.remove(state)
                    spawn(state)
                drained = 0
                for state in list(active.values()):
                    drained += self._poll_segment(state, records)
                if not drained:
                    time.sleep(0.02)
                now = time.monotonic()
                # Liveness, heartbeat, straggler checks per active shard.
                for shard, state in list(active.items()):
                    process = state.process
                    if state.exited_clean:
                        process.join(timeout=1.0)
                        state.outcome.wall_time += now - state.spawned_at
                        del active[shard]
                        if state.pending:  # in-task failures left retries
                            self._backoff(state, waiting)
                        continue
                    if not process.is_alive():
                        # Final read: everything the worker flushed
                        # before dying is still on disk.
                        self._poll_segment(state, records)
                        process.join(timeout=1.0)
                        state.outcome.wall_time += now - state.spawned_at
                        del active[shard]
                        if state.exited_clean:
                            if state.pending:
                                self._backoff(state, waiting)
                        else:
                            self._crashed(state, records, waiting)
                        continue
                    if self.heartbeat_timeout is not None and \
                            now - state.last_beat > self.heartbeat_timeout:
                        state.outcome.heartbeat_timeouts += 1
                        self._count("heartbeat_timeouts")
                        process.kill()
                        process.join(timeout=5.0)
                        self._poll_segment(state, records)
                        state.outcome.wall_time += now - state.spawned_at
                        del active[shard]
                        self._crashed(state, records, waiting)
                        continue
                    self._check_straggler(state, now)
                if not active and waiting:
                    soonest = min(s.backoff_until for s in waiting)
                    delay = soonest - time.monotonic()
                    if delay > 0:
                        time.sleep(min(delay, self.backoff_cap))
        finally:
            for state in active.values():
                if state.process is not None and state.process.is_alive():
                    state.process.kill()
                    state.process.join(timeout=5.0)
            shutil.rmtree(scratch, ignore_errors=True)

    def _poll_segment(self, state: _ShardState,
                      records: Dict[str, TaskRecord]) -> int:
        """Incrementally consume a worker's segment file.

        Only complete (newline-terminated) lines are parsed; a torn tail
        stays buffered until the worker finishes the write — or forever,
        if the worker died mid-line, which is exactly the crash case the
        retry path covers.  Heartbeats are observed as mtime changes of
        the worker's beat file.
        """
        handled = 0
        try:
            hb_mtime = os.stat(state.hb_path).st_mtime
            if hb_mtime != state.hb_mtime:
                state.hb_mtime = hb_mtime
                state.last_beat = time.monotonic()
        except OSError:
            pass
        try:
            with open(state.segment_path, "r", encoding="utf-8") as f:
                f.seek(state.segment_offset)
                data = f.read()
        except OSError:
            return 0
        if not data:
            return 0
        state.segment_offset += len(data.encode("utf-8"))
        state.segment_buf += data
        while "\n" in state.segment_buf:
            line, state.segment_buf = state.segment_buf.split("\n", 1)
            if not line:
                continue
            try:
                message = json.loads(line)
            except ValueError:
                continue            # unreadable transport line: skip
            self._handle(state, message, records)
            handled += 1
        return handled

    def _handle(self, state: _ShardState, message: Dict[str, Any],
                records: Dict[str, TaskRecord]) -> None:
        kind = message.get("type")
        now = time.monotonic()
        state.last_beat = now
        if kind == "start":
            state.current_task = message.get("task_id")
            state.current_started = now
        elif kind == "done":
            task_id = message.get("task_id")
            if task_id not in state.pending:
                return              # duplicate after a retried shard
            attempts = state.attempts.get(task_id, 0) + 1
            task = state.pending[task_id]
            state.current_task = None
            self._done_durations.append(now - state.current_started)
            self._record(state, TaskRecord(
                task.task_id, task.shard, task.index, DISP_COMPLETED,
                attempts, result=message.get("result")), records)
        elif kind == "fail":
            task_id = message.get("task_id")
            state.current_task = None
            if task_id not in state.pending:
                return
            task = state.pending[task_id]
            attempts = state.attempts.get(task_id, 0) + 1
            state.attempts[task_id] = attempts
            if attempts >= self.max_task_attempts:
                self._record(state, TaskRecord(
                    task.task_id, task.shard, task.index, DISP_FAILED,
                    attempts, detail=message.get("detail", "")), records)
            else:
                state.outcome.retries += 1
                self._count("retries")
                # Left in pending: the shard's next respawn re-runs it.
        elif kind == "metrics":
            snapshot = message.get("snapshot", {})
            if self._writer is not None:
                self._writer.append({"type": "metrics",
                                     "shard": state.shard,
                                     "snapshot": snapshot})
            self.registry.merge(MetricRegistry.from_snapshot(snapshot))
        elif kind == "exit":
            state.exited_clean = True

    def _crashed(self, state: _ShardState,
                 records: Dict[str, TaskRecord], waiting: list) -> None:
        """A worker died without a clean exit: charge the in-flight task
        an attempt, quarantine it if poisoned, back the shard off."""
        state.outcome.crashes += 1
        self._count("worker_crashes")
        task_id = state.current_task
        state.current_task = None
        if task_id is not None and task_id in state.pending:
            attempts = state.attempts.get(task_id, 0) + 1
            state.attempts[task_id] = attempts
            if attempts >= self.max_task_attempts:
                task = state.pending[task_id]
                self._record(state, TaskRecord(
                    task.task_id, task.shard, task.index,
                    DISP_QUARANTINED, attempts,
                    detail=f"killed its worker {attempts} times"), records)
            else:
                state.outcome.retries += 1
                self._count("retries")
        if state.pending:
            self._backoff(state, waiting)

    def _backoff(self, state: _ShardState, waiting: list) -> None:
        state.failures += 1
        delay = min(self.backoff_cap,
                    self.backoff_base * (2 ** (state.failures - 1)))
        self._count("backoff_seconds", delay)
        state.backoff_until = time.monotonic() + delay
        waiting.append(state)

    def _check_straggler(self, state: _ShardState, now: float) -> None:
        if state.current_task is None \
                or state.current_task in state.flagged_stragglers:
            return
        durations = sorted(self._done_durations)
        median = durations[len(durations) // 2] if durations else 0.0
        threshold = self.straggler_factor * max(
            median, self.straggler_min_seconds)
        if now - state.current_started > threshold:
            state.flagged_stragglers.add(state.current_task)
            state.outcome.stragglers += 1
            self._count("stragglers")

"""Sharded, crash-resilient campaign engine with durable journals.

See :mod:`repro.campaign.engine` for the fleet supervisor and
:mod:`repro.campaign.seeds` for the splittable per-task seed scheme.
The three campaign drivers (:meth:`repro.faults.FaultInjector.
run_campaign`, :meth:`repro.faults.InfraInjector.run_campaign`,
:func:`repro.harness.pressure.run_pressure_campaign`) all route through
:class:`CampaignEngine`.
"""

from repro.campaign.engine import (
    DISP_COMPLETED,
    DISP_FAILED,
    DISP_QUARANTINED,
    JOURNAL_VERSION,
    CampaignEngine,
    CampaignTask,
    FleetResult,
    ShardOutcome,
    TaskRecord,
)
from repro.campaign.seeds import named_seed, split_seed, task_rng

__all__ = [
    "CampaignEngine",
    "CampaignTask",
    "FleetResult",
    "ShardOutcome",
    "TaskRecord",
    "DISP_COMPLETED",
    "DISP_FAILED",
    "DISP_QUARANTINED",
    "JOURNAL_VERSION",
    "named_seed",
    "split_seed",
    "task_rng",
]

"""Physical frame pool with reference counting.

Frames are shared between address spaces by copy-on-write ``fork`` (paper
§4.3) and the reference count doubles as the kernel's "number of maps" for
the AArch64-style ``PAGEMAP_SCAN`` dirty-page backend (paper §4.4): a frame
mapped exactly once is private to its process — i.e. written or newly
allocated since the fork — while a frame mapped more than once is still
shared with the checkpoint/checker and therefore unmodified.
"""

from __future__ import annotations

from typing import Dict, Optional


class Frame:
    """One physical page frame."""

    __slots__ = ("frame_id", "data", "refcount")

    def __init__(self, frame_id: int, data: bytearray):
        self.frame_id = frame_id
        self.data = data
        self.refcount = 1

    def __repr__(self) -> str:
        return f"Frame(id={self.frame_id}, refs={self.refcount})"


class FramePool:
    """Allocator for physical frames.

    Tracks totals so the harness can account memory the way the paper does
    (proportional set size: frame size divided by its map count).
    """

    def __init__(self, page_size: int):
        if page_size <= 0 or page_size % 8:
            raise ValueError(f"page size must be a positive multiple of 8: {page_size}")
        self.page_size = page_size
        self._next_id = 1
        self._frames: Dict[int, Frame] = {}
        #: cumulative counters for the timing/energy model
        self.frames_allocated = 0
        self.frames_copied = 0
        self.frames_freed = 0

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def resident_bytes(self) -> int:
        return len(self._frames) * self.page_size

    def allocate(self, data: Optional[bytes] = None) -> Frame:
        """Allocate a fresh frame, zero-filled or initialized from ``data``."""
        if data is None:
            payload = bytearray(self.page_size)
        else:
            if len(data) > self.page_size:
                raise ValueError("initial data larger than a page")
            payload = bytearray(self.page_size)
            payload[:len(data)] = data
        frame = Frame(self._next_id, payload)
        self._next_id += 1
        self._frames[frame.frame_id] = frame
        self.frames_allocated += 1
        return frame

    def clone(self, frame: Frame) -> Frame:
        """Copy-on-write resolution: duplicate ``frame`` into a private copy."""
        copy = Frame(self._next_id, bytearray(frame.data))
        self._next_id += 1
        self._frames[copy.frame_id] = copy
        self.frames_allocated += 1
        self.frames_copied += 1
        return copy

    def incref(self, frame: Frame) -> None:
        frame.refcount += 1

    def decref(self, frame: Frame) -> None:
        if frame.refcount <= 0:
            raise ValueError(f"decref of dead frame {frame.frame_id}")
        frame.refcount -= 1
        if frame.refcount == 0:
            del self._frames[frame.frame_id]
            self.frames_freed += 1

    def live_frame(self, frame_id: int) -> Optional[Frame]:
        return self._frames.get(frame_id)

"""Physical frame pool with reference counting.

Frames are shared between address spaces by copy-on-write ``fork`` (paper
§4.3) and the reference count doubles as the kernel's "number of maps" for
the AArch64-style ``PAGEMAP_SCAN`` dirty-page backend (paper §4.4): a frame
mapped exactly once is private to its process — i.e. written or newly
allocated since the fork — while a frame mapped more than once is still
shared with the checkpoint/checker and therefore unmodified.

The pool can be given a finite byte budget (``budget_bytes``), making it
behave like real RAM: allocations past the budget first invoke the
``reclaim_hook`` (the pressure controller's emergency-reclaim path) and, if
that fails to make room, raise :class:`FramePoolExhausted`.  Accounting is
exact and COW-aware — ``resident_bytes`` counts each unique live frame once
regardless of how many address spaces map it, and is maintained
incrementally so it is authoritative at every instant.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from repro.common.errors import FramePoolExhausted


def budget_from_env(var: str = "REPRO_MEM_BUDGET") -> Optional[int]:
    """Default frame-pool budget from the environment (bytes), or None.

    Lets the whole suite run under a finite budget (CI's pressure-coverage
    job) without threading a parameter through every entry point.
    """
    raw = os.environ.get(var)
    if not raw:
        return None
    return int(raw)


class Frame:
    """One physical page frame."""

    __slots__ = ("frame_id", "data", "refcount")

    def __init__(self, frame_id: int, data: bytearray):
        self.frame_id = frame_id
        self.data = data
        self.refcount = 1

    def __repr__(self) -> str:
        return f"Frame(id={self.frame_id}, refs={self.refcount})"


class FramePool:
    """Allocator for physical frames.

    Tracks totals so the harness can account memory the way the paper does
    (proportional set size: frame size divided by its map count).
    """

    def __init__(self, page_size: int, budget_bytes: Optional[int] = None):
        if page_size <= 0 or page_size % 8:
            raise ValueError(f"page size must be a positive multiple of 8: {page_size}")
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget must be positive: {budget_bytes}")
        self.page_size = page_size
        self.budget_bytes = budget_bytes
        self._next_id = 1
        self._frames: Dict[int, Frame] = {}
        self._resident_bytes = 0
        #: high-water mark of ``resident_bytes`` over the pool's lifetime
        self.peak_resident_bytes = 0
        #: called with the shortfall in bytes when an allocation would
        #: exceed the budget; may free frames (via ``decref``) to make room
        self.reclaim_hook: Optional[Callable[[int], None]] = None
        #: cumulative counters for the timing/energy model
        self.frames_allocated = 0
        self.frames_copied = 0
        self.frames_freed = 0

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    def set_budget(self, budget_bytes: Optional[int]) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget must be positive: {budget_bytes}")
        self.budget_bytes = budget_bytes

    def _reserve(self, nbytes: int) -> None:
        """Account ``nbytes`` of new residency, enforcing the budget."""
        if (self.budget_bytes is not None
                and self._resident_bytes + nbytes > self.budget_bytes):
            if self.reclaim_hook is not None:
                self.reclaim_hook(nbytes)
            if self._resident_bytes + nbytes > self.budget_bytes:
                raise FramePoolExhausted(
                    nbytes, self._resident_bytes, self.budget_bytes)
        self._resident_bytes += nbytes
        if self._resident_bytes > self.peak_resident_bytes:
            self.peak_resident_bytes = self._resident_bytes

    def allocate(self, data: Optional[bytes] = None) -> Frame:
        """Allocate a fresh frame, zero-filled or initialized from ``data``."""
        if data is None:
            payload = bytearray(self.page_size)
        else:
            if len(data) > self.page_size:
                raise ValueError("initial data larger than a page")
            payload = bytearray(self.page_size)
            payload[:len(data)] = data
        self._reserve(self.page_size)
        frame = Frame(self._next_id, payload)
        self._next_id += 1
        self._frames[frame.frame_id] = frame
        self.frames_allocated += 1
        return frame

    def clone(self, frame: Frame) -> Frame:
        """Copy-on-write resolution: duplicate ``frame`` into a private copy."""
        self._reserve(self.page_size)
        copy = Frame(self._next_id, bytearray(frame.data))
        self._next_id += 1
        self._frames[copy.frame_id] = copy
        self.frames_allocated += 1
        self.frames_copied += 1
        return copy

    def incref(self, frame: Frame) -> None:
        frame.refcount += 1

    def decref(self, frame: Frame) -> None:
        if frame.refcount <= 0:
            raise ValueError(f"decref of dead frame {frame.frame_id}")
        frame.refcount -= 1
        if frame.refcount == 0:
            del self._frames[frame.frame_id]
            self.frames_freed += 1
            self._resident_bytes -= self.page_size

    def live_frame(self, frame_id: int) -> Optional[Frame]:
        return self._frames.get(frame_id)

"""Virtual memory substrate: refcounted frames, COW address spaces, paging."""

from repro.mem.address_space import (
    MAP_ANONYMOUS,
    MAP_FIXED,
    MAP_PRIVATE,
    MAP_SHARED,
    MMAP_BASE,
    PROT_EXEC,
    PROT_NONE,
    PROT_READ,
    PROT_WRITE,
    AddressSpace,
    PageFault,
    Pte,
    Vma,
)
from repro.mem.frames import Frame, FramePool

__all__ = [
    "AddressSpace",
    "PageFault",
    "Pte",
    "Vma",
    "Frame",
    "FramePool",
    "PROT_NONE",
    "PROT_READ",
    "PROT_WRITE",
    "PROT_EXEC",
    "MAP_PRIVATE",
    "MAP_SHARED",
    "MAP_ANONYMOUS",
    "MAP_FIXED",
    "MMAP_BASE",
]

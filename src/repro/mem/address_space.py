"""Virtual address spaces with copy-on-write sharing.

This is the substrate for Parallaft's checkpointing: ``fork`` marks every
private writable page copy-on-write and shares its frame, so checkpoints are
cheap to take and pages are only duplicated when the main process (or a
checker) first writes to them — exactly the cost structure the paper's
fork-and-COW overhead component measures (§5.2.1).

Dirty-page tracking supports both backends from §4.4:

* ``soft_dirty_vpns`` — the x86_64 soft-dirty PTE bit, set on write and
  cleared explicitly at segment start;
* ``map_count_dirty_vpns`` — the AArch64 ``PAGEMAP_SCAN`` model: a page whose
  frame is mapped exactly once is private (modified or new since the fork),
  one mapped multiple times is still shared and hence unmodified.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import MemoryError_
from repro.isa.instructions import Instr
from repro.isa.program import (
    CODE_BASE,
    DATA_BASE,
    INSTR_SIZE,
    STACK_SIZE,
    STACK_TOP,
    Program,
)
from repro.mem.frames import Frame, FramePool

PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4

MAP_PRIVATE = 1
MAP_SHARED = 2
MAP_ANONYMOUS = 4
MAP_FIXED = 8

#: Base of the mmap area (ASLR randomizes within a window above this).
MMAP_BASE = 0x2000_0000
MMAP_CEILING = 0x6000_0000
#: ASLR entropy window, in pages.
ASLR_WINDOW_PAGES = 4096


class PageFault(Exception):
    """Architectural page fault: unmapped address or protection violation.

    Deliberately *not* a ReproError: the CPU interpreter catches it and turns
    it into a SIGSEGV for the faulting process, like hardware would.
    """

    def __init__(self, address: int, access: str):
        super().__init__(f"page fault: {access} at {address:#x}")
        self.address = address
        self.access = access


class Pte:
    """Page-table entry."""

    __slots__ = ("frame", "writable", "cow", "soft_dirty")

    def __init__(self, frame: Frame, writable: bool, cow: bool = False,
                 soft_dirty: bool = False):
        self.frame = frame
        self.writable = writable
        self.cow = cow
        self.soft_dirty = soft_dirty


class Vma:
    """A mapped virtual region."""

    __slots__ = ("start", "end", "prot", "kind", "shared", "name")

    def __init__(self, start: int, end: int, prot: int, kind: str,
                 shared: bool = False, name: str = ""):
        self.start = start
        self.end = end
        self.prot = prot
        self.kind = kind
        self.shared = shared
        self.name = name

    def __repr__(self) -> str:
        return (f"Vma({self.start:#x}-{self.end:#x} prot={self.prot} "
                f"{self.kind}{' ' + self.name if self.name else ''})")

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end


class AddressSpace:
    """One process's virtual memory: page table, VMAs, code segment."""

    def __init__(self, pool: FramePool, aslr: bool = True,
                 rng: Optional[random.Random] = None):
        self.pool = pool
        self.page_size = pool.page_size
        self.aslr = aslr
        self._rng = rng or random.Random(0)
        self.pages: Dict[int, Pte] = {}
        self.vmas: List[Vma] = []
        # Code is a pre-decoded instruction list, patchable (for the mrs ->
        # brk binary patching of paper §4.3.4).  Forks copy the list.
        self.code: List[Instr] = []
        self.code_base = CODE_BASE
        self.brk_base = 0
        self.brk_current = 0
        #: Copy-on-write faults resolved since creation (timing model input).
        self.cow_faults = 0
        #: Pages written (soft-dirty transitions 0->1) since last clear.
        self.dirty_marks = 0

    # -- setup -------------------------------------------------------------

    def load_program(self, program: Program) -> None:
        """Map a program image: code, data+heap, stack."""
        self.code = list(program.instrs)
        self.code_base = CODE_BASE
        data_pages = max(1, -(-len(program.data) // self.page_size))
        self._map_pages(DATA_BASE, data_pages, PROT_READ | PROT_WRITE,
                        kind="data", initial=program.data)
        self.brk_base = DATA_BASE + data_pages * self.page_size
        self.brk_current = self.brk_base
        stack_pages = STACK_SIZE // self.page_size
        self._map_pages(STACK_TOP - STACK_SIZE, stack_pages,
                        PROT_READ | PROT_WRITE, kind="stack")

    def _map_pages(self, start: int, num_pages: int, prot: int, kind: str,
                   initial: bytes = b"", shared: bool = False,
                   name: str = "") -> None:
        if start % self.page_size:
            raise MemoryError_(f"unaligned mapping at {start:#x}")
        for i in range(num_pages):
            vpn = (start // self.page_size) + i
            if vpn in self.pages:
                raise MemoryError_(f"page {vpn:#x} already mapped")
            chunk = initial[i * self.page_size:(i + 1) * self.page_size]
            frame = self.pool.allocate(chunk if chunk else None)
            self.pages[vpn] = Pte(frame, writable=bool(prot & PROT_WRITE))
        self.vmas.append(Vma(start, start + num_pages * self.page_size, prot,
                             kind, shared=shared, name=name))

    # -- mmap family ---------------------------------------------------------

    def mmap(self, addr: int, length: int, prot: int, flags: int,
             name: str = "") -> int:
        """Map ``length`` bytes; returns the chosen address.

        With ``addr == 0`` and no ``MAP_FIXED``, the kernel picks the address
        — randomized when ASLR is on, which is exactly the divergence source
        Parallaft's mmap handler has to fix up (paper §4.3.2).
        """
        if length <= 0:
            raise MemoryError_("mmap length must be positive")
        num_pages = -(-length // self.page_size)
        if flags & MAP_FIXED or (addr and self._range_free(addr, num_pages)):
            if addr % self.page_size:
                raise MemoryError_(f"MAP_FIXED at unaligned {addr:#x}")
            start = addr
            if not self._range_free(start, num_pages):
                self._unmap_range(start, num_pages)  # MAP_FIXED clobbers
        else:
            start = self._find_free_region(num_pages)
        kind = "file" if name else "anon"
        self._map_pages(start, num_pages, prot, kind=kind,
                        shared=bool(flags & MAP_SHARED), name=name)
        return start

    def munmap(self, addr: int, length: int) -> None:
        if addr % self.page_size:
            raise MemoryError_(f"munmap at unaligned {addr:#x}")
        num_pages = -(-length // self.page_size)
        self._unmap_range(addr, num_pages)

    def mprotect(self, addr: int, length: int, prot: int) -> None:
        if addr % self.page_size:
            raise MemoryError_(f"mprotect at unaligned {addr:#x}")
        num_pages = -(-length // self.page_size)
        for i in range(num_pages):
            vpn = addr // self.page_size + i
            pte = self.pages.get(vpn)
            if pte is None:
                raise MemoryError_(f"mprotect of unmapped page {vpn:#x}")
            pte.writable = bool(prot & PROT_WRITE)
        for vma in self.vmas:
            if vma.start <= addr and addr + num_pages * self.page_size <= vma.end:
                vma.prot = prot
                break

    def brk(self, new_brk: int) -> int:
        """Grow (or query, with 0) the heap break."""
        if new_brk == 0 or new_brk < self.brk_base:
            return self.brk_current
        new_end = -(-new_brk // self.page_size) * self.page_size
        current_end = -(-self.brk_current // self.page_size) * self.page_size
        if self.brk_current == self.brk_base:
            current_end = self.brk_base
        if new_end > current_end:
            pages = (new_end - current_end) // self.page_size
            self._map_pages(current_end, pages, PROT_READ | PROT_WRITE,
                            kind="heap")
        self.brk_current = new_brk
        return self.brk_current

    def _range_free(self, start: int, num_pages: int) -> bool:
        base_vpn = start // self.page_size
        return all(base_vpn + i not in self.pages for i in range(num_pages))

    def _find_free_region(self, num_pages: int) -> int:
        if self.aslr:
            for _ in range(64):
                slot = self._rng.randrange(ASLR_WINDOW_PAGES)
                start = MMAP_BASE + slot * self.page_size * 16
                if start + num_pages * self.page_size <= MMAP_CEILING and \
                        self._range_free(start, num_pages):
                    return start
        start = MMAP_BASE
        while start + num_pages * self.page_size <= MMAP_CEILING:
            if self._range_free(start, num_pages):
                return start
            start += self.page_size
        raise MemoryError_("mmap region exhausted")

    def _unmap_range(self, start: int, num_pages: int) -> None:
        base_vpn = start // self.page_size
        for i in range(num_pages):
            pte = self.pages.pop(base_vpn + i, None)
            if pte is not None:
                self.pool.decref(pte.frame)
        end = start + num_pages * self.page_size
        new_vmas: List[Vma] = []
        for vma in self.vmas:
            if vma.end <= start or vma.start >= end:
                new_vmas.append(vma)
                continue
            if vma.start < start:
                new_vmas.append(Vma(vma.start, start, vma.prot, vma.kind,
                                    vma.shared, vma.name))
            if vma.end > end:
                new_vmas.append(Vma(end, vma.end, vma.prot, vma.kind,
                                    vma.shared, vma.name))
        self.vmas = new_vmas

    # -- data access ---------------------------------------------------------

    def _pte_for_read(self, address: int) -> Tuple[Pte, int]:
        vpn, offset = divmod(address, self.page_size)
        pte = self.pages.get(vpn)
        if pte is None:
            raise PageFault(address, "read")
        return pte, offset

    def _pte_for_write(self, address: int) -> Tuple[Pte, int]:
        vpn, offset = divmod(address, self.page_size)
        pte = self.pages.get(vpn)
        if pte is None:
            raise PageFault(address, "write")
        if not pte.writable:
            raise PageFault(address, "write")
        if pte.cow:
            self._resolve_cow(pte)
        if not pte.soft_dirty:
            pte.soft_dirty = True
            self.dirty_marks += 1
        return pte, offset

    def _resolve_cow(self, pte: Pte) -> None:
        if pte.frame.refcount > 1:
            new_frame = self.pool.clone(pte.frame)
            self.pool.decref(pte.frame)
            pte.frame = new_frame
            self.cow_faults += 1
        pte.cow = False

    def load_word(self, address: int) -> int:
        if address % 8:
            raise PageFault(address, "misaligned-read")
        pte, offset = self._pte_for_read(address)
        return int.from_bytes(pte.frame.data[offset:offset + 8], "little",
                              signed=True)

    def store_word(self, address: int, value: int) -> None:
        if address % 8:
            raise PageFault(address, "misaligned-write")
        pte, offset = self._pte_for_write(address)
        pte.frame.data[offset:offset + 8] = \
            (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")

    def load_byte(self, address: int) -> int:
        pte, offset = self._pte_for_read(address)
        return pte.frame.data[offset]

    def store_byte(self, address: int, value: int) -> None:
        pte, offset = self._pte_for_write(address)
        pte.frame.data[offset] = value & 0xFF

    def read_bytes(self, address: int, length: int) -> bytes:
        """Kernel-side buffer read (syscall arguments, comparator)."""
        out = bytearray()
        while length > 0:
            pte, offset = self._pte_for_read(address)
            take = min(length, self.page_size - offset)
            out.extend(pte.frame.data[offset:offset + take])
            address += take
            length -= take
        return bytes(out)

    def write_bytes(self, address: int, data: bytes, force: bool = False) -> None:
        """Kernel-side buffer write (syscall results, replay injection).

        With ``force`` the write ignores page protection (kernel-mode write,
        e.g. populating a read-only file mapping); COW resolution and
        soft-dirty marking still apply.
        """
        position = 0
        while position < len(data):
            if force:
                vpn, offset = divmod(address + position, self.page_size)
                pte = self.pages.get(vpn)
                if pte is None:
                    raise PageFault(address + position, "write")
                if pte.cow:
                    self._resolve_cow(pte)
                if not pte.soft_dirty:
                    pte.soft_dirty = True
                    self.dirty_marks += 1
            else:
                pte, offset = self._pte_for_write(address + position)
            take = min(len(data) - position, self.page_size - offset)
            pte.frame.data[offset:offset + take] = data[position:position + take]
            position += take

    # -- code segment ----------------------------------------------------------

    def fetch(self, pc: int) -> Instr:
        index = (pc - self.code_base) >> 2
        if index < 0 or index >= len(self.code):
            raise PageFault(pc, "exec")
        return self.code[index]

    def patch_code(self, address: int, instr: Instr) -> Instr:
        """Replace the instruction at ``address``; returns the original."""
        index = (address - self.code_base) // INSTR_SIZE
        if index < 0 or index >= len(self.code):
            raise MemoryError_(f"patch outside code segment: {address:#x}")
        original = self.code[index]
        self.code[index] = instr
        return original

    def scan_code(self) -> Iterable[Tuple[int, Instr]]:
        """Iterate (address, instruction) over the executable segment."""
        for index, instr in enumerate(self.code):
            yield self.code_base + index * INSTR_SIZE, instr

    # -- fork / lifetime ---------------------------------------------------------

    def fork(self) -> "AddressSpace":
        """Clone this address space copy-on-write.

        Private writable pages in both parent and child become COW; shared
        mappings keep sharing their frames (and stay writable).
        """
        child = AddressSpace(self.pool, aslr=self.aslr, rng=self._rng)
        child.code = list(self.code)
        child.code_base = self.code_base
        child.brk_base = self.brk_base
        child.brk_current = self.brk_current
        child.vmas = [Vma(v.start, v.end, v.prot, v.kind, v.shared, v.name)
                      for v in self.vmas]
        shared_vpns = set()
        for vma in self.vmas:
            if vma.shared:
                first = vma.start // self.page_size
                last = -(-vma.end // self.page_size)
                shared_vpns.update(range(first, last))
        for vpn, pte in self.pages.items():
            self.pool.incref(pte.frame)
            if vpn in shared_vpns:
                child.pages[vpn] = Pte(pte.frame, pte.writable)
            else:
                if pte.writable:
                    pte.cow = True
                child.pages[vpn] = Pte(pte.frame, pte.writable,
                                       cow=pte.writable)
        return child

    def destroy(self) -> None:
        for pte in self.pages.values():
            self.pool.decref(pte.frame)
        self.pages.clear()
        self.vmas.clear()
        self.code = []

    # -- accounting / dirty tracking -----------------------------------------

    @property
    def mapped_pages(self) -> int:
        return len(self.pages)

    def pss_bytes(self) -> float:
        """Proportional set size: each frame's size divided by its map count
        (paper §5.1 footnote 12)."""
        return sum(self.page_size / pte.frame.refcount
                   for pte in self.pages.values())

    def rss_bytes(self) -> int:
        return len(self.pages) * self.page_size

    def clear_soft_dirty(self) -> int:
        """Clear all soft-dirty bits; returns how many were set."""
        cleared = 0
        for pte in self.pages.values():
            if pte.soft_dirty:
                pte.soft_dirty = False
                cleared += 1
        self.dirty_marks = 0
        return cleared

    def soft_dirty_vpns(self) -> List[int]:
        """x86_64-style: pages whose soft-dirty bit is set."""
        return sorted(vpn for vpn, pte in self.pages.items() if pte.soft_dirty)

    def map_count_dirty_vpns(self) -> List[int]:
        """AArch64 PAGEMAP_SCAN-style: pages whose frame is mapped once."""
        return sorted(vpn for vpn, pte in self.pages.items()
                      if pte.frame.refcount == 1)

    def page_bytes(self, vpn: int) -> bytes:
        pte = self.pages.get(vpn)
        if pte is None:
            raise MemoryError_(f"page {vpn:#x} not mapped")
        return bytes(pte.frame.data)

    def frame_id(self, vpn: int) -> int:
        pte = self.pages.get(vpn)
        if pte is None:
            raise MemoryError_(f"page {vpn:#x} not mapped")
        return pte.frame.frame_id

"""Architectural CPU state: register files, PC, counters, breakpoints.

A :class:`CpuContext` is everything the interpreter needs to run one
process: registers, the program counter, hardware breakpoints, perf-counter
state and the nondeterministic-instruction trapping flag.  It is cloned on
``fork`` and snapshotted/compared by the program-state comparator
(paper §4.4: "registers are compared as well").
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

from repro.isa.registers import NUM_FPR, NUM_GPR, NUM_VEC, VEC_LANES

#: Sentinel for "no overflow armed": larger than any reachable count.
NO_OVERFLOW = 1 << 62

_TWO63 = 1 << 63
_TWO64 = 1 << 64


def wrap_signed(value: int) -> int:
    """Wrap an int to signed 64-bit two's-complement range."""
    return ((value + _TWO63) % _TWO64) - _TWO63


def to_unsigned(value: int) -> int:
    return value & (_TWO64 - 1)


def from_unsigned(value: int) -> int:
    value &= _TWO64 - 1
    return value - _TWO64 if value >= _TWO63 else value


class RegisterFile:
    """GPR/FPR/vector register files.

    GPRs and vector lanes hold signed 64-bit values; FPRs hold doubles.
    """

    __slots__ = ("gprs", "fprs", "vecs")

    def __init__(self):
        self.gprs: List[int] = [0] * NUM_GPR
        self.fprs: List[float] = [0.0] * NUM_FPR
        self.vecs: List[List[int]] = [[0] * VEC_LANES for _ in range(NUM_VEC)]

    def clone(self) -> "RegisterFile":
        copy = RegisterFile()
        copy.gprs = list(self.gprs)
        copy.fprs = list(self.fprs)
        copy.vecs = [list(lane) for lane in self.vecs]
        return copy

    def snapshot(self) -> Tuple:
        """Hashable, comparable snapshot of all registers."""
        return (tuple(self.gprs), tuple(self.fprs),
                tuple(tuple(v) for v in self.vecs))

    def load_snapshot(self, snap: Tuple) -> None:
        gprs, fprs, vecs = snap
        self.gprs = list(gprs)
        self.fprs = list(fprs)
        self.vecs = [list(v) for v in vecs]

    def flip_bit(self, file: str, index: int, bit: int) -> None:
        """Flip one bit in one register — the paper's fault model (§5.6)."""
        if file == "gpr":
            self.gprs[index] = from_unsigned(to_unsigned(self.gprs[index]) ^ (1 << bit))
        elif file == "fpr":
            import struct
            raw = struct.unpack("<Q", struct.pack("<d", self.fprs[index]))[0]
            raw ^= 1 << bit
            self.fprs[index] = struct.unpack("<d", struct.pack("<Q", raw))[0]
        elif file == "vec":
            lane, lane_bit = divmod(bit, 64)
            value = to_unsigned(self.vecs[index][lane]) ^ (1 << lane_bit)
            self.vecs[index][lane] = from_unsigned(value)
        else:
            raise ValueError(f"unknown register file {file!r}")


class CpuContext:
    """Per-process architectural and microarchitectural CPU state."""

    __slots__ = (
        "regs", "pc", "halted",
        "instr_retired", "branches_retired", "far_branches_retired",
        "mem_ops_retired", "instr_overcount",
        "branch_overflow_target", "overflow_deliver_at", "instr_overflow_at",
        "breakpoints", "bp_skip_pc", "trap_nondet",
    )

    def __init__(self):
        self.regs = RegisterFile()
        self.pc = 0
        self.halted = False
        # Retirement counters (perf-event substrate).
        self.instr_retired = 0
        self.branches_retired = 0          # near branches: deterministic
        self.far_branches_retired = 0      # syscalls etc.
        self.mem_ops_retired = 0
        self.instr_overcount = 0           # phantom counts (interrupt returns)
        # Armed overflows. branch_overflow_target is an absolute near-branch
        # count; when crossed, delivery is scheduled at an absolute
        # instruction count (models counter *skid*, paper §4.2.2).
        self.branch_overflow_target = NO_OVERFLOW
        self.overflow_deliver_at = NO_OVERFLOW
        self.instr_overflow_at = NO_OVERFLOW
        # Debug support.
        self.breakpoints: Set[int] = set()
        self.bp_skip_pc: Optional[int] = None
        self.trap_nondet = False

    def clone(self) -> "CpuContext":
        copy = CpuContext()
        copy.regs = self.regs.clone()
        copy.pc = self.pc
        copy.halted = self.halted
        copy.instr_retired = self.instr_retired
        copy.branches_retired = self.branches_retired
        copy.far_branches_retired = self.far_branches_retired
        copy.mem_ops_retired = self.mem_ops_retired
        copy.instr_overcount = self.instr_overcount
        # Armed overflows and breakpoints are per-perf-event / per-debug
        # session; a forked child starts with none.
        copy.trap_nondet = self.trap_nondet
        return copy

    # -- perf-event-style readings ---------------------------------------

    def read_counter(self, kind: str, include_far: bool = False,
                     include_overcount: bool = True) -> int:
        """Read a counter the way perf_event would expose it.

        ``instructions`` includes nondeterministic overcount (paper §4.2.1's
        motivation for branch counters); ``branches`` is the deterministic
        near-branch count unless ``include_far`` is set.
        """
        if kind == "instructions":
            value = self.instr_retired
            if include_overcount:
                value += self.instr_overcount
            return value
        if kind == "branches":
            value = self.branches_retired
            if include_far:
                value += self.far_branches_retired
            return value
        if kind == "mem_ops":
            return self.mem_ops_retired
        raise ValueError(f"unknown counter {kind!r}")

    def arm_branch_overflow(self, target_count: int) -> None:
        """Stop (after skid) once near-branch count reaches ``target_count``."""
        self.branch_overflow_target = target_count
        self.overflow_deliver_at = NO_OVERFLOW

    def disarm_branch_overflow(self) -> None:
        self.branch_overflow_target = NO_OVERFLOW
        self.overflow_deliver_at = NO_OVERFLOW

    def arm_instr_overflow(self, target_count: int) -> None:
        """Stop once (overcounted) instruction count reaches ``target_count``."""
        self.instr_overflow_at = target_count

    def disarm_instr_overflow(self) -> None:
        self.instr_overflow_at = NO_OVERFLOW

"""CPU stop reasons and architectural faults.

The interpreter runs a process until something interesting happens and
returns a :class:`Stop` describing it; the kernel/executor decides what to do
(dispatch a syscall, notify a ptrace tracer, deliver a signal, ...).
"""

from __future__ import annotations

import enum
from typing import Optional


class StopReason(enum.Enum):
    BUDGET = "budget"                    # quantum exhausted, nothing special
    HALTED = "halted"                    # halt instruction retired
    SYSCALL = "syscall"                  # stopped *before* a syscall executes
    BREAKPOINT = "breakpoint"            # hardware breakpoint hit (pc match)
    BRK = "brk"                          # brk instruction (binary patch site)
    COUNTER_OVERFLOW = "counter_overflow"  # armed branch counter fired (+skid)
    INSTR_OVERFLOW = "instr_overflow"    # armed instruction counter fired
    NONDET = "nondet"                    # rdtsc/mrs/cpuid trapped
    FAULT = "fault"                      # architectural fault (see Stop.fault)
    OOM = "oom"                          # frame-pool budget exhausted mid-store


class FaultKind(enum.Enum):
    PAGE_FAULT = "page_fault"            # -> SIGSEGV
    DIVIDE_BY_ZERO = "divide_by_zero"    # -> SIGFPE
    ILLEGAL_INSTRUCTION = "illegal"      # -> SIGILL


class Fault:
    """Details of an architectural fault."""

    __slots__ = ("kind", "address", "detail")

    def __init__(self, kind: FaultKind, address: int = 0, detail: str = ""):
        self.kind = kind
        self.address = address
        self.detail = detail

    def __repr__(self) -> str:
        return f"Fault({self.kind.value}, addr={self.address:#x}, {self.detail})"


class Stop:
    """Why the interpreter returned, plus how much work it did."""

    __slots__ = ("reason", "executed", "fault", "needed")

    def __init__(self, reason: StopReason, executed: int,
                 fault: Optional[Fault] = None, needed: int = 0):
        self.reason = reason
        self.executed = executed
        self.fault = fault
        #: For OOM stops: bytes the failed allocation wanted.
        self.needed = needed

    def __repr__(self) -> str:
        extra = f", fault={self.fault}" if self.fault else ""
        return f"Stop({self.reason.value}, executed={self.executed}{extra})"

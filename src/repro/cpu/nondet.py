"""Nondeterministic instruction sources: rdtsc, mrs, cpuid.

These are the architectural reads that diverge between the main process and
a checker replaying the same code (paper §4.3.4): the timestamp counter
advances with wall time, and system registers such as AArch64 ``MIDR_EL1``
or x86 ``cpuid`` identify the *current core* — which on a heterogeneous
processor differs between a big-core main and a little-core checker.
Parallaft must therefore trap and record/replay them; running them natively
in a checker produces a guaranteed divergence, which our tests exercise.
"""

from __future__ import annotations

from typing import Optional

#: System-register ids for the ``mrs`` instruction.
SYSREG_MIDR = 0      # core model identification (differs big vs little)
SYSREG_MPIDR = 1     # core index
SYSREG_CNTFRQ = 2    # counter frequency

#: MIDR-style model values per core type.
MIDR_BIG = 0x611F_0230      # "Avalanche"-class
MIDR_LITTLE = 0x611F_0220   # "Blizzard"-class

CPUID_BIG = 0x000B_06F2     # hybrid P-core-style signature
CPUID_LITTLE = 0x000B_06E1  # hybrid E-core-style signature


class NondetSource:
    """Per-process view of the machine's nondeterministic state.

    ``core_provider`` returns the core the process is currently scheduled
    on (or ``None`` before first schedule); ``time_provider`` returns the
    current virtual time in seconds.
    """

    def __init__(self, time_provider, core_provider, tsc_hz: float = 24_000_000.0):
        self._time_provider = time_provider
        self._core_provider = core_provider
        self._tsc_hz = tsc_hz
        self._tsc_bump = 0

    def read_tsc(self) -> int:
        """Timestamp counter: virtual time scaled, strictly monotonic."""
        self._tsc_bump += 1
        return int(self._time_provider() * self._tsc_hz) + self._tsc_bump

    def read_sysreg(self, sysreg: int) -> int:
        core = self._core_provider()
        if sysreg == SYSREG_MIDR:
            if core is None:
                return MIDR_BIG
            return MIDR_BIG if core.is_big else MIDR_LITTLE
        if sysreg == SYSREG_MPIDR:
            return 0 if core is None else core.index
        if sysreg == SYSREG_CNTFRQ:
            return int(self._tsc_hz)
        # Unknown system registers read as zero (the kernel would trap EL1+
        # reads; see paper footnote 9).
        return 0

    def cpuid(self) -> int:
        core = self._core_provider()
        if core is None:
            return CPUID_BIG
        return CPUID_BIG if core.is_big else CPUID_LITTLE

"""The instruction interpreter.

``run(proc, budget)`` executes up to ``budget`` instructions of one process
and returns a :class:`~repro.cpu.exceptions.Stop` when something the kernel
must handle occurs: a syscall (stopped *before* execution, ptrace-style), a
hardware breakpoint, an armed perf-counter overflow (with modelled skid), a
``brk`` patch site, a trapped nondeterministic instruction, a fault, or halt.

The loop is deliberately flat, single-exit and local-variable-heavy: it is
the hot path of the whole reproduction (every main *and* checker instruction
goes through it).  Stopping instructions (syscall, brk, nondet, fault, halt)
do **not** retire; the kernel retires them when it completes them, exactly
like a trapping instruction on real hardware.
"""

from __future__ import annotations

import struct

from repro.common.errors import FramePoolExhausted
from repro.cpu.exceptions import Fault, FaultKind, Stop, StopReason
from repro.mem.address_space import PageFault

_TWO63 = 1 << 63
_TWO64 = 1 << 64
_HUGE = 1 << 62


def run(proc, budget: int) -> Stop:
    """Run ``proc`` for at most ``budget`` instructions.

    ``proc`` must expose ``cpu`` (CpuContext), ``mem`` (AddressSpace),
    ``nondet`` (NondetSource) and ``skid_draw()``.  Counter state is read
    from and written back to ``proc.cpu``.
    """
    cpu = proc.cpu
    mem = proc.mem
    regs = cpu.regs.gprs
    fregs = cpu.regs.fprs
    vregs = cpu.regs.vecs
    code = mem.code
    code_base = mem.code_base
    code_len = len(code)

    pc = cpu.pc
    ir = cpu.instr_retired
    bc = cpu.branches_retired
    mc = cpu.mem_ops_retired
    overcount = cpu.instr_overcount

    branch_target = cpu.branch_overflow_target
    deliver_at = cpu.overflow_deliver_at
    instr_ovf_at = cpu.instr_overflow_at

    bps = cpu.breakpoints
    skip_pc = cpu.bp_skip_pc if cpu.bp_skip_pc is not None else -1
    cpu.bp_skip_pc = None
    trap_nondet = cpu.trap_nondet

    executed = 0
    stop = None

    while executed < budget:
        counted = ir + overcount
        if counted >= deliver_at:
            deliver_at = _HUGE
            branch_target = _HUGE
            stop = Stop(StopReason.COUNTER_OVERFLOW, executed)
            break
        if counted >= instr_ovf_at:
            instr_ovf_at = _HUGE
            stop = Stop(StopReason.INSTR_OVERFLOW, executed)
            break
        if bps and pc in bps and pc != skip_pc:
            stop = Stop(StopReason.BREAKPOINT, executed)
            break
        skip_pc = -1

        index = (pc - code_base) >> 2
        if index < 0 or index >= code_len:
            stop = Stop(StopReason.FAULT, executed,
                        Fault(FaultKind.PAGE_FAULT, pc, "exec"))
            break
        instr = code[index]
        op = instr.op

        try:
            if op <= 16:  # NOP..SNE
                if op >= 2:  # ALU r3
                    a_val = regs[instr.b]
                    b_val = regs[instr.c]
                    if op == 2:      # ADD
                        value = a_val + b_val
                    elif op == 3:    # SUB
                        value = a_val - b_val
                    elif op == 4:    # MUL
                        value = a_val * b_val
                    elif op == 5:    # DIV
                        if b_val == 0:
                            stop = Stop(StopReason.FAULT, executed,
                                        Fault(FaultKind.DIVIDE_BY_ZERO, pc))
                            break
                        value = abs(a_val) // abs(b_val)
                        if (a_val < 0) != (b_val < 0):
                            value = -value
                    elif op == 6:    # MOD
                        if b_val == 0:
                            stop = Stop(StopReason.FAULT, executed,
                                        Fault(FaultKind.DIVIDE_BY_ZERO, pc))
                            break
                        quotient = abs(a_val) // abs(b_val)
                        if (a_val < 0) != (b_val < 0):
                            quotient = -quotient
                        value = a_val - quotient * b_val
                    elif op == 7:    # AND
                        value = a_val & b_val
                    elif op == 8:    # OR
                        value = a_val | b_val
                    elif op == 9:    # XOR
                        value = a_val ^ b_val
                    elif op == 10:   # SLL
                        value = a_val << (b_val & 63)
                    elif op == 11:   # SRL
                        value = (a_val & (_TWO64 - 1)) >> (b_val & 63)
                    elif op == 12:   # SRA
                        value = a_val >> (b_val & 63)
                    elif op == 13:   # SLT
                        value = 1 if a_val < b_val else 0
                    elif op == 14:   # SLE
                        value = 1 if a_val <= b_val else 0
                    elif op == 15:   # SEQ
                        value = 1 if a_val == b_val else 0
                    else:            # SNE
                        value = 1 if a_val != b_val else 0
                    regs[instr.a] = ((value + _TWO63) % _TWO64) - _TWO63
                elif op == 1:  # HALT
                    cpu.halted = True
                    stop = Stop(StopReason.HALTED, executed)
                    break
                # NOP: nothing
                pc += 4
            elif op <= 25:  # ALU immediate group
                if op == 24:       # LI
                    regs[instr.a] = ((instr.imm + _TWO63) % _TWO64) - _TWO63
                elif op == 25:     # MOV
                    regs[instr.a] = regs[instr.b]
                else:
                    a_val = regs[instr.b]
                    imm = instr.imm
                    if op == 17:   # ADDI
                        value = a_val + imm
                    elif op == 18:  # ANDI
                        value = a_val & imm
                    elif op == 19:  # ORI
                        value = a_val | imm
                    elif op == 20:  # XORI
                        value = a_val ^ imm
                    elif op == 21:  # SLLI
                        value = a_val << (imm & 63)
                    elif op == 22:  # SRLI
                        value = (a_val & (_TWO64 - 1)) >> (imm & 63)
                    else:           # MULI
                        value = a_val * imm
                    regs[instr.a] = ((value + _TWO63) % _TWO64) - _TWO63
                pc += 4
            elif op <= 29:  # memory
                address = regs[instr.b] + instr.imm
                if op == 26:       # LD
                    regs[instr.a] = mem.load_word(address)
                elif op == 27:     # ST
                    mem.store_word(address, regs[instr.a])
                elif op == 28:     # LDB
                    regs[instr.a] = mem.load_byte(address)
                else:              # STB
                    mem.store_byte(address, regs[instr.a])
                mc += 1
                pc += 4
            elif op <= 38:  # control flow
                if op == 30:       # JMP
                    pc = instr.imm
                elif op == 31:     # JAL
                    regs[14] = pc + 4
                    pc = instr.imm
                elif op == 32:     # JR
                    pc = regs[instr.b]
                else:
                    a_val = regs[instr.b]
                    b_val = regs[instr.c]
                    if op == 33:    # BEQ
                        taken = a_val == b_val
                    elif op == 34:  # BNE
                        taken = a_val != b_val
                    elif op == 35:  # BLT
                        taken = a_val < b_val
                    elif op == 36:  # BGE
                        taken = a_val >= b_val
                    elif op == 37:  # BLE
                        taken = a_val <= b_val
                    else:           # BGT
                        taken = a_val > b_val
                    pc = instr.imm if taken else pc + 4
                bc += 1
                if bc >= branch_target:
                    branch_target = _HUGE
                    deliver_at = ir + overcount + 1 + proc.skid_draw()
            elif op <= 51:  # floating point
                if op == 39:
                    fregs[instr.a] = fregs[instr.b] + fregs[instr.c]
                elif op == 40:
                    fregs[instr.a] = fregs[instr.b] - fregs[instr.c]
                elif op == 41:
                    fregs[instr.a] = fregs[instr.b] * fregs[instr.c]
                elif op == 42:
                    divisor = fregs[instr.c]
                    if divisor == 0.0:
                        stop = Stop(StopReason.FAULT, executed,
                                    Fault(FaultKind.DIVIDE_BY_ZERO, pc, "fp"))
                        break
                    fregs[instr.a] = fregs[instr.b] / divisor
                elif op == 43:  # FLD
                    address = regs[instr.b] + instr.imm
                    fregs[instr.a] = struct.unpack(
                        "<d", mem.read_bytes(address, 8))[0]
                    mc += 1
                elif op == 44:  # FST
                    address = regs[instr.b] + instr.imm
                    mem.write_bytes(address, struct.pack("<d", fregs[instr.a]))
                    mc += 1
                elif op == 45:  # FLI
                    fregs[instr.a] = float(instr.imm)
                elif op == 46:  # FMOV
                    fregs[instr.a] = fregs[instr.b]
                elif op == 47:  # FCVT (int -> float)
                    fregs[instr.a] = float(regs[instr.b])
                elif op == 48:  # ICVT (float -> int, truncating)
                    value = int(fregs[instr.b])
                    regs[instr.a] = ((value + _TWO63) % _TWO64) - _TWO63
                elif op == 49:  # FLT
                    regs[instr.a] = 1 if fregs[instr.b] < fregs[instr.c] else 0
                elif op == 50:  # FLE
                    regs[instr.a] = 1 if fregs[instr.b] <= fregs[instr.c] else 0
                else:           # FEQ
                    regs[instr.a] = 1 if fregs[instr.b] == fregs[instr.c] else 0
                pc += 4
            elif op <= 58:  # vector
                if op == 52:   # VADD
                    lhs, rhs = vregs[instr.b], vregs[instr.c]
                    vregs[instr.a] = [
                        ((lhs[i] + rhs[i] + _TWO63) % _TWO64) - _TWO63
                        for i in range(4)]
                elif op == 53:  # VMUL
                    lhs, rhs = vregs[instr.b], vregs[instr.c]
                    vregs[instr.a] = [
                        ((lhs[i] * rhs[i] + _TWO63) % _TWO64) - _TWO63
                        for i in range(4)]
                elif op == 54:  # VXOR
                    lhs, rhs = vregs[instr.b], vregs[instr.c]
                    vregs[instr.a] = [lhs[i] ^ rhs[i] for i in range(4)]
                elif op == 55:  # VLD
                    address = regs[instr.b] + instr.imm
                    vregs[instr.a] = [mem.load_word(address + 8 * i)
                                      for i in range(4)]
                    mc += 1
                elif op == 56:  # VST
                    address = regs[instr.b] + instr.imm
                    lanes = vregs[instr.a]
                    for i in range(4):
                        mem.store_word(address + 8 * i, lanes[i])
                    mc += 1
                elif op == 57:  # VBCAST
                    value = regs[instr.b]
                    vregs[instr.a] = [value] * 4
                else:           # VRED
                    total = sum(vregs[instr.b])
                    regs[instr.a] = ((total + _TWO63) % _TWO64) - _TWO63
                pc += 4
            else:  # system group
                if op == 59:   # SYSCALL: stop before executing (ptrace-style)
                    stop = Stop(StopReason.SYSCALL, executed)
                    break
                if op == 63:   # BRK
                    stop = Stop(StopReason.BRK, executed)
                    break
                if trap_nondet:
                    stop = Stop(StopReason.NONDET, executed)
                    break
                if op == 60:   # RDTSC
                    regs[instr.a] = proc.nondet.read_tsc()
                elif op == 61:  # MRS
                    regs[instr.a] = proc.nondet.read_sysreg(instr.imm)
                else:           # CPUID
                    regs[instr.a] = proc.nondet.cpuid()
                pc += 4
        except PageFault as fault:
            stop = Stop(StopReason.FAULT, executed,
                        Fault(FaultKind.PAGE_FAULT, fault.address,
                              fault.access))
            break
        except FramePoolExhausted as exc:
            # A COW resolution overran the frame-pool budget.  The pool
            # reserves *before* mutating and the faulting store has not
            # advanced pc, so stopping here leaves the process resumable:
            # waking it retries the same instruction.
            stop = Stop(StopReason.OOM, executed, needed=exc.needed)
            break

        ir += 1
        executed += 1

    if stop is None:
        stop = Stop(StopReason.BUDGET, executed)

    cpu.pc = pc
    cpu.instr_retired = ir
    cpu.branches_retired = bc
    cpu.mem_ops_retired = mc
    cpu.instr_overcount = overcount
    cpu.branch_overflow_target = branch_target
    cpu.overflow_deliver_at = deliver_at
    cpu.instr_overflow_at = instr_ovf_at
    return stop

"""CPU model: register state, interpreter, perf counters, nondet sources."""

from repro.cpu.exceptions import Fault, FaultKind, Stop, StopReason
from repro.cpu.interpreter import run
from repro.cpu.nondet import (
    CPUID_BIG,
    CPUID_LITTLE,
    MIDR_BIG,
    MIDR_LITTLE,
    SYSREG_CNTFRQ,
    SYSREG_MIDR,
    SYSREG_MPIDR,
    NondetSource,
)
from repro.cpu.state import (
    NO_OVERFLOW,
    CpuContext,
    RegisterFile,
    from_unsigned,
    to_unsigned,
    wrap_signed,
)

__all__ = [
    "Fault",
    "FaultKind",
    "Stop",
    "StopReason",
    "run",
    "NondetSource",
    "SYSREG_MIDR",
    "SYSREG_MPIDR",
    "SYSREG_CNTFRQ",
    "MIDR_BIG",
    "MIDR_LITTLE",
    "CPUID_BIG",
    "CPUID_LITTLE",
    "CpuContext",
    "RegisterFile",
    "NO_OVERFLOW",
    "wrap_signed",
    "to_unsigned",
    "from_unsigned",
]

"""Exporters: Prometheus text exposition, JSON snapshot, collapsed
stacks (flamegraph-compatible) — plus parsers for each text format so
round-trips can be asserted exactly.

Values are rendered with :func:`repr` on the Python float, which is the
shortest string that parses back to the identical double — the
round-trip guarantees in the acceptance criteria hold bit-for-bit, not
approximately.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from .phases import CYCLE_PHASES, PhaseProfile
from .registry import Counter, Gauge, Histogram, MetricRegistry

__all__ = [
    "prometheus_text", "parse_prometheus_text",
    "collapsed_stacks", "parse_collapsed",
    "json_snapshot",
]


def _prom_name(name: str) -> str:
    """Dotted metric name -> Prometheus-legal name."""
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Tuple[Tuple[str, str], ...],
                 extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def _fmt(value: float) -> str:
    return repr(float(value))


def prometheus_text(registry: MetricRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    seen_types = set()
    for metric in registry:
        pname = _prom_name(metric.name)
        if pname not in seen_types:
            seen_types.add(pname)
            lines.append(f"# TYPE {pname} {metric.kind}")
        if isinstance(metric, Histogram):
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                cumulative += count
                lines.append(
                    f"{pname}_bucket"
                    f"{_prom_labels(metric.labels, (('le', _fmt(bound)),))}"
                    f" {cumulative}")
            cumulative += metric.bucket_counts[-1]
            lines.append(
                f"{pname}_bucket"
                f"{_prom_labels(metric.labels, (('le', '+Inf'),))}"
                f" {cumulative}")
            lines.append(f"{pname}_sum{_prom_labels(metric.labels)}"
                         f" {_fmt(metric.sum)}")
            lines.append(f"{pname}_count{_prom_labels(metric.labels)}"
                         f" {metric.count}")
        else:
            lines.append(f"{pname}{_prom_labels(metric.labels)}"
                         f" {_fmt(metric.value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse a Prometheus exposition back to ``{series: value}``.

    The key is the full series string (name plus label block), so two
    series differing only in labels stay distinct.  Histogram ``+Inf``
    buckets and ``_count`` lines parse as floats like everything else.
    """
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, raw = line.rpartition(" ")
        values[series] = float("inf") if raw == "+Inf" else float(raw)
    return values


def collapsed_stacks(profile: PhaseProfile) -> str:
    """Render the phase profile as collapsed stacks (``folded`` format
    consumed by flamegraph.pl / speedscope).

    Per-segment cycles appear as ``root;seg<k>;<phase>``; cycles charged
    with no segment context are emitted as ``root;<phase>`` remainder
    lines so the flamegraph total equals ``profile.total_cycles`` (up to
    the same 1e-9 relative float-accumulation tolerance invariant (j)
    allows — the per-segment ledger and the global phase totals sum the
    identical charges in different orders).
    """
    lines: List[str] = []
    attributed: Dict[str, float] = {}
    for seg in sorted(profile.segment_cycles):
        for phase in CYCLE_PHASES:
            cyc = profile.segment_cycles[seg].get(phase, 0.0)
            if cyc == 0.0:
                continue
            lines.append(f"root;seg{seg};{phase} {_fmt(cyc)}")
            attributed[phase] = attributed.get(phase, 0.0) + cyc
    for phase in CYCLE_PHASES:
        total = profile.cycles.get(phase, 0.0)
        remainder = total - attributed.get(phase, 0.0)
        # Accumulation-order drift can leave a remainder of a few ulps
        # where none exists; a negative count would be rejected by
        # flamegraph consumers, so drop anything within float tolerance.
        if abs(remainder) <= 1e-9 * max(abs(total), 1.0):
            continue
        lines.append(f"root;{phase} {_fmt(remainder)}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_collapsed(text: str) -> Dict[str, float]:
    """Parse collapsed stacks back to ``{stack: value}``."""
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, raw = line.rpartition(" ")
        values[stack] = values.get(stack, 0.0) + float(raw)
    return values


def json_snapshot(registry: MetricRegistry,
                  profile: PhaseProfile = None) -> str:
    """Serialise the registry (and optionally a phase profile) to JSON,
    including every gauge's sampled time series."""
    doc: Dict[str, object] = {"counters": {}, "gauges": {},
                              "histograms": {}, "series": {}}
    for metric in registry:
        key = metric.name
        if metric.labels:
            key += "{" + ",".join(f"{k}={v}"
                                  for k, v in metric.labels) + "}"
        if isinstance(metric, Counter):
            doc["counters"][key] = metric.value
        elif isinstance(metric, Gauge):
            doc["gauges"][key] = metric.value
            if metric.series:
                doc["series"][key] = [list(p) for p in metric.series]
        elif isinstance(metric, Histogram):
            doc["histograms"][key] = {
                "bounds": list(metric.bounds),
                "bucket_counts": list(metric.bucket_counts),
                "sum": metric.sum,
                "count": metric.count,
            }
    if profile is not None:
        doc["phase_profile"] = profile.to_dict()
    return json.dumps(doc, indent=2, sort_keys=True)

"""Phase taxonomy and the phase-attribution profiler.

Every simulated cycle the executor charges is attributed to exactly one
*cycle phase*, and every stall the runtime imposes is bracketed by a
*stall span* measured in virtual seconds.  The taxonomy mirrors the
paper's Fig. 6 overhead decomposition:

Cycle phases
    ``main_exec``
        The protected application making forward progress on the big
        core (plus kernel time charged to the main outside any runtime
        machinery).  Everything else is overhead.
    ``checkpoint_fork``
        COW fork cost of segment-boundary, recovery and respawn
        checkpoints ("Fork and COW overhead" in Fig. 6).
    ``dirty_scan``
        Dirty-page tracker resets and scans on both the main and the
        checker sides.
    ``hashing``
        Integrity hashing outside the comparison itself: checkpoint
        digests and clean-page audits.
    ``comparison``
        Segment-end dirty-page hashing that produces the verdict.
    ``replay``
        Checker cores re-executing a segment (the deliberate redundant
        work the little cores absorb).
    ``runtime``
        Miscellaneous runtime machinery: perf-counter setup, breakpoint
        arming, record-log byte costs, checker migration.
    ``recovery_rollback``
        Restoring a verified checkpoint into a fresh main after a
        confirmed error.
    ``vote``
        TMR majority voting at segment boundaries: the extra hashing
        the comparator performs to compare every replica against the
        end checkpoint (and replicas against each other when the main
        disagrees with all of them), plus forward-recovery state
        patching.  Single-replica modes never charge this phase.

Stall phases (virtual seconds, not cycles)
    ``containment_stall``  — main held at an effectful syscall until all
    prior segments verify; ``pressure_stall`` — main back-pressured by
    the frame-pool ladder; ``cap_stall`` — main held at the live-segment
    cap; ``checker_stall`` — a checker parked for memory or scheduling.
    The pressure ladder and error containment are *distinct* phases:
    conflating them (the pre-metrics behaviour, where both vanished into
    wall-time deltas) makes Fig. 8-style pressure analysis impossible.

Conservation: the executor independently accumulates every charged
cycle in ``Executor.charged_cycles`` while the profiler accumulates the
same cycles per phase.  The two totals are compared by trace invariant
(j) (``cycle_conservation``) on every traced run, so a forgotten
attribution site is a test failure, not silent misaccounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "MAIN_EXEC", "CHECKPOINT_FORK", "DIRTY_SCAN", "HASHING", "COMPARISON",
    "REPLAY", "RUNTIME", "RECOVERY_ROLLBACK", "VOTE",
    "CONTAINMENT_STALL", "PRESSURE_STALL", "CAP_STALL", "CHECKER_STALL",
    "CYCLE_PHASES", "STALL_PHASES", "ALL_PHASES",
    "PhaseProfile", "PhaseProfiler", "NULL_PROFILER",
]

MAIN_EXEC = "main_exec"
CHECKPOINT_FORK = "checkpoint_fork"
DIRTY_SCAN = "dirty_scan"
HASHING = "hashing"
COMPARISON = "comparison"
REPLAY = "replay"
RUNTIME = "runtime"
RECOVERY_ROLLBACK = "recovery_rollback"
VOTE = "vote"

CONTAINMENT_STALL = "containment_stall"
PRESSURE_STALL = "pressure_stall"
CAP_STALL = "cap_stall"
CHECKER_STALL = "checker_stall"

CYCLE_PHASES: Tuple[str, ...] = (
    MAIN_EXEC, CHECKPOINT_FORK, DIRTY_SCAN, HASHING, COMPARISON,
    REPLAY, RUNTIME, RECOVERY_ROLLBACK, VOTE,
)
STALL_PHASES: Tuple[str, ...] = (
    CONTAINMENT_STALL, PRESSURE_STALL, CAP_STALL, CHECKER_STALL,
)
ALL_PHASES: Tuple[str, ...] = CYCLE_PHASES + STALL_PHASES

#: Phases that only exist in full Parallaft mode; a RAFT run never
#: executes them, so reports render them as "—" rather than 0.0.
PARALLAFT_ONLY_PHASES: Tuple[str, ...] = (
    DIRTY_SCAN, COMPARISON, RECOVERY_ROLLBACK,
    CONTAINMENT_STALL, PRESSURE_STALL, CAP_STALL,
)


@dataclass
class PhaseProfile:
    """Immutable end-of-run snapshot of a :class:`PhaseProfiler`."""

    #: Cycles charged per cycle phase.
    cycles: Dict[str, float] = field(default_factory=dict)
    #: Virtual seconds spent per stall phase.
    stall_seconds: Dict[str, float] = field(default_factory=dict)
    #: Per-segment cycle ledger: ``{segment_index: {phase: cycles}}``.
    segment_cycles: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: Sum of every charged cycle (all phases), for conservation checks.
    total_cycles: float = 0.0

    @property
    def overhead_cycles(self) -> float:
        """Everything that is not the application itself."""
        return self.total_cycles - self.cycles.get(MAIN_EXEC, 0.0)

    def overhead_components(self) -> Dict[str, float]:
        """Fig. 6-style decomposition: the non-``main_exec`` cycle
        phases, in taxonomy order.  Sums exactly (same floats, same
        order) to :attr:`overhead_cycles` minus nothing — components
        and total come from the one ledger."""
        return {p: self.cycles.get(p, 0.0)
                for p in CYCLE_PHASES if p != MAIN_EXEC}

    def merge(self, other: "PhaseProfile") -> "PhaseProfile":
        """Combine two profiles (e.g. the inputs of one benchmark)."""
        merged = PhaseProfile(
            cycles=dict(self.cycles),
            stall_seconds=dict(self.stall_seconds),
            segment_cycles={k: dict(v)
                            for k, v in self.segment_cycles.items()},
            total_cycles=self.total_cycles + other.total_cycles,
        )
        for phase, cyc in other.cycles.items():
            merged.cycles[phase] = merged.cycles.get(phase, 0.0) + cyc
        for phase, sec in other.stall_seconds.items():
            merged.stall_seconds[phase] = \
                merged.stall_seconds.get(phase, 0.0) + sec
        offset = (max(merged.segment_cycles) + 1
                  if merged.segment_cycles else 0)
        for seg, phases in other.segment_cycles.items():
            merged.segment_cycles[offset + seg] = dict(phases)
        return merged

    def to_dict(self) -> Dict[str, object]:
        return {
            "cycles": dict(self.cycles),
            "stall_seconds": dict(self.stall_seconds),
            "segment_cycles": {str(k): dict(v)
                               for k, v in self.segment_cycles.items()},
            "total_cycles": self.total_cycles,
        }


class PhaseProfiler:
    """Charges cycles and stall time to phases as the run executes.

    The profiler is wired into the executor (cycle charges) and the
    kernel (span closure on process exit).  ``role_of`` maps a process
    to its runtime role (``"main"``/``"checker"``) so un-annotated
    charges default sensibly — a checker's execution is ``replay``,
    everything else is ``main_exec``.  ``segment_of`` maps a process to
    the segment index its work belongs to, feeding the per-segment
    ledger.  A disabled profiler (``NULL_PROFILER``) accepts every call
    and records nothing, so instrumentation sites need no guards.
    """

    def __init__(self,
                 clock: Optional[Callable[[], float]] = None,
                 role_of: Optional[Callable[[object], Optional[str]]] = None,
                 segment_of: Optional[
                     Callable[[object], Optional[int]]] = None,
                 enabled: bool = True) -> None:
        self.enabled = enabled
        self.clock = clock or (lambda: 0.0)
        self.role_of = role_of or (lambda proc: None)
        self.segment_of = segment_of or (lambda proc: None)
        self.cycles: Dict[str, float] = {}
        self.stall_seconds: Dict[str, float] = {}
        self.segment_cycles: Dict[int, Dict[str, float]] = {}
        self.total_cycles = 0.0
        #: Open stall spans: ``pid -> (phase, start_time)``.
        self._open: Dict[int, Tuple[str, float]] = {}

    # -- cycle attribution -------------------------------------------------

    def charge(self, phase: str, hw_cycles: float,
               segment: Optional[int] = None) -> None:
        """Charge ``hw_cycles`` to ``phase`` (and a segment's ledger)."""
        if not self.enabled or hw_cycles == 0:
            return
        self.cycles[phase] = self.cycles.get(phase, 0.0) + hw_cycles
        self.total_cycles += hw_cycles
        if segment is not None:
            ledger = self.segment_cycles.setdefault(segment, {})
            ledger[phase] = ledger.get(phase, 0.0) + hw_cycles

    def charge_for(self, proc, hw_cycles: float,
                   phase: Optional[str] = None) -> None:
        """Charge cycles on behalf of a process, resolving the default
        phase from its role and the segment from ``segment_of``."""
        if not self.enabled or hw_cycles == 0:
            return
        if phase is None:
            role = self.role_of(proc)
            phase = REPLAY if role == "checker" else MAIN_EXEC
        self.charge(phase, hw_cycles, segment=self.segment_of(proc))

    # -- stall spans -------------------------------------------------------

    def open_span(self, pid: int, phase: str) -> None:
        """Open a stall span for ``pid``.  An already-open span for the
        same pid is closed first (defensive: re-stalling without a wake
        must not lose the earlier interval)."""
        if not self.enabled:
            return
        if pid in self._open:
            self.close_span(pid)
        self._open[pid] = (phase, self.clock())

    def close_span(self, pid: int) -> None:
        """Close ``pid``'s open stall span, if any.  Safe to call on
        every exit/wake path — kill paths (OOM, rollback, shed) route
        through here via ``Kernel.exit_process`` so a dead process never
        leaks an open span."""
        if not self.enabled:
            return
        span = self._open.pop(pid, None)
        if span is None:
            return
        phase, start = span
        elapsed = self.clock() - start
        if elapsed > 0:
            self.stall_seconds[phase] = \
                self.stall_seconds.get(phase, 0.0) + elapsed

    def close_all(self) -> None:
        for pid in list(self._open):
            self.close_span(pid)

    @property
    def open_spans(self) -> Dict[int, str]:
        """``pid -> phase`` for every currently open span (for tests)."""
        return {pid: phase for pid, (phase, _) in self._open.items()}

    # -- finalisation ------------------------------------------------------

    def finish(self) -> PhaseProfile:
        """Close leftover spans and snapshot the ledgers."""
        self.close_all()
        return PhaseProfile(
            cycles=dict(self.cycles),
            stall_seconds=dict(self.stall_seconds),
            segment_cycles={k: dict(v)
                            for k, v in self.segment_cycles.items()},
            total_cycles=self.total_cycles,
        )


#: Shared no-op profiler: every hook may call it unconditionally.
NULL_PROFILER = PhaseProfiler(enabled=False)

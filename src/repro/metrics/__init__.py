"""Metrics registry, phase-attribution profiler and exporters.

Pure-data observability layer (no simulator imports): a typed metric
registry keyed by dotted names with label sets, a profiler that charges
every simulated cycle to a runtime phase (producing a per-segment
Fig. 6-style overhead breakdown), a virtual-time gauge sampler, and
Prometheus / JSON / collapsed-stack exporters with exact round-trips.
"""

from .dashboard import Dashboard
from .export import (collapsed_stacks, json_snapshot, parse_collapsed,
                     parse_prometheus_text, prometheus_text)
from .phases import (ALL_PHASES, CAP_STALL, CHECKER_STALL, CHECKPOINT_FORK,
                     COMPARISON, CONTAINMENT_STALL, CYCLE_PHASES, DIRTY_SCAN,
                     HASHING, MAIN_EXEC, NULL_PROFILER,
                     PARALLAFT_ONLY_PHASES, PRESSURE_STALL,
                     RECOVERY_ROLLBACK, REPLAY, RUNTIME, STALL_PHASES,
                     VOTE, PhaseProfile, PhaseProfiler)
from .registry import (Counter, Gauge, Histogram, MetricKindError,
                       MetricRegistry)

__all__ = [
    "MetricRegistry", "Counter", "Gauge", "Histogram", "MetricKindError",
    "PhaseProfiler", "PhaseProfile", "NULL_PROFILER",
    "CYCLE_PHASES", "STALL_PHASES", "ALL_PHASES", "PARALLAFT_ONLY_PHASES",
    "MAIN_EXEC", "CHECKPOINT_FORK", "DIRTY_SCAN", "HASHING", "COMPARISON",
    "REPLAY", "RUNTIME", "RECOVERY_ROLLBACK", "VOTE",
    "CONTAINMENT_STALL", "PRESSURE_STALL", "CAP_STALL", "CHECKER_STALL",
    "prometheus_text", "parse_prometheus_text",
    "collapsed_stacks", "parse_collapsed", "json_snapshot",
    "Dashboard",
]

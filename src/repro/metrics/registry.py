"""Typed metric registry: counters, gauges and fixed-bucket histograms.

The registry is the single definition point for every quantity the
runtime measures.  Metrics are keyed by a dotted name (``counter.
checkpoint_count``, ``pool.resident_bytes``) plus an optional label set
(``benchmark=bzip2, core=little``); the same name must always be used
with the same metric kind — mixing kinds is a programming error and
raises immediately.

Like :mod:`repro.trace`, this package is pure data: it must not import
from :mod:`repro.sim`, :mod:`repro.kernel` or :mod:`repro.core`, so it
can be reused by offline tooling (exporters, report rendering, tests)
without dragging the simulator along.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricKindError",
]

#: A metric key: dotted name plus a sorted, hashable label set.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


class MetricKindError(TypeError):
    """The same metric name was requested with two different kinds."""


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing float counter."""

    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def set(self, value: float) -> None:
        """Absolute update; used by mirrors that track an external field.
        Must never move backwards."""
        if value < self.value:
            raise ValueError(
                f"counter {self.name} cannot decrease "
                f"({self.value} -> {value})")
        self.value = float(value)


class Gauge:
    """Point-in-time value, optionally sampled into a time series."""

    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        #: ``(virtual_time, value)`` pairs appended by ``Registry.sample``.
        self.series: List[Tuple[float, float]] = []
        #: Optional pull hook: when set, ``sample()`` refreshes the value
        #: from it instead of relying on pushes.
        self.fn: Optional[Callable[[], float]] = None
        #: Virtual time of the most recent sampled write; drives the
        #: last-write-wins rule when shard registries merge.
        self.last_write = float("-inf")

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with quantile summaries.

    ``bounds`` are ascending upper bucket edges; an implicit +inf bucket
    catches overflow.  ``quantile(q)`` answers with the smallest bucket
    upper bound whose cumulative count reaches ``q * count`` — exact at
    bucket boundaries, which is all a fixed-bucket histogram can honestly
    promise.  Observations landing past the last bound are reported via
    the maximum observed value, so ``quantile(1.0)`` never invents +inf.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = (),
                 bounds: Sequence[float] = ()):
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: bounds must be ascending")
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        #: Per-bucket counts; index len(bounds) is the +inf bucket.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max_observed = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value > self.max_observed:
            self.max_observed = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, bound in enumerate(self.bounds):
            cumulative += self.bucket_counts[i]
            if cumulative >= target:
                return bound
        return self.max_observed

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricRegistry:
    """All metrics of one run, keyed by ``(dotted name, label set)``."""

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, object] = {}

    # -- accessors ---------------------------------------------------------

    def _get(self, cls, name: str, labels: Dict[str, object], **kw):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kw)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise MetricKindError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested as {cls.kind}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, bounds: Sequence[float] = (),
                  **labels) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if not isinstance(metric, Histogram):
                raise MetricKindError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested as histogram")
            return metric
        return self._get(Histogram, name, labels, bounds=bounds)

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Current value of a counter/gauge, or ``default`` if absent."""
        metric = self._metrics.get((name, _label_key(labels)))
        if metric is None:
            return default
        return metric.value

    # -- iteration / sampling ---------------------------------------------

    def __iter__(self):
        return iter(sorted(self._metrics.values(),
                           key=lambda m: (m.name, m.labels)))

    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self, kind: Optional[str] = None) -> Iterable[object]:
        for metric in self:
            if kind is None or metric.kind == kind:
                yield metric

    def sample(self, when: float) -> None:
        """Snapshot every gauge into its time series at virtual time
        ``when`` (pull hooks are refreshed first)."""
        for metric in self._metrics.values():
            if isinstance(metric, Gauge):
                if metric.fn is not None:
                    metric.value = float(metric.fn())
                metric.series.append((when, metric.value))
                metric.last_write = when

    # -- shard aggregation -------------------------------------------------

    def _insert(self, metric) -> None:
        self._metrics[(metric.name, metric.labels)] = metric

    def merge(self, other: "MetricRegistry") -> "MetricRegistry":
        """Fold ``other`` into this registry (returned for chaining).

        The aggregation rules are the ones sharded campaigns need:

        * **counters** sum — each shard counted disjoint work;
        * **gauges** take the write with the greatest virtual time
          (series are concatenated and time-sorted; a gauge that was
          never sampled loses to any that was, and between two unsampled
          gauges the incoming value wins so merging a snapshot is not a
          no-op);
        * **histograms** add bucket-wise — identical bounds required,
          mismatched bounds are a :class:`MetricKindError` (two shards
          measuring "the same" histogram differently is a programming
          error, not data).
        """
        for metric in other:
            key = (metric.name, metric.labels)
            mine = self._metrics.get(key)
            if mine is None:
                if isinstance(metric, Counter):
                    mine = Counter(metric.name, metric.labels)
                elif isinstance(metric, Gauge):
                    mine = Gauge(metric.name, metric.labels)
                else:
                    mine = Histogram(metric.name, metric.labels,
                                     bounds=metric.bounds)
                self._insert(mine)
            elif mine.kind != metric.kind:
                raise MetricKindError(
                    f"metric {metric.name!r} is a {mine.kind} here but a "
                    f"{metric.kind} in the merged registry")
            if isinstance(metric, Counter):
                mine.inc(metric.value)
            elif isinstance(metric, Gauge):
                mine.series = sorted(mine.series + metric.series)
                if metric.last_write >= mine.last_write:
                    mine.value = metric.value
                    mine.last_write = metric.last_write
            else:
                if mine.bounds != metric.bounds:
                    raise MetricKindError(
                        f"histogram {metric.name!r}: bucket bounds differ "
                        f"({mine.bounds} vs {metric.bounds})")
                for i, count in enumerate(metric.bucket_counts):
                    mine.bucket_counts[i] += count
                mine.count += metric.count
                mine.sum += metric.sum
                if metric.max_observed > mine.max_observed:
                    mine.max_observed = metric.max_observed
        return self

    # -- snapshot transfer -------------------------------------------------

    def to_snapshot(self) -> Dict[str, list]:
        """JSON-serializable dump of every metric, for shipping a shard's
        registry across a process boundary or into a campaign journal.
        Gauge pull hooks are refreshed into plain values (callables do
        not serialize); everything else round-trips exactly."""
        doc: Dict[str, list] = {"counters": [], "gauges": [],
                                "histograms": []}
        for metric in self:
            labels = [list(pair) for pair in metric.labels]
            if isinstance(metric, Counter):
                doc["counters"].append(
                    {"name": metric.name, "labels": labels,
                     "value": metric.value})
            elif isinstance(metric, Gauge):
                value = (float(metric.fn()) if metric.fn is not None
                         else metric.value)
                entry = {"name": metric.name, "labels": labels,
                         "value": value,
                         "series": [list(p) for p in metric.series]}
                if metric.last_write != float("-inf"):
                    entry["last_write"] = metric.last_write
                doc["gauges"].append(entry)
            else:
                doc["histograms"].append(
                    {"name": metric.name, "labels": labels,
                     "bounds": list(metric.bounds),
                     "bucket_counts": list(metric.bucket_counts),
                     "count": metric.count, "sum": metric.sum,
                     "max_observed": metric.max_observed})
        return doc

    @classmethod
    def from_snapshot(cls, doc: Dict[str, list]) -> "MetricRegistry":
        """Rebuild a registry from :meth:`to_snapshot` output."""
        registry = cls()
        for entry in doc.get("counters", []):
            metric = Counter(entry["name"],
                             tuple(tuple(p) for p in entry["labels"]))
            metric.value = float(entry["value"])
            registry._insert(metric)
        for entry in doc.get("gauges", []):
            metric = Gauge(entry["name"],
                           tuple(tuple(p) for p in entry["labels"]))
            metric.value = float(entry["value"])
            metric.series = [tuple(p) for p in entry.get("series", [])]
            metric.last_write = float(entry.get("last_write",
                                                float("-inf")))
            registry._insert(metric)
        for entry in doc.get("histograms", []):
            metric = Histogram(entry["name"],
                               tuple(tuple(p) for p in entry["labels"]),
                               bounds=entry["bounds"])
            metric.bucket_counts = [int(c)
                                    for c in entry["bucket_counts"]]
            metric.count = int(entry["count"])
            metric.sum = float(entry["sum"])
            metric.max_observed = float(entry["max_observed"])
            registry._insert(metric)
        return registry

"""Live TTY dashboard: one status line per virtual-time sample.

Driven by the runtime's metrics sampler (``Parallaft.
enable_metrics_sampling(callback=dashboard.update)``): each period the
dashboard reads the gauges it cares about straight from the registry
and prints a fixed-width line, so a degrading run (pressure ladder,
recovery storm) can be watched as it evolves.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from .registry import MetricRegistry

__all__ = ["Dashboard"]

_HEADER = (f"{'t(virt)':>9}  {'checkers':>8}  {'queued':>6}  "
           f"{'segs':>4}  {'pool MiB':>9}  {'pool%':>5}  "
           f"{'dirty MiB/s':>11}  {'checked':>7}")


class Dashboard:
    """Renders registry gauges as a live status line per sample."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.lines_written = 0

    def update(self, when: float, registry: MetricRegistry) -> None:
        if self.lines_written == 0:
            print(_HEADER, file=self.stream)
            print("-" * len(_HEADER), file=self.stream)
        pool_bytes = registry.value("pool.resident_bytes")
        line = (
            f"{when:>9.3f}  "
            f"{int(registry.value('parallaft.live_checkers')):>8}  "
            f"{int(registry.value('parallaft.queued_checkers')):>6}  "
            f"{int(registry.value('parallaft.live_segments')):>4}  "
            f"{pool_bytes / (1 << 20):>9.1f}  "
            f"{registry.value('pool.utilization') * 100:>4.0f}%  "
            f"{registry.value('parallaft.dirty_page_bytes_per_s') / (1 << 20):>11.1f}  "
            f"{int(registry.value('counter.segments_checked')):>7}"
        )
        print(line, file=self.stream)
        self.lines_written += 1

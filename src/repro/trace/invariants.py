"""Offline invariant checking over a recorded event trace.

The :class:`InvariantChecker` replays a :class:`~repro.trace.TraceBuffer`
(or a plain event list) in one pass and verifies the runtime invariants
the paper's correctness argument depends on:

(a) **containment** — when ``error_containment`` is on, no GLOBAL syscall
    is recorded while an earlier segment is still live, and a
    containment-stalled main is only woken once no earlier segment is
    live (a premature ``main_wake`` is a violated wake precondition even
    though the re-issued syscall re-stalls downstream).
(b) **stall pairing** — every ``main_stall``/``checker_stall`` is
    eventually followed by a matching wake for the same pid, or by the
    process's exit / application termination.  A leftover stall is the
    deadlock signature.
(c) **core exclusivity** — a core never hosts two processes at once
    (tracked from ``core_assign``/``core_unassign``).
(d) **segment completion** — every segment that became READY reaches a
    terminal state (CHECKED/FAILED/ROLLED_BACK) unless the application
    was deliberately torn down.
(e) **output commit** — under recovery, console bytes attributed to a
    segment that is later rolled back must be truncated away again
    (output never outlives its segment's verification).
(f) **integrity** — no ``rollback`` event ever follows an
    ``integrity_fail`` event: once an integrity check failed, every
    retained checkpoint is untrusted and promoting one would launder the
    corruption into a "recovered" timeline.  Checked unconditionally —
    a dropped event can hide a violation but never fabricate one.
(g) **degradation ladder** — memory-pressure actions escalate strictly in
    order: a stage-N event (``pressure_stall``=1, ``pressure_shed``=2,
    ``evict``=3, ``pressure_adapt``=4) never appears before the run's
    first stage-N−1 event.  ``pressure_exhausted`` is exempt (it marks
    the ladder running dry, at whatever rung reclaim got to).
(h) **OOM provenance** — every ``oom`` event is preceded by a
    ``pressure_exhausted`` event: the kernel never kills for memory
    without first recording that the ladder could not make room.
(i) **no rollback to an evicted checkpoint** — a ``rollback`` whose
    segment had its recovery checkpoint evicted (an earlier ``evict``
    event for the same segment) would promote freed state; recovery must
    refuse it with a typed error instead.  Checked unconditionally, like
    (f).
(j) **cycle conservation** — every ``phase_totals`` event (emitted once
    at run finalisation by the phase profiler) must balance: the sum of
    its per-phase cycle ledger equals the executor's independently
    accumulated total charged cycles, within a relative tolerance of
    1e-9 for float summation-order drift.  A forgotten attribution site
    in any charge path breaks the balance.  Checked unconditionally —
    the event carries its own totals, so drops cannot fake a violation.
(k) **vote quorum** — a TMR ``vote`` event with ``quorum < 2`` means no
    two of the three boundary states agreed: adopting any of them would
    be a guess, so the run must fail-stop.  Every such vote must be
    followed by an ``error`` (or the application's termination); a
    quorum-1 vote the run sailed past admitted an unverified segment.
(l) **no rollback after forward recovery** — forward recovery is the
    promise that the majority state is adopted *without* re-execution;
    a ``rollback`` event anywhere after a ``forward_recovery`` event
    breaks it (committed output would be re-executed).  Checked
    unconditionally, like (f).

Pairing-based invariants (b)–(d), the order-sensitive pressure
invariants (g)–(h) and the end-of-trace half of (k) are skipped when the
ring buffer dropped events, since a dropped stall/assign/stage/error
event would produce false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from .buffer import TraceBuffer
from .events import (
    APP_TERMINATE,
    CHECKER_STALL,
    CHECKER_WAKE,
    CONSOLE_TRUNCATE,
    CONSOLE_WRITE,
    CORE_ASSIGN,
    CORE_UNASSIGN,
    ERROR,
    EVICT,
    FORWARD_RECOVERY,
    INTEGRITY_FAIL,
    MAIN_STALL,
    MAIN_WAKE,
    OOM,
    PHASE_TOTALS,
    PRESSURE_EXHAUSTED,
    PRESSURE_STAGES,
    PROCESS_EXIT,
    ROLLBACK,
    SEGMENT_READY,
    SEGMENT_ROLLED_BACK,
    SEGMENT_START,
    SEGMENT_TERMINAL,
    STALL_CONTAINMENT,
    SYSCALL_RECORD,
    VOTE,
    TraceEvent,
)


@dataclass
class InvariantViolation:
    invariant: str               # 'containment' | 'stall_pairing' | ...
    message: str
    event: Optional[TraceEvent] = None

    def __str__(self) -> str:
        where = f" at {self.event.describe()}" if self.event else ""
        return f"[{self.invariant}] {self.message}{where}"


@dataclass
class _ConsoleWrite:
    event: TraceEvent
    stream: str
    start: int
    end: int
    truncated: bool = False


class InvariantChecker:
    """Single-pass checker for the invariants listed in the module doc."""

    def __init__(self, error_containment: bool = False,
                 recovery: bool = False) -> None:
        self.error_containment = error_containment
        self.recovery = recovery
        self.violations: List[InvariantViolation] = []

    # ------------------------------------------------------------------

    def check(
        self, trace: Union[TraceBuffer, Iterable[TraceEvent]],
    ) -> List[InvariantViolation]:
        dropped = trace.dropped if isinstance(trace, TraceBuffer) else 0
        events = list(trace)
        self.violations = []

        live: Set[int] = set()
        pending_stalls: Dict[int, TraceEvent] = {}
        occupancy: Dict[str, int] = {}
        ready: Set[int] = set()
        terminal: Set[int] = set()
        rolled_back: Set[int] = set()
        writes: List[_ConsoleWrite] = []
        app_terminated = False
        integrity_failed: Optional[TraceEvent] = None
        max_stage = 0
        exhausted_seen = False
        evicted_segments: Set[int] = set()
        pending_vote: Optional[TraceEvent] = None
        forward_recovered: Optional[TraceEvent] = None

        for event in events:
            kind = event.kind

            # -- (g) degradation ladder / (h) OOM provenance ------------
            stage = PRESSURE_STAGES.get(kind)
            if stage is not None:
                if stage > max_stage + 1 and dropped == 0:
                    self._violate(
                        "pressure_ladder",
                        f"stage-{stage} pressure action ({kind}) before "
                        f"any stage-{stage - 1} action (max stage seen: "
                        f"{max_stage})", event)
                max_stage = max(max_stage, stage)
            elif kind == PRESSURE_EXHAUSTED:
                exhausted_seen = True
            elif kind == OOM and not exhausted_seen and dropped == 0:
                self._violate(
                    "oom_provenance",
                    f"oom for pid {event.pid} with no preceding "
                    f"pressure_exhausted event", event)

            # -- (i) no rollback to an evicted checkpoint ---------------
            if kind == EVICT and event.segment is not None:
                evicted_segments.add(event.segment)
            elif (kind == ROLLBACK and event.segment is not None
                    and event.segment in evicted_segments):
                self._violate(
                    "evicted_rollback",
                    f"rollback to segment {event.segment} whose recovery "
                    f"checkpoint was evicted — freed state was promoted",
                    event)

            # -- (j) cycle conservation ---------------------------------
            if kind == PHASE_TOTALS:
                total = float(event.payload.get("total", 0.0))
                phases = event.payload.get("phases", {}) or {}
                charged = sum(float(v) for v in phases.values())
                tolerance = 1e-9 * max(abs(total), abs(charged), 1.0)
                if abs(charged - total) > tolerance:
                    self._violate(
                        "cycle_conservation",
                        f"phase ledger sums to {charged!r} cycles but the "
                        f"executor charged {total!r} — "
                        f"{charged - total:+.6g} cycles unattributed",
                        event)

            # -- (k) vote quorum ----------------------------------------
            if kind == VOTE:
                quorum = event.payload.get("quorum")
                if (quorum is not None and int(quorum) < 2
                        and pending_vote is None):
                    pending_vote = event
            elif kind in (ERROR, APP_TERMINATE) and pending_vote is not None:
                pending_vote = None

            # -- (l) no rollback after forward recovery -----------------
            if kind == FORWARD_RECOVERY:
                if forward_recovered is None:
                    forward_recovered = event
            elif kind == ROLLBACK and forward_recovered is not None:
                self._violate(
                    "forward_recovery",
                    f"rollback at segment {event.segment} after forward "
                    f"recovery adopted the majority state at segment "
                    f"{forward_recovered.segment} — committed output "
                    f"would be re-executed", event)

            # -- (f) integrity: no rollback after an integrity failure --
            if kind == INTEGRITY_FAIL:
                if integrity_failed is None:
                    integrity_failed = event
            elif kind == ROLLBACK and integrity_failed is not None:
                check = integrity_failed.payload.get("check", "?")
                self._violate(
                    "integrity",
                    f"rollback at segment {event.segment} after an "
                    f"integrity failure ({check} check at segment "
                    f"{integrity_failed.segment}) — an untrusted "
                    f"checkpoint was promoted", event)

            # -- live-segment bookkeeping -------------------------------
            if kind == SEGMENT_START and event.segment is not None:
                live.add(event.segment)
            elif kind in SEGMENT_TERMINAL and event.segment is not None:
                live.discard(event.segment)
                terminal.add(event.segment)
                if kind == SEGMENT_ROLLED_BACK:
                    rolled_back.add(event.segment)
            if kind == SEGMENT_READY and event.segment is not None:
                ready.add(event.segment)

            # -- (a) containment ----------------------------------------
            if self.error_containment and event.segment is not None:
                earlier_live = sorted(
                    s for s in live if s < event.segment)
                if kind == SYSCALL_RECORD:
                    classification = str(
                        event.payload.get("classification", "")).lower()
                    if "global" in classification and earlier_live:
                        self._violate(
                            "containment",
                            f"GLOBAL syscall recorded in segment "
                            f"{event.segment} while earlier segments "
                            f"{earlier_live} are live", event)
                elif (kind == MAIN_WAKE
                      and event.payload.get("reason") == STALL_CONTAINMENT
                      and earlier_live):
                    self._violate(
                        "containment",
                        f"containment-stalled main woken at segment "
                        f"{event.segment} while earlier segments "
                        f"{earlier_live} are live", event)

            # -- (b) stall pairing --------------------------------------
            if kind in (MAIN_STALL, CHECKER_STALL) and event.pid is not None:
                pending_stalls[event.pid] = event
            elif kind in (MAIN_WAKE, CHECKER_WAKE, PROCESS_EXIT) \
                    and event.pid is not None:
                pending_stalls.pop(event.pid, None)
            elif kind == APP_TERMINATE:
                app_terminated = True

            # -- (c) core exclusivity -----------------------------------
            if kind == CORE_ASSIGN and event.core is not None:
                holder = occupancy.get(event.core)
                if holder is not None and holder != event.pid:
                    self._violate(
                        "core_exclusivity",
                        f"core {event.core} assigned to pid {event.pid} "
                        f"while still held by pid {holder}", event)
                occupancy[event.core] = event.pid
            elif kind == CORE_UNASSIGN and event.core is not None:
                occupancy.pop(event.core, None)

            # -- (e) output commit --------------------------------------
            if kind == CONSOLE_WRITE:
                writes.append(_ConsoleWrite(
                    event=event,
                    stream=str(event.payload.get("stream", "stdout")),
                    start=int(event.payload.get("start", 0)),
                    end=int(event.payload.get("end", 0)),
                ))
            elif kind == CONSOLE_TRUNCATE:
                stream = str(event.payload.get("stream", "stdout"))
                length = int(event.payload.get("length", 0))
                for write in writes:
                    if write.stream == stream and length <= write.start:
                        write.truncated = True

        # ---- end-of-trace checks --------------------------------------
        if dropped == 0:
            # (b) leftover stalls
            if not app_terminated:
                for pid, stall in sorted(pending_stalls.items()):
                    reason = stall.payload.get("reason", "?")
                    self._violate(
                        "stall_pairing",
                        f"pid {pid} stalled ({stall.kind}, reason="
                        f"{reason}) and never woken or terminated", stall)
            # (d) segment completion
            if not app_terminated:
                unfinished = sorted(ready - terminal)
                if unfinished:
                    self._violate(
                        "segment_completion",
                        f"READY segments never reached a terminal state: "
                        f"{unfinished}")
            # (k) a quorum-1 vote with no subsequent fail-stop
            if pending_vote is not None:
                self._violate(
                    "vote_quorum",
                    f"vote at segment {pending_vote.segment} had quorum "
                    f"{pending_vote.payload.get('quorum')} (< 2) but no "
                    f"error or termination followed — an unverified "
                    f"segment was admitted", pending_vote)

        # (e) rolled-back output must have been truncated
        if self.recovery:
            for write in writes:
                seg = write.event.segment
                if seg in rolled_back and not write.truncated:
                    self._violate(
                        "output_commit",
                        f"{write.stream} bytes [{write.start}:{write.end}] "
                        f"written in rolled-back segment {seg} were never "
                        f"truncated", write.event)

        return self.violations

    # ------------------------------------------------------------------

    def assert_ok(
        self, trace: Union[TraceBuffer, Iterable[TraceEvent]],
    ) -> None:
        violations = self.check(trace)
        if violations:
            detail = "\n".join(str(v) for v in violations)
            raise AssertionError(
                f"{len(violations)} trace invariant violation(s):\n{detail}")

    def _violate(self, invariant: str, message: str,
                 event: Optional[TraceEvent] = None) -> None:
        self.violations.append(
            InvariantViolation(invariant=invariant, message=message,
                               event=event))


def check_runtime(runtime) -> List[InvariantViolation]:
    """Check a finished :class:`~repro.core.Parallaft` run's trace using
    its own configuration to decide which invariants apply."""
    checker = InvariantChecker(
        error_containment=runtime.config.error_containment,
        recovery=runtime.config.enable_recovery,
    )
    return checker.check(runtime.trace)


def assert_runtime_ok(runtime) -> None:
    violations = check_runtime(runtime)
    if violations:
        detail = "\n".join(str(v) for v in violations)
        raise AssertionError(
            f"{len(violations)} trace invariant violation(s):\n{detail}")

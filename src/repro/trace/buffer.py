"""Bounded ring buffer of :class:`TraceEvent`, with exporters.

The buffer is the single sink for all runtime emission sites.  It is
deliberately cheap: when disabled, ``emit`` is never called (call sites guard
on ``trace.enabled``); when enabled, an emit is one dataclass construction
and a deque append.  The capacity bound makes the memory cost of tracing a
constant regardless of run length — old events are dropped (and counted)
once the ring is full.

Exports:

* :meth:`TraceBuffer.chrome_trace` — Chrome ``trace_event`` JSON object
  (load the written file in Perfetto / ``about://tracing``).  Events become
  ``ph: "i"`` instants on their process's track; per-segment duration spans
  (``ph: "X"``) are synthesized from SEGMENT_START → terminal pairs so the
  pipeline of in-flight segments is visible at a glance.
* :meth:`TraceBuffer.timeline` — compact greppable text, one event per line.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Deque, Iterator, List, Optional

from .events import (
    SEGMENT_START,
    SEGMENT_TERMINAL,
    TraceEvent,
)


class TraceBuffer:
    """Bounded in-memory event trace for one run."""

    def __init__(
        self,
        capacity: int = 1 << 16,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self.clock = clock
        self.dropped = 0
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def emit(
        self,
        kind: str,
        pid: Optional[int] = None,
        role: Optional[str] = None,
        core: Optional[str] = None,
        segment: Optional[int] = None,
        ts: Optional[float] = None,
        **payload: object,
    ) -> Optional[TraceEvent]:
        if not self.enabled:
            return None
        if ts is None:
            ts = self.clock() if self.clock is not None else 0.0
        if len(self._events) == self.capacity:
            self.dropped += 1
        event = TraceEvent(
            ts=ts, kind=kind, pid=pid, role=role, core=core,
            segment=segment, payload=payload,
        )
        self._events.append(event)
        return event

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    # ------------------------------------------------------------------
    # Exporters

    def chrome_trace(self) -> dict:
        """Render as a Chrome ``trace_event`` JSON object.

        Timestamps are microseconds of virtual time.  Real pids keep their
        own process track; synthesized per-segment spans live on synthetic
        pid 0 ("segments") with the segment index folded onto 16 rows so
        the overlap between in-flight segments is visible.
        """
        trace_events: List[dict] = []
        seen_pids = {}
        open_segments = {}

        for event in self._events:
            if event.pid is not None and event.pid not in seen_pids:
                seen_pids[event.pid] = event.role or "proc"
            args = {"kind": event.kind}
            if event.segment is not None:
                args["segment"] = event.segment
            if event.core is not None:
                args["core"] = event.core
            args.update(event.payload)
            trace_events.append({
                "name": event.kind,
                "ph": "i",
                "s": "t",
                "ts": event.ts * 1e6,
                "pid": event.pid if event.pid is not None else 0,
                "tid": event.pid if event.pid is not None else 0,
                "cat": event.role or "runtime",
                "args": args,
            })
            if event.segment is not None:
                if event.kind == SEGMENT_START:
                    open_segments[event.segment] = event.ts
                elif event.kind in SEGMENT_TERMINAL:
                    start = open_segments.pop(event.segment, None)
                    if start is not None:
                        trace_events.append({
                            "name": f"segment {event.segment}",
                            "ph": "X",
                            "ts": start * 1e6,
                            "dur": max(event.ts - start, 0.0) * 1e6,
                            "pid": 0,
                            "tid": event.segment % 16,
                            "cat": "segment",
                            "args": {"segment": event.segment,
                                     "outcome": event.kind},
                        })

        metadata = [{
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "segments"},
        }]
        for pid, role in sorted(seen_pids.items()):
            metadata.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{role} (pid {pid})"},
            })
        return {
            "traceEvents": metadata + trace_events,
            "displayTimeUnit": "ms",
        }

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)

    def timeline(self, last: Optional[int] = None) -> str:
        """Compact text timeline, one event per line (optionally the tail)."""
        events = list(self._events)
        if last is not None:
            events = events[-last:]
        lines = [e.describe() for e in events]
        if self.dropped:
            lines.insert(0, f"... {self.dropped} earlier events dropped "
                            f"(capacity {self.capacity})")
        return "\n".join(lines)


#: Shared disabled sink: components default to this so tracing is a no-op
#: until a runtime wires in its own buffer.
NULL_TRACE = TraceBuffer(capacity=1, enabled=False)

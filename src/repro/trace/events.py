"""Typed trace events (the `repro.trace` schema).

Every significant lifecycle transition in a protected run is emitted as one
:class:`TraceEvent` carrying the virtual timestamp, the process it concerns
(pid/role/core), the segment it belongs to, and a small free-form payload.
The schema is deliberately flat so events serialize directly into Chrome
``trace_event`` JSON (see :mod:`repro.trace.buffer`) and remain greppable in
the text timeline.

Event kinds
-----------

Segment lifecycle (emitted by the coordinator):

* ``segment_start``      — boundary *k*: recording of segment *k* begins
* ``segment_ready``      — end point recorded; the segment can be checked
* ``segment_release``    — the checker's replay is armed and submitted
* ``segment_checked``    — comparison succeeded (terminal)
* ``segment_failed``     — an error was pinned on the segment (terminal)
* ``segment_rolled_back``— discarded by recovery (terminal)
* ``segment_retire``     — resources reaped, scheduler notified

Processes (emitted by the kernel):

* ``process_fork`` / ``process_exit`` / ``process_reap``

Scheduling (executor + checker scheduler):

* ``core_assign`` / ``core_unassign`` — a core gains/loses its occupant
* ``checker_place``   — a released checker lands on a core
* ``checker_migrate`` — the scheduler moved a checker between cores
* ``checker_stall``   — a concurrent checker caught up with the record
* ``checker_wake``    — a stalled checker resumed (new record appended)
* ``checker_retry``   — a failed check re-runs with a fresh checker

Main-process pacing (the two invariants this layer exists to protect):

* ``main_stall`` — payload ``reason``: ``"cap"`` (live-segment bound,
  paper §3.4) or ``"containment"`` (held GLOBAL syscall, Table 2)
* ``main_wake``  — payload ``reason`` as above; a containment wake is only
  legal once no earlier segment is live
* ``syscall_held`` — the GLOBAL syscall the containment stall is holding

Record/replay and checking:

* ``syscall_record`` — the main's syscall was appended to the R/R log
  (payload ``sysno``, ``classification``)
* ``syscall_replay`` — a checker consumed a syscall record
* ``comparison``     — segment-end state comparison (payload ``match``)
* ``error``          — a divergence was reported (payload ``error``: the
  detected kind, plus ``detail``)

Output commit and recovery:

* ``console_write``    — bytes reached a console (payload ``stream``,
  ``start``/``end`` buffer marks)
* ``console_truncate`` — rollback discarded output past a mark
* ``rollback``         — the main was rolled back to a verified checkpoint
* ``app_terminate``    — stop-on-error tore the application down

TMR majority voting (``repro.modes.tmr``):

* ``vote``             — a 3-way boundary vote ran (payload ``quorum``:
  3 unanimous, 2 majority, 1 all-disagree → fail-stop; plus
  ``main_outvoted``)
* ``outvoted``         — one voter lost a majority vote, or a replica's
  mid-replay divergence was absorbed (payload ``loser``:
  ``"main"`` | ``"checker"``, ``cause``)
* ``forward_recovery`` — the main was outvoted: the majority state was
  adopted and execution continued *forward* (never a ``rollback``: the
  no-ROLLBACK-after-FORWARD_RECOVERY invariant)

Integrity hardening (config knobs ``log_checksums`` /
``checkpoint_digests`` / ``clean_page_audit`` / ``redundant_compare``):

* ``integrity_check`` — a hardening check ran (payload ``check``:
  ``"log"`` | ``"checkpoint"`` | ``"clean_page_audit"`` | ``"digest"``,
  plus ``ok``)
* ``integrity_fail``  — an integrity check failed: saved state or the
  comparator itself is untrusted.  From this point on the run must never
  roll back (the no-ROLLBACK-after-INTEGRITY_FAIL invariant) — a
  rollback would promote evidence the run just proved rotten.

Memory pressure (finite frame-pool budget; ``repro.core.pressure``):

* ``pressure_stall``     — stage 1: the controller engaged backpressure on
  the main (payload ``stage``, ``resident``, ``budget``)
* ``pressure_shed``      — stage 2: a young in-flight checker was torn
  down and its segment re-queued (payload ``stage``, ``freed``)
* ``evict``              — stage 3: a retained recovery checkpoint was
  evicted, oldest-first, never the rollback anchor (payload ``stage``,
  ``freed``)
* ``pressure_adapt``     — stage 4: the slicing period was shortened from
  the observed dirty-page rate (payload ``stage``, ``period``)
* ``pressure_exhausted`` — the whole ladder ran dry and an allocation
  still could not be satisfied; always emitted before ``oom``
* ``oom``                — the kernel OOM-killed the allocating process
  (exit 137, a distinct exit class from fault detections)

The stage numbers form the degradation-ladder invariant: a stage-N action
never precedes the first stage-N−1 action of the run.  ``main_stall`` /
``main_wake`` gain ``reason="pressure"`` for the stage-1 backpressure.

Metrics (``repro.metrics``):

* ``phase_totals`` — emitted once at run finalisation with the phase
  profiler's cycle ledger (payload ``total``: the executor's
  independently-accumulated charged-cycle count, ``phases``: cycles per
  phase).  The cycle-conservation invariant (j) asserts the two agree:
  every simulated cycle is charged to exactly one phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

# Segment lifecycle.
SEGMENT_START = "segment_start"
SEGMENT_READY = "segment_ready"
SEGMENT_RELEASE = "segment_release"
SEGMENT_CHECKED = "segment_checked"
SEGMENT_FAILED = "segment_failed"
SEGMENT_ROLLED_BACK = "segment_rolled_back"
SEGMENT_RETIRE = "segment_retire"

# Process lifecycle.
PROCESS_FORK = "process_fork"
PROCESS_EXIT = "process_exit"
PROCESS_REAP = "process_reap"

# Scheduling.
CORE_ASSIGN = "core_assign"
CORE_UNASSIGN = "core_unassign"
CHECKER_PLACE = "checker_place"
CHECKER_MIGRATE = "checker_migrate"
CHECKER_STALL = "checker_stall"
CHECKER_WAKE = "checker_wake"
CHECKER_RETRY = "checker_retry"

# Main-process pacing.
MAIN_STALL = "main_stall"
MAIN_WAKE = "main_wake"
SYSCALL_HELD = "syscall_held"
STALL_CAP = "cap"
STALL_CONTAINMENT = "containment"
STALL_PRESSURE = "pressure"

# Record/replay and checking.
SYSCALL_RECORD = "syscall_record"
SYSCALL_REPLAY = "syscall_replay"
COMPARISON = "comparison"
ERROR = "error"

# TMR majority voting (repro.modes.tmr).
VOTE = "vote"
OUTVOTED = "outvoted"
FORWARD_RECOVERY = "forward_recovery"

# Output commit and recovery.
CONSOLE_WRITE = "console_write"
CONSOLE_TRUNCATE = "console_truncate"
ROLLBACK = "rollback"
APP_TERMINATE = "app_terminate"

# Integrity hardening.
INTEGRITY_CHECK = "integrity_check"
INTEGRITY_FAIL = "integrity_fail"

# Metrics: end-of-run phase-attribution totals (cycle conservation).
PHASE_TOTALS = "phase_totals"

# Memory pressure (degradation ladder stages 1-4, then exhaustion/OOM).
PRESSURE_STALL = "pressure_stall"
PRESSURE_SHED = "pressure_shed"
EVICT = "evict"
PRESSURE_ADAPT = "pressure_adapt"
PRESSURE_EXHAUSTED = "pressure_exhausted"
OOM = "oom"

#: Degradation-ladder stage of each pressure action kind.
PRESSURE_STAGES = {
    PRESSURE_STALL: 1,
    PRESSURE_SHED: 2,
    EVICT: 3,
    PRESSURE_ADAPT: 4,
}

#: Kinds that end a segment's live interval (RECORDING/READY/CHECKING).
SEGMENT_TERMINAL = (SEGMENT_CHECKED, SEGMENT_FAILED, SEGMENT_ROLLED_BACK)


@dataclass
class TraceEvent:
    """One structured event on the run's virtual timeline."""

    ts: float                        # virtual seconds
    kind: str                        # one of the constants above
    pid: Optional[int] = None
    role: Optional[str] = None       # 'main' | 'checker' | 'checkpoint' | None
    core: Optional[str] = None       # e.g. 'big0', 'little2'
    segment: Optional[int] = None
    payload: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        parts = [f"[{self.ts * 1e3:12.6f}ms] {self.kind:<18}"]
        if self.pid is not None:
            parts.append(f"pid={self.pid}")
        if self.role:
            parts.append(self.role)
        if self.core:
            parts.append(f"core={self.core}")
        if self.segment is not None:
            parts.append(f"seg={self.segment}")
        parts.extend(f"{k}={v}" for k, v in self.payload.items())
        return " ".join(parts)

"""repro.trace — structured event tracing and offline invariant checking.

Pure-data layer: no imports from the simulator or kernel, so every
component can depend on it without cycles.  See :mod:`repro.trace.events`
for the schema and :mod:`repro.trace.invariants` for the checked
invariants.
"""

from . import events
from .buffer import NULL_TRACE, TraceBuffer
from .events import TraceEvent
from .invariants import (
    InvariantChecker,
    InvariantViolation,
    assert_runtime_ok,
    check_runtime,
)

__all__ = [
    "events",
    "TraceEvent",
    "TraceBuffer",
    "NULL_TRACE",
    "InvariantChecker",
    "InvariantViolation",
    "check_runtime",
    "assert_runtime_ok",
]

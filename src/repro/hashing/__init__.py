"""Hashing primitives used by the program-state comparator (paper §4.4)."""

from repro.hashing.xxh3 import Xxh3_64, xxh3_64
from repro.hashing.xxhash64 import Xxh64, xxh64

__all__ = ["xxh64", "Xxh64", "xxh3_64", "Xxh3_64"]

"""XXH3-64-style wide-lane hash used by the program-state comparator.

The paper's comparator uses xxHash's XXH3-64b variant for its speed on large
inputs (paper §4.4 and footnote 13: collision probability ~3.13e-8 over their
experiment count).  XXH3's speed comes from eight 64-bit accumulators striped
across the input.  We model that structure here: a documented,
deterministic, well-dispersing 8-lane variant whose per-lane rounds reuse the
audited XXH64 round function.  (Bit-exact XXH3 conformance is not required by
any experiment — only 64-bit digests with negligible collision rate — and is
recorded as a substitution in DESIGN.md.)
"""

from __future__ import annotations

import struct

from repro.hashing.xxhash64 import (
    PRIME64_1,
    PRIME64_2,
    PRIME64_3,
    PRIME64_4,
    PRIME64_5,
    _avalanche,
    _rotl64,
    _round,
    xxh64,
)

_MASK64 = 0xFFFFFFFFFFFFFFFF
_LANES = 8
_STRIPE = _LANES * 8  # 64-byte stripes, as in XXH3


def xxh3_64(data: bytes, seed: int = 0) -> int:
    """64-bit digest of ``data`` using 8-lane striped accumulation.

    Inputs shorter than one stripe fall through to XXH64 (XXH3 similarly has
    dedicated short-input paths).
    """
    length = len(data)
    if length < _STRIPE:
        return xxh64(data, seed ^ PRIME64_5)

    seed &= _MASK64
    accs = [
        (seed + PRIME64_1) & _MASK64,
        (seed + PRIME64_2) & _MASK64,
        (seed + PRIME64_3) & _MASK64,
        (seed + PRIME64_4) & _MASK64,
        (seed ^ PRIME64_5) & _MASK64,
        (seed * PRIME64_1) & _MASK64,
        (seed * PRIME64_2) & _MASK64,
        (seed * PRIME64_3 + 1) & _MASK64,
    ]

    full = length - (length % _STRIPE)
    for offset in range(0, full, _STRIPE):
        lanes = struct.unpack_from("<8Q", data, offset)
        for i in range(_LANES):
            accs[i] = _round(accs[i], lanes[i])

    # Tail: hash the remaining <64 bytes with XXH64 and mix into lane 0.
    if full != length:
        accs[0] ^= xxh64(data[full:], seed)

    acc = (seed + length) & _MASK64
    for i, lane_acc in enumerate(accs):
        acc ^= _rotl64(lane_acc, (i * 7 + 1) % 63 + 1)
        acc = (acc * PRIME64_1 + PRIME64_4) & _MASK64
    return _avalanche(acc)


class Xxh3_64:
    """Streaming interface over :func:`xxh3_64`.

    Pages arrive whole from the dirty-page tracker, so we hash each chunk and
    fold the (address-tagged) digests; ordering of updates is significant.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed & _MASK64
        self._state = (self._seed ^ PRIME64_5) & _MASK64
        self._count = 0

    def update(self, data: bytes) -> "Xxh3_64":
        chunk_digest = xxh3_64(data, self._seed)
        self._state = _round(self._state ^ chunk_digest, self._count + 1)
        self._count += 1
        return self

    def digest(self) -> int:
        return _avalanche((self._state + self._count) & _MASK64)

"""Pure-Python implementation of XXH64.

Parallaft hashes the contents of dirty pages with xxHash and compares the
64-bit digests instead of copying memory between processes (paper §4.4).  The
paper uses the XXH3-64b variant; we provide the classic XXH64 here (exact,
spec-conformant) and a striped multi-lane variant in
:mod:`repro.hashing.xxh3` that models XXH3's wide accumulation.

Reference: https://github.com/Cyan4973/xxHash/blob/dev/doc/xxhash_spec.md
"""

from __future__ import annotations

import struct

_MASK64 = 0xFFFFFFFFFFFFFFFF

PRIME64_1 = 11400714785074694791
PRIME64_2 = 14029467366897019727
PRIME64_3 = 1609587929392839161
PRIME64_4 = 9650029242287828579
PRIME64_5 = 2870177450012600261


def _rotl64(value: int, count: int) -> int:
    return ((value << count) | (value >> (64 - count))) & _MASK64


def _round(acc: int, lane: int) -> int:
    acc = (acc + lane * PRIME64_2) & _MASK64
    acc = _rotl64(acc, 31)
    return (acc * PRIME64_1) & _MASK64


def _merge_round(acc: int, val: int) -> int:
    val = _round(0, val)
    acc ^= val
    return (acc * PRIME64_1 + PRIME64_4) & _MASK64


def _avalanche(value: int) -> int:
    value ^= value >> 33
    value = (value * PRIME64_2) & _MASK64
    value ^= value >> 29
    value = (value * PRIME64_3) & _MASK64
    value ^= value >> 32
    return value


def xxh64(data: bytes, seed: int = 0) -> int:
    """Compute the XXH64 digest of ``data`` with ``seed``.

    >>> hex(xxh64(b""))
    '0xef46db3751d8e999'
    """
    seed &= _MASK64
    length = len(data)
    offset = 0

    if length >= 32:
        acc1 = (seed + PRIME64_1 + PRIME64_2) & _MASK64
        acc2 = (seed + PRIME64_2) & _MASK64
        acc3 = seed
        acc4 = (seed - PRIME64_1) & _MASK64

        limit = length - 32
        while offset <= limit:
            lanes = struct.unpack_from("<4Q", data, offset)
            acc1 = _round(acc1, lanes[0])
            acc2 = _round(acc2, lanes[1])
            acc3 = _round(acc3, lanes[2])
            acc4 = _round(acc4, lanes[3])
            offset += 32

        acc = (
            _rotl64(acc1, 1) + _rotl64(acc2, 7) + _rotl64(acc3, 12) + _rotl64(acc4, 18)
        ) & _MASK64
        acc = _merge_round(acc, acc1)
        acc = _merge_round(acc, acc2)
        acc = _merge_round(acc, acc3)
        acc = _merge_round(acc, acc4)
    else:
        acc = (seed + PRIME64_5) & _MASK64

    acc = (acc + length) & _MASK64

    while offset + 8 <= length:
        (lane,) = struct.unpack_from("<Q", data, offset)
        acc ^= _round(0, lane)
        acc = (_rotl64(acc, 27) * PRIME64_1 + PRIME64_4) & _MASK64
        offset += 8

    if offset + 4 <= length:
        (lane,) = struct.unpack_from("<I", data, offset)
        acc ^= (lane * PRIME64_1) & _MASK64
        acc = (_rotl64(acc, 23) * PRIME64_2 + PRIME64_3) & _MASK64
        offset += 4

    while offset < length:
        acc ^= (data[offset] * PRIME64_5) & _MASK64
        acc = (_rotl64(acc, 11) * PRIME64_1) & _MASK64
        offset += 1

    return _avalanche(acc)


class Xxh64:
    """Incremental (streaming) XXH64, mirroring the one-shot :func:`xxh64`.

    The checker-side "injected hasher" feeds dirty pages one at a time, so a
    streaming interface avoids concatenating page contents.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed & _MASK64
        self._buffer = bytearray()
        self._total_length = 0
        self._acc1 = (self._seed + PRIME64_1 + PRIME64_2) & _MASK64
        self._acc2 = (self._seed + PRIME64_2) & _MASK64
        self._acc3 = self._seed
        self._acc4 = (self._seed - PRIME64_1) & _MASK64

    def update(self, data: bytes) -> "Xxh64":
        self._total_length += len(data)
        self._buffer.extend(data)
        usable = len(self._buffer) - (len(self._buffer) % 32)
        if usable:
            view = bytes(self._buffer[:usable])
            for offset in range(0, usable, 32):
                lanes = struct.unpack_from("<4Q", view, offset)
                self._acc1 = _round(self._acc1, lanes[0])
                self._acc2 = _round(self._acc2, lanes[1])
                self._acc3 = _round(self._acc3, lanes[2])
                self._acc4 = _round(self._acc4, lanes[3])
            del self._buffer[:usable]
        return self

    def digest(self) -> int:
        if self._total_length >= 32:
            acc = (
                _rotl64(self._acc1, 1)
                + _rotl64(self._acc2, 7)
                + _rotl64(self._acc3, 12)
                + _rotl64(self._acc4, 18)
            ) & _MASK64
            acc = _merge_round(acc, self._acc1)
            acc = _merge_round(acc, self._acc2)
            acc = _merge_round(acc, self._acc3)
            acc = _merge_round(acc, self._acc4)
        else:
            acc = (self._seed + PRIME64_5) & _MASK64

        acc = (acc + self._total_length) & _MASK64
        data = bytes(self._buffer)
        length = len(data)
        offset = 0

        while offset + 8 <= length:
            (lane,) = struct.unpack_from("<Q", data, offset)
            acc ^= _round(0, lane)
            acc = (_rotl64(acc, 27) * PRIME64_1 + PRIME64_4) & _MASK64
            offset += 8
        if offset + 4 <= length:
            (lane,) = struct.unpack_from("<I", data, offset)
            acc ^= (lane * PRIME64_1) & _MASK64
            acc = (_rotl64(acc, 23) * PRIME64_2 + PRIME64_3) & _MASK64
            offset += 4
        while offset < length:
            acc ^= (data[offset] * PRIME64_5) & _MASK64
            acc = (_rotl64(acc, 11) * PRIME64_1) & _MASK64
            offset += 1

        return _avalanche(acc)

"""Checkpoint-rollback error recovery (extension beyond the paper).

Parallaft's prototype *detects* faults and stops; its Table 2 lists error
recovery as future work.  This subsystem makes the runtime *survive* faults
in the main process, using machinery the substrate already pays for:

* Every segment start retains a pristine COW fork of the main — the
  ``recovery_checkpoint`` introduced for checker retries.  Once every
  earlier segment has been verified, that fork *is* the state of the main
  at the last verified boundary.
* When a segment check fails, the runtime first re-checks with a second
  checker forked from that retained checkpoint (diagnosis: a transient
  fault in the *checker* disappears on the re-check; a fault in the *main*
  persists, because the main's recorded log and end state are corrupted).
* If the re-check fails too, the main is implicated.  The corrupted main
  and every segment at or after the failure are discarded, the retained
  checkpoint is promoted to be the new main (rr-style user-space restore:
  the fork already holds the state, restoring is unpausing it), console
  output produced by the discarded execution is truncated — the console
  models a commit-on-verify buffer at the sphere-of-replication boundary —
  and execution resumes from the verified state.

Escalation keeps recovery bounded:

* a per-run rollback budget (``max_rollbacks``),
* a cap on consecutive re-executions of the same region
  (``max_segment_reexecutions``),
* an exponential shrink of the slicing period while rollbacks repeat
  (``slicing_period / 2**streak``), halving the window a recurring fault
  can corrupt before the next verified boundary,
* a watchdog instruction budget on the re-executed segment
  (``recovery_watchdog_scale`` × the original segment's instructions), so
  a fault that corrupts recovery itself cannot hang the run.

Soundness: a fault in the main during segment *k* corrupts *k*'s log and
end checkpoint together, so checkers of later segments replay
corrupted-start → corrupted-end and pass — the divergence is detected
exactly at *k*'s check, and *k*'s start state is still clean.  Re-executed
output is only observable after truncation to the segment-start mark, so
an end-of-run stdout equal to the fault-free reference certifies the
recovery (asserted by the recovery campaign mode in ``repro.faults``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.segment import Segment, SegmentStatus
from repro.kernel.process import Process, ProcessState
from repro.metrics import phases as mph
from repro.trace import events as tev

if TYPE_CHECKING:
    from repro.core.runtime import Parallaft


class RecoveryManager:
    """Owns rollback policy and bookkeeping for one Parallaft run."""

    def __init__(self, rt: "Parallaft"):
        self.rt = rt
        self.config = rt.config
        self.stats = rt.stats
        #: Rollbacks performed so far (bounded by ``max_rollbacks``).
        self.rollbacks = 0
        #: Consecutive rollbacks without a verified segment in between.
        self.rollback_streak = 0
        #: Highest segment index discarded by the last rollback; verifying
        #: any *newer* segment proves forward progress and resets the streak.
        self._last_rollback_index = -1
        self._watchdog_base = 0
        self._watchdog_budget: Optional[int] = None

    # ------------------------------------------------------- escalation state

    def effective_slicing_period(self) -> float:
        """Slicing period with the exponential post-rollback shrink."""
        shrink = min(self.rollback_streak, self.config.recovery_shrink_limit)
        return self.config.slicing_period / (2 ** shrink)

    def on_segment_verified(self, segment: Segment) -> None:
        """A segment checked out.  If it is newer than everything the last
        rollback discarded, the re-execution made verified progress."""
        if segment.index > self._last_rollback_index:
            self.rollback_streak = 0

    def note_boundary(self) -> None:
        """The main reached a slicing boundary: the re-executed region is
        fully recorded again, so the watchdog disarms."""
        self._watchdog_budget = None

    def check_watchdog(self, main: Process) -> None:
        """Abort recovery if the re-executed main overran its budget."""
        if self._watchdog_budget is None:
            return
        progress = self.rt._instr_reading(main) - self._watchdog_base
        if progress <= self._watchdog_budget:
            return
        budget = self._watchdog_budget
        self._watchdog_budget = None
        self.rt._report_error(
            "recovery_watchdog", self.rt.current,
            f"re-executed main overran its {budget}-instruction watchdog")

    # ------------------------------------------------------------ the rollback

    def on_check_failed(self, segment: Segment, kind: str,
                        detail: str = "") -> bool:
        """A segment check failed *persistently* (the diagnostic re-check
        already ran).  Roll back if policy allows; returns True when the
        error was absorbed."""
        checkpoint = segment.recovery_checkpoint
        if (self.rt._terminated
                # A watchdog trip is recovery's own failure; the two
                # integrity kinds mean saved state / the checking path is
                # untrusted — rolling back onto it would launder the
                # corruption into a "recovered" timeline.
                or kind in ("recovery_watchdog", "log_integrity",
                            "infra_integrity")
                or self.rt._integrity_failed
                or checkpoint is None
                # Evicted under memory pressure (stage 3): the saved state
                # is gone; the error path reports ``checkpoint_evicted``.
                or segment.checkpoint_evicted
                or checkpoint.state == ProcessState.DEAD
                or self.rollbacks >= self.config.max_rollbacks
                or self.rollback_streak
                >= self.config.max_segment_reexecutions):
            return False
        if not self.rt._checkpoint_integrity_ok(segment):
            # Defense in depth: the error path verifies the digest before
            # dispatching here, but promotion is the single action that
            # must never consume a rotten checkpoint — re-check at the
            # last gate before _rollback trusts it.
            return False
        self._rollback(segment)
        return True

    def _rollback(self, segment: Segment) -> None:
        """Discard the timeline from ``segment``'s start onward and resume
        the main from the retained segment-start checkpoint."""
        rt = self.rt
        kernel = rt.kernel
        old_main = rt.main
        self.rollbacks += 1
        self.rollback_streak += 1
        self.stats.recovery_rollbacks += 1
        rt._emit(tev.ROLLBACK, proc=old_main, segment=segment.index,
                 rollbacks=self.rollbacks, streak=self.rollback_streak)

        # Everything the main executed past the verified boundary is lost.
        wasted = max(0.0, old_main.user_cycles - segment.start_cycles)
        old_core = old_main.core

        for other in rt.segments:
            if other.index < segment.index:
                continue
            if other.status == SegmentStatus.ROLLED_BACK:
                continue
            wasted += self._discard(other, promote=(other is segment))
        self._last_rollback_index = len(rt.segments) - 1
        self.stats.recovery_wasted_cycles += wasted

        # Roll output back: nothing the discarded execution printed may
        # escape the sphere of replication.
        kernel.console.truncate(segment.console_mark)
        kernel.stderr_console.truncate(segment.stderr_mark)
        rt._emit(tev.CONSOLE_TRUNCATE, segment=segment.index,
                 stream="stdout", length=segment.console_mark)
        rt._emit(tev.CONSOLE_TRUNCATE, segment=segment.index,
                 stream="stderr", length=segment.stderr_mark)

        # Replace the corrupted main with the verified checkpoint.
        new_main = segment.recovery_checkpoint
        segment.recovery_checkpoint = None
        rt.roles.pop(old_main.pid, None)
        spawn_time = old_main.spawn_time
        kernel.rollback_to_checkpoint(old_main, new_main)
        rt.executor.unassign(old_main)
        new_main.spawn_time = spawn_time  # wall time spans the whole run
        rt.main = new_main
        rt.roles[new_main.pid] = "main"

        core = old_core if old_core is not None \
            and old_core.occupant is None else None
        if core is None:
            core = (rt.executor.free_core("big")
                    or rt.executor.free_core("little"))
        rt.executor.assign(new_main, core)
        new_main.ready_time = max(new_main.ready_time,
                                  rt.executor.current_time)
        # Restoring costs what materializing the checkpoint's COW fork
        # costs (rr-style restore is an unpause plus page-table work).
        rt.executor.charge(
            new_main, kernel.costs.fork_cycles(new_main.mem.mapped_pages),
            phase=mph.RECOVERY_ROLLBACK)

        # Reset coordinator state that referred to the discarded timeline.
        rt.current = None
        rt._pending_syscall = None
        rt._pending_mmap_split = False
        rt._main_stalled_on_cap = False
        rt._main_stalled_for_containment = False
        rt._main_stalled_on_pressure = False
        rt.sched.main_done = False
        if rt.pressure is not None:
            rt.pressure.on_rollback()

        # Arm the watchdog: the re-execution must reach the next boundary
        # within a multiple of the work the original recording needed.
        self._watchdog_base = rt._instr_reading(new_main)
        self._watchdog_budget = (
            int(max(segment.main_instructions, 1024)
                * self.config.recovery_watchdog_scale) + 1024)

        # Freed cores may unblock queued checkers of earlier segments.
        sched = rt.sched
        while sched.pending and sched._try_place(sched.pending[0]):
            sched.pending.pop(0)

        rt._start_segment()

    def _discard(self, segment: Segment, promote: bool) -> float:
        """Tear one discarded segment down; returns its wasted cycles.

        ``promote`` keeps the segment's recovery checkpoint alive — it
        becomes the new main.  Safe on already-retired (CHECKED) segments:
        their verification certified a timeline that no longer exists, so
        only their status flips (resources were already reaped).
        """
        rt = self.rt
        kernel = rt.kernel
        sched = rt.sched
        wasted = 0.0
        if segment in sched.pending:
            sched.pending.remove(segment)
        if segment in sched.running:
            sched.running.remove(segment)

        checker = segment.checker
        if checker is not None:
            wasted += checker.user_cycles
            rt.segment_of_checker.pop(checker.pid, None)
            rt.roles.pop(checker.pid, None)
            rt._stalled_checkers.discard(checker.pid)
            # Detach before killing so exit/ptrace hooks never fire for a
            # process we are deliberately discarding.
            checker.tracer = None
            if checker.alive:
                kernel.exit_process(checker, 1)
            rt.executor.unassign(checker)
            kernel.reap(checker)
            segment.checker = None

        if segment.end_checkpoint is not None and not segment.end_is_main:
            rt.roles.pop(segment.end_checkpoint.pid, None)
            kernel.reap(segment.end_checkpoint)
        segment.end_checkpoint = None

        if segment.recovery_checkpoint is not None and not promote:
            rt.roles.pop(segment.recovery_checkpoint.pid, None)
            kernel.reap(segment.recovery_checkpoint)
            segment.recovery_checkpoint = None

        segment.replayer = None
        segment.status = SegmentStatus.ROLLED_BACK
        rt._emit(tev.SEGMENT_ROLLED_BACK, segment=segment.index)
        return wasted

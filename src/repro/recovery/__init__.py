"""Checkpoint-rollback error recovery (Table 2 future work, implemented)."""

from repro.recovery.manager import RecoveryManager

__all__ = ["RecoveryManager"]

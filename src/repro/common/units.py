"""Units and scaling helpers.

The simulator runs *virtual* cycles: one virtual cycle stands for
``cycle_scale`` hardware cycles (default 100 000).  All user-facing numbers
(slicing periods, frequencies) are expressed in hardware units; conversion
to/from virtual units happens at the platform boundary via these helpers.
"""

from __future__ import annotations

KHZ = 1_000.0
MHZ = 1_000_000.0
GHZ = 1_000_000_000.0

BILLION = 1_000_000_000

#: Default number of hardware cycles represented by one virtual cycle.
DEFAULT_CYCLE_SCALE = 100_000


def hw_to_virtual_cycles(hw_cycles: float, cycle_scale: int = DEFAULT_CYCLE_SCALE) -> int:
    """Convert a hardware cycle count (e.g. the paper's 5e9 slicing period)
    to virtual cycles, rounding to at least one cycle."""
    return max(1, round(hw_cycles / cycle_scale))


def virtual_to_hw_cycles(virtual_cycles: float, cycle_scale: int = DEFAULT_CYCLE_SCALE) -> float:
    """Convert virtual cycles back to hardware cycles for reporting."""
    return virtual_cycles * cycle_scale


def cycles_to_seconds(hw_cycles: float, frequency_hz: float) -> float:
    """Wall-clock seconds for ``hw_cycles`` hardware cycles at ``frequency_hz``."""
    return hw_cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    return seconds * frequency_hz


def format_cycles(hw_cycles: float) -> str:
    """Human-readable hardware cycle count, paper-style ("5 billion")."""
    if hw_cycles >= BILLION:
        value = hw_cycles / BILLION
        return f"{value:g} billion"
    if hw_cycles >= 1_000_000:
        return f"{hw_cycles / 1_000_000:g} million"
    return f"{hw_cycles:g}"


def geomean(values) -> float:
    """Geometric mean of positive values (paper-style overhead aggregation)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geomean requires positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))


def geomean_overhead_pct(overheads_pct) -> float:
    """Geometric mean of percentage overheads, aggregated as ratios.

    The paper reports e.g. "geometric mean performance overhead of 15.9%";
    the convention is geomean over per-benchmark ratios (1 + overhead), minus
    one.
    """
    ratios = [1.0 + pct / 100.0 for pct in overheads_pct]
    return (geomean(ratios) - 1.0) * 100.0

"""Exception hierarchy shared across the reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
distinguish simulator bugs (plain Python exceptions) from modelled machine
behaviour (these).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class AssemblerError(ReproError):
    """Malformed assembly source."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class CompileError(ReproError):
    """Malformed mini-C source."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class MemoryError_(ReproError):
    """Invalid memory operation at the address-space level (bad mmap etc.)."""


class FramePoolExhausted(MemoryError_):
    """A frame allocation would exceed the pool's configured byte budget.

    Raised by :class:`repro.mem.frames.FramePool` when ``budget_bytes`` is
    set and an ``allocate``/``clone`` cannot be satisfied even after the
    reclaim hook has run.  The kernel turns this into an OOM kill of the
    allocating process — a distinct exit class, not a fault detection.
    """

    def __init__(self, needed: int, resident: int, budget: int):
        super().__init__(
            f"frame pool exhausted: need {needed} bytes, "
            f"{resident} resident of {budget} budget")
        self.needed = needed
        self.resident = resident
        self.budget = budget


class KernelError(ReproError):
    """Invalid kernel API usage (bad pid, bad ptrace request, ...)."""


class PtraceError(KernelError):
    """Invalid ptrace operation (e.g. tracee not stopped)."""


class SimulationError(ReproError):
    """The co-simulation reached an inconsistent state."""


class RuntimeConfigError(ReproError):
    """Invalid Parallaft/RAFT runtime configuration."""


class ConfigError(RuntimeConfigError):
    """A configuration value names something that does not exist.

    Raised in particular for unknown detection-mode strings
    (``--mode`` / ``run_protected(mode=...)``); the message lists the
    registered modes so a typo fails loudly instead of silently falling
    through to a default mode.
    """


class CampaignError(ReproError):
    """Invalid campaign-engine usage or an unrunnable campaign spec."""


class JournalIntegrityError(CampaignError):
    """A durable journal failed its integrity check.

    Raised when a record's stored XXH3 checksum does not match its
    content, or its sequence number does not match its position (a
    reordered / spliced / mid-file-corrupted journal).  A *truncated
    tail* — the torn final line of a crashed writer — is explicitly not
    an integrity failure: readers drop it and resume re-runs the lost
    task.  ``kind`` mirrors the typed error-kind convention of the
    runtime's ``log_integrity`` errors.
    """

    kind = "journal_integrity"

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class MismatchError(ReproError):
    """Program-state comparison found a divergence (an error was detected).

    Carries a :class:`~repro.core.comparator.ComparisonResult`-like payload in
    ``detail`` describing what diverged.
    """

    def __init__(self, message: str, detail=None):
        super().__init__(message)
        self.detail = detail

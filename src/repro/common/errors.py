"""Exception hierarchy shared across the reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
distinguish simulator bugs (plain Python exceptions) from modelled machine
behaviour (these).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class AssemblerError(ReproError):
    """Malformed assembly source."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class CompileError(ReproError):
    """Malformed mini-C source."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class MemoryError_(ReproError):
    """Invalid memory operation at the address-space level (bad mmap etc.)."""


class KernelError(ReproError):
    """Invalid kernel API usage (bad pid, bad ptrace request, ...)."""


class PtraceError(KernelError):
    """Invalid ptrace operation (e.g. tracee not stopped)."""


class SimulationError(ReproError):
    """The co-simulation reached an inconsistent state."""


class RuntimeConfigError(ReproError):
    """Invalid Parallaft/RAFT runtime configuration."""


class MismatchError(ReproError):
    """Program-state comparison found a divergence (an error was detected).

    Carries a :class:`~repro.core.comparator.ComparisonResult`-like payload in
    ``detail`` describing what diverged.
    """

    def __init__(self, message: str, detail=None):
        super().__init__(message)
        self.detail = detail

"""Shared utilities: error types, units/scaling, deterministic RNG streams."""

from repro.common.errors import (
    AssemblerError,
    CompileError,
    KernelError,
    MemoryError_,
    MismatchError,
    PtraceError,
    ReproError,
    RuntimeConfigError,
    SimulationError,
)
from repro.common.rng import RngPool
from repro.common.units import (
    BILLION,
    DEFAULT_CYCLE_SCALE,
    GHZ,
    MHZ,
    cycles_to_seconds,
    format_cycles,
    geomean,
    geomean_overhead_pct,
    hw_to_virtual_cycles,
    seconds_to_cycles,
    virtual_to_hw_cycles,
)

__all__ = [
    "AssemblerError",
    "CompileError",
    "KernelError",
    "MemoryError_",
    "MismatchError",
    "PtraceError",
    "ReproError",
    "RuntimeConfigError",
    "SimulationError",
    "RngPool",
    "BILLION",
    "DEFAULT_CYCLE_SCALE",
    "GHZ",
    "MHZ",
    "cycles_to_seconds",
    "format_cycles",
    "geomean",
    "geomean_overhead_pct",
    "hw_to_virtual_cycles",
    "seconds_to_cycles",
    "virtual_to_hw_cycles",
]

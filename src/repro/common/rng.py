"""Deterministic random-number helpers.

Every source of modelled nondeterminism (ASLR, perf-counter skid, instruction
overcount, fault injection) draws from its own named stream so experiments
are reproducible and streams do not perturb each other when one subsystem
changes how much randomness it consumes.
"""

from __future__ import annotations

import random
from typing import Dict


class RngPool:
    """A pool of independently-seeded named random streams."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream seed mixes the pool seed with a hash of the name, so two
        pools with the same seed produce identical streams and distinct names
        produce decorrelated streams.
        """
        if name not in self._streams:
            mixed = (self._seed * 0x9E3779B97F4A7C15 + _fnv1a(name)) & 0xFFFFFFFFFFFFFFFF
            self._streams[name] = random.Random(mixed)
        return self._streams[name]


def _fnv1a(text: str) -> int:
    """64-bit FNV-1a hash of a string (stable across Python runs, unlike hash())."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value

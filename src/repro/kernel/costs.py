"""Kernel cost model: hardware-cycle prices of kernel operations.

All values are *hardware* cycles; the executor divides by the executing
core's frequency to get virtual seconds.  The tracing costs are what make a
syscall-dense program slow under Parallaft/RAFT (paper §5.7: getpid loop
124.5x, dominated by ptrace; 1 MB reads 18.5x, dominated by recording the
data read; empty-handler SIGUSR1 39.8x).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class KernelCostModel:
    #: How many *real* pages one simulated page stands for.  Workload
    #: footprints are compressed ~3 orders of magnitude relative to SPEC
    #: ref runs (as run durations are, via cycle_scale); page-granular
    #: kernel work (fork PTE copies, COW faults, dirty-bit passes, dirty-
    #: page hashing) must be scaled back up or it would vanish from the
    #: overhead.  See DESIGN.md, "Substitutions".
    page_population_scale: float = 780.0
    #: Kernel entry/exit + dispatch for any syscall.
    syscall_base_cycles: float = 1_200.0
    #: Per byte moved by read/write/getrandom.
    syscall_per_byte_cycles: float = 0.06
    #: One ptrace stop: two context switches plus tracer wakeup.
    trace_stop_cycles: float = 74_000.0
    #: Per byte the tracer records from syscall buffers (R/R log append).
    record_per_byte_cycles: float = 0.95
    #: fork(2): base plus per-PTE copy.
    fork_base_cycles: float = 40_000.0
    fork_per_page_cycles: float = 450.0
    #: Resolving one copy-on-write fault (trap + page copy), per page byte.
    cow_fault_base_cycles: float = 2_500.0
    cow_per_byte_cycles: float = 0.18
    #: Kernel-side signal delivery (context push).
    signal_delivery_cycles: float = 3_600.0
    #: Clearing soft-dirty bits / PAGEMAP_SCAN, per mapped page.
    dirty_clear_per_page_cycles: float = 14.0
    #: Reading dirty-page list, per mapped page.
    dirty_scan_per_page_cycles: float = 10.0
    #: Injected-hasher hashing, per byte of dirty page compared.
    hash_per_byte_cycles: float = 0.22
    #: Perf-counter (re)programming via perf_event.
    perf_setup_cycles: float = 9_000.0
    #: Setting or clearing a hardware breakpoint.
    breakpoint_setup_cycles: float = 4_000.0

    def syscall_cycles(self, bytes_moved: int = 0) -> float:
        return self.syscall_base_cycles + bytes_moved * self.syscall_per_byte_cycles

    def fork_cycles(self, mapped_pages: int) -> float:
        return (self.fork_base_cycles
                + mapped_pages * self.page_population_scale
                * self.fork_per_page_cycles)

    def cow_cycles(self, page_size: int, faults: int = 1) -> float:
        per_fault = (self.cow_fault_base_cycles
                     + page_size * self.cow_per_byte_cycles)
        return faults * self.page_population_scale * per_fault

    def dirty_clear_cycles(self, mapped_pages: int) -> float:
        return (mapped_pages * self.page_population_scale
                * self.dirty_clear_per_page_cycles)

    def dirty_scan_cycles(self, mapped_pages: int) -> float:
        return (mapped_pages * self.page_population_scale
                * self.dirty_scan_per_page_cycles)

    def hash_cycles(self, bytes_hashed: int) -> float:
        return (bytes_hashed * self.page_population_scale
                * self.hash_per_byte_cycles)

"""Ptrace-style tracing interface.

The real Parallaft traces its children with ``ptrace(2)``: it is stopped-on
and consulted at every syscall entry/exit, signal delivery, breakpoint and
perf-counter overflow, and may read/modify tracee registers and memory.  We
model that as a :class:`Tracer` object the kernel/executor calls
synchronously at each stop.  Because the tracer runs in-process, register
and memory access is direct; the *cost* of each tracer round-trip is still
charged (``trace_stop_cost_cycles``), which is what makes syscall-heavy
programs slow under tracing (paper §5.7).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.cpu.exceptions import Stop


class SyscallAction:
    """Tracer's verdict on a syscall entry.

    ``PASSTHROUGH``: the kernel executes the syscall normally (the tracer may
    have modified the argument registers first, e.g. Parallaft's MAP_FIXED
    rewrite).  ``EMULATE``: the kernel skips execution and installs
    ``result`` (the tracer has already applied any memory effects — this is
    how recorded syscalls are replayed into checkers).
    """

    PASSTHROUGH = "passthrough"
    EMULATE = "emulate"

    def __init__(self, kind: str, result: int = 0):
        self.kind = kind
        self.result = result

    @classmethod
    def passthrough(cls) -> "SyscallAction":
        return cls(cls.PASSTHROUGH)

    @classmethod
    def emulate(cls, result: int) -> "SyscallAction":
        return cls(cls.EMULATE, result)


class Tracer:
    """Base tracer: every hook is a no-op passthrough.

    Parallaft's coordinator subclasses this.  All hooks run at a precise
    tracee stop; the tracee's registers/memory may be inspected and mutated
    freely before returning.
    """

    def on_syscall_entry(self, proc, sysno: int,
                         args: Sequence[int]) -> Optional[SyscallAction]:
        """Called before a syscall executes.  Return None for passthrough."""
        return None

    def on_syscall_exit(self, proc, sysno: int, args: Sequence[int],
                        result: int) -> None:
        """Called after a syscall executed (or was emulated)."""

    def on_stop(self, proc, stop: Stop) -> None:
        """Breakpoint / counter overflow / brk / nondet-trap stops."""

    def on_signal(self, proc, signo: int, external: bool) -> bool:
        """A signal is about to be delivered.  Return False to take over
        (defer/suppress); True to let the kernel deliver it now."""
        return True

    def on_process_exit(self, proc) -> None:
        """The tracee exited (exit syscall, fatal signal, or halt)."""

    def on_oom(self, proc, can_block: bool = False) -> bool:
        """``proc`` exceeded the frame-pool budget and is about to be
        OOM-killed.  Return True if the tracer handled the condition itself
        (e.g. sacrificed the process and re-queued its work); False to let
        the kernel deliver the kill.  ``can_block`` is True when the
        process stopped resumably on the faulting instruction, so the
        tracer may instead park it and retry once memory frees up."""
        return False

    def on_quantum(self, proc, executed: int) -> None:
        """Called after every execution quantum with the instruction count;
        cheap bookkeeping only (the slicer's cycle check lives here)."""

    def trace_stop_count(self) -> int:
        """Number of tracer round-trips charged so far (set by the kernel)."""
        return 0

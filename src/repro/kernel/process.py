"""Process abstraction.

A :class:`Process` bundles an address space, CPU context, file descriptors,
signal state and accounting.  Processes are created by
:meth:`repro.kernel.kernel.Kernel.spawn` and duplicated by
:meth:`~repro.kernel.kernel.Kernel.fork` (copy-on-write), which is the
substrate for Parallaft's checkpoint/checker processes.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.cpu.nondet import NondetSource
from repro.cpu.state import CpuContext
from repro.mem.address_space import AddressSpace

if TYPE_CHECKING:
    from repro.kernel.vfs import FileObject


class ProcessState(enum.Enum):
    RUNNING = "running"    # eligible to execute
    PAUSED = "paused"      # suspended by its tracer (not runnable)
    WAITING = "waiting"    # blocked in the kernel (e.g. checker stall)
    ZOMBIE = "zombie"      # exited, not yet reaped
    DEAD = "dead"          # reaped; resources released


#: Magic return address installed as ``lr`` when a signal handler runs;
#: jumping to it traps back into the kernel which restores the interrupted
#: context (our stand-in for ``sigreturn``).
SIGRETURN_ADDR = 0xDEAD_0000


class SignalContext:
    """Saved context while a signal handler runs."""

    __slots__ = ("pc", "regs_snapshot", "lr")

    def __init__(self, pc: int, regs_snapshot, lr: int):
        self.pc = pc
        self.regs_snapshot = regs_snapshot
        self.lr = lr


class Process:
    """One simulated process."""

    def __init__(self, pid: int, name: str, mem: AddressSpace,
                 cpu: CpuContext, nondet: NondetSource):
        self.pid = pid
        self.name = name
        self.mem = mem
        self.cpu = cpu
        self.nondet = nondet
        self.state = ProcessState.RUNNING
        self.exit_code: Optional[int] = None
        #: set by Kernel.oom_kill — distinguishes running out of RAM from
        #: fault detections in outcome classification
        self.oom_killed = False
        self.parent: Optional["Process"] = None
        self.children: List["Process"] = []

        self.fds: Dict[int, "FileObject"] = {}
        self._next_fd = 3

        # Signals.
        self.signal_handlers: Dict[int, int] = {}   # signo -> handler address
        self.pending_signals: List[tuple] = []      # (signo, external)
        self.signal_context: Optional[SignalContext] = None

        # Tracing: set by Kernel.attach_tracer.
        self.tracer = None

        # Scheduling state, owned by the sim executor/scheduler.
        self.core = None            # Core or None
        self.ready_time = 0.0       # virtual seconds: earliest next run
        self.pinned_core_kind: Optional[str] = None
        #: (hw_cycles, kind) work parked until the process lands on a core
        #: (see Executor.charge_deferred).
        self.pending_charges: List[tuple] = []

        # Accounting (virtual seconds / counts).
        self.user_time = 0.0
        self.sys_time = 0.0
        self.spawn_time = 0.0
        self.exit_time: Optional[float] = None
        self.user_cycles = 0.0      # hardware cycles of user execution
        self.cycles_big = 0.0       # ... split by executing cluster
        self.cycles_little = 0.0

        # Skid model hook, installed by the kernel (draws from its RNG).
        self._skid_fn: Callable[[], int] = lambda: 0

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, {self.name!r}, {self.state.value})"

    # -- interpreter hooks ---------------------------------------------------

    def skid_draw(self) -> int:
        """Perf-counter skid for this stop (instructions past the overflow)."""
        return self._skid_fn()

    # -- fds -------------------------------------------------------------------

    def install_fd(self, file_object: "FileObject", fd: Optional[int] = None) -> int:
        if fd is None:
            fd = self._next_fd
            self._next_fd += 1
        self.fds[fd] = file_object
        return fd

    # -- liveness ----------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state not in (ProcessState.ZOMBIE, ProcessState.DEAD)

    @property
    def runnable(self) -> bool:
        return self.state == ProcessState.RUNNING

"""The kernel model: processes, fork, syscalls, signals, tracing glue.

The kernel performs *state changes* and returns their *prices* in hardware
cycles; the sim executor converts prices into virtual time on whichever core
the process occupies.  It deliberately mirrors the Linux facilities the real
Parallaft uses: COW ``fork``, ptrace stops at syscall entry/exit and signal
delivery, soft-dirty clearing, ``PAGEMAP_SCAN``-style map counting, ASLR'd
``mmap``, and nondeterministic counters with overcount and skid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import abi
from repro.common.errors import FramePoolExhausted, KernelError
from repro.common.rng import RngPool
from repro.cpu.nondet import NondetSource
from repro.cpu.state import CpuContext
from repro.isa.program import Program, STACK_TOP
from repro.kernel.costs import KernelCostModel
from repro.kernel.process import Process, ProcessState, SIGRETURN_ADDR, SignalContext
from repro.kernel.ptrace import SyscallAction, Tracer
from repro.kernel.vfs import Console, Vfs
from repro.mem.address_space import (
    AddressSpace,
    MAP_ANONYMOUS,
    MAP_FIXED,
    MAP_SHARED,
    PROT_READ,
    PROT_WRITE,
    PageFault,
)
from repro.mem.frames import FramePool, budget_from_env
from repro.metrics import NULL_PROFILER
from repro.trace import NULL_TRACE
from repro.trace import events as tev


@dataclass
class CounterModel:
    """Hardware performance-counter imperfections (paper §4.2).

    The instruction counter overcounts nondeterministically on every trap
    (interrupt/exception return); the branch counter is deterministic but
    overflow delivery skids by a few instructions.
    """

    instr_overcount_max: int = 3     # extra phantom counts per trap
    skid_max: int = 6                # max instructions of overflow skid
    skid_probability: float = 0.5    # chance a given overflow skids at all


class Kernel:
    """Owns the machine's software state.  One kernel per simulation."""

    def __init__(self, page_size: int = 16384, seed: int = 0,
                 aslr: bool = True,
                 costs: Optional[KernelCostModel] = None,
                 counters: Optional[CounterModel] = None,
                 mem_budget_bytes: Optional[int] = None):
        self.page_size = page_size
        self.rng = RngPool(seed)
        self.aslr = aslr
        self.costs = costs or KernelCostModel()
        self.counters = counters or CounterModel()
        if mem_budget_bytes is None:
            mem_budget_bytes = budget_from_env()
        self.pool = FramePool(page_size, budget_bytes=mem_budget_bytes)
        self.vfs = Vfs(self.rng.stream("urandom"))
        self.console = Console()
        self.stderr_console = Console("stderr")
        self.processes: Dict[int, Process] = {}
        self._next_pid = 1000
        #: Virtual-time source; the executor installs the real one.
        self.time_fn: Callable[[], float] = lambda: 0.0
        #: Event sink; the Parallaft runtime installs its own buffer.
        self.trace = NULL_TRACE
        #: Phase-attribution profiler; the runtime installs a live one.
        #: The kernel only needs it to close stall spans on exit paths.
        self.profiler = NULL_PROFILER
        #: Per-run statistics.
        self.stats: Dict[str, int] = {
            "forks": 0, "syscalls": 0, "signals_delivered": 0,
            "trace_stops": 0, "rollbacks": 0, "oom_kills": 0,
        }

    # -- time ---------------------------------------------------------------

    def now(self) -> float:
        return self.time_fn()

    # -- process lifecycle ------------------------------------------------------

    def spawn(self, program: Program, name: Optional[str] = None) -> Process:
        """Create a process running ``program`` (exec)."""
        pid = self._next_pid
        self._next_pid += 1
        space = AddressSpace(self.pool, aslr=self.aslr,
                             rng=self.rng.stream(f"aslr-{pid}"))
        space.load_program(program)
        cpu = CpuContext()
        cpu.pc = program.entry
        cpu.regs.gprs[13] = STACK_TOP - 64  # sp
        proc = Process(pid, name or program.name, space, cpu,
                       self._make_nondet())
        proc.spawn_time = self.now()
        proc._skid_fn = self._make_skid_fn()
        proc.install_fd(self.console, abi.STDIN)
        proc.install_fd(self.console, abi.STDOUT)
        proc.install_fd(self.stderr_console, abi.STDERR)
        self.bind_nondet(proc)
        self.processes[pid] = proc
        return proc

    def fork(self, proc: Process, name: Optional[str] = None,
             paused: bool = False) -> Tuple[Process, float]:
        """Fork ``proc`` copy-on-write; returns (child, cost in hw cycles).

        The child resumes at the same PC with the same registers (we do not
        model the child-sees-0 return value: Parallaft forks from *outside*
        via ptrace, where parent and child must be bit-identical).
        """
        pid = self._next_pid
        self._next_pid += 1
        child_mem = proc.mem.fork()
        child_cpu = proc.cpu.clone()
        child = Process(pid, name or f"{proc.name}-fork", child_mem,
                        child_cpu, self._make_nondet())
        child.spawn_time = self.now()
        child._skid_fn = self._make_skid_fn()
        child.parent = proc
        proc.children.append(child)
        child.fds = {fd: f.clone() for fd, f in proc.fds.items()}
        child.signal_handlers = dict(proc.signal_handlers)
        child.tracer = proc.tracer
        if paused:
            child.state = ProcessState.PAUSED
        self.bind_nondet(child)
        self.processes[pid] = child
        self.stats["forks"] += 1
        cost = self.costs.fork_cycles(proc.mem.mapped_pages)
        if self.trace.enabled:
            self.trace.emit(tev.PROCESS_FORK, pid=pid, parent=proc.pid,
                            name=child.name)
        return child, cost

    def exit_process(self, proc: Process, code: int) -> None:
        if not proc.alive:
            return
        proc.state = ProcessState.ZOMBIE
        proc.exit_code = code
        proc.exit_time = self.now()
        # Every kill path (OOM, rollback teardown, checker shed, fatal
        # signal) funnels through here, so a dying process can never
        # leave a stall span open in the profiler.
        self.profiler.close_span(proc.pid)
        if self.trace.enabled:
            self.trace.emit(tev.PROCESS_EXIT, pid=proc.pid, code=code)
        if proc.tracer is not None:
            proc.tracer.on_process_exit(proc)

    def kill_process(self, proc: Process, signo: int) -> None:
        """Terminate with a fatal signal (exit code 128+signo)."""
        self.exit_process(proc, 128 + signo)

    def oom_kill(self, proc: Process, needed: int = 0,
                 can_block: bool = False) -> None:
        """Out-of-memory kill: the frame-pool budget could not satisfy an
        allocation by ``proc`` even after reclaim.

        A distinct exit class from fault detections: the process dies with
        SIGKILL (exit 137) and ``proc.oom_killed`` is set so outcome
        classification can tell "the machine ran out of RAM" apart from
        "an error was detected".  The tracer may intercept via ``on_oom``
        (Parallaft sacrifices checkers and re-queues their segments).
        The stage-3 exhaustion event is always emitted before ``OOM`` so
        the trace invariant (every OOM follows an exhaustion) holds by
        construction.
        """
        if not proc.alive:
            return
        if self.trace.enabled:
            self.trace.emit(tev.PRESSURE_EXHAUSTED, pid=proc.pid, stage=3,
                            needed=needed,
                            resident=self.pool.resident_bytes,
                            budget=self.pool.budget_bytes)
        handled = False
        if proc.tracer is not None:
            handled = proc.tracer.on_oom(proc, can_block)
        if handled:
            # The tracer absorbed the overrun (e.g. shed the checker); the
            # victim was not OOM-killed.
            return
        proc.oom_killed = True
        self.stats["oom_kills"] += 1
        if self.trace.enabled:
            self.trace.emit(tev.OOM, pid=proc.pid, needed=needed,
                            resident=self.pool.resident_bytes,
                            budget=self.pool.budget_bytes)
        if proc.alive:
            self.kill_process(proc, abi.SIGKILL)

    def reap(self, proc: Process) -> None:
        """Release a zombie's (or a paused checkpoint's) resources."""
        if proc.state == ProcessState.DEAD:
            return
        proc.mem.destroy()
        proc.state = ProcessState.DEAD
        if self.trace.enabled:
            self.trace.emit(tev.PROCESS_REAP, pid=proc.pid)

    def live_processes(self) -> List[Process]:
        return [p for p in self.processes.values() if p.alive]

    def rollback_to_checkpoint(self, old_main: Process,
                               checkpoint: Process) -> Process:
        """Checkpoint-restore: replace ``old_main`` with ``checkpoint``.

        The checkpoint is a paused COW fork taken at a verified boundary;
        restoring it is just unpausing that fork while the corrupted
        process is killed and reaped (rr-style user-space restore — no
        state copying happens here, the fork already holds it).  The
        caller re-wires roles, cores and tracer bookkeeping.
        """
        old_main.tracer = None          # no exit/ptrace hooks for the corpse
        if old_main.alive:
            self.exit_process(old_main, 128 + abi.SIGKILL)
        self.reap(old_main)
        checkpoint.state = ProcessState.RUNNING
        self.stats["rollbacks"] += 1
        return checkpoint

    def promote_process(self, old_main: Process,
                        new_main: Process) -> Process:
        """Forward recovery: replace ``old_main`` with a live replica.

        Mechanically the same user-space swap as
        :meth:`rollback_to_checkpoint` — kill and reap the outvoted
        process, let the replica run on — but it is *not* a rollback:
        the replica already sits at (or past) the verified boundary, so
        no committed work is re-executed and the rollback counter stays
        untouched.  The caller re-wires roles, cores and tracers.
        """
        old_main.tracer = None          # no exit/ptrace hooks for the corpse
        if old_main.alive:
            self.exit_process(old_main, 128 + abi.SIGKILL)
        self.reap(old_main)
        new_main.state = ProcessState.RUNNING
        return new_main

    # -- tracing ---------------------------------------------------------------------

    def attach_tracer(self, proc: Process, tracer: Tracer) -> None:
        proc.tracer = tracer

    def _charge_trace_stop(self) -> float:
        self.stats["trace_stops"] += 1
        return self.costs.trace_stop_cycles

    # -- nondet / counters --------------------------------------------------------------

    def _make_nondet(self) -> NondetSource:
        proc_box: List[Optional[Process]] = [None]

        def core_of():
            return proc_box[0].core if proc_box[0] is not None else None

        source = NondetSource(self.now, core_of)
        source._proc_box = proc_box  # filled by caller via bind_nondet
        return source

    @staticmethod
    def bind_nondet(proc: Process) -> None:
        """Point the process's nondet source at itself (call after ctor)."""
        proc.nondet._proc_box[0] = proc

    def _make_skid_fn(self) -> Callable[[], int]:
        rng = self.rng.stream("skid")
        model = self.counters

        def draw() -> int:
            if model.skid_max <= 0 or rng.random() >= model.skid_probability:
                return 0
            return rng.randint(1, model.skid_max)

        return draw

    def _inject_overcount(self, proc: Process) -> None:
        """Instruction-counter overcount on a trap return (paper §4.2.1)."""
        maximum = self.counters.instr_overcount_max
        if maximum > 0:
            proc.cpu.instr_overcount += \
                self.rng.stream("overcount").randint(0, maximum)

    # -- syscall handling -----------------------------------------------------------------

    def handle_syscall(self, proc: Process) -> float:
        """Process a SYSCALL stop.  Returns the cost in hw cycles.

        Retires the syscall instruction (pc advance, far-branch count,
        instruction-counter overcount), runs tracer entry/exit hooks, and
        either executes or emulates the call.
        """
        regs = proc.cpu.regs.gprs
        sysno = regs[0]
        args = tuple(regs[1:6])
        cost = self.costs.syscall_cycles()
        action: Optional[SyscallAction] = None
        if proc.tracer is not None:
            cost += self._charge_trace_stop()
            action = proc.tracer.on_syscall_entry(proc, sysno, args)
            # The tracer may have rewritten the argument registers.
            sysno = proc.cpu.regs.gprs[0]
            args = tuple(proc.cpu.regs.gprs[1:6])

        if not proc.runnable or not proc.alive:
            # The tracer stalled (or killed) the tracee at syscall entry:
            # nothing executes or retires; the same syscall re-stops when
            # the process resumes (checker record-starvation, paper §2.3).
            return cost

        if action is not None and action.kind == SyscallAction.EMULATE:
            result = action.result
        else:
            result, extra = self._dispatch(proc, sysno, args)
            cost += extra

        self.stats["syscalls"] += 1
        if proc.alive:
            proc.cpu.regs.gprs[0] = result
            proc.cpu.pc += 4
            proc.cpu.instr_retired += 1
            proc.cpu.far_branches_retired += 1
            self._inject_overcount(proc)
        if proc.tracer is not None:
            cost += self._charge_trace_stop()
            proc.tracer.on_syscall_exit(proc, sysno, args,
                                        result if proc.alive else 0)
        return cost

    def _dispatch(self, proc: Process, sysno: int,
                  args: Tuple[int, ...]) -> Tuple[int, float]:
        """Execute a syscall; returns (result, extra cost cycles)."""
        handler = self._SYSCALLS.get(sysno)
        if handler is None:
            return -abi.ENOSYS, 0.0
        try:
            return handler(self, proc, args)
        except PageFault:
            return -abi.EFAULT, 0.0
        except FramePoolExhausted as exc:
            self.oom_kill(proc, exc.needed)
            return -abi.ENOMEM, 0.0

    # individual syscalls ------------------------------------------------------

    def _sys_read(self, proc, args):
        fd, addr, length = args[0], args[1], args[2]
        file_object = proc.fds.get(fd)
        if file_object is None:
            return -abi.EBADF, 0.0
        if length < 0:
            return -abi.EINVAL, 0.0
        data = file_object.read(length)
        proc.mem.write_bytes(addr, data)
        return len(data), len(data) * self.costs.syscall_per_byte_cycles

    def _sys_write(self, proc, args):
        fd, addr, length = args[0], args[1], args[2]
        file_object = proc.fds.get(fd)
        if file_object is None:
            return -abi.EBADF, 0.0
        if length < 0:
            return -abi.EINVAL, 0.0
        data = proc.mem.read_bytes(addr, length)
        written = file_object.write(data)
        return written, length * self.costs.syscall_per_byte_cycles

    def _sys_open(self, proc, args):
        addr, length = args[0], args[1]
        path = proc.mem.read_bytes(addr, length).decode("utf-8",
                                                        errors="replace")
        file_object = self.vfs.open(path)
        if file_object is None:
            return -abi.ENOENT, 0.0
        return proc.install_fd(file_object), 0.0

    def _sys_close(self, proc, args):
        fd = args[0]
        if fd not in proc.fds:
            return -abi.EBADF, 0.0
        del proc.fds[fd]
        return 0, 0.0

    def _sys_mmap(self, proc, args):
        addr, length, prot, flags, fd = args
        if length <= 0:
            return -abi.EINVAL, 0.0
        content = b""
        if not flags & MAP_ANONYMOUS and fd >= 0:
            file_object = proc.fds.get(fd)
            if file_object is None:
                return -abi.EBADF, 0.0
            if not file_object.mappable:
                return -abi.EINVAL, 0.0
            content = file_object.content()[:length]
        try:
            base = proc.mem.mmap(addr, length, prot, flags,
                                 name="" if flags & MAP_ANONYMOUS else "file")
        except FramePoolExhausted:
            raise
        except Exception:
            return -abi.EINVAL, 0.0
        if content:
            proc.mem.write_bytes(base, content, force=True)
        pages = -(-length // self.page_size)
        return base, pages * 40.0

    def _sys_mprotect(self, proc, args):
        addr, length, prot = args[0], args[1], args[2]
        try:
            proc.mem.mprotect(addr, length, prot)
        except Exception:
            return -abi.EINVAL, 0.0
        return 0, 0.0

    def _sys_munmap(self, proc, args):
        addr, length = args[0], args[1]
        try:
            proc.mem.munmap(addr, length)
        except Exception:
            return -abi.EINVAL, 0.0
        return 0, 0.0

    def _sys_brk(self, proc, args):
        return proc.mem.brk(args[0]), 0.0

    def _sys_getpid(self, proc, args):
        return proc.pid, 0.0

    def _sys_exit(self, proc, args):
        self.exit_process(proc, args[0])
        return 0, 0.0

    def _sys_kill(self, proc, args):
        pid, signo = args[0], args[1]
        target = self.processes.get(pid)
        if target is None or not target.alive:
            return -abi.EINVAL, 0.0
        self.send_signal(target, signo, external=target is not proc)
        return 0, 0.0

    def _sys_gettimeofday(self, proc, args):
        # Returns microseconds of virtual time: nondeterministic between
        # main and checker (different invocation times) -> non-effectful
        # syscall that must be record/replayed (paper §4.3.1).
        return int(self.now() * 1_000_000), 0.0

    def _sys_sigaction(self, proc, args):
        signo, handler = args[0], args[1]
        if signo <= 0 or signo >= 32 or signo == abi.SIGKILL:
            return -abi.EINVAL, 0.0
        if handler == 0:
            proc.signal_handlers.pop(signo, None)
        else:
            proc.signal_handlers[signo] = handler
        return 0, 0.0

    def _sys_prctl(self, proc, args):
        return 0, 0.0

    def _sys_getrandom(self, proc, args):
        addr, length = args[0], args[1]
        if length < 0:
            return -abi.EINVAL, 0.0
        rng = self.rng.stream("getrandom")
        data = bytes(rng.getrandbits(8) for _ in range(length))
        proc.mem.write_bytes(addr, data)
        return length, length * self.costs.syscall_per_byte_cycles

    _SYSCALLS = {
        abi.SYS_READ: _sys_read,
        abi.SYS_WRITE: _sys_write,
        abi.SYS_OPEN: _sys_open,
        abi.SYS_CLOSE: _sys_close,
        abi.SYS_MMAP: _sys_mmap,
        abi.SYS_MPROTECT: _sys_mprotect,
        abi.SYS_MUNMAP: _sys_munmap,
        abi.SYS_BRK: _sys_brk,
        abi.SYS_GETPID: _sys_getpid,
        abi.SYS_EXIT: _sys_exit,
        abi.SYS_KILL: _sys_kill,
        abi.SYS_GETTIMEOFDAY: _sys_gettimeofday,
        abi.SYS_SIGACTION: _sys_sigaction,
        abi.SYS_PRCTL: _sys_prctl,
        abi.SYS_GETRANDOM: _sys_getrandom,
    }

    # -- signals --------------------------------------------------------------------------------

    def send_signal(self, proc: Process, signo: int,
                    external: bool = False) -> None:
        """Queue a signal; delivery happens at the next quantum boundary."""
        if not proc.alive:
            return
        proc.pending_signals.append((signo, external))

    def deliver_pending_signal(self, proc: Process) -> float:
        """Deliver one pending signal if possible; returns cost cycles."""
        if not proc.pending_signals or proc.signal_context is not None:
            return 0.0
        signo, external = proc.pending_signals.pop(0)
        cost = 0.0
        if proc.tracer is not None:
            cost += self._charge_trace_stop()
            if not proc.tracer.on_signal(proc, signo, external):
                return cost  # tracer took ownership (defers/replays it)
        return cost + self.deliver_signal_now(proc, signo)

    def deliver_signal_now(self, proc: Process, signo: int) -> float:
        """Deliver a signal immediately: run handler or apply the default."""
        if not proc.alive:
            return 0.0
        self.stats["signals_delivered"] += 1
        handler = proc.signal_handlers.get(signo)
        if handler is None:
            if signo in abi.FATAL_SIGNALS:
                self.kill_process(proc, signo)
            return self.costs.signal_delivery_cycles
        if proc.signal_context is not None:
            # Already in a handler: keep pending (no nesting).
            proc.pending_signals.insert(0, (signo, False))
            return 0.0
        cpu = proc.cpu
        proc.signal_context = SignalContext(
            cpu.pc, cpu.regs.snapshot(), cpu.regs.gprs[14])
        cpu.regs.gprs[1] = signo
        cpu.regs.gprs[14] = SIGRETURN_ADDR
        cpu.pc = handler
        self._inject_overcount(proc)
        return self.costs.signal_delivery_cycles

    def sigreturn(self, proc: Process) -> None:
        """Restore the context interrupted by a signal handler."""
        context = proc.signal_context
        if context is None:
            raise KernelError(f"pid {proc.pid}: sigreturn with no context")
        proc.cpu.regs.load_snapshot(context.regs_snapshot)
        proc.cpu.pc = context.pc
        proc.signal_context = None

    @staticmethod
    def is_sigreturn_fault(fault) -> bool:
        return (fault is not None and fault.address == SIGRETURN_ADDR
                and fault.detail == "exec")

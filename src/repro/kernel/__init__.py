"""Kernel model: processes, COW fork, syscalls, signals, ptrace tracing."""

from repro.kernel.costs import KernelCostModel
from repro.kernel.kernel import CounterModel, Kernel
from repro.kernel.process import Process, ProcessState, SIGRETURN_ADDR
from repro.kernel.ptrace import SyscallAction, Tracer
from repro.kernel.vfs import Console, DevUrandom, DevZero, MemFile, NullSink, Vfs

__all__ = [
    "Kernel",
    "KernelCostModel",
    "CounterModel",
    "Process",
    "ProcessState",
    "SIGRETURN_ADDR",
    "SyscallAction",
    "Tracer",
    "Console",
    "DevZero",
    "DevUrandom",
    "MemFile",
    "NullSink",
    "Vfs",
]

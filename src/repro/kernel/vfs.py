"""A minimal virtual filesystem.

Provides exactly what the workloads and the evaluation need: a console that
captures program output (correctness oracle for fault injection), byte
devices (``/dev/zero``, ``/dev/urandom``), and named in-memory input files
the benchmark harness registers (SPEC-style input sets; also the target of
file-backed ``mmap``, whose handling Parallaft special-cases, paper §4.3.2).
"""

from __future__ import annotations

import random
from typing import Dict, Optional


class FileObject:
    """Base file object.  Positions are per-open-file (per-process after
    fork the description is duplicated, like O_CLOEXEC-less CLONE)."""

    name = "?"
    mappable = False

    def read(self, length: int) -> bytes:
        raise NotImplementedError

    def write(self, data: bytes) -> int:
        raise NotImplementedError

    def content(self) -> bytes:
        """Full backing content, for file-backed mmap."""
        raise NotImplementedError

    def clone(self) -> "FileObject":
        """Duplicate for fork (independent offset)."""
        return self


class Console(FileObject):
    """Write-only sink capturing program output."""

    def __init__(self, label: str = "stdout"):
        self.name = label
        self.buffer = bytearray()

    def read(self, length: int) -> bytes:
        return b""

    def write(self, data: bytes) -> int:
        self.buffer.extend(data)
        return len(data)

    def text(self) -> str:
        return self.buffer.decode("utf-8", errors="replace")

    def mark(self) -> int:
        """Current buffer position, for later :meth:`truncate`."""
        return len(self.buffer)

    def truncate(self, mark: int) -> int:
        """Discard everything written after ``mark``; returns bytes dropped.

        Used by checkpoint rollback: output a discarded execution produced
        must not escape the sphere of replication, so the console models a
        commit-on-verify buffer.
        """
        dropped = len(self.buffer) - mark
        if dropped > 0:
            del self.buffer[mark:]
        return max(dropped, 0)


class NullSink(FileObject):
    """Console stand-in for checker processes whose output must not reach
    the outside world twice (Parallaft replays write results instead)."""

    name = "null"

    def read(self, length: int) -> bytes:
        return b""

    def write(self, data: bytes) -> int:
        return len(data)


class DevZero(FileObject):
    name = "/dev/zero"

    def read(self, length: int) -> bytes:
        return b"\x00" * length

    def write(self, data: bytes) -> int:
        return len(data)


class DevUrandom(FileObject):
    """Nondeterministic byte stream (deterministic per kernel seed, but
    *different on every read*, so main and checker reads diverge unless
    record/replayed)."""

    name = "/dev/urandom"

    def __init__(self, rng: random.Random):
        self._rng = rng

    def read(self, length: int) -> bytes:
        return bytes(self._rng.getrandbits(8) for _ in range(length))

    def write(self, data: bytes) -> int:
        return len(data)


class MemFile(FileObject):
    """In-memory regular file with an independent offset per open."""

    mappable = True

    def __init__(self, name: str, data: bytes, offset: int = 0):
        self.name = name
        self._data = bytes(data)
        self._offset = offset

    def read(self, length: int) -> bytes:
        chunk = self._data[self._offset:self._offset + length]
        self._offset += len(chunk)
        return chunk

    def write(self, data: bytes) -> int:
        prefix = self._data[:self._offset]
        suffix = self._data[self._offset + len(data):]
        self._data = prefix + bytes(data) + suffix
        self._offset += len(data)
        return len(data)

    def content(self) -> bytes:
        return self._data

    def clone(self) -> "MemFile":
        return MemFile(self.name, self._data, self._offset)


class Vfs:
    """Path registry: devices plus harness-registered input files."""

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._files: Dict[str, bytes] = {}

    def register(self, path: str, data: bytes) -> None:
        self._files[path] = bytes(data)

    def open(self, path: str) -> Optional[FileObject]:
        if path == "/dev/zero":
            return DevZero()
        if path == "/dev/urandom":
            return DevUrandom(self._rng)
        if path in self._files:
            return MemFile(path, self._files[path])
        return None

"""Code generator: mini-C AST -> repro ISA assembly text.

Produces assembler source (see :mod:`repro.isa.assembler`), which keeps the
compiler honest: everything it emits must survive the assembler's checks.

Conventions (see :mod:`repro.abi`):

* expression temporaries: ``r1``–``r6`` (ints) and ``f0``–``f5`` (floats),
  caller-saved; live temporaries are pushed around calls;
* locals: integer locals live in callee-saved ``r7``–``r12`` (declaration
  order, params first), overflowing to frame slots; float locals always live
  in frame slots;
* frame: ``fp`` points at the saved-fp slot; locals at ``fp-8``, ``fp-16``…;
* results: ``r0`` (int) / ``f0`` (float).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple, Union

from repro import abi
from repro.common.errors import CompileError
from repro.minic import ast_nodes as ast

_INT_TEMPS = ["r1", "r2", "r3", "r4", "r5", "r6"]
# f0 is the float return/first-argument register and must not live in the
# temp pool: a spilled pool temp restored after a call would clobber the
# callee's f0 result.
_FLOAT_TEMPS = ["f1", "f2", "f3", "f4", "f5"]
_CALLEE_SAVED = ["r7", "r8", "r9", "r10", "r11", "r12"]

#: Syscall-wrapper intrinsics: name -> (syscall number, arg count, returns)
_SYSCALL_INTRINSICS = {
    "read": (abi.SYS_READ, 3),
    "write": (abi.SYS_WRITE, 3),
    "close": (abi.SYS_CLOSE, 1),
    "munmap": (abi.SYS_MUNMAP, 2),
    "getpid": (abi.SYS_GETPID, 0),
    "exit": (abi.SYS_EXIT, 1),
    "kill": (abi.SYS_KILL, 2),
    "gettimeofday": (abi.SYS_GETTIMEOFDAY, 0),
    "prctl": (abi.SYS_PRCTL, 2),
    "getrandom": (abi.SYS_GETRANDOM, 2),
    "sigaction": (abi.SYS_SIGACTION, 2),
}

_OTHER_INTRINSICS = frozenset({
    "float", "int", "addr", "peek8", "poke8", "peek64", "poke64",
    "peekf", "pokef", "rdtsc", "cpu_model", "cpuid", "sbrk",
    "mmap_anon", "mmap_file", "open", "print_str",
})


class _Storage:
    """Where a local variable lives."""

    __slots__ = ("kind", "reg", "offset", "is_float")

    def __init__(self, kind: str, is_float: bool, reg: str = "",
                 offset: int = 0):
        self.kind = kind          # 'reg' or 'frame'
        self.reg = reg
        self.offset = offset      # fp-relative, negative
        self.is_float = is_float


class _GlobalInfo:
    __slots__ = ("label", "is_float", "is_array", "size")

    def __init__(self, label: str, is_float: bool, is_array: bool, size: int):
        self.label = label
        self.is_float = is_float
        self.is_array = is_array
        self.size = size


class CodeGenerator:
    def __init__(self, module: ast.Module):
        self._module = module
        self._globals: Dict[str, _GlobalInfo] = {}
        self._functions = {fn.name for fn in module.functions}
        self._strings: Dict[str, Tuple[str, int]] = {}  # literal -> (label, len)
        self._data_lines: List[str] = []
        self._text_lines: List[str] = []
        self._label_counter = 0
        # per-function state
        self._locals: Dict[str, _Storage] = {}
        self._frame_slots = 0
        self._used_callee: List[str] = []
        self._int_free: List[str] = []
        self._float_free: List[str] = []
        self._int_live: List[str] = []
        self._float_live: List[str] = []
        self._loop_stack: List[Tuple[str, str]] = []  # (continue, break)
        self._return_label = ""

    # -- public entry --------------------------------------------------------

    def generate(self) -> str:
        for decl in self._module.globals:
            self._declare_global(decl)
        self._collect_strings()
        self._emit_start()
        for fn in self._module.functions:
            self._gen_function(fn)
        lines = []
        if self._data_lines:
            lines.append(".data")
            lines.extend(self._data_lines)
        lines.append(".text")
        lines.extend(self._text_lines)
        return "\n".join(lines) + "\n"

    # -- data section -----------------------------------------------------------

    def _declare_global(self, decl: ast.GlobalDecl) -> None:
        if decl.name in self._globals:
            raise CompileError(f"duplicate global {decl.name!r}", decl.line)
        label = f"G_{decl.name}"
        size = decl.array_size if decl.array_size is not None else 1
        self._globals[decl.name] = _GlobalInfo(
            label, decl.is_float, decl.array_size is not None, size)
        values = list(decl.init or [])
        if len(values) > size:
            raise CompileError(
                f"initializer too long for {decl.name!r}", decl.line)
        encoded = [self._encode_const(v, decl.is_float) for v in values]
        if encoded:
            self._data_lines.append(
                f"{label}: .word " + ", ".join(str(v) for v in encoded))
            remaining = size - len(encoded)
            if remaining:
                self._data_lines.append(f"    .space {8 * remaining}")
        else:
            self._data_lines.append(f"{label}: .space {8 * size}")

    @staticmethod
    def _encode_const(value: Union[int, float], is_float: bool) -> int:
        if is_float:
            return int.from_bytes(struct.pack("<d", float(value)), "little")
        return int(value)

    def _collect_strings(self) -> None:
        def visit_expr(expr) -> None:
            if isinstance(expr, ast.StrLit):
                self._intern_string(expr.value)
            elif isinstance(expr, ast.Unary):
                visit_expr(expr.operand)
            elif isinstance(expr, ast.Binary):
                visit_expr(expr.left)
                visit_expr(expr.right)
            elif isinstance(expr, ast.Index):
                visit_expr(expr.index)
            elif isinstance(expr, ast.Call):
                for arg in expr.args:
                    visit_expr(arg)

        def visit_stmt(stmt) -> None:
            if isinstance(stmt, ast.VarDecl) and stmt.init is not None:
                visit_expr(stmt.init)
            elif isinstance(stmt, ast.Assign):
                if isinstance(stmt.target, ast.Index):
                    visit_expr(stmt.target.index)
                visit_expr(stmt.value)
            elif isinstance(stmt, ast.If):
                visit_expr(stmt.cond)
                for child in stmt.then_body + stmt.else_body:
                    visit_stmt(child)
            elif isinstance(stmt, ast.While):
                visit_expr(stmt.cond)
                for child in stmt.body:
                    visit_stmt(child)
            elif isinstance(stmt, ast.For):
                if stmt.init:
                    visit_stmt(stmt.init)
                if stmt.cond:
                    visit_expr(stmt.cond)
                if stmt.step:
                    visit_stmt(stmt.step)
                for child in stmt.body:
                    visit_stmt(child)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                visit_expr(stmt.value)
            elif isinstance(stmt, ast.ExprStmt):
                visit_expr(stmt.expr)

        for fn in self._module.functions:
            for stmt in fn.body:
                visit_stmt(stmt)

    def _intern_string(self, text: str) -> Tuple[str, int]:
        if text not in self._strings:
            label = f"S_{len(self._strings)}"
            escaped = (text.replace("\\", "\\\\").replace('"', '\\"')
                       .replace("\n", "\\n").replace("\t", "\\t")
                       .replace("\0", "\\0"))
            self._data_lines.append(f'{label}: .ascii "{escaped}"')
            data = text.encode("utf-8")
            self._data_lines.append(".align 8")
            self._strings[text] = (label, len(data))
        return self._strings[text]

    # -- labels / emission ---------------------------------------------------------

    def _emit(self, line: str) -> None:
        self._text_lines.append(f"    {line}")

    def _emit_label(self, label: str) -> None:
        self._text_lines.append(f"{label}:")

    def _new_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f"{hint}_{self._label_counter}"

    def _emit_start(self) -> None:
        if "main" not in self._functions:
            raise CompileError("no 'main' function")
        self._emit_label("_start")
        self._emit("call F_main")
        self._emit("mov r1, r0")
        self._emit(f"li r0, {abi.SYS_EXIT}")
        self._emit("syscall")
        self._emit("halt")

    # -- temporaries -----------------------------------------------------------------

    def _alloc_int(self, line: int) -> str:
        if not self._int_free:
            raise CompileError(
                "integer expression too deep (temp registers exhausted)", line)
        reg = self._int_free.pop(0)
        self._int_live.append(reg)
        return reg

    def _alloc_float(self, line: int) -> str:
        if not self._float_free:
            raise CompileError(
                "float expression too deep (temp registers exhausted)", line)
        reg = self._float_free.pop(0)
        self._float_live.append(reg)
        return reg

    def _free(self, reg: str) -> None:
        if reg in self._int_live:
            self._int_live.remove(reg)
            self._int_free.insert(0, reg)
        elif reg in self._float_live:
            self._float_live.remove(reg)
            self._float_free.insert(0, reg)
        else:
            raise AssertionError(f"freeing non-live temp {reg}")

    def _push(self, reg: str) -> None:
        self._emit("addi sp, sp, -8")
        if reg.startswith("f"):
            self._emit(f"fst {reg}, sp, 0")
        else:
            self._emit(f"st {reg}, sp, 0")

    def _pop(self, reg: str) -> None:
        if reg.startswith("f"):
            self._emit(f"fld {reg}, sp, 0")
        else:
            self._emit(f"ld {reg}, sp, 0")
        self._emit("addi sp, sp, 8")

    # -- functions --------------------------------------------------------------------

    def _gen_function(self, fn: ast.FuncDecl) -> None:
        self._locals = {}
        self._frame_slots = 0
        self._used_callee = []
        self._int_free = list(_INT_TEMPS)
        self._float_free = list(_FLOAT_TEMPS)
        self._int_live = []
        self._float_live = []
        self._loop_stack = []
        self._return_label = self._new_label(f"Ret_{fn.name}")

        if len(fn.params) > 6:
            raise CompileError(f"too many parameters in {fn.name!r}", fn.line)

        self._assign_storage(fn)

        body_lines: List[str] = []
        saved_text = self._text_lines
        self._text_lines = body_lines
        try:
            # Move params from argument registers into their homes.
            int_index, float_index = 1, 0
            for param in fn.params:
                storage = self._locals[param.name]
                if param.is_float:
                    src = f"f{float_index}"
                    float_index += 1
                    self._emit(f"fst {src}, fp, {storage.offset}")
                else:
                    src = f"r{int_index}"
                    int_index += 1
                    if storage.kind == "reg":
                        self._emit(f"mov {storage.reg}, {src}")
                    else:
                        self._emit(f"st {src}, fp, {storage.offset}")
            for stmt in fn.body:
                self._gen_stmt(stmt)
            # Implicit `return 0` falls through.
            self._emit("li r0, 0")
        finally:
            self._text_lines = saved_text

        # Prologue.
        self._emit_label(f"F_{fn.name}")
        self._emit("addi sp, sp, -16")
        self._emit("st lr, sp, 8")
        self._emit("st fp, sp, 0")
        self._emit("mov fp, sp")
        frame_bytes = 8 * self._frame_slots + 8 * len(self._used_callee)
        if frame_bytes:
            self._emit(f"addi sp, sp, -{frame_bytes}")
        for i, reg in enumerate(self._used_callee):
            offset = -8 * self._frame_slots - 8 * (i + 1)
            self._emit(f"st {reg}, fp, {offset}")
        self._text_lines.extend(body_lines)
        # Epilogue.
        self._emit_label(self._return_label)
        for i, reg in enumerate(self._used_callee):
            offset = -8 * self._frame_slots - 8 * (i + 1)
            self._emit(f"ld {reg}, fp, {offset}")
        self._emit("mov sp, fp")
        self._emit("ld fp, sp, 0")
        self._emit("ld lr, sp, 8")
        self._emit("addi sp, sp, 16")
        self._emit("ret")

    def _assign_storage(self, fn: ast.FuncDecl) -> None:
        """Pre-scan declarations so every local has a home before codegen."""
        decls: List[Tuple[str, bool, int]] = [
            (p.name, p.is_float, fn.line) for p in fn.params]

        def scan(stmts) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.VarDecl):
                    decls.append((stmt.name, stmt.is_float, stmt.line))
                elif isinstance(stmt, ast.If):
                    scan(stmt.then_body)
                    scan(stmt.else_body)
                elif isinstance(stmt, ast.While):
                    scan(stmt.body)
                elif isinstance(stmt, ast.For):
                    if stmt.init:
                        scan([stmt.init])
                    if stmt.step:
                        scan([stmt.step])
                    scan(stmt.body)

        scan(fn.body)
        callee_pool = list(_CALLEE_SAVED)
        param_names = {p.name for p in fn.params}
        for name, is_float, line in decls:
            if name in self._locals:
                raise CompileError(f"duplicate local {name!r}", line)
            # Locals may shadow globals (lookup checks locals first).
            if is_float or not callee_pool:
                self._frame_slots += 1
                self._locals[name] = _Storage(
                    "frame", is_float, offset=-8 * self._frame_slots)
            else:
                reg = callee_pool.pop(0)
                self._used_callee.append(reg)
                self._locals[name] = _Storage("reg", is_float, reg=reg)

    # -- statements -----------------------------------------------------------------------

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._gen_assign_to_local(stmt.name, stmt.init, stmt.line)
        elif isinstance(stmt, ast.Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg, is_float = self._gen_expr(stmt.value)
                if is_float:
                    if reg != "f0":
                        self._emit(f"fmov f0, {reg}")
                else:
                    self._emit(f"mov r0, {reg}")
                self._free(reg)
            else:
                self._emit("li r0, 0")
            self._emit(f"jmp {self._return_label}")
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise CompileError("break outside loop", stmt.line)
            self._emit(f"jmp {self._loop_stack[-1][1]}")
        elif isinstance(stmt, ast.Continue):
            if not self._loop_stack:
                raise CompileError("continue outside loop", stmt.line)
            self._emit(f"jmp {self._loop_stack[-1][0]}")
        elif isinstance(stmt, ast.ExprStmt):
            reg, _ = self._gen_expr(stmt.expr)
            self._free(reg)
        else:
            raise CompileError(f"unhandled statement {type(stmt).__name__}")

    def _gen_assign_to_local(self, name: str, value: ast.Expr,
                             line: int) -> None:
        storage = self._locals.get(name)
        if storage is None:
            raise CompileError(f"undeclared variable {name!r}", line)
        reg, is_float = self._gen_expr(value)
        if is_float != storage.is_float:
            raise CompileError(
                f"type mismatch assigning to {name!r} "
                "(use float()/int() to convert)", line)
        if storage.kind == "reg":
            self._emit(f"mov {storage.reg}, {reg}")
        elif storage.is_float:
            self._emit(f"fst {reg}, fp, {storage.offset}")
        else:
            self._emit(f"st {reg}, fp, {storage.offset}")
        self._free(reg)

    def _gen_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Var):
            if target.name in self._locals:
                self._gen_assign_to_local(target.name, stmt.value, stmt.line)
                return
            info = self._globals.get(target.name)
            if info is None:
                raise CompileError(
                    f"undeclared variable {target.name!r}", stmt.line)
            if info.is_array:
                raise CompileError(
                    f"cannot assign whole array {target.name!r}", stmt.line)
            reg, is_float = self._gen_expr(stmt.value)
            if is_float != info.is_float:
                raise CompileError(
                    f"type mismatch assigning to {target.name!r}", stmt.line)
            addr = self._alloc_int(stmt.line)
            self._emit(f"la {addr}, {info.label}")
            if info.is_float:
                self._emit(f"fst {reg}, {addr}, 0")
            else:
                self._emit(f"st {reg}, {addr}, 0")
            self._free(addr)
            self._free(reg)
            return
        # Array element.
        info = self._globals.get(target.name)
        if info is None or not info.is_array:
            raise CompileError(f"{target.name!r} is not an array", stmt.line)
        addr = self._gen_element_address(info, target.index, stmt.line)
        reg, is_float = self._gen_expr(stmt.value)
        if is_float != info.is_float:
            raise CompileError(
                f"type mismatch storing to {target.name!r}[]", stmt.line)
        if info.is_float:
            self._emit(f"fst {reg}, {addr}, 0")
        else:
            self._emit(f"st {reg}, {addr}, 0")
        self._free(reg)
        self._free(addr)

    def _gen_element_address(self, info: _GlobalInfo, index: ast.Expr,
                             line: int) -> str:
        idx_reg, idx_float = self._gen_expr(index)
        if idx_float:
            raise CompileError("array index must be an integer", line)
        self._emit(f"slli {idx_reg}, {idx_reg}, 3")
        addr = self._alloc_int(line)
        self._emit(f"la {addr}, {info.label}")
        self._emit(f"add {addr}, {addr}, {idx_reg}")
        self._free(idx_reg)
        return addr

    def _gen_cond_branch_false(self, cond: ast.Expr, target: str,
                               line: int) -> None:
        reg, is_float = self._gen_expr(cond)
        if is_float:
            raise CompileError("condition must be an integer", line)
        zero = self._alloc_int(line)
        self._emit(f"li {zero}, 0")
        self._emit(f"beq {reg}, {zero}, {target}")
        self._free(zero)
        self._free(reg)

    def _gen_if(self, stmt: ast.If) -> None:
        else_label = self._new_label("Else")
        end_label = self._new_label("Endif")
        self._gen_cond_branch_false(
            stmt.cond, else_label if stmt.else_body else end_label, stmt.line)
        for child in stmt.then_body:
            self._gen_stmt(child)
        if stmt.else_body:
            self._emit(f"jmp {end_label}")
            self._emit_label(else_label)
            for child in stmt.else_body:
                self._gen_stmt(child)
        self._emit_label(end_label)

    def _gen_while(self, stmt: ast.While) -> None:
        head = self._new_label("While")
        end = self._new_label("Endwhile")
        self._emit_label(head)
        self._gen_cond_branch_false(stmt.cond, end, stmt.line)
        self._loop_stack.append((head, end))
        for child in stmt.body:
            self._gen_stmt(child)
        self._loop_stack.pop()
        self._emit(f"jmp {head}")
        self._emit_label(end)

    def _gen_for(self, stmt: ast.For) -> None:
        head = self._new_label("For")
        step_label = self._new_label("Forstep")
        end = self._new_label("Endfor")
        if stmt.init:
            self._gen_stmt(stmt.init)
        self._emit_label(head)
        if stmt.cond is not None:
            self._gen_cond_branch_false(stmt.cond, end, stmt.line)
        self._loop_stack.append((step_label, end))
        for child in stmt.body:
            self._gen_stmt(child)
        self._loop_stack.pop()
        self._emit_label(step_label)
        if stmt.step:
            self._gen_stmt(stmt.step)
        self._emit(f"jmp {head}")
        self._emit_label(end)

    # -- expressions ---------------------------------------------------------------------------

    def _gen_expr(self, expr: ast.Expr) -> Tuple[str, bool]:
        """Generate code; returns (temp register, is_float)."""
        if isinstance(expr, ast.IntLit):
            reg = self._alloc_int(expr.line)
            self._emit(f"li {reg}, {expr.value}")
            return reg, False
        if isinstance(expr, ast.FloatLit):
            reg = self._alloc_float(expr.line)
            self._emit(f"fli {reg}, {expr.value!r}")
            return reg, True
        if isinstance(expr, ast.StrLit):
            label, _ = self._intern_string(expr.value)
            reg = self._alloc_int(expr.line)
            self._emit(f"la {reg}, {label}")
            return reg, False
        if isinstance(expr, ast.Var):
            return self._gen_var(expr)
        if isinstance(expr, ast.Index):
            return self._gen_index(expr)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Call):
            return self._gen_call(expr)
        raise CompileError(f"unhandled expression {type(expr).__name__}")

    def _gen_var(self, expr: ast.Var) -> Tuple[str, bool]:
        storage = self._locals.get(expr.name)
        if storage is not None:
            if storage.is_float:
                reg = self._alloc_float(expr.line)
                self._emit(f"fld {reg}, fp, {storage.offset}")
                return reg, True
            reg = self._alloc_int(expr.line)
            if storage.kind == "reg":
                self._emit(f"mov {reg}, {storage.reg}")
            else:
                self._emit(f"ld {reg}, fp, {storage.offset}")
            return reg, False
        info = self._globals.get(expr.name)
        if info is None:
            raise CompileError(f"undeclared variable {expr.name!r}", expr.line)
        if info.is_array:
            # Bare array name evaluates to its base address.
            reg = self._alloc_int(expr.line)
            self._emit(f"la {reg}, {info.label}")
            return reg, False
        addr = self._alloc_int(expr.line)
        self._emit(f"la {addr}, {info.label}")
        if info.is_float:
            reg = self._alloc_float(expr.line)
            self._emit(f"fld {reg}, {addr}, 0")
            self._free(addr)
            return reg, True
        self._emit(f"ld {addr}, {addr}, 0")
        return addr, False

    def _gen_index(self, expr: ast.Index) -> Tuple[str, bool]:
        info = self._globals.get(expr.name)
        if info is None or not info.is_array:
            raise CompileError(f"{expr.name!r} is not an array", expr.line)
        addr = self._gen_element_address(info, expr.index, expr.line)
        if info.is_float:
            reg = self._alloc_float(expr.line)
            self._emit(f"fld {reg}, {addr}, 0")
            self._free(addr)
            return reg, True
        self._emit(f"ld {addr}, {addr}, 0")
        return addr, False

    def _gen_unary(self, expr: ast.Unary) -> Tuple[str, bool]:
        reg, is_float = self._gen_expr(expr.operand)
        if expr.op == "-":
            if is_float:
                zero = self._alloc_float(expr.line)
                self._emit(f"fli {zero}, 0.0")
                self._emit(f"fsub {reg}, {zero}, {reg}")
                self._free(zero)
            else:
                zero = self._alloc_int(expr.line)
                self._emit(f"li {zero}, 0")
                self._emit(f"sub {reg}, {zero}, {reg}")
                self._free(zero)
            return reg, is_float
        if is_float:
            raise CompileError(f"operator {expr.op!r} needs an integer",
                               expr.line)
        if expr.op == "!":
            zero = self._alloc_int(expr.line)
            self._emit(f"li {zero}, 0")
            self._emit(f"seq {reg}, {reg}, {zero}")
            self._free(zero)
            return reg, False
        if expr.op == "~":
            self._emit(f"xori {reg}, {reg}, -1")
            return reg, False
        raise CompileError(f"unknown unary operator {expr.op!r}", expr.line)

    _INT_BINOPS = {"+": "add", "-": "sub", "*": "mul", "/": "div",
                   "%": "mod", "&": "and", "|": "or", "^": "xor",
                   "<<": "sll", ">>": "sra"}
    _INT_CMPS = {"<": ("slt", False), "<=": ("sle", False),
                 ">": ("slt", True), ">=": ("sle", True),
                 "==": ("seq", False), "!=": ("sne", False)}
    _FLOAT_BINOPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
    _FLOAT_CMPS = {"<": ("flt", False), "<=": ("fle", False),
                   ">": ("flt", True), ">=": ("fle", True),
                   "==": ("feq", False)}

    def _gen_binary(self, expr: ast.Binary) -> Tuple[str, bool]:
        if expr.op in ("&&", "||"):
            return self._gen_logical(expr)
        left, left_float = self._gen_expr(expr.left)
        right, right_float = self._gen_expr(expr.right)
        if left_float != right_float:
            raise CompileError(
                "mixed int/float operands (use float()/int())", expr.line)
        if left_float:
            if expr.op in self._FLOAT_BINOPS:
                self._emit(f"{self._FLOAT_BINOPS[expr.op]} {left}, {left}, {right}")
                self._free(right)
                return left, True
            if expr.op == "!=":
                out = self._alloc_int(expr.line)
                self._emit(f"feq {out}, {left}, {right}")
                self._emit(f"xori {out}, {out}, 1")
                self._free(left)
                self._free(right)
                return out, False
            if expr.op in self._FLOAT_CMPS:
                mnemonic, swap = self._FLOAT_CMPS[expr.op]
                out = self._alloc_int(expr.line)
                a, b = (right, left) if swap else (left, right)
                self._emit(f"{mnemonic} {out}, {a}, {b}")
                self._free(left)
                self._free(right)
                return out, False
            raise CompileError(
                f"operator {expr.op!r} not supported on floats", expr.line)
        if expr.op in self._INT_BINOPS:
            self._emit(f"{self._INT_BINOPS[expr.op]} {left}, {left}, {right}")
            self._free(right)
            return left, False
        if expr.op in self._INT_CMPS:
            mnemonic, swap = self._INT_CMPS[expr.op]
            a, b = (right, left) if swap else (left, right)
            self._emit(f"{mnemonic} {left}, {a}, {b}")
            self._free(right)
            return left, False
        raise CompileError(f"unknown operator {expr.op!r}", expr.line)

    def _gen_logical(self, expr: ast.Binary) -> Tuple[str, bool]:
        result, is_float = self._gen_expr(expr.left)
        if is_float:
            raise CompileError("logical operands must be integers", expr.line)
        zero = self._alloc_int(expr.line)
        self._emit(f"li {zero}, 0")
        end = self._new_label("Lend")
        if expr.op == "&&":
            short = self._new_label("Land")
            self._emit(f"beq {result}, {zero}, {short}")
            right, right_float = self._gen_expr(expr.right)
            if right_float:
                raise CompileError("logical operands must be integers",
                                   expr.line)
            self._emit(f"sne {result}, {right}, {zero}")
            self._free(right)
            self._emit(f"jmp {end}")
            self._emit_label(short)
            self._emit(f"li {result}, 0")
        else:
            short = self._new_label("Lor")
            self._emit(f"bne {result}, {zero}, {short}")
            right, right_float = self._gen_expr(expr.right)
            if right_float:
                raise CompileError("logical operands must be integers",
                                   expr.line)
            self._emit(f"sne {result}, {right}, {zero}")
            self._free(right)
            self._emit(f"jmp {end}")
            self._emit_label(short)
            self._emit(f"li {result}, 1")
        self._emit_label(end)
        self._free(zero)
        return result, False

    # -- calls and intrinsics -----------------------------------------------------------------

    def _gen_call(self, expr: ast.Call) -> Tuple[str, bool]:
        name = expr.name
        if name == "float" or name == "int":
            return self._gen_conversion(expr)
        if name == "addr":
            return self._gen_addr(expr)
        if name in ("peek8", "peek64", "peekf", "poke8", "poke64", "pokef"):
            return self._gen_peek_poke(expr)
        if name in ("rdtsc", "cpu_model", "cpuid"):
            return self._gen_nondet(expr)
        if name == "sbrk":
            return self._gen_sbrk(expr)
        if name in ("mmap_anon", "mmap_file"):
            return self._gen_mmap(expr)
        if name == "open":
            return self._gen_open(expr)
        if name == "print_str":
            return self._gen_print_str(expr)
        if name in _SYSCALL_INTRINSICS:
            number, argc = _SYSCALL_INTRINSICS[name]
            if len(expr.args) != argc:
                raise CompileError(
                    f"{name} expects {argc} arguments", expr.line)
            return self._gen_syscall(number, expr.args, expr.line)
        if name not in self._functions:
            raise CompileError(f"call to undefined function {name!r}",
                               expr.line)
        return self._gen_user_call(expr)

    def _spill_live_temps(self) -> List[str]:
        spilled = list(self._int_live) + list(self._float_live)
        for reg in spilled:
            self._push(reg)
        for reg in list(self._int_live):
            self._int_live.remove(reg)
            self._int_free.append(reg)
        for reg in list(self._float_live):
            self._float_live.remove(reg)
            self._float_free.append(reg)
        return spilled

    def _restore_live_temps(self, spilled: List[str]) -> None:
        for reg in reversed(spilled):
            self._pop(reg)
        for reg in spilled:
            if reg.startswith("f"):
                self._float_free.remove(reg)
                self._float_live.append(reg)
            else:
                self._int_free.remove(reg)
                self._int_live.append(reg)

    def _eval_args_to_stack(self, args, line: int) -> List[bool]:
        """Evaluate arguments left-to-right, pushing each; returns is_float
        per argument."""
        kinds: List[bool] = []
        for arg in args:
            reg, is_float = self._gen_expr(arg)
            self._push(reg)
            self._free(reg)
            kinds.append(is_float)
        return kinds

    def _gen_syscall(self, number: int, args, line: int) -> Tuple[str, bool]:
        spilled = self._spill_live_temps()
        kinds = self._eval_args_to_stack(args, line)
        if any(kinds):
            raise CompileError("syscall arguments must be integers", line)
        for position in range(len(args) - 1, -1, -1):
            self._pop(f"r{position + 1}")
        self._emit(f"li r0, {number}")
        self._emit("syscall")
        self._restore_live_temps(spilled)
        result = self._alloc_int(line)
        self._emit(f"mov {result}, r0")
        return result, False

    def _gen_user_call(self, expr: ast.Call) -> Tuple[str, bool]:
        spilled = self._spill_live_temps()
        kinds = self._eval_args_to_stack(expr.args, expr.line)
        int_regs = [f"r{i}" for i in range(1, 7)]
        float_regs = [f"f{i}" for i in range(6)]
        targets = []
        int_index = float_index = 0
        for is_float in kinds:
            if is_float:
                targets.append(float_regs[float_index])
                float_index += 1
            else:
                targets.append(int_regs[int_index])
                int_index += 1
        for target in reversed(targets):
            self._pop(target)
        self._emit(f"call F_{expr.name}")
        self._restore_live_temps(spilled)
        # Results come back in r0/f0; we cannot know the callee's return
        # type, so calls are int-valued unless wrapped in float().
        result = self._alloc_int(expr.line)
        self._emit(f"mov {result}, r0")
        return result, False

    def _gen_conversion(self, expr: ast.Call) -> Tuple[str, bool]:
        if len(expr.args) != 1:
            raise CompileError(f"{expr.name} expects one argument", expr.line)
        # float(call(...)) converts the callee's f0 result: special-case a
        # direct user call so float-returning functions are usable.
        if (expr.name == "float" and isinstance(expr.args[0], ast.Call)
                and expr.args[0].name in self._functions):
            inner = self._gen_user_call(expr.args[0])
            self._free(inner[0])
            reg = self._alloc_float(expr.line)
            self._emit(f"fmov {reg}, f0")
            return reg, True
        operand, is_float = self._gen_expr(expr.args[0])
        if expr.name == "float":
            if is_float:
                return operand, True
            reg = self._alloc_float(expr.line)
            self._emit(f"fcvt {reg}, {operand}")
            self._free(operand)
            return reg, True
        if not is_float:
            return operand, False
        reg = self._alloc_int(expr.line)
        self._emit(f"icvt {reg}, {operand}")
        self._free(operand)
        return reg, False

    def _gen_addr(self, expr: ast.Call) -> Tuple[str, bool]:
        if len(expr.args) != 1 or not isinstance(expr.args[0], ast.Var):
            raise CompileError("addr() expects a global name", expr.line)
        info = self._globals.get(expr.args[0].name)
        if info is None:
            raise CompileError(
                f"addr() of unknown global {expr.args[0].name!r}", expr.line)
        reg = self._alloc_int(expr.line)
        self._emit(f"la {reg}, {info.label}")
        return reg, False

    def _gen_peek_poke(self, expr: ast.Call) -> Tuple[str, bool]:
        name = expr.name
        if name.startswith("peek"):
            if len(expr.args) != 1:
                raise CompileError(f"{name} expects one argument", expr.line)
            addr, is_float = self._gen_expr(expr.args[0])
            if is_float:
                raise CompileError("address must be an integer", expr.line)
            if name == "peek8":
                self._emit(f"ldb {addr}, {addr}, 0")
                return addr, False
            if name == "peek64":
                self._emit(f"ld {addr}, {addr}, 0")
                return addr, False
            reg = self._alloc_float(expr.line)
            self._emit(f"fld {reg}, {addr}, 0")
            self._free(addr)
            return reg, True
        if len(expr.args) != 2:
            raise CompileError(f"{name} expects two arguments", expr.line)
        addr, addr_float = self._gen_expr(expr.args[0])
        value, value_float = self._gen_expr(expr.args[1])
        if addr_float:
            raise CompileError("address must be an integer", expr.line)
        if name == "pokef":
            if not value_float:
                raise CompileError("pokef needs a float value", expr.line)
            self._emit(f"fst {value}, {addr}, 0")
        else:
            if value_float:
                raise CompileError(f"{name} needs an integer value", expr.line)
            mnemonic = "stb" if name == "poke8" else "st"
            self._emit(f"{mnemonic} {value}, {addr}, 0")
        self._free(value)
        self._emit(f"li {addr}, 0")
        return addr, False

    def _gen_nondet(self, expr: ast.Call) -> Tuple[str, bool]:
        if expr.args:
            raise CompileError(f"{expr.name} takes no arguments", expr.line)
        reg = self._alloc_int(expr.line)
        if expr.name == "rdtsc":
            self._emit(f"rdtsc {reg}")
        elif expr.name == "cpu_model":
            self._emit(f"mrs {reg}, 0")
        else:
            self._emit(f"cpuid {reg}")
        return reg, False

    def _gen_sbrk(self, expr: ast.Call) -> Tuple[str, bool]:
        if len(expr.args) != 1:
            raise CompileError("sbrk expects one argument", expr.line)
        spilled = self._spill_live_temps()
        self._eval_args_to_stack(expr.args, expr.line)
        self._pop("r2")  # requested size
        self._emit("li r1, 0")
        self._emit(f"li r0, {abi.SYS_BRK}")
        self._emit("syscall")           # r0 = current brk
        self._emit("mov r3, r0")        # old brk
        self._emit("add r1, r0, r2")
        self._emit(f"li r0, {abi.SYS_BRK}")
        self._emit("syscall")
        self._restore_live_temps(spilled)
        result = self._alloc_int(expr.line)
        self._emit("mov r0, r3")
        self._emit(f"mov {result}, r3")
        return result, False

    def _gen_mmap(self, expr: ast.Call) -> Tuple[str, bool]:
        anon = expr.name == "mmap_anon"
        expected = 1 if anon else 2
        if len(expr.args) != expected:
            raise CompileError(
                f"{expr.name} expects {expected} arguments", expr.line)
        spilled = self._spill_live_temps()
        self._eval_args_to_stack(expr.args, expr.line)
        if anon:
            self._pop("r2")  # length
            self._emit("li r5, -1")
            flags = abi.MAP_PRIVATE | abi.MAP_ANONYMOUS
        else:
            self._pop("r2")  # length
            self._pop("r5")  # fd
            flags = abi.MAP_PRIVATE
        self._emit("li r1, 0")
        self._emit(f"li r3, {abi.PROT_READ | abi.PROT_WRITE}")
        self._emit(f"li r4, {flags}")
        self._emit(f"li r0, {abi.SYS_MMAP}")
        self._emit("syscall")
        self._restore_live_temps(spilled)
        result = self._alloc_int(expr.line)
        self._emit(f"mov {result}, r0")
        return result, False

    def _gen_open(self, expr: ast.Call) -> Tuple[str, bool]:
        if len(expr.args) != 1 or not isinstance(expr.args[0], ast.StrLit):
            raise CompileError(
                "open() expects a string-literal path", expr.line)
        label, length = self._intern_string(expr.args[0].value)
        spilled = self._spill_live_temps()
        self._emit(f"la r1, {label}")
        self._emit(f"li r2, {length}")
        self._emit(f"li r0, {abi.SYS_OPEN}")
        self._emit("syscall")
        self._restore_live_temps(spilled)
        result = self._alloc_int(expr.line)
        self._emit(f"mov {result}, r0")
        return result, False

    def _gen_print_str(self, expr: ast.Call) -> Tuple[str, bool]:
        if len(expr.args) != 1 or not isinstance(expr.args[0], ast.StrLit):
            raise CompileError(
                "print_str() expects a string literal", expr.line)
        label, length = self._intern_string(expr.args[0].value)
        spilled = self._spill_live_temps()
        self._emit(f"li r1, {abi.STDOUT}")
        self._emit(f"la r2, {label}")
        self._emit(f"li r3, {length}")
        self._emit(f"li r0, {abi.SYS_WRITE}")
        self._emit("syscall")
        self._restore_live_temps(spilled)
        result = self._alloc_int(expr.line)
        self._emit(f"mov {result}, r0")
        return result, False


def generate(module: ast.Module) -> str:
    return CodeGenerator(module).generate()

"""AST node definitions for mini-C."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

# -- expressions ---------------------------------------------------------------


@dataclass
class IntLit:
    value: int
    line: int = 0


@dataclass
class FloatLit:
    value: float
    line: int = 0


@dataclass
class StrLit:
    value: str
    line: int = 0


@dataclass
class Var:
    name: str
    line: int = 0


@dataclass
class Index:
    """Array element access: ``name[index]``."""
    name: str
    index: "Expr"
    line: int = 0


@dataclass
class Unary:
    op: str            # '-', '!', '~'
    operand: "Expr"
    line: int = 0


@dataclass
class Binary:
    op: str            # arithmetic / comparison / logical
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass
class Call:
    name: str
    args: List["Expr"] = field(default_factory=list)
    line: int = 0


Expr = Union[IntLit, FloatLit, StrLit, Var, Index, Unary, Binary, Call]

# -- statements ------------------------------------------------------------------


@dataclass
class VarDecl:
    name: str
    is_float: bool = False
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class Assign:
    target: Union[Var, Index]
    value: Expr
    line: int = 0


@dataclass
class If:
    cond: Expr
    then_body: List["Stmt"]
    else_body: List["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class While:
    cond: Expr
    body: List["Stmt"]
    line: int = 0


@dataclass
class For:
    init: Optional["Stmt"]
    cond: Optional[Expr]
    step: Optional["Stmt"]
    body: List["Stmt"]
    line: int = 0


@dataclass
class Return:
    value: Optional[Expr] = None
    line: int = 0


@dataclass
class Break:
    line: int = 0


@dataclass
class Continue:
    line: int = 0


@dataclass
class ExprStmt:
    expr: Expr
    line: int = 0


Stmt = Union[VarDecl, Assign, If, While, For, Return, Break, Continue, ExprStmt]

# -- top level -------------------------------------------------------------------


@dataclass
class Param:
    name: str
    is_float: bool = False


@dataclass
class FuncDecl:
    name: str
    params: List[Param]
    body: List[Stmt]
    line: int = 0


@dataclass
class GlobalDecl:
    name: str
    is_float: bool = False
    array_size: Optional[int] = None   # None for scalars
    init: Optional[List[Union[int, float]]] = None
    line: int = 0


@dataclass
class Module:
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)

"""Mini-C: the small C-like language the workload programs are written in.

Pipeline: :func:`~repro.minic.lexer.tokenize` ->
:func:`~repro.minic.parser.parse` -> :func:`~repro.minic.codegen.generate`
(assembly text) -> :func:`repro.isa.assemble`.
"""

from repro.minic.compiler import compile_source, compile_to_asm
from repro.minic.lexer import Token, tokenize
from repro.minic.parser import parse

__all__ = ["compile_source", "compile_to_asm", "tokenize", "Token", "parse"]

"""Recursive-descent parser for mini-C.

Grammar (informal)::

    module     := (global | func)*
    global     := "global" ["float"] IDENT ["[" INT "]"] ["=" init] ";"
    init       := const | "{" const ("," const)* "}"
    func       := "func" IDENT "(" params? ")" block
    params     := param ("," param)*
    param      := ["float"] IDENT
    block      := "{" stmt* "}"
    stmt       := ("var"|"float") IDENT ["=" expr] ";"
                | lvalue "=" expr ";"
                | "if" "(" expr ")" block ["else" (block | if-stmt)]
                | "while" "(" expr ")" block
                | "for" "(" simple? ";" expr? ";" simple? ")" block
                | "return" [expr] ";"
                | "break" ";" | "continue" ";"
                | expr ";"
    expr       := precedence-climbing over || && | ^ & == != < <= > >=
                  << >> + - * / % with unary - ! ~

Distinguishing ``lvalue = expr`` from an expression statement is done by
lookahead (identifier followed by ``=`` or ``[...] =``).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.common.errors import CompileError
from repro.minic import ast_nodes as ast
from repro.minic.lexer import Token, tokenize

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect(self, kind: str, value=None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            want = f"{kind} {value!r}" if value is not None else kind
            raise CompileError(
                f"expected {want}, got {token.kind} {token.value!r}",
                token.line)
        return self._advance()

    def _match(self, kind: str, value=None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._advance()
        return None

    # -- top level ----------------------------------------------------------

    def parse_module(self) -> ast.Module:
        module = ast.Module()
        while self._peek().kind != "eof":
            token = self._peek()
            if token.kind == "keyword" and token.value == "global":
                module.globals.append(self._parse_global())
            elif token.kind == "keyword" and token.value == "func":
                module.functions.append(self._parse_func())
            else:
                raise CompileError(
                    f"expected 'global' or 'func', got {token.value!r}",
                    token.line)
        return module

    def _parse_global(self) -> ast.GlobalDecl:
        line = self._expect("keyword", "global").line
        is_float = bool(self._match("keyword", "float"))
        name = self._expect("ident").value
        array_size = None
        if self._match("op", "["):
            array_size = self._expect("int").value
            self._expect("op", "]")
        init = None
        if self._match("op", "="):
            init = self._parse_const_init(is_float)
        self._expect("op", ";")
        return ast.GlobalDecl(name, is_float, array_size, init, line)

    def _parse_const_init(self, is_float: bool) -> List[Union[int, float]]:
        if self._match("op", "{"):
            values = [self._parse_const(is_float)]
            while self._match("op", ","):
                values.append(self._parse_const(is_float))
            self._expect("op", "}")
            return values
        return [self._parse_const(is_float)]

    def _parse_const(self, is_float: bool) -> Union[int, float]:
        negate = bool(self._match("op", "-"))
        token = self._peek()
        if token.kind == "int":
            self._advance()
            value = token.value
        elif token.kind == "float":
            self._advance()
            value = token.value
        else:
            raise CompileError("expected numeric constant", token.line)
        if negate:
            value = -value
        return float(value) if is_float else value

    def _parse_func(self) -> ast.FuncDecl:
        line = self._expect("keyword", "func").line
        name = self._expect("ident").value
        self._expect("op", "(")
        params: List[ast.Param] = []
        if not self._match("op", ")"):
            while True:
                is_float = bool(self._match("keyword", "float"))
                params.append(ast.Param(self._expect("ident").value, is_float))
                if not self._match("op", ","):
                    break
            self._expect("op", ")")
        body = self._parse_block()
        return ast.FuncDecl(name, params, body, line)

    # -- statements --------------------------------------------------------------

    def _parse_block(self) -> List[ast.Stmt]:
        self._expect("op", "{")
        stmts: List[ast.Stmt] = []
        while not self._match("op", "}"):
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        if token.kind == "keyword":
            if token.value in ("var", "float"):
                return self._parse_var_decl()
            if token.value == "if":
                return self._parse_if()
            if token.value == "while":
                return self._parse_while()
            if token.value == "for":
                return self._parse_for()
            if token.value == "return":
                self._advance()
                value = None
                if not (self._peek().kind == "op" and self._peek().value == ";"):
                    value = self._parse_expr()
                self._expect("op", ";")
                return ast.Return(value, token.line)
            if token.value == "break":
                self._advance()
                self._expect("op", ";")
                return ast.Break(token.line)
            if token.value == "continue":
                self._advance()
                self._expect("op", ";")
                return ast.Continue(token.line)
            raise CompileError(f"unexpected keyword {token.value!r}", token.line)
        stmt = self._parse_simple_stmt()
        self._expect("op", ";")
        return stmt

    def _parse_var_decl(self) -> ast.VarDecl:
        token = self._advance()
        is_float = token.value == "float"
        name = self._expect("ident").value
        init = None
        if self._match("op", "="):
            init = self._parse_expr()
        self._expect("op", ";")
        return ast.VarDecl(name, is_float, init, token.line)

    def _parse_if(self) -> ast.If:
        line = self._expect("keyword", "if").line
        self._expect("op", "(")
        cond = self._parse_expr()
        self._expect("op", ")")
        then_body = self._parse_block()
        else_body: List[ast.Stmt] = []
        if self._match("keyword", "else"):
            if self._peek().kind == "keyword" and self._peek().value == "if":
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block()
        return ast.If(cond, then_body, else_body, line)

    def _parse_while(self) -> ast.While:
        line = self._expect("keyword", "while").line
        self._expect("op", "(")
        cond = self._parse_expr()
        self._expect("op", ")")
        return ast.While(cond, self._parse_block(), line)

    def _parse_for(self) -> ast.For:
        line = self._expect("keyword", "for").line
        self._expect("op", "(")
        init = None
        if not (self._peek().kind == "op" and self._peek().value == ";"):
            init = self._parse_simple_stmt()
        self._expect("op", ";")
        cond = None
        if not (self._peek().kind == "op" and self._peek().value == ";"):
            cond = self._parse_expr()
        self._expect("op", ";")
        step = None
        if not (self._peek().kind == "op" and self._peek().value == ")"):
            step = self._parse_simple_stmt()
        self._expect("op", ")")
        return ast.For(init, cond, step, self._parse_block(), line)

    def _parse_simple_stmt(self) -> ast.Stmt:
        """An assignment or expression statement (no trailing ';')."""
        token = self._peek()
        if token.kind == "ident":
            # Lookahead for 'ident =' or 'ident [...] ='.
            if self._peek(1).kind == "op" and self._peek(1).value == "=":
                name = self._advance().value
                self._advance()  # '='
                value = self._parse_expr()
                return ast.Assign(ast.Var(name, token.line), value, token.line)
            if self._peek(1).kind == "op" and self._peek(1).value == "[":
                saved = self._pos
                name = self._advance().value
                self._advance()  # '['
                index = self._parse_expr()
                self._expect("op", "]")
                if self._match("op", "="):
                    value = self._parse_expr()
                    return ast.Assign(ast.Index(name, index, token.line),
                                      value, token.line)
                self._pos = saved  # it was an expression after all
        return ast.ExprStmt(self._parse_expr(), token.line)

    # -- expressions ---------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_binary(1)

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind != "op" or token.value not in _PRECEDENCE:
                return left
            precedence = _PRECEDENCE[token.value]
            if precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(token.value, left, right, token.line)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "op" and token.value in ("-", "!", "~"):
            self._advance()
            return ast.Unary(token.value, self._parse_unary(), token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        token = self._advance()
        if token.kind == "int":
            return ast.IntLit(token.value, token.line)
        if token.kind == "float":
            return ast.FloatLit(token.value, token.line)
        if token.kind == "string":
            return ast.StrLit(token.value, token.line)
        if token.kind == "op" and token.value == "(":
            expr = self._parse_expr()
            self._expect("op", ")")
            return expr
        if token.kind == "keyword" and token.value == "float":
            # `float(expr)` conversion uses the keyword as a call.
            self._expect("op", "(")
            arg = self._parse_expr()
            self._expect("op", ")")
            return ast.Call("float", [arg], token.line)
        if token.kind == "ident":
            if self._peek().kind == "op" and self._peek().value == "(":
                self._advance()
                args: List[ast.Expr] = []
                if not self._match("op", ")"):
                    args.append(self._parse_expr())
                    while self._match("op", ","):
                        args.append(self._parse_expr())
                    self._expect("op", ")")
                return ast.Call(token.value, args, token.line)
            if self._peek().kind == "op" and self._peek().value == "[":
                self._advance()
                index = self._parse_expr()
                self._expect("op", "]")
                return ast.Index(token.value, index, token.line)
            return ast.Var(token.value, token.line)
        raise CompileError(f"unexpected token {token.value!r}", token.line)


def parse(source: str) -> ast.Module:
    return Parser(tokenize(source)).parse_module()

"""Lexer for mini-C, the workload language.

Mini-C is the small C-like language the SPEC-like benchmark programs are
written in; it compiles to repro ISA assembly (see
:mod:`repro.minic.codegen`).
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

from repro.common.errors import CompileError

KEYWORDS = frozenset({
    "func", "var", "float", "global", "if", "else", "while", "for",
    "return", "break", "continue",
})

# Multi-character operators first so maximal munch works.
OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ",", ";",
]


class Token(NamedTuple):
    kind: str          # 'int', 'float', 'ident', 'keyword', 'op', 'string', 'eof'
    value: object
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, line={self.line})"


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    i = 0
    length = len(source)
    while i < length:
        char = source[i]
        if char == "\n":
            line += 1
            i += 1
            continue
        if char in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if char == '"':
            end = i + 1
            chunks = []
            while end < length and source[end] != '"':
                if source[end] == "\\" and end + 1 < length:
                    escape = source[end + 1]
                    chunks.append({"n": "\n", "t": "\t", "0": "\0",
                                   "\\": "\\", '"': '"'}.get(escape, escape))
                    end += 2
                else:
                    chunks.append(source[end])
                    end += 1
            if end >= length:
                raise CompileError("unterminated string literal", line)
            tokens.append(Token("string", "".join(chunks), line))
            i = end + 1
            continue
        if char == "'":
            if i + 2 < length and source[i + 2] == "'":
                tokens.append(Token("int", ord(source[i + 1]), line))
                i += 3
                continue
            raise CompileError("bad character literal", line)
        if char.isdigit() or (char == "." and i + 1 < length
                              and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < length and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                tokens.append(Token("int", int(source[i:j], 16), line))
                i = j
                continue
            while j < length and (source[j].isdigit() or source[j] == "."):
                if source[j] == ".":
                    is_float = True
                j += 1
            if j < length and source[j] in "eE":
                is_float = True
                j += 1
                if j < length and source[j] in "+-":
                    j += 1
                while j < length and source[j].isdigit():
                    j += 1
            text = source[i:j]
            if is_float:
                tokens.append(Token("float", float(text), line))
            else:
                tokens.append(Token("int", int(text), line))
            i = j
            continue
        if char.isalpha() or char == "_":
            j = i
            while j < length and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            i = j
            continue
        for operator in OPERATORS:
            if source.startswith(operator, i):
                tokens.append(Token("op", operator, line))
                i += len(operator)
                break
        else:
            raise CompileError(f"unexpected character {char!r}", line)
    tokens.append(Token("eof", None, line))
    return tokens

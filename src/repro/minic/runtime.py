"""Mini-C runtime prelude.

A small library compiled into every program: decimal output (an explicit
itoa loop, so printing costs realistic compute and a single ``write``
syscall), float printing with fixed precision, a Newton-iteration square
root, and a deterministic PRNG.  All of it is plain mini-C, so the prelude
also serves as a continuous integration test of the compiler itself.
"""

PRELUDE = """
global __itoa_buf[8];

func print_int(n) {
    var buf; var i; var neg; var digit;
    buf = addr(__itoa_buf);
    i = 63;
    poke8(buf + i, 10);
    neg = 0;
    if (n < 0) {
        neg = 1;
        n = 0 - n;
        if (n < 0) {
            // INT_MIN negates to itself: peel the last digit first, then
            // the negated quotient is representable.
            i = i - 1;
            digit = 0 - (n % 10);
            poke8(buf + i, 48 + digit);
            n = 0 - (n / 10);
        }
    }
    if (n == 0 && i == 63) {
        i = i - 1;
        poke8(buf + i, 48);
    }
    while (n > 0) {
        i = i - 1;
        digit = n % 10;
        poke8(buf + i, 48 + digit);
        n = n / 10;
    }
    if (neg) {
        i = i - 1;
        poke8(buf + i, 45);
    }
    write(1, buf + i, 64 - i);
    return 0;
}

// Print a float as <int part>.<6 digits>; good enough for checksums.
func print_float(float x) {
    var whole; var frac; var buf; var i; var digit; var neg;
    neg = 0;
    if (x < 0.0) { neg = 1; x = 0.0 - x; }
    whole = int(x);
    frac = int((x - float(whole)) * 1000000.0);
    buf = addr(__itoa_buf);
    i = 63;
    poke8(buf + i, 10);
    digit = 0;
    while (digit < 6) {
        i = i - 1;
        poke8(buf + i, 48 + frac % 10);
        frac = frac / 10;
        digit = digit + 1;
    }
    i = i - 1;
    poke8(buf + i, 46);
    if (whole == 0) {
        i = i - 1;
        poke8(buf + i, 48);
    }
    while (whole > 0) {
        i = i - 1;
        poke8(buf + i, 48 + whole % 10);
        whole = whole / 10;
    }
    if (neg) {
        i = i - 1;
        poke8(buf + i, 45);
    }
    write(1, buf + i, 64 - i);
    return 0;
}

// Newton-Raphson square root; returns its result in f0.
func fsqrt(float x) {
    float y; var iter;
    if (x <= 0.0) {
        return 0.0;
    }
    y = x;
    if (y < 1.0) { y = 1.0; }
    iter = 0;
    while (iter < 24) {
        y = 0.5 * (y + x / y);
        iter = iter + 1;
    }
    return y;
}

global __rng_state = 88172645463325252;

// xorshift64: deterministic pseudo-random stream for workloads.
func rand64() {
    var x;
    x = peek64(addr(__rng_state));
    x = x ^ (x << 13);
    x = x ^ ((x >> 7) & 144115188075855871);
    x = x ^ (x << 17);
    poke64(addr(__rng_state), x);
    return x;
}

func srand64(seed) {
    if (seed == 0) { seed = 1; }
    poke64(addr(__rng_state), seed);
    return 0;
}

// Positive pseudo-random value below bound.
func rand_below(bound) {
    var x;
    x = rand64();
    if (x < 0) { x = 0 - x; }
    if (x < 0) { x = 0; }
    return x % bound;
}
"""

#: Names defined by the prelude (for collision checks in the compiler).
PRELUDE_FUNCTIONS = ("print_int", "print_float", "fsqrt", "rand64",
                     "srand64", "rand_below")
PRELUDE_GLOBALS = ("__itoa_buf", "__rng_state")

"""Compiler driver: mini-C source -> assembly -> Program."""

from __future__ import annotations

from typing import Optional

from repro.common.errors import CompileError
from repro.isa import Program, assemble
from repro.minic import ast_nodes as ast
from repro.minic.codegen import generate
from repro.minic.parser import parse
from repro.minic.runtime import PRELUDE, PRELUDE_FUNCTIONS, PRELUDE_GLOBALS

_prelude_cache: Optional[ast.Module] = None


def _prelude_module() -> ast.Module:
    global _prelude_cache
    if _prelude_cache is None:
        _prelude_cache = parse(PRELUDE)
    return _prelude_cache


def compile_to_asm(source: str, with_prelude: bool = True) -> str:
    """Compile mini-C source to assembly text."""
    module = parse(source)
    if with_prelude:
        user_functions = {fn.name for fn in module.functions}
        user_globals = {g.name for g in module.globals}
        for name in PRELUDE_FUNCTIONS:
            if name in user_functions:
                raise CompileError(
                    f"function {name!r} collides with the runtime prelude")
        for name in PRELUDE_GLOBALS:
            if name in user_globals:
                raise CompileError(
                    f"global {name!r} collides with the runtime prelude")
        prelude = _prelude_module()
        module = ast.Module(
            globals=module.globals + prelude.globals,
            functions=module.functions + prelude.functions,
        )
    return generate(module)


def compile_source(source: str, name: str = "a.out",
                   with_prelude: bool = True) -> Program:
    """Compile mini-C source into an executable :class:`Program`."""
    asm = compile_to_asm(source, with_prelude=with_prelude)
    return assemble(asm, name=name)

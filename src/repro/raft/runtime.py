"""RAFT runtime: a thin, documented veneer over the Parallaft coordinator."""

from __future__ import annotations

from repro.core.config import ParallaftConfig
from repro.core.runtime import Parallaft


def raft_config() -> ParallaftConfig:
    """The paper's RAFT model (§5.1)."""
    return ParallaftConfig.raft()


class Raft(Parallaft):
    """Run a program under the RAFT model.

    Identical interface to :class:`~repro.core.runtime.Parallaft`; the
    configuration is pinned to the RAFT mode.
    """

    def __init__(self, program, platform=None, **kwargs):
        kwargs.pop("config", None)
        super().__init__(program, config=raft_config(), platform=platform,
                         **kwargs)

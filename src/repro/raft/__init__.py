"""The RAFT baseline (Zhang et al., CGO 2012), as the paper models it.

RAFT has no public release, so the paper models it by reconfiguring
Parallaft (§5.1): (1) no periodic checkpoints - a single segment spanning
the program; (2) homogeneous execution - the checker runs on a big core;
(3) no end-of-segment state comparison or dirty-page tracking.  Syscall
interception, comparison and record/replay are shared with Parallaft
("RAFT incurs almost identical slowdown because of shared syscall-handling
logic", §5.7); the RAFT checker runs *concurrently* with the main from
program start, stalling when it catches up with the record log - the
asynchronous-duplication behaviour of the original system.
"""

from repro.raft.runtime import Raft, raft_config

__all__ = ["Raft", "raft_config"]

"""Parallaft reproduction: runtime-based CPU fault tolerance via
heterogeneous parallelism (Zhang, Ainsworth, Mukhanov, Jones - CGO 2025).

Public API quick reference
--------------------------

Protect a program::

    from repro import Parallaft, ParallaftConfig, compile_source, apple_m2

    program = compile_source(open("app.mc").read())
    stats = Parallaft(program, platform=apple_m2()).run()
    print(stats.to_dict())

Run the paper's experiments::

    from repro.harness import figures
    comparison = figures.run_suite_comparison()
    print(comparison.perf_geomean("parallaft"))

Layers (bottom-up): :mod:`repro.isa` / :mod:`repro.minic` (programs),
:mod:`repro.mem` / :mod:`repro.cpu` / :mod:`repro.kernel` (machine),
:mod:`repro.sim` (heterogeneous timing/energy), :mod:`repro.core`
(the Parallaft runtime), :mod:`repro.raft` (baseline),
:mod:`repro.faults` (injection), :mod:`repro.workloads` /
:mod:`repro.harness` (evaluation).
"""

from repro.core import (
    ComparisonStrategy,
    DetectedError,
    DirtyPageBackend,
    ExecPointCounter,
    Parallaft,
    ParallaftConfig,
    RunStats,
    RuntimeMode,
    protect,
)
from repro.faults import CampaignResult, FaultInjector, Outcome
from repro.isa import Program, assemble
from repro.minic import compile_source
from repro.sim import PlatformConfig, apple_m2, intel_14700, platform_by_name

__version__ = "1.0.0"

__all__ = [
    "Parallaft",
    "ParallaftConfig",
    "RuntimeMode",
    "DirtyPageBackend",
    "ExecPointCounter",
    "ComparisonStrategy",
    "RunStats",
    "DetectedError",
    "protect",
    "FaultInjector",
    "CampaignResult",
    "Outcome",
    "Program",
    "assemble",
    "compile_source",
    "PlatformConfig",
    "apple_m2",
    "intel_14700",
    "platform_by_name",
    "__version__",
]

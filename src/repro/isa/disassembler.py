"""Disassembler: turn instructions back into assembler-compatible text."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa import instructions as ins
from repro.isa.instructions import Instr
from repro.isa.program import CODE_BASE, INSTR_SIZE, Program
from repro.isa.registers import gpr_name


def _reg_for(op: int, field: str, index: int) -> str:
    """Render the register operand for a given opcode/field pair."""
    fp_ops = {ins.FADD, ins.FSUB, ins.FMUL, ins.FDIV, ins.FLD, ins.FST,
              ins.FLI, ins.FMOV}
    vec_ops = {ins.VADD, ins.VMUL, ins.VXOR, ins.VLD, ins.VST}
    if op in fp_ops:
        # fld/fst address bases are GPRs (field b), data registers FPRs.
        if op in (ins.FLD, ins.FST) and field == "b":
            return gpr_name(index)
        return f"f{index}"
    if op in vec_ops:
        if op in (ins.VLD, ins.VST) and field == "b":
            return gpr_name(index)
        return f"v{index}"
    if op == ins.FCVT:
        return f"f{index}" if field == "a" else gpr_name(index)
    if op == ins.ICVT:
        return gpr_name(index) if field == "a" else f"f{index}"
    if op in (ins.FLT, ins.FLE, ins.FEQ):
        return gpr_name(index) if field == "a" else f"f{index}"
    if op == ins.VBCAST:
        return f"v{index}" if field == "a" else gpr_name(index)
    if op == ins.VRED:
        return gpr_name(index) if field == "a" else f"v{index}"
    return gpr_name(index)


def disassemble_instr(instr: Instr,
                      labels_by_address: Optional[Dict[int, str]] = None) -> str:
    op = instr.op
    mnemonic = ins.MNEMONICS[op]
    shape = ins.operand_shape(op)
    labels_by_address = labels_by_address or {}

    def target(addr) -> str:
        return labels_by_address.get(addr, f"{addr:#x}")

    if shape == "r3":
        return (f"{mnemonic} {_reg_for(op, 'a', instr.a)}, "
                f"{_reg_for(op, 'b', instr.b)}, {_reg_for(op, 'c', instr.c)}")
    if shape == "r2imm":
        return (f"{mnemonic} {_reg_for(op, 'a', instr.a)}, "
                f"{_reg_for(op, 'b', instr.b)}, {instr.imm}")
    if shape == "r1imm":
        return f"{mnemonic} {_reg_for(op, 'a', instr.a)}, {instr.imm}"
    if shape == "r2":
        return (f"{mnemonic} {_reg_for(op, 'a', instr.a)}, "
                f"{_reg_for(op, 'b', instr.b)}")
    if shape == "branch":
        return (f"{mnemonic} {gpr_name(instr.b)}, {gpr_name(instr.c)}, "
                f"{target(instr.imm)}")
    if shape == "imm":
        return f"{mnemonic} {target(instr.imm)}"
    if shape == "r1":
        if op == ins.JR:
            return f"{mnemonic} {gpr_name(instr.b)}"
        return f"{mnemonic} {gpr_name(instr.a)}"
    return mnemonic


def disassemble_program(program: Program) -> str:
    """Disassemble a whole program, emitting labels at their addresses."""
    labels_by_address = {addr: name for name, addr in program.labels.items()}
    lines: List[str] = []
    for index, instr in enumerate(program.instrs):
        address = CODE_BASE + index * INSTR_SIZE
        if address in labels_by_address:
            lines.append(f"{labels_by_address[address]}:")
        lines.append(f"    {disassemble_instr(instr, labels_by_address)}")
    return "\n".join(lines) + "\n"

"""Register-file specification for the repro ISA.

The machine models a small RISC-like CPU:

* 16 64-bit general-purpose registers ``r0``–``r15``.  By software
  convention ``r13`` is the stack pointer (``sp``), ``r14`` the link
  register (``lr``) and ``r15`` the frame pointer (``fp``).
* 8 double-precision floating-point registers ``f0``–``f7``.
* 4 vector registers ``v0``–``v3`` of four 64-bit lanes each.

Fault injection (paper §5.6) flips a random bit in a register selected from
the union of these three files, so the spec also enumerates every
(register, bit) site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

NUM_GPR = 16
NUM_FPR = 8
NUM_VEC = 4
VEC_LANES = 4

GPR_BITS = 64
FPR_BITS = 64
VEC_BITS = VEC_LANES * 64

SP = 13
LR = 14
FP = 15

GPR_ALIASES = {"sp": SP, "lr": LR, "fp": FP}


def gpr_name(index: int) -> str:
    for alias, alias_index in GPR_ALIASES.items():
        if index == alias_index:
            return alias
    return f"r{index}"


def parse_register(token: str) -> Tuple[str, int]:
    """Parse a register token into ``(file, index)``.

    ``file`` is one of ``"gpr"``, ``"fpr"``, ``"vec"``.  Raises
    :class:`ValueError` for anything that is not a register.
    """
    token = token.lower()
    if token in GPR_ALIASES:
        return "gpr", GPR_ALIASES[token]
    if len(token) >= 2 and token[0] in "rfv" and token[1:].isdigit():
        index = int(token[1:])
        if token[0] == "r" and 0 <= index < NUM_GPR:
            return "gpr", index
        if token[0] == "f" and 0 <= index < NUM_FPR:
            return "fpr", index
        if token[0] == "v" and 0 <= index < NUM_VEC:
            return "vec", index
    raise ValueError(f"not a register: {token!r}")


@dataclass(frozen=True)
class RegisterSite:
    """One (register file, register, bit) fault-injection site.

    The structured counterpart of the ``(file, index, bit)`` tuples that
    :func:`all_fault_sites` enumerates; :class:`repro.faults.sites.FaultSite`
    generalizes it with a target process and memory sites.
    """

    file: str    # "gpr" | "fpr" | "vec"
    index: int
    bit: int

    def as_tuple(self) -> Tuple[str, int, int]:
        return (self.file, self.index, self.bit)

    def __str__(self) -> str:
        name = gpr_name(self.index) if self.file == "gpr" \
            else f"{self.file[0]}{self.index}"
        return f"{name} bit {self.bit}"


def all_fault_sites() -> List[Tuple[str, int, int]]:
    """Enumerate every (file, register index, bit index) fault-injection site."""
    sites = []
    for index in range(NUM_GPR):
        sites.extend(("gpr", index, bit) for bit in range(GPR_BITS))
    for index in range(NUM_FPR):
        sites.extend(("fpr", index, bit) for bit in range(FPR_BITS))
    for index in range(NUM_VEC):
        sites.extend(("vec", index, bit) for bit in range(VEC_BITS))
    return sites


def all_register_sites() -> List[RegisterSite]:
    """Structured version of :func:`all_fault_sites`."""
    return [RegisterSite(*site) for site in all_fault_sites()]

"""Binary encoding for repro ISA instructions.

Fixed 16-byte records: opcode byte, three register-operand bytes, a flag
byte marking float immediates, three pad bytes, then the 64-bit immediate
(two's-complement for ints, IEEE-754 for floats).  The interpreter never
touches this encoding (it runs pre-decoded :class:`~repro.isa.instructions.Instr`
objects); it exists so programs can be serialized, diffed, and round-tripped
through the disassembler.
"""

from __future__ import annotations

import struct
from typing import List

from repro.isa.instructions import Instr, NUM_OPCODES

RECORD_SIZE = 16

_FLAG_FLOAT_IMM = 1

MAGIC = b"RPRO"


def encode_instr(instr: Instr) -> bytes:
    if isinstance(instr.imm, float):
        flags = _FLAG_FLOAT_IMM
        imm_bytes = struct.pack("<d", instr.imm)
    else:
        flags = 0
        imm_bytes = struct.pack("<q", instr.imm)
    return struct.pack("<BBBBBxxx", instr.op, instr.a, instr.b, instr.c,
                       flags) + imm_bytes


def decode_instr(blob: bytes) -> Instr:
    if len(blob) != RECORD_SIZE:
        raise ValueError(f"instruction record must be {RECORD_SIZE} bytes")
    op, a, b, c, flags = struct.unpack_from("<BBBBB", blob)
    if op >= NUM_OPCODES:
        raise ValueError(f"bad opcode {op}")
    if flags & _FLAG_FLOAT_IMM:
        (imm,) = struct.unpack_from("<d", blob, 8)
    else:
        (imm,) = struct.unpack_from("<q", blob, 8)
    return Instr(op, a, b, c, imm)


def encode_program_code(instrs: List[Instr]) -> bytes:
    """Serialize a code segment: magic, count, then fixed-size records."""
    header = MAGIC + struct.pack("<I", len(instrs))
    return header + b"".join(encode_instr(instr) for instr in instrs)


def decode_program_code(blob: bytes) -> List[Instr]:
    if blob[:4] != MAGIC:
        raise ValueError("bad magic")
    (count,) = struct.unpack_from("<I", blob, 4)
    instrs = []
    offset = 8
    for _ in range(count):
        instrs.append(decode_instr(blob[offset:offset + RECORD_SIZE]))
        offset += RECORD_SIZE
    return instrs

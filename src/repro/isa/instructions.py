"""Instruction set definition.

Instructions are pre-decoded objects (class :class:`Instr`) so the
interpreter's hot loop does no bit-level decoding.  A separate byte encoding
exists in :mod:`repro.isa.encoding` for the assembler/disassembler
round-trip.

Operand conventions (fields ``a``, ``b``, ``c`` are register indices, ``imm``
an integer or float immediate):

=============  =======================================================
Group          Semantics
=============  =======================================================
ALU            ``op rd, rs1, rs2`` → a=rd, b=rs1, c=rs2
ALU-immediate  ``op rd, rs1, imm`` → a=rd, b=rs1, imm
LI / FLI       ``li rd, imm`` → a=rd, imm
Memory         ``ld rd, rs1, imm`` (address = rs1+imm) / ``st rs2, rs1, imm``
Branches       ``beq rs1, rs2, target`` → b=rs1, c=rs2, imm=target pc
Jumps          ``jmp target`` (imm) / ``jal target`` (imm, lr←pc+4)
               / ``jr rs`` (b=rs)
FP             registers index the FP file; ``fcvt``/``icvt`` cross files
Vector         registers index the vector file
System         ``syscall`` (number in r0, args r1..r5, result r0),
               ``rdtsc rd``, ``mrs rd, imm`` (system-register read),
               ``cpuid rd``, ``brk``, ``nop``, ``halt``
=============  =======================================================

Control-flow instructions (conditional branches, ``jmp``, ``jal``, ``jr``)
retire as *branches* for the performance-counter model; ``syscall`` retires
as a *far branch* (paper §4.2.1 excludes far branches on Intel to remove
overcount nondeterminism).
"""

from __future__ import annotations

from typing import Optional, Union

# Opcode numbers. Stable: the encoding and disassembler rely on them.
NOP = 0
HALT = 1
# ALU register-register
ADD = 2
SUB = 3
MUL = 4
DIV = 5
MOD = 6
AND = 7
OR = 8
XOR = 9
SLL = 10
SRL = 11
SRA = 12
SLT = 13
SLE = 14
SEQ = 15
SNE = 16
# ALU immediate
ADDI = 17
ANDI = 18
ORI = 19
XORI = 20
SLLI = 21
SRLI = 22
MULI = 23
LI = 24
MOV = 25
# Memory
LD = 26
ST = 27
LDB = 28
STB = 29
# Control flow
JMP = 30
JAL = 31
JR = 32
BEQ = 33
BNE = 34
BLT = 35
BGE = 36
BLE = 37
BGT = 38
# Floating point
FADD = 39
FSUB = 40
FMUL = 41
FDIV = 42
FLD = 43
FST = 44
FLI = 45
FMOV = 46
FCVT = 47  # int gpr -> float fpr
ICVT = 48  # float fpr -> int gpr (truncating)
FLT = 49  # rd(gpr) = fs1 < fs2
FLE = 50
FEQ = 51
# Vector
VADD = 52
VMUL = 53
VXOR = 54
VLD = 55
VST = 56
VBCAST = 57
VRED = 58
# System / nondeterministic
SYSCALL = 59
RDTSC = 60
MRS = 61
CPUID = 62
BRK = 63

NUM_OPCODES = 64

MNEMONICS = {
    NOP: "nop", HALT: "halt",
    ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", MOD: "mod",
    AND: "and", OR: "or", XOR: "xor", SLL: "sll", SRL: "srl", SRA: "sra",
    SLT: "slt", SLE: "sle", SEQ: "seq", SNE: "sne",
    ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
    SLLI: "slli", SRLI: "srli", MULI: "muli", LI: "li", MOV: "mov",
    LD: "ld", ST: "st", LDB: "ldb", STB: "stb",
    JMP: "jmp", JAL: "jal", JR: "jr",
    BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLE: "ble", BGT: "bgt",
    FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
    FLD: "fld", FST: "fst", FLI: "fli", FMOV: "fmov",
    FCVT: "fcvt", ICVT: "icvt", FLT: "flt", FLE: "fle", FEQ: "feq",
    VADD: "vadd", VMUL: "vmul", VXOR: "vxor",
    VLD: "vld", VST: "vst", VBCAST: "vbcast", VRED: "vred",
    SYSCALL: "syscall", RDTSC: "rdtsc", MRS: "mrs", CPUID: "cpuid",
    BRK: "brk",
}

OPCODES_BY_MNEMONIC = {name: op for op, name in MNEMONICS.items()}

#: Conditional branches (count as retired branches, may or may not be taken).
CONDITIONAL_BRANCHES = frozenset({BEQ, BNE, BLT, BGE, BLE, BGT})
#: All instructions retired as branches by the branch counter.
BRANCH_OPCODES = frozenset({JMP, JAL, JR} | CONDITIONAL_BRANCHES)
#: Far branches (privilege-level switches); excluded from the "near branch"
#: counter Parallaft uses on Intel (paper §4.2.1).
FAR_BRANCH_OPCODES = frozenset({SYSCALL})
#: Instructions whose result is nondeterministic across runs/cores.
NONDET_OPCODES = frozenset({RDTSC, MRS, CPUID})
#: Memory-touching instructions (used by the memory-intensity profiler).
MEMORY_OPCODES = frozenset({LD, ST, LDB, STB, FLD, FST, VLD, VST})

_R3 = frozenset({
    ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SLL, SRL, SRA,
    SLT, SLE, SEQ, SNE, FADD, FSUB, FMUL, FDIV, FLT, FLE, FEQ,
    VADD, VMUL, VXOR,
})
_R2_IMM = frozenset({ADDI, ANDI, ORI, XORI, SLLI, SRLI, MULI, LD, ST, LDB, STB,
                     FLD, FST, VLD, VST})
_R1_IMM = frozenset({LI, FLI, MRS})
_R2 = frozenset({MOV, FMOV, FCVT, ICVT, VBCAST, VRED})
_BRANCH3 = CONDITIONAL_BRANCHES
_IMM_ONLY = frozenset({JMP, JAL})
_R1 = frozenset({JR, RDTSC, CPUID})
_NONE = frozenset({NOP, HALT, SYSCALL, BRK})


class Instr:
    """One pre-decoded instruction.

    ``a``/``b``/``c`` are small register indices whose meaning depends on the
    opcode (see module docstring); ``imm`` is an int immediate, a float (for
    ``fli``), or a code address (branch/jump targets).
    """

    __slots__ = ("op", "a", "b", "c", "imm")

    def __init__(self, op: int, a: int = 0, b: int = 0, c: int = 0,
                 imm: Union[int, float] = 0):
        self.op = op
        self.a = a
        self.b = b
        self.c = c
        self.imm = imm

    def __repr__(self) -> str:
        return (f"Instr({MNEMONICS.get(self.op, self.op)}, a={self.a}, "
                f"b={self.b}, c={self.c}, imm={self.imm})")

    def __eq__(self, other) -> bool:
        if not isinstance(other, Instr):
            return NotImplemented
        return (self.op, self.a, self.b, self.c, self.imm) == (
            other.op, other.a, other.b, other.c, other.imm)

    def __hash__(self) -> int:
        return hash((self.op, self.a, self.b, self.c, self.imm))

    def copy(self) -> "Instr":
        return Instr(self.op, self.a, self.b, self.c, self.imm)


def operand_shape(op: int) -> str:
    """Return the operand shape class of an opcode.

    One of ``"r3"``, ``"r2imm"``, ``"r1imm"``, ``"r2"``, ``"branch"``,
    ``"imm"``, ``"r1"``, ``"none"``.  Used by the assembler, disassembler and
    encoding to agree on operand layout.
    """
    if op in _R3:
        return "r3"
    if op in _R2_IMM:
        return "r2imm"
    if op in _R1_IMM:
        return "r1imm"
    if op in _R2:
        return "r2"
    if op in _BRANCH3:
        return "branch"
    if op in _IMM_ONLY:
        return "imm"
    if op in _R1:
        return "r1"
    if op in _NONE:
        return "none"
    raise ValueError(f"unknown opcode {op}")


def is_branch(op: int) -> bool:
    return op in BRANCH_OPCODES


def is_far_branch(op: int) -> bool:
    return op in FAR_BRANCH_OPCODES


def make_nop() -> Instr:
    return Instr(NOP)


def make_brk() -> Instr:
    return Instr(BRK)

"""Program container: code, symbols and initial data image.

A :class:`Program` is the repro equivalent of a binary executable.  Code
lives at :data:`CODE_BASE`; each instruction occupies :data:`INSTR_SIZE`
bytes of address space, so the PC advances by 4 per instruction and branch
targets are ordinary absolute addresses.  The initial data image is loaded
at :data:`DATA_BASE` by the kernel's exec.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.instructions import Instr

#: Base virtual address of the code segment (non-PIE, like SPEC binaries).
CODE_BASE = 0x0001_0000
#: Bytes of address space per instruction.
INSTR_SIZE = 4
#: Base virtual address of the initial data segment.
DATA_BASE = 0x0100_0000
#: Initial stack top (stack grows downwards).
STACK_TOP = 0x7FFF_0000
#: Default stack reservation in bytes (workloads are shallow; a small stack
#: keeps process footprints dominated by their actual working sets).
STACK_SIZE = 0x0000_8000


class Program:
    """An executable: instructions, label symbols, and an initial data image."""

    def __init__(self, instrs: List[Instr], labels: Optional[Dict[str, int]] = None,
                 data: bytes = b"", name: str = "a.out"):
        self.instrs = instrs
        #: label name -> absolute code address
        self.labels = dict(labels or {})
        self.data = bytes(data)
        self.name = name

    def __len__(self) -> int:
        return len(self.instrs)

    @property
    def entry(self) -> int:
        """Entry-point address: the ``main``/``_start`` label if present,
        else the first instruction."""
        for symbol in ("_start", "main"):
            if symbol in self.labels:
                return self.labels[symbol]
        return CODE_BASE

    @property
    def code_end(self) -> int:
        """One past the last code address."""
        return CODE_BASE + len(self.instrs) * INSTR_SIZE

    def address_of(self, label: str) -> int:
        if label not in self.labels:
            raise KeyError(f"no such label: {label}")
        return self.labels[label]

    def index_of_address(self, address: int) -> int:
        """Map a code address to an instruction index."""
        offset = address - CODE_BASE
        if offset < 0 or offset % INSTR_SIZE or offset // INSTR_SIZE >= len(self.instrs):
            raise ValueError(f"address {address:#x} is not a code address")
        return offset // INSTR_SIZE

    @staticmethod
    def address_of_index(index: int) -> int:
        return CODE_BASE + index * INSTR_SIZE

"""Two-pass assembler for the repro ISA.

Source format::

    .data
    table:  .word 1, 2, 3          # 64-bit little-endian words
    buf:    .space 128             # zero-filled bytes
    msg:    .ascii "hi\\n"          # raw bytes
    .text
    _start:
        la   r1, table             # pseudo: li r1, <address of table>
        ld   r2, r1, 0             # r2 = mem[r1 + 0]
        addi r2, r2, 1
        st   r2, r1, 0
        beq  r2, r3, _start
        call helper                # pseudo: jal helper
        halt
    helper:
        ret                        # pseudo: jr lr

Comments start with ``#`` or ``;``.  Immediates may be decimal, hex
(``0x..``), negative, character literals (``'a'``) or label references.
Floating immediates for ``fli`` use ordinary float syntax.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple, Union

from repro.common.errors import AssemblerError
from repro.isa import instructions as ins
from repro.isa.instructions import Instr
from repro.isa.program import CODE_BASE, DATA_BASE, INSTR_SIZE, Program
from repro.isa.registers import parse_register

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.$]*$")

_PSEUDO = {"ret", "call", "la", "b", "inc", "dec"}

_SHAPE_OPERAND_COUNT = {
    "r3": 3, "r2imm": 3, "r1imm": 2, "r2": 2, "branch": 3,
    "imm": 1, "r1": 1, "none": 0,
}


def _split_operands(rest: str) -> List[str]:
    operands: List[str] = []
    token = ""
    in_string = False
    for char in rest:
        if char == '"':
            in_string = not in_string
            token += char
        elif char == "," and not in_string:
            operands.append(token.strip())
            token = ""
        else:
            token += char
    if token.strip():
        operands.append(token.strip())
    return operands


class Assembler:
    """Assemble source text into a :class:`Program`."""

    def __init__(self):
        self._code_labels: Dict[str, int] = {}
        self._data_labels: Dict[str, int] = {}
        self._data = bytearray()
        self._lines: List[Tuple[int, str, List[str]]] = []  # (lineno, mnemonic, operands)

    def assemble(self, source: str, name: str = "a.out") -> Program:
        self._first_pass(source)
        instrs = self._second_pass()
        labels = {label: CODE_BASE + index * INSTR_SIZE
                  for label, index in self._code_labels.items()}
        return Program(instrs, labels=labels, data=bytes(self._data), name=name)

    # -- pass 1: collect labels, expand pseudos, lay out data -------------

    def _first_pass(self, source: str) -> None:
        section = "text"
        code_index = 0
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].split(";", 1)[0].strip()
            if not line:
                continue
            while ":" in line and _LABEL_RE.match(line.split(":", 1)[0].strip()):
                label, line = line.split(":", 1)
                label = label.strip()
                line = line.strip()
                if label in self._code_labels or label in self._data_labels:
                    raise AssemblerError(f"duplicate label {label!r}", lineno)
                if section == "text":
                    self._code_labels[label] = code_index
                else:
                    self._data_labels[label] = DATA_BASE + len(self._data)
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            if mnemonic == ".text":
                section = "text"
                continue
            if mnemonic == ".data":
                section = "data"
                continue
            if section == "data":
                self._data_directive(mnemonic, rest, lineno)
                continue
            expanded = self._expand_pseudo(mnemonic, _split_operands(rest), lineno)
            for real_mnemonic, operands in expanded:
                self._lines.append((lineno, real_mnemonic, operands))
                code_index += 1

    def _data_directive(self, mnemonic: str, rest: str, lineno: int) -> None:
        if mnemonic == ".word":
            for token in _split_operands(rest):
                value = self._parse_int(token, lineno)
                self._data.extend((value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))
        elif mnemonic == ".space":
            count = self._parse_int(rest.strip(), lineno)
            if count < 0:
                raise AssemblerError(".space size must be non-negative", lineno)
            self._data.extend(b"\x00" * count)
        elif mnemonic == ".ascii":
            text = rest.strip()
            if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                raise AssemblerError(".ascii needs a quoted string", lineno)
            body = text[1:-1].encode("utf-8").decode("unicode_escape").encode("latin-1")
            self._data.extend(body)
        elif mnemonic == ".align":
            boundary = self._parse_int(rest.strip(), lineno)
            while len(self._data) % boundary:
                self._data.append(0)
        else:
            raise AssemblerError(f"unknown data directive {mnemonic!r}", lineno)

    def _expand_pseudo(self, mnemonic: str, operands: List[str],
                       lineno: int) -> List[Tuple[str, List[str]]]:
        if mnemonic == "ret":
            return [("jr", ["lr"])]
        if mnemonic == "call":
            return [("jal", operands)]
        if mnemonic == "b":
            return [("jmp", operands)]
        if mnemonic == "la":
            return [("li", operands)]
        if mnemonic == "inc":
            return [("addi", [operands[0], operands[0], "1"])]
        if mnemonic == "dec":
            return [("addi", [operands[0], operands[0], "-1"])]
        return [(mnemonic, operands)]

    # -- pass 2: emit instructions ----------------------------------------

    def _second_pass(self) -> List[Instr]:
        instrs: List[Instr] = []
        for lineno, mnemonic, operands in self._lines:
            if mnemonic not in ins.OPCODES_BY_MNEMONIC:
                raise AssemblerError(f"unknown mnemonic {mnemonic!r}", lineno)
            op = ins.OPCODES_BY_MNEMONIC[mnemonic]
            shape = ins.operand_shape(op)
            expected = _SHAPE_OPERAND_COUNT[shape]
            # Memory shapes allow the immediate offset to be omitted.
            if shape == "r2imm" and len(operands) == 2:
                operands = operands + ["0"]
            if len(operands) != expected:
                raise AssemblerError(
                    f"{mnemonic} expects {expected} operands, got {len(operands)}",
                    lineno)
            instrs.append(self._emit(op, shape, operands, lineno))
        return instrs

    def _emit(self, op: int, shape: str, operands: List[str], lineno: int) -> Instr:
        if shape == "r3":
            return Instr(op, self._reg(operands[0], lineno),
                         self._reg(operands[1], lineno),
                         self._reg(operands[2], lineno))
        if shape == "r2imm":
            return Instr(op, self._reg(operands[0], lineno),
                         self._reg(operands[1], lineno),
                         imm=self._imm(operands[2], lineno))
        if shape == "r1imm":
            if op == ins.FLI:
                return Instr(op, self._reg(operands[0], lineno),
                             imm=self._parse_float(operands[1], lineno))
            return Instr(op, self._reg(operands[0], lineno),
                         imm=self._imm(operands[1], lineno))
        if shape == "r2":
            return Instr(op, self._reg(operands[0], lineno),
                         self._reg(operands[1], lineno))
        if shape == "branch":
            return Instr(op, b=self._reg(operands[0], lineno),
                         c=self._reg(operands[1], lineno),
                         imm=self._code_target(operands[2], lineno))
        if shape == "imm":
            return Instr(op, imm=self._code_target(operands[0], lineno))
        if shape == "r1":
            return Instr(op, self._reg(operands[0], lineno)
                         if op != ins.JR else 0,
                         b=self._reg(operands[0], lineno))
        if shape == "none":
            return Instr(op)
        raise AssemblerError(f"unhandled shape {shape}", lineno)

    def _reg(self, token: str, lineno: int) -> int:
        try:
            _, index = parse_register(token)
        except ValueError as exc:
            raise AssemblerError(str(exc), lineno) from None
        return index

    def _imm(self, token: str, lineno: int) -> int:
        token = token.strip()
        if token in self._data_labels:
            return self._data_labels[token]
        if token in self._code_labels:
            return CODE_BASE + self._code_labels[token] * INSTR_SIZE
        return self._parse_int(token, lineno)

    def _code_target(self, token: str, lineno: int) -> int:
        token = token.strip()
        if token in self._code_labels:
            return CODE_BASE + self._code_labels[token] * INSTR_SIZE
        try:
            return self._parse_int(token, lineno)
        except AssemblerError:
            raise AssemblerError(f"undefined label {token!r}", lineno) from None

    @staticmethod
    def _parse_int(token: str, lineno: int) -> int:
        token = token.strip()
        try:
            if len(token) == 3 and token[0] == token[2] == "'":
                return ord(token[1])
            return int(token, 0)
        except ValueError:
            raise AssemblerError(f"bad integer {token!r}", lineno) from None

    @staticmethod
    def _parse_float(token: str, lineno: int) -> float:
        try:
            return float(token)
        except ValueError:
            raise AssemblerError(f"bad float {token!r}", lineno) from None


def assemble(source: str, name: str = "a.out") -> Program:
    """Assemble ``source`` into a :class:`Program` (convenience wrapper)."""
    return Assembler().assemble(source, name=name)

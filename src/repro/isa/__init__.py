"""The repro instruction-set architecture.

A small RISC-like ISA with integer, floating-point and vector register
files, syscall and nondeterministic-read instructions, an assembler and a
disassembler.  Programs in this ISA stand in for the unmodified binaries
Parallaft protects.
"""

from repro.isa.assembler import Assembler, assemble
from repro.isa.disassembler import disassemble_instr, disassemble_program
from repro.isa.encoding import (
    decode_instr,
    decode_program_code,
    encode_instr,
    encode_program_code,
)
from repro.isa.instructions import Instr, make_brk, make_nop
from repro.isa.program import (
    CODE_BASE,
    DATA_BASE,
    INSTR_SIZE,
    STACK_SIZE,
    STACK_TOP,
    Program,
)

__all__ = [
    "Assembler",
    "assemble",
    "disassemble_instr",
    "disassemble_program",
    "encode_instr",
    "decode_instr",
    "encode_program_code",
    "decode_program_code",
    "Instr",
    "make_brk",
    "make_nop",
    "Program",
    "CODE_BASE",
    "DATA_BASE",
    "INSTR_SIZE",
    "STACK_TOP",
    "STACK_SIZE",
]

"""Detection modes: the policy layer over the shared runtime mechanism.

Importing this package registers the built-in modes (``parallaft``,
``raft``, ``tmr``); :func:`get_mode` resolves a name to its singleton
and raises a typed error listing the registry for unknown names.
"""

from repro.modes.base import (
    DetectionMode,
    get_mode,
    register_mode,
    registered_modes,
)
from repro.modes.parallaft import ParallaftMode
from repro.modes.raft import RaftMode
from repro.modes.tmr import TmrMode

__all__ = [
    "DetectionMode",
    "register_mode",
    "registered_modes",
    "get_mode",
    "ParallaftMode",
    "RaftMode",
    "TmrMode",
    "run_mode_comparison",
    "ModeRunSummary",
]


def __getattr__(name):
    # The comparison campaign pulls in the fault-injection stack; load it
    # lazily so `import repro.modes` stays cheap for the runtime hot path.
    if name in ("run_mode_comparison", "ModeRunSummary"):
        from repro.modes import comparison
        return getattr(comparison, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

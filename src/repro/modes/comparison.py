"""Cross-mode comparison campaigns: one injection set, every mode.

The point of the :class:`~repro.modes.base.DetectionMode` abstraction is
that modes become *comparable*: the same workload, the same faults, one
table.  To make the injection set identical across modes, faults are
described in mode-independent coordinates — a register site plus a
fraction of the main's total instruction progress.  Segment geometry
differs per mode (RAFT records one segment, Parallaft/TMR slice), so
anything phrased per-segment would not transfer; instruction progress of
the protected process does.

Per mode the campaign runs one fault-free reference (wall time, stdout /
stderr oracle) plus one run per injection, recording:

* **outcome** — :func:`repro.faults.outcomes.classify_run` against the
  mode's own fault-free output;
* **detection latency** — virtual seconds from the bit flip to the first
  detection action (``error``, ``outvoted``, ``forward_recovery`` or
  ``rollback`` event), the window during which corrupt state existed
  undetected;
* **recovery behaviour** — rollbacks and forward recoveries, so the
  table shows *how* each mode survived, not just whether.

:func:`repro.harness.report.render_mode_comparison` renders the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.rng import RngPool
from repro.core import Parallaft
from repro.faults.outcomes import Outcome, classify_run
from repro.faults.sites import FaultSite, TARGET_MAIN
from repro.isa.registers import all_fault_sites
from repro.modes.base import get_mode
from repro.sim.platform import PlatformConfig, apple_m2
from repro.trace import events as tev

#: Trace events that mark the moment a fault stopped being silent.
_DETECTION_EVENTS = (tev.ERROR, tev.OUTVOTED, tev.FORWARD_RECOVERY,
                     tev.ROLLBACK)


@dataclass
class PlannedFault:
    """One mode-independent injection: flip ``site`` when the main's
    instruction progress crosses ``fraction`` of the reference total."""

    index: int
    site: FaultSite
    fraction: float


@dataclass
class ModeInjectionRecord:
    """What one planned fault did under one mode."""

    fault_index: int
    outcome: Outcome
    fired: bool
    #: Virtual seconds from flip to first detection action; None when the
    #: fault never fired, was benign, or escaped as an SDC.
    detection_latency: Optional[float] = None
    rollbacks: int = 0
    forward_recoveries: int = 0
    outvoted: int = 0
    error_kind: str = ""


@dataclass
class ModeRunSummary:
    """One mode's column of the comparison table."""

    mode: str
    wall_time: float                  # fault-free protected wall time
    baseline_wall_time: float         # unprotected reference
    records: List[ModeInjectionRecord] = field(default_factory=list)

    @property
    def overhead_pct(self) -> float:
        if self.baseline_wall_time <= 0:
            return 0.0
        return (self.wall_time / self.baseline_wall_time - 1.0) * 100.0

    @property
    def fired(self) -> List[ModeInjectionRecord]:
        return [r for r in self.records if r.fired]

    def count(self, outcome: Outcome) -> int:
        return sum(1 for r in self.fired if r.outcome == outcome)

    def fraction(self, outcome: Outcome) -> float:
        fired = self.fired
        return self.count(outcome) / len(fired) if fired else 0.0

    @property
    def detected_fraction(self) -> float:
        fired = self.fired
        if not fired:
            return 0.0
        return sum(1 for r in fired if r.outcome.is_detected) / len(fired)

    @property
    def sdc_fraction(self) -> float:
        return self.fraction(Outcome.SDC)

    @property
    def mean_detection_latency(self) -> Optional[float]:
        latencies = [r.detection_latency for r in self.fired
                     if r.detection_latency is not None]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    @property
    def total_rollbacks(self) -> int:
        return sum(r.rollbacks for r in self.records)

    @property
    def total_forward_recoveries(self) -> int:
        return sum(r.forward_recoveries for r in self.records)

    @property
    def detected_fault_indices(self) -> frozenset:
        """Which planned faults this mode detected — set-comparable
        across modes because the plan is shared."""
        return frozenset(r.fault_index for r in self.fired
                         if r.outcome.is_detected)


def plan_faults(count: int, seed: int = 0,
                low: float = 0.05, high: float = 0.9) -> List[PlannedFault]:
    """Draw the shared injection plan.

    Fractions stay inside ``[low, high]`` so every flip lands while the
    main is still recording under every segment geometry.  The draws
    come from a named stream of the substrate RNG: the plan depends only
    on ``(seed, count)``, never on which modes later consume it.
    """
    rng = RngPool(seed).stream("mode-comparison")
    sites = all_fault_sites()
    plan = []
    for index in range(count):
        file_name, reg_index, bit = rng.choice(sites)
        plan.append(PlannedFault(
            index=index,
            site=FaultSite.register(file_name, reg_index, bit,
                                    target=TARGET_MAIN),
            fraction=rng.uniform(low, high)))
    return plan


def _baseline_wall(program, platform: PlatformConfig, files, seed: int,
                   quantum: int) -> float:
    from repro.kernel import Kernel
    from repro.sim import Executor
    kernel = Kernel(page_size=platform.page_size, seed=seed)
    executor = Executor(kernel, platform, quantum=quantum)
    for path, data in files.items():
        kernel.vfs.register(path, data)
    proc = kernel.spawn(program)
    executor.schedule_default(proc)
    executor.run()
    if proc.exit_code != 0:
        raise RuntimeError(f"baseline exited {proc.exit_code}")
    return (proc.exit_time or executor.wall_time()) - proc.spawn_time


def _first_detection_ts(runtime, fired_ts: float) -> Optional[float]:
    for event in runtime.trace:
        if event.kind in _DETECTION_EVENTS and event.ts >= fired_ts:
            return event.ts
    return None


def run_mode_comparison(program, modes: Sequence[str] = ("parallaft",
                                                         "raft", "tmr"),
                        injections: int = 6, seed: int = 0,
                        files: Optional[Dict[str, bytes]] = None,
                        platform_factory=apple_m2,
                        quantum: int = 2000,
                        config_overrides: Optional[Dict] = None,
                        ) -> Dict[str, ModeRunSummary]:
    """Run the identical injection plan under every requested mode.

    ``program`` is a compiled :class:`~repro.isa.program.Program`;
    ``config_overrides`` (e.g. ``{"meek_split": 0.5}``) is applied to
    every mode's config where the knob exists.  Returns
    ``{mode: ModeRunSummary}`` in the order requested.
    """
    files = files or {}
    plan = plan_faults(injections, seed=seed)
    baseline = _baseline_wall(program, platform_factory(), files, seed,
                              quantum)
    summaries: Dict[str, ModeRunSummary] = {}

    for mode_name in modes:
        detection = get_mode(mode_name)  # typed error for unknown names

        def make_config():
            base = detection._base_config()
            overrides = {k: v for k, v in (config_overrides or {}).items()
                         if hasattr(base, k)}
            # meek_split divides the state check; a mode that never
            # compares state (RAFT) has nothing to split.
            if not base.compare_state:
                overrides.pop("meek_split", None)
            return detection.make_config(**overrides)

        def fresh_runtime():
            return Parallaft(program, config=make_config(),
                             platform=platform_factory(), files=files,
                             seed=seed, quantum=quantum)

        # Fault-free reference: this mode's own oracle and wall time.
        reference = fresh_runtime()
        ref_stats = reference.run()
        if ref_stats.error_detected or ref_stats.exit_code != 0:
            raise RuntimeError(
                f"{mode_name} fault-free reference failed: "
                f"{ref_stats.errors} exit={ref_stats.exit_code}")
        total_instructions = sum(s.main_instructions
                                 for s in reference.segments)
        summary = ModeRunSummary(mode=mode_name,
                                 wall_time=ref_stats.all_wall_time,
                                 baseline_wall_time=baseline)

        for fault in plan:
            runtime = fresh_runtime()
            threshold = fault.fraction * total_instructions
            fired = [None]  # virtual timestamp of the flip

            def hook(proc, role, fault=fault, runtime=runtime,
                     threshold=threshold, fired=fired):
                if fired[0] is not None or role != "main":
                    return
                if runtime._instr_reading(proc) >= threshold:
                    if fault.site.apply(
                            proc, runtime.dirty_tracker.dirty_vpns(proc)):
                        fired[0] = runtime.executor.current_time

            runtime.quantum_hooks.append(hook)
            stats = runtime.run()
            record = ModeInjectionRecord(
                fault_index=fault.index,
                outcome=Outcome.BENIGN,
                fired=fired[0] is not None,
                rollbacks=stats.recovery_rollbacks,
                forward_recoveries=stats.tmr_forward_recoveries,
                outvoted=stats.tmr_outvoted,
                error_kind=stats.errors[0].kind if stats.errors else "")
            if record.fired:
                record.outcome = classify_run(stats, ref_stats.stdout,
                                              ref_stats.stderr)
                detected_ts = _first_detection_ts(runtime, fired[0])
                if detected_ts is not None:
                    record.detection_latency = detected_ts - fired[0]
            summary.records.append(record)
        summaries[mode_name] = summary
    return summaries

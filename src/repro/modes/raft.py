"""The RAFT baseline (paper §5.1): a single unsliced segment whose
checker replays concurrently on a big core, detecting divergence only
through the record/replay log (no boundary state compare)."""

from __future__ import annotations

from repro.modes.base import DetectionMode, register_mode


@register_mode
class RaftMode(DetectionMode):
    name = "raft"
    summary = ("single-segment concurrent replay on a big core; log "
               "divergence only, no boundary state compare")
    replica_count = 1
    concurrent_checking = True
    slices = False

    @classmethod
    def _base_config(cls):
        from repro.core.config import ParallaftConfig
        return ParallaftConfig.raft()

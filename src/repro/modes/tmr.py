"""TMR with forward recovery (Elzar-style triple modular redundancy).

Each segment forks *two* checker replicas instead of one, so a boundary
has three independent copies of the segment's end state: the main's end
checkpoint plus both replicas.  Instead of the pairwise compare, the
boundary runs a majority vote:

* all three agree — unanimous, the segment verifies as usual;
* one replica disagrees — it is outvoted (``outvoted`` event,
  ``counter.tmr.outvoted``) and the segment still verifies;
* *both* replicas disagree with the main but agree with each other —
  the main itself carried the fault.  Forward recovery adopts the
  majority state: the winning replica is promoted to be the new main
  and execution continues *forward* from the boundary.  No rollback
  ever runs (the no-ROLLBACK-after-FORWARD_RECOVERY trace invariant);
* all three disagree — no majority exists, adopting any state would be
  a guess: fail-stop with a typed ``vote_inconclusive`` error (the
  vote-quorum invariant: a quorum-1 vote must be followed by an error).

A replica that fails *mid-replay* (divergence, exception, timeout) is
outvoted immediately rather than failing the segment: the remaining
voters still form a majority.  Integrity faults are never absorbed —
they implicate the comparator or saved state, not one replica.
"""

from __future__ import annotations

from repro.modes.base import DetectionMode, register_mode
from repro.trace import events as tev


@register_mode
class TmrMode(DetectionMode):
    name = "tmr"
    summary = ("three-way majority vote per segment boundary with "
               "forward recovery (no rollback) when the main is outvoted")
    replica_count = 2
    concurrent_checking = False
    slices = True

    #: Mid-replay failure kinds a single replica can be outvoted for.
    #: Integrity kinds (``log_integrity``/``infra_integrity``) are
    #: excluded: they implicate shared infrastructure, and outvoting a
    #: replica on rotten evidence would launder the corruption.
    ABSORBABLE = frozenset({"syscall_divergence", "exception", "timeout",
                            "exec_point_overrun"})

    @classmethod
    def _base_config(cls):
        from repro.core.config import ParallaftConfig
        return ParallaftConfig.tmr()

    def boundary_check(self, rt, segment) -> None:
        """All replicas arrived: run the three-way vote."""
        from repro.metrics import phases as mph
        config = rt.config
        if not config.compare_state:
            rt._segment_verified(segment)
            return
        for hook in rt.compare_hooks:
            hook(segment)
        results = []
        union = set()
        for replica in segment.replicas:
            result, replica_union = rt._compare_replica(segment, replica,
                                                        mph.VOTE)
            results.append(result)
            union |= replica_union
        for result in results:
            if result.reason == "integrity":
                # The comparator's two hash paths disagreed: no verdict
                # it produced can be trusted, voting included.
                rt._integrity_fail("digest", segment, result.describe())
                rt._report_error("infra_integrity", segment,
                                 result.describe())
                return
        processes = [r.process for r in segment.replicas]
        vote = rt.comparator.vote(processes, segment.end_checkpoint,
                                  dirty_vpns=union, results=results)
        if vote.cross_result is not None:
            # The replica-vs-replica tie-break compare ran; charge its
            # hashing to the vote phase like the per-replica compares.
            rt.executor.charge(
                processes[-1],
                rt.kernel.costs.hash_cycles(vote.cross_result.bytes_hashed),
                phase=mph.VOTE)
        rt.stats.tmr_votes += 1
        rt._emit(tev.VOTE, segment=segment.index, quorum=vote.quorum,
                 main_outvoted=vote.main_outvoted)
        if vote.quorum >= 2 and not vote.main_outvoted:
            for index in vote.loser_replicas:
                loser = segment.replicas[index]
                rt.stats.tmr_outvoted += 1
                rt._emit(tev.OUTVOTED, proc=loser.process,
                         segment=segment.index, loser="checker",
                         cause=results[index].reason or "mismatch")
            rt._segment_verified(segment)
            return
        if vote.main_outvoted:
            if rt.stats.tmr_forward_recoveries \
                    >= config.max_forward_recoveries:
                rt._report_error(
                    "vote_inconclusive", segment,
                    f"main outvoted but the forward-recovery budget "
                    f"({config.max_forward_recoveries}) is spent")
                return
            rt._forward_recover(segment, vote)
            return
        rt._report_error(
            "vote_inconclusive", segment,
            "all three states disagree at the segment boundary — no "
            "majority exists to adopt")

    def absorb_replica_error(self, rt, segment, replica, kind: str,
                             detail: str) -> bool:
        """Outvote a single mid-replay failure while a majority remains."""
        if kind not in self.ABSORBABLE:
            return False
        if not [r for r in segment.live_replicas() if r is not replica]:
            # Last live replica: two voters left, no majority possible —
            # let the error report proceed.
            return False
        rt._discard_replica(segment, replica)
        rt.stats.tmr_outvoted += 1
        rt._emit(tev.OUTVOTED, segment=segment.index, loser="checker",
                 cause=kind, detail=detail)
        if segment.all_replicas_arrived():
            # The survivors already reached the end point; run the
            # (degraded) vote now — nothing else will trigger it.
            self.boundary_check(rt, segment)
        return True

"""The :class:`DetectionMode` contract and mode registry.

A detection mode is the *policy* half of the runtime: how many checker
replicas a segment forks, when they are submitted to the checker
scheduler, whether the run is sliced into segments at all, what happens
at a segment boundary (pairwise compare, majority vote, or nothing) and
how a divergence is resolved (fail-stop, retry/rollback, or forward
recovery).  The mechanism half — forking, replay, dirty tracking,
scheduling — stays in :mod:`repro.core.runtime` and is shared by every
mode.

Modes register themselves by name; :func:`get_mode` is the single
resolution point used by ``ParallaftConfig.detection_mode()``, the
harness CLI and the campaign drivers, so an unknown mode string raises a
typed :class:`~repro.common.errors.ConfigError` listing the registered
names instead of silently falling through to a default.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Type

from repro.common.errors import ConfigError

if TYPE_CHECKING:
    from repro.core.config import ParallaftConfig
    from repro.core.runtime import Parallaft
    from repro.core.segment import Replica, Segment

_REGISTRY: Dict[str, "DetectionMode"] = {}


class DetectionMode:
    """Segment-lifecycle policy for one detection strategy.

    Subclasses override the class attributes (cheap structural choices
    the runtime reads in hot paths) and the hook methods (boundary and
    error policy).  Mode objects are stateless singletons — per-run
    state lives on the runtime and its :class:`RunStats`.
    """

    #: Registry key; also the ``RuntimeMode`` enum value.
    name: str = ""
    #: One-line summary for ``--help`` and the docs table.
    summary: str = ""
    #: Checker replicas forked per segment (the main is not a replica).
    replica_count: int = 1
    #: Submit the segment to the checker scheduler at segment *start*
    #: (concurrent log-consuming replay, RAFT) instead of at release.
    concurrent_checking: bool = False
    #: Whether ``on_quantum`` slices the run into periodic segments.
    slices: bool = True

    # ------------------------------------------------------------ config

    @classmethod
    def make_config(cls, **overrides) -> "ParallaftConfig":
        """A fresh :class:`ParallaftConfig` preset for this mode."""
        config = cls._base_config()
        for key, value in overrides.items():
            if not hasattr(config, key):
                raise ConfigError(f"unknown config field {key!r}")
            setattr(config, key, value)
        return config

    @classmethod
    def _base_config(cls) -> "ParallaftConfig":
        raise NotImplementedError

    # ------------------------------------------------- lifecycle hooks

    def on_segment_start(self, rt: "Parallaft", segment: "Segment") -> None:
        """Called after a segment's replicas are forked (paused)."""
        if self.concurrent_checking:
            rt.sched.submit(segment)

    def on_segment_release(self, rt: "Parallaft",
                           segment: "Segment") -> None:
        """Called when the segment's end point is known and its replicas
        are ready to replay."""
        if not self.concurrent_checking:
            rt.sched.submit(segment)

    def boundary_check(self, rt: "Parallaft", segment: "Segment") -> None:
        """All replicas reached the segment end point: decide the
        segment's fate (CHECKED, error, vote, ...).  The default policy
        is the paper's pairwise checker-vs-checkpoint compare (which
        degenerates to "always pass" when ``compare_state`` is off, the
        RAFT configuration)."""
        rt._pairwise_boundary_check(segment)

    def absorb_replica_error(self, rt: "Parallaft", segment: "Segment",
                             replica: "Replica", kind: str,
                             detail: str) -> bool:
        """A single replica failed mid-replay (divergence, exception,
        timeout).  Return True if the mode absorbed the failure (e.g. by
        outvoting the replica) so the runtime must not report an error.
        The default policy absorbs nothing."""
        return False


# ---------------------------------------------------------------- registry

def register_mode(cls: Type[DetectionMode]) -> Type[DetectionMode]:
    """Class decorator: instantiate and register a mode singleton."""
    if not cls.name:
        raise ConfigError(f"{cls.__name__} has no mode name")
    _REGISTRY[cls.name] = cls()
    return cls


def registered_modes() -> List[str]:
    """Registered mode names, sorted for stable error messages."""
    return sorted(_REGISTRY)


def get_mode(name: str) -> DetectionMode:
    """Resolve a mode by name; unknown names raise a typed error that
    lists every registered mode."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown detection mode {name!r}; registered modes: "
            f"{', '.join(registered_modes())}") from None

"""The paper's Parallaft mode: sliced segments, one little-core checker
per segment, pairwise state compare at each boundary."""

from __future__ import annotations

from repro.modes.base import DetectionMode, register_mode


@register_mode
class ParallaftMode(DetectionMode):
    name = "parallaft"
    summary = ("sliced record/replay with one little-core checker per "
               "segment and a pairwise boundary compare")
    replica_count = 1
    concurrent_checking = False
    slices = True

    @classmethod
    def _base_config(cls):
        from repro.core.config import ParallaftConfig
        return ParallaftConfig()

"""The machine/OS ABI: syscall numbers, signal numbers, calling convention.

Shared by the kernel (dispatch), the mini-C compiler (intrinsic codegen),
the Parallaft syscall model (classification and memory effects) and tests.

Calling convention
------------------
* syscalls: number in ``r0``, arguments in ``r1``–``r5``, result in ``r0``
  (negative values are ``-errno``);
* functions: integer arguments in ``r1``–``r6``, floats in ``f0``–``f5``,
  integer results in ``r0``, float results in ``f0``; ``r7``–``r12`` are
  callee-saved; ``r13``/``r14``/``r15`` are ``sp``/``lr``/``fp``.
"""

from __future__ import annotations

# -- syscall numbers (Linux-flavoured) ---------------------------------------

SYS_READ = 0
SYS_WRITE = 1
SYS_OPEN = 2
SYS_CLOSE = 3
SYS_MMAP = 9
SYS_MPROTECT = 10
SYS_MUNMAP = 11
SYS_BRK = 12
SYS_SIGACTION = 13
SYS_GETPID = 39
SYS_EXIT = 60
SYS_KILL = 62
SYS_GETTIMEOFDAY = 96
SYS_PRCTL = 157
SYS_GETRANDOM = 318

SYSCALL_NAMES = {
    SYS_READ: "read",
    SYS_WRITE: "write",
    SYS_OPEN: "open",
    SYS_CLOSE: "close",
    SYS_MMAP: "mmap",
    SYS_MPROTECT: "mprotect",
    SYS_MUNMAP: "munmap",
    SYS_BRK: "brk",
    SYS_SIGACTION: "sigaction",
    SYS_GETPID: "getpid",
    SYS_EXIT: "exit",
    SYS_KILL: "kill",
    SYS_GETTIMEOFDAY: "gettimeofday",
    SYS_PRCTL: "prctl",
    SYS_GETRANDOM: "getrandom",
}

# -- errno values -------------------------------------------------------------

EBADF = 9
ENOMEM = 12
EFAULT = 14
EINVAL = 22
ENOSYS = 38
ENOENT = 2

# -- mmap flags/prot shared with repro.mem ------------------------------------

# (numeric values re-exported so compiled programs can use them as literals)
PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4
MAP_PRIVATE = 1
MAP_SHARED = 2
MAP_ANONYMOUS = 4
MAP_FIXED = 8

# -- signals -------------------------------------------------------------------

SIGHUP = 1
SIGINT = 2
SIGILL = 4
SIGTRAP = 5
SIGFPE = 8
SIGKILL = 9
SIGUSR1 = 10
SIGSEGV = 11
SIGUSR2 = 12
SIGTERM = 15

SIGNAL_NAMES = {
    SIGHUP: "SIGHUP", SIGINT: "SIGINT", SIGILL: "SIGILL",
    SIGTRAP: "SIGTRAP", SIGFPE: "SIGFPE", SIGKILL: "SIGKILL",
    SIGUSR1: "SIGUSR1", SIGSEGV: "SIGSEGV", SIGUSR2: "SIGUSR2",
    SIGTERM: "SIGTERM",
}

#: Signals whose default action terminates the process.
FATAL_SIGNALS = frozenset({SIGHUP, SIGINT, SIGILL, SIGTRAP, SIGFPE, SIGKILL,
                           SIGSEGV, SIGTERM})

# -- file descriptors -----------------------------------------------------------

STDIN = 0
STDOUT = 1
STDERR = 2

"""Slicing-period mapping between paper-quoted and simulated values.

The paper's benchmarks average ~120 s of wall time with a 5-billion-cycle
slicing period (~84 segments each).  Our workloads are duration-compressed
to ~15 s, so running them with a literal 5-billion-cycle period would leave
only a couple of segments per run and distort every period-dependent ratio
(last-checker sync in particular).  The harness therefore divides
paper-quoted periods by :data:`DURATION_COMPRESSION`, preserving the
segments-per-run ratio; figures are labelled with the paper-equivalent
period.
"""

from __future__ import annotations

from repro.common.units import BILLION

#: Our suite's wall times are ~8x shorter than the paper's SPEC ref runs.
DURATION_COMPRESSION = 8.0


def effective_period(paper_period: float) -> float:
    """Map a paper-quoted slicing period (hw cycles or instructions) to the
    equivalent period for our compressed workloads."""
    return paper_period / DURATION_COMPRESSION


def paper_period_label(paper_period: float) -> str:
    value = paper_period / BILLION
    if value == int(value):
        value = int(value)
    return f"{value}Billion"

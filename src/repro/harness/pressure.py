"""Memory-pressure degradation campaign (``repro.core.pressure``).

Sweeps each workload across a ladder of frame-pool budgets, from
unbounded down past the point of OOM, and records how gracefully the
runtime degrades: wall-time overhead versus the unbounded protected run,
peak resident bytes, every ladder counter, and whether the committed
output stayed byte-identical.  Optionally re-runs the paper's fault
campaign at each surviving budget to show that degradation never costs
detection coverage.

Budgets are expressed the way capacity planning would express them: the
workload's *unprotected* footprint plus a fraction of the *protection
overhead* (the extra frames checkpoints and checkers pin).  A fraction
above 1.0 is a comfortable machine; 0 would be a machine with no room
for protection at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign import CampaignEngine, CampaignTask, DISP_COMPLETED, \
    named_seed
from repro.core import Parallaft, ParallaftConfig
from repro.core.stats import RunStats
from repro.faults import CampaignResult, FaultInjector
from repro.kernel import Kernel
from repro.minic import compile_source
from repro.sim import Executor, PlatformConfig, apple_m2
from repro.trace.invariants import InvariantViolation, check_runtime
from repro.workloads.registry import Benchmark

#: Default budget ladder: fractions of the protection overhead kept on
#: top of the unprotected footprint.  The smallest rung is meant to OOM.
DEFAULT_FRACTIONS: Tuple[float, ...] = (1.5, 0.8, 0.5, 0.25)


@dataclass
class PressureRunResult:
    """One workload at one budget."""

    budget_bytes: Optional[int]       # None = unbounded reference
    overhead_fraction: Optional[float]  # the ladder fraction (None = unb.)
    wall_time: float
    overhead_pct: float               # vs the unbounded protected run
    peak_resident_bytes: float
    stalls: int
    sheds: int
    evictions: int
    adaptations: int
    checker_ooms: int
    oom_kills: int
    oom: bool                         # the run ended as an OOM exit
    output_matched: bool              # stdout byte-identical to reference
    segments_checked: int
    error_kinds: List[str] = field(default_factory=list)
    invariant_violations: List[InvariantViolation] = field(
        default_factory=list)
    campaign: Optional[CampaignResult] = None

    @property
    def survived(self) -> bool:
        return not self.oom and not self.error_kinds

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form for campaign journals.  Invariant
        violations keep their invariant name and message; the triggering
        :class:`~repro.trace.TraceEvent` does not cross the process
        boundary (it holds live runtime references)."""
        return {
            "budget_bytes": self.budget_bytes,
            "overhead_fraction": self.overhead_fraction,
            "wall_time": self.wall_time,
            "overhead_pct": self.overhead_pct,
            "peak_resident_bytes": self.peak_resident_bytes,
            "stalls": self.stalls, "sheds": self.sheds,
            "evictions": self.evictions, "adaptations": self.adaptations,
            "checker_ooms": self.checker_ooms,
            "oom_kills": self.oom_kills, "oom": self.oom,
            "output_matched": self.output_matched,
            "segments_checked": self.segments_checked,
            "error_kinds": list(self.error_kinds),
            "invariant_violations": [
                {"invariant": v.invariant, "message": v.message}
                for v in self.invariant_violations],
            "campaign": (self.campaign.to_dict()
                         if self.campaign is not None else None),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "PressureRunResult":
        doc = dict(doc)
        doc["invariant_violations"] = [
            InvariantViolation(invariant=v["invariant"],
                               message=v["message"])
            for v in doc["invariant_violations"]]
        campaign = doc["campaign"]
        doc["campaign"] = (CampaignResult.from_dict(campaign)
                           if campaign is not None else None)
        return cls(**doc)


@dataclass
class PressureSweep:
    """One workload's full budget ladder."""

    benchmark: str
    baseline_peak_bytes: int          # unprotected pool high-water mark
    unbounded_peak_bytes: float       # unbounded *protected* high-water
    runs: List[PressureRunResult] = field(default_factory=list)
    #: The engine's :class:`repro.campaign.FleetResult` when the sweep
    #: came out of :func:`run_pressure_campaign`; not serialized.
    fleet: Optional[object] = field(default=None, compare=False,
                                    repr=False)

    @property
    def overhead_monotone(self) -> bool:
        """Overhead must not decrease as the budget shrinks (within a
        small scheduling tolerance) across the surviving rungs."""
        walls = [r.wall_time for r in self.runs if r.survived]
        return all(b >= a * 0.995 for a, b in zip(walls, walls[1:]))

    def to_dict(self) -> Dict[str, object]:
        return {"benchmark": self.benchmark,
                "baseline_peak_bytes": self.baseline_peak_bytes,
                "unbounded_peak_bytes": self.unbounded_peak_bytes,
                "runs": [r.to_dict() for r in self.runs]}

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "PressureSweep":
        return cls(benchmark=doc["benchmark"],
                   baseline_peak_bytes=doc["baseline_peak_bytes"],
                   unbounded_peak_bytes=doc["unbounded_peak_bytes"],
                   runs=[PressureRunResult.from_dict(r)
                         for r in doc["runs"]])


def _baseline_peak(bench: Benchmark, platform: PlatformConfig,
                   scale: int, seed: int, quantum: int) -> int:
    """Unprotected run: the pool high-water mark is the workload's own
    footprint (image + working set), the floor any budget must clear."""
    kernel = Kernel(page_size=platform.page_size, seed=seed)
    executor = Executor(kernel, platform, quantum=quantum)
    source, files = bench.build(scale, seed)
    for path, data in files.items():
        kernel.vfs.register(path, data)
    proc = kernel.spawn(compile_source(source, name=bench.name))
    executor.schedule_default(proc)
    executor.run()
    if proc.exit_code != 0:
        raise RuntimeError(f"{bench.name} baseline exited {proc.exit_code}")
    return kernel.pool.peak_resident_bytes


def _protected_run(bench: Benchmark, config: ParallaftConfig,
                   platform: PlatformConfig, scale: int, seed: int,
                   quantum: int) -> Tuple[RunStats, List[InvariantViolation]]:
    source, files = bench.build(scale, seed)
    runtime = Parallaft(compile_source(source, name=bench.name),
                        config=config, platform=platform, files=files,
                        seed=seed, quantum=quantum)
    stats = runtime.run()
    return stats, check_runtime(runtime)


def _mini_campaign(bench: Benchmark, budget: int,
                   platform_factory, scale: int, seed: int, quantum: int,
                   injections_per_segment: int,
                   max_segments: int,
                   mode: str = "parallaft") -> CampaignResult:
    """The paper's checker-side campaign, replayed under this budget."""
    from repro.modes import get_mode
    detection = get_mode(mode)
    source, files = bench.build(scale, seed)
    injector = FaultInjector(
        compile_source(source, name=bench.name),
        config_factory=lambda: detection.make_config(
            mem_budget_bytes=budget),
        platform_factory=platform_factory,
        files=files, seed=seed, quantum=quantum)
    return injector.run_campaign(
        injections_per_segment=injections_per_segment,
        benchmark_name=f"{bench.name}@{budget}",
        max_segments=max_segments)


def run_pressure_sweep(bench: Benchmark,
                       fractions: Sequence[float] = DEFAULT_FRACTIONS,
                       platform: Optional[PlatformConfig] = None,
                       scale: int = 1, seed: int = 1, quantum: int = 2000,
                       injections_per_segment: int = 0,
                       max_campaign_segments: int = 3,
                       mode: str = "parallaft") -> PressureSweep:
    """Sweep one workload down the budget ladder.

    ``injections_per_segment > 0`` additionally runs a fault campaign at
    every budget whose fault-free run survived, proving the degradation
    ladder does not open detection gaps.  ``mode`` picks the detection
    mode every rung runs under (registry-resolved, so an unknown name is
    a typed error rather than a silent parallaft run).
    """
    from repro.modes import get_mode
    detection = get_mode(mode)
    platform = platform or apple_m2()
    base = _baseline_peak(bench, platform, scale, seed, quantum)

    unbounded, violations = _protected_run(
        bench, detection.make_config(mem_budget_bytes=None), platform,
        scale, seed, quantum)
    if unbounded.error_detected or unbounded.exit_code != 0:
        raise RuntimeError(f"{bench.name} unbounded reference failed: "
                           f"{unbounded.errors} exit={unbounded.exit_code}")
    reference_stdout = unbounded.stdout
    peak = unbounded.peak_resident_bytes

    sweep = PressureSweep(benchmark=bench.name, baseline_peak_bytes=base,
                          unbounded_peak_bytes=peak)
    sweep.runs.append(_to_result(unbounded, None, None, unbounded,
                                 reference_stdout, violations))

    for fraction in fractions:
        budget = int(base + fraction * (peak - base))
        config = detection.make_config(mem_budget_bytes=budget)
        stats, violations = _protected_run(
            bench, config, platform, scale, seed, quantum)
        result = _to_result(stats, budget, fraction, unbounded,
                            reference_stdout, violations)
        if injections_per_segment > 0 and result.survived:
            result.campaign = _mini_campaign(
                bench, budget, lambda: platform, scale, seed, quantum,
                injections_per_segment, max_campaign_segments, mode=mode)
        sweep.runs.append(result)
    return sweep


def _to_result(stats: RunStats, budget: Optional[int],
               fraction: Optional[float], unbounded: RunStats,
               reference_stdout: str,
               violations: List[InvariantViolation]) -> PressureRunResult:
    overhead = (stats.all_wall_time / unbounded.all_wall_time - 1.0) * 100.0
    return PressureRunResult(
        budget_bytes=budget,
        overhead_fraction=fraction,
        wall_time=stats.all_wall_time,
        overhead_pct=overhead,
        peak_resident_bytes=stats.peak_resident_bytes,
        stalls=stats.pressure_stalls,
        sheds=stats.pressure_sheds,
        evictions=stats.pressure_evictions,
        adaptations=stats.pressure_adaptations,
        checker_ooms=stats.checker_ooms,
        oom_kills=stats.oom_kills,
        oom=stats.oom_killed,
        output_matched=stats.stdout == reference_stdout,
        segments_checked=stats.segments_checked,
        error_kinds=[e.kind for e in stats.errors],
        invariant_violations=violations,
    )


def run_pressure_campaign(benchmarks: Sequence[Benchmark],
                          fractions: Sequence[float] = DEFAULT_FRACTIONS,
                          platform: Optional[PlatformConfig] = None,
                          scale: int = 1, seed: int = 1, quantum: int = 2000,
                          injections_per_segment: int = 0,
                          max_campaign_segments: int = 3,
                          shards: int = 1, workers: int = 0,
                          journal_path: Optional[str] = None,
                          resume: bool = False,
                          registry=None,
                          engine_options: Optional[Dict] = None,
                          mode: str = "parallaft",
                          ) -> Dict[str, PressureSweep]:
    """Sweep every workload; returns ``{benchmark: PressureSweep}``.

    Routed through :class:`repro.campaign.CampaignEngine`, one task per
    workload.  Each workload's run seed is ``named_seed(seed, name)`` —
    keyed by the *benchmark name*, not its position in the sequence, so
    adding, dropping or reordering workloads never changes another
    workload's draws and any single sweep is reproducible in isolation.
    ``workers > 0`` sweeps workloads in parallel; ``journal_path`` +
    ``resume`` skip already-journaled sweeps.  Each returned sweep
    carries the engine's :class:`~repro.campaign.FleetResult` as
    ``sweep.fleet``.
    """
    benchmarks = list(benchmarks)
    by_name = {bench.name: bench for bench in benchmarks}
    payloads = [{"benchmark": bench.name} for bench in benchmarks]
    seeds = [named_seed(seed, bench.name) for bench in benchmarks]

    def run_task(task: CampaignTask) -> Dict[str, object]:
        bench = by_name[task.payload["benchmark"]]
        sweep = run_pressure_sweep(
            bench, fractions=fractions, platform=platform, scale=scale,
            seed=task.seed, quantum=quantum,
            injections_per_segment=injections_per_segment,
            max_campaign_segments=max_campaign_segments, mode=mode)
        return sweep.to_dict()

    engine = CampaignEngine(
        run_task, payloads, campaign_seed=seed, seeds=seeds,
        shards=shards, workers=workers, name="pressure",
        fingerprint_extra={"fractions": [float(f) for f in fractions],
                           "scale": scale,
                           "injections_per_segment":
                               injections_per_segment,
                           "benchmarks": sorted(by_name),
                           "mode": mode},
        journal_path=journal_path, resume=resume, registry=registry,
        **(engine_options or {}))
    fleet = engine.run()

    by_id = {t.task_id: t for t in engine.tasks}
    sweeps: Dict[str, PressureSweep] = {}
    for record in fleet.records:
        if record.disposition != DISP_COMPLETED:
            continue        # failed/quarantined sweeps are visible on fleet
        sweep = PressureSweep.from_dict(record.result)
        sweep.fleet = fleet
        sweeps[by_id[record.task_id].payload["benchmark"]] = sweep
    return sweeps

"""Experiment harness: runners, overhead attribution, figure reproduction."""

from repro.harness.overhead import OverheadBreakdown, breakdown
from repro.harness.periods import DURATION_COMPRESSION, effective_period
from repro.harness.pressure import (
    PressureRunResult,
    PressureSweep,
    run_pressure_campaign,
    run_pressure_sweep,
)
from repro.harness.report import (
    render_breakdown,
    render_infra_campaign,
    render_injection,
    render_memory,
    render_overheads,
    render_period_sweep,
    render_pressure_campaign,
)
from repro.harness.runner import (
    BenchmarkResult,
    InputResult,
    energy_overhead_pct,
    overhead_pct,
    run_baseline,
    run_protected,
    suite_geomean,
)

__all__ = [
    "BenchmarkResult",
    "InputResult",
    "run_baseline",
    "run_protected",
    "overhead_pct",
    "energy_overhead_pct",
    "suite_geomean",
    "OverheadBreakdown",
    "breakdown",
    "DURATION_COMPRESSION",
    "effective_period",
    "render_overheads",
    "render_breakdown",
    "render_memory",
    "render_period_sweep",
    "render_injection",
    "render_infra_campaign",
    "render_pressure_campaign",
    "PressureRunResult",
    "PressureSweep",
    "run_pressure_campaign",
    "run_pressure_sweep",
]

"""Per-figure/table experiment drivers.

One entry point per evaluation artifact in the paper.  Each returns a
structured result object and can render the same rows/series the paper
reports; the ``benchmarks/`` suite calls these and prints the comparisons
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.units import BILLION, geomean_overhead_pct
from repro.core import ParallaftConfig
from repro.faults import (
    CampaignResult,
    FaultInjector,
    KIND_MEMORY,
    KIND_REGISTER,
    Outcome,
    TARGET_MAIN,
)
from repro.harness.overhead import OverheadBreakdown, breakdown
from repro.harness.periods import effective_period, paper_period_label
from repro.harness.runner import (
    BenchmarkResult,
    energy_overhead_pct,
    overhead_pct,
    run_baseline,
    run_protected,
)
from repro.minic import compile_source
from repro.sim import PlatformConfig, apple_m2, intel_14700, platform_by_name
from repro.workloads import SENSITIVITY_TRIO, all_benchmarks, benchmark

DEFAULT_PERIOD = 5 * BILLION


def _suite(names: Optional[Sequence[str]] = None):
    registry = all_benchmarks()
    if names is None:
        return [registry[n] for n in sorted(registry)]
    return [registry[n] for n in names]


def _period_config(paper_period: float = DEFAULT_PERIOD) -> ParallaftConfig:
    config = ParallaftConfig()
    config.slicing_period = effective_period(paper_period)
    return config


# ---------------------------------------------------------------- figure 5/7/8


@dataclass
class SuiteComparison:
    """Per-benchmark baseline/Parallaft/RAFT results (figures 5, 7, 8)."""

    platform: str
    baseline: Dict[str, BenchmarkResult] = field(default_factory=dict)
    parallaft: Dict[str, BenchmarkResult] = field(default_factory=dict)
    raft: Dict[str, BenchmarkResult] = field(default_factory=dict)

    def perf_overheads(self, mode: str) -> Dict[str, float]:
        runs = self.parallaft if mode == "parallaft" else self.raft
        return {name: overhead_pct(runs[name], self.baseline[name])
                for name in runs}

    def energy_overheads(self, mode: str) -> Dict[str, float]:
        runs = self.parallaft if mode == "parallaft" else self.raft
        return {name: energy_overhead_pct(runs[name], self.baseline[name])
                for name in runs}

    def memory_normalized(self, mode: str) -> Dict[str, float]:
        """Mean PSS normalized to baseline (figure 8)."""
        runs = self.parallaft if mode == "parallaft" else self.raft
        out = {}
        for name in runs:
            base = self.baseline[name].mean_pss()
            out[name] = runs[name].mean_pss() / base if base else 0.0
        return out

    def perf_geomean(self, mode: str) -> float:
        return geomean_overhead_pct(self.perf_overheads(mode).values())

    def energy_geomean(self, mode: str) -> float:
        return geomean_overhead_pct(self.energy_overheads(mode).values())


def run_suite_comparison(platform_name: str = "apple_m2",
                         names: Optional[Sequence[str]] = None,
                         paper_period: float = DEFAULT_PERIOD,
                         sample_memory: bool = False) -> SuiteComparison:
    """Run baseline + Parallaft + RAFT over the suite: the data behind
    figures 5 (performance), 7 (energy) and 8 (memory)."""
    result = SuiteComparison(platform=platform_name)
    for bench in _suite(names):
        platform = platform_by_name(platform_name)
        result.baseline[bench.name] = run_baseline(
            bench, platform=platform_by_name(platform_name),
            sample_memory=sample_memory)
        result.parallaft[bench.name] = run_protected(
            bench, "parallaft", platform=platform_by_name(platform_name),
            config=_period_config(paper_period), sample_memory=sample_memory)
        result.raft[bench.name] = run_protected(
            bench, "raft", platform=platform_by_name(platform_name),
            sample_memory=sample_memory)
    return result


# ------------------------------------------------------------------- figure 6


def run_overhead_breakdown(platform_name: str = "apple_m2",
                           names: Optional[Sequence[str]] = None,
                           paper_period: float = DEFAULT_PERIOD
                           ) -> Dict[str, OverheadBreakdown]:
    """Figure 6: Parallaft overhead decomposed into fork+COW, resource
    contention, last-checker sync and runtime work."""
    out: Dict[str, OverheadBreakdown] = {}
    for bench in _suite(names):
        base = run_baseline(bench, platform=platform_by_name(platform_name))
        para = run_protected(bench, "parallaft",
                             platform=platform_by_name(platform_name),
                             config=_period_config(paper_period))
        out[bench.name] = breakdown(para, base)
    return out


# ------------------------------------------------------------------- figure 9


@dataclass
class PeriodSweepPoint:
    paper_period: float
    total_pct: float
    fork_and_cow_pct: float
    last_checker_sync_pct: float

    @property
    def label(self) -> str:
        return paper_period_label(self.paper_period)


def run_period_sweep(names: Sequence[str] = SENSITIVITY_TRIO,
                     paper_periods: Sequence[float] = (
                         1 * BILLION, 2 * BILLION, 5 * BILLION,
                         10 * BILLION, 20 * BILLION),
                     platform_name: str = "apple_m2"
                     ) -> Dict[str, List[PeriodSweepPoint]]:
    """Figure 9: slicing-period sensitivity on gcc/mcf/sjeng.

    Returns, per benchmark, one point per period with total overhead and
    the fork+COW / last-checker-sync components.
    """
    out: Dict[str, List[PeriodSweepPoint]] = {}
    for name in names:
        bench = benchmark(name)
        base = run_baseline(bench, platform=platform_by_name(platform_name))
        points = []
        for period in paper_periods:
            para = run_protected(bench, "parallaft",
                                 platform=platform_by_name(platform_name),
                                 config=_period_config(period))
            bd = breakdown(para, base)
            points.append(PeriodSweepPoint(
                paper_period=period,
                total_pct=bd.total_pct,
                fork_and_cow_pct=bd.fork_and_cow_pct,
                last_checker_sync_pct=bd.last_checker_sync_pct))
        out[name] = points
    return out


def sweet_spot(points: List[PeriodSweepPoint]) -> float:
    """The period minimizing total overhead (paper: gcc 2B, mcf 5B,
    sjeng 20B)."""
    return min(points, key=lambda p: p.total_pct).paper_period


# ------------------------------------------------------------------ figure 10


def run_fault_injection(names: Optional[Sequence[str]] = None,
                        injections_per_segment: int = 5,
                        paper_period: float = DEFAULT_PERIOD,
                        platform_name: str = "apple_m2",
                        seed: int = 0,
                        max_segments: Optional[int] = None
                        ) -> Dict[str, CampaignResult]:
    """Figure 10: register bit-flip campaigns per benchmark.

    ``max_segments`` samples segments evenly (each injection replays the
    whole program, as in the paper, so full campaigns are expensive).
    """
    out: Dict[str, CampaignResult] = {}
    for bench in _suite(names):
        source, files = bench.build(1, 1)
        injector = FaultInjector(
            compile_source(source, name=bench.name),
            config_factory=lambda p=paper_period: _period_config(p),
            platform_factory=lambda pn=platform_name: platform_by_name(pn),
            files=files, seed=seed)
        out[bench.name] = injector.run_campaign(
            injections_per_segment=injections_per_segment,
            benchmark_name=bench.name, max_segments=max_segments)
    return out


#: Workloads whose output is invariant under checkpoint re-execution: they
#: never read kernel randomness or virtual time (getrandom, gettimeofday,
#: /dev/urandom), whose streams advance across a rollback.  mcf and
#: libquantum are excluded for exactly that reason.
RECOVERY_BENCHMARKS = ("bzip2", "sjeng")


def run_recovery_campaign(names: Sequence[str] = RECOVERY_BENCHMARKS,
                          injections_per_segment: int = 3,
                          paper_period: float = DEFAULT_PERIOD,
                          platform_name: str = "apple_m2",
                          seed: int = 0,
                          max_segments: Optional[int] = None,
                          recovery: bool = True,
                          site_kinds: Tuple[str, ...] = (KIND_REGISTER,
                                                         KIND_MEMORY),
                          ) -> Dict[str, CampaignResult]:
    """Recovery campaign: register/memory bit-flips in the **main** process.

    With ``recovery=True`` every recovered run's end-of-run stdout is
    asserted equal to the fault-free reference (the recovery correctness
    oracle); with ``recovery=False`` the same seeds form the detection-only
    control arm, where every non-benign run merely stops.
    """
    out: Dict[str, CampaignResult] = {}
    for bench in _suite(names):
        source, files = bench.build(1, 1)

        def config_factory(p=paper_period):
            config = _period_config(p)
            config.enable_recovery = recovery
            return config

        injector = FaultInjector(
            compile_source(source, name=bench.name),
            config_factory=config_factory,
            platform_factory=lambda pn=platform_name: platform_by_name(pn),
            files=files, seed=seed)
        out[bench.name] = injector.run_campaign(
            injections_per_segment=injections_per_segment,
            benchmark_name=bench.name, max_segments=max_segments,
            target=TARGET_MAIN, site_kinds=site_kinds,
            verify_recovered_output=recovery)
    return out


def injection_summary(campaigns: Dict[str, CampaignResult]
                      ) -> Dict[str, float]:
    """Aggregate outcome fractions over all campaigns (paper: 43.3% benign,
    everything else detected)."""
    total = sum(c.total for c in campaigns.values())
    if total == 0:
        return {o.value: 0.0 for o in Outcome}
    return {o.value: sum(c.count(o) for c in campaigns.values()) / total
            for o in Outcome}


# ----------------------------------------------------------------- §5.7 stress


@dataclass
class StressResult:
    name: str
    baseline_time: float
    protected_time: float

    @property
    def slowdown(self) -> float:
        return self.protected_time / self.baseline_time


_GETPID_STRESS = """
func main() {
    var i;
    for (i = 0; i < %(iters)d; i = i + 1) { getpid(); }
}
"""

_READ_STRESS = """
func main() {
    var fd; var buf; var i;
    fd = open("/dev/zero");
    buf = mmap_anon(1048576);
    for (i = 0; i < %(iters)d; i = i + 1) {
        read(fd, buf, 1048576);
    }
}
"""

_SIGNAL_STRESS = """
global hits;
func on_sig(sig) { hits = hits + 1; return 0; }
func main() {
    var i; var me;
    sigaction(10, 99);
    me = getpid();
    for (i = 0; i < %(iters)d; i = i + 1) { kill(me, 10); }
}
"""


def run_syscall_signal_stress(platform_name: str = "apple_m2",
                              iters: int = 150) -> Dict[str, StressResult]:
    """§5.7: syscall- and signal-dense microbenchmarks.

    Run on an *unscaled* platform (cycle_scale=1) so per-event tracing
    costs dominate loop time the way they do in reality.  Paper: getpid
    124.5x, 1 MB /dev/zero reads 18.5x, SIGUSR1 with empty handler 39.8x.
    """
    from repro.kernel import Kernel
    from repro.sim import Executor

    results: Dict[str, StressResult] = {}
    cases = {
        "getpid": _GETPID_STRESS % {"iters": iters * 4},
        "read_1mb": _READ_STRESS % {"iters": max(4, iters // 10)},
        "sigusr1": _SIGNAL_STRESS % {"iters": iters * 2},
    }
    for name, source in cases.items():
        program = compile_source(source, name=name)
        if name == "sigusr1":
            # Install the real handler address (sigaction arg is a label
            # the program cannot compute itself).
            handler = program.address_of("F_on_sig")
            for instr in program.instrs:
                if instr.imm == 99:
                    instr.imm = handler

        def timed(protected: bool) -> float:
            platform = platform_by_name(platform_name)
            platform.cycle_scale = 1
            if protected:
                from repro.core import Parallaft
                runtime = Parallaft(program, config=ParallaftConfig(),
                                    platform=platform)
                stats = runtime.run()
                return stats.main_wall_time
            kernel = Kernel(page_size=platform.page_size)
            executor = Executor(kernel, platform)
            proc = kernel.spawn(program)
            executor.schedule_default(proc)
            executor.run()
            return (proc.exit_time or executor.wall_time()) - proc.spawn_time

        results[name] = StressResult(name, timed(False), timed(True))
    return results


# ------------------------------------------------------------------- table 1/2


#: Paper Table 1, the full comparison matrix (static rows from the paper,
#: plus the two runtime-based rows our experiments regenerate).
TABLE1_STATIC_ROWS = [
    ("Lock-stepping", "TCLS/IBM/Cortex-R", True, False, "0", "~0", "~100%"),
    ("SMT", "RMT/SRTR", True, False, "0", "32-60%", "100%"),
    ("Parallel heterogeneous (hw)", "ParaMedic", True, False, "0", "3%", "16%"),
    ("Thread-local duplication", "SWIFT/nZDC", False, True, "~0", "45-197%", "~100%"),
    ("Redundant multi-threading", "DAFT/COMET", False, True, "~0", "38-400%", "~100%"),
]


def table2_capabilities() -> Dict[str, Dict[str, str]]:
    """Paper Table 2: error containment/detection/recovery capabilities."""
    return {
        "RAFT": {
            "guaranteed_error_detection": "No",
            "error_containment_in_sor": "No",
            "error_recovery_possible": "No",
        },
        "Parallaft": {
            "guaranteed_error_detection": "Yes",
            "error_containment_in_sor": "Future work",
            "error_recovery_possible": "Future work",
        },
        # This reproduction implements both of the paper's future-work rows
        # as opt-in extensions (error_containment / enable_recovery).
        "Parallaft (this repro)": {
            "guaranteed_error_detection": "Yes",
            "error_containment_in_sor": "Yes (error_containment)",
            "error_recovery_possible": "Yes (enable_recovery)",
        },
    }

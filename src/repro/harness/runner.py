"""Experiment runner: execute benchmarks under baseline / Parallaft / RAFT.

Implements the paper's measurement methodology (§5.1):

* **baseline** — the program alone on a big core; wall time, user/sys CPU
  time and energy integrated over the run.
* **parallaft** / **raft** — the same program under the runtime; performance
  overhead is wall-time relative to baseline, energy overhead likewise.
* Benchmarks with multiple inputs run each input as its own process and sum
  (SPEC-style); memory runs sample summed PSS every 0.5 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.units import geomean_overhead_pct
from repro.core import Parallaft, ParallaftConfig
from repro.core.stats import RunStats
from repro.kernel import Kernel
from repro.metrics import MetricRegistry, PhaseProfile
from repro.sim import Executor, PlatformConfig, apple_m2
from repro.workloads.registry import Benchmark


@dataclass
class InputResult:
    """Measurements for one benchmark input (one process)."""

    wall_time: float
    main_wall_time: float
    user_time: float
    sys_time: float
    energy_joules: float
    stats: Optional[RunStats] = None
    pss_samples: List[float] = field(default_factory=list)
    #: Metric registry of the run (protected modes only).
    metrics: Optional[MetricRegistry] = None
    #: Phase-attributed cycle ledger of the run (protected modes only).
    phase_profile: Optional[PhaseProfile] = None


@dataclass
class BenchmarkResult:
    """Summed measurements across a benchmark's inputs."""

    benchmark: str
    mode: str
    inputs: List[InputResult] = field(default_factory=list)

    @property
    def wall_time(self) -> float:
        return sum(r.wall_time for r in self.inputs)

    @property
    def main_wall_time(self) -> float:
        return sum(r.main_wall_time for r in self.inputs)

    @property
    def user_time(self) -> float:
        return sum(r.user_time for r in self.inputs)

    @property
    def sys_time(self) -> float:
        return sum(r.sys_time for r in self.inputs)

    @property
    def energy_joules(self) -> float:
        return sum(r.energy_joules for r in self.inputs)

    @property
    def pss_samples(self) -> List[float]:
        samples: List[float] = []
        for r in self.inputs:
            samples.extend(r.pss_samples)
        return samples

    def mean_pss(self) -> float:
        samples = self.pss_samples
        return sum(samples) / len(samples) if samples else 0.0

    def phase_profile(self) -> Optional[PhaseProfile]:
        """Phase ledgers of all inputs merged (SPEC-style summing, like
        the wall-time properties above); ``None`` for baseline runs."""
        merged: Optional[PhaseProfile] = None
        for r in self.inputs:
            if r.phase_profile is None:
                continue
            merged = (r.phase_profile if merged is None
                      else merged.merge(r.phase_profile))
        return merged


def run_baseline(bench: Benchmark, platform: Optional[PlatformConfig] = None,
                 scale: int = 1, seed_base: int = 0, quantum: int = 2000,
                 sample_memory: bool = False) -> BenchmarkResult:
    """Run a benchmark natively (no runtime) and collect measurements."""
    platform = platform or apple_m2()
    result = BenchmarkResult(bench.name, "baseline")
    for seed in bench.input_seeds():
        kernel = Kernel(page_size=platform.page_size, seed=seed_base + seed)
        executor = Executor(kernel, platform, quantum=quantum)
        source, files = bench.build(scale, seed)
        for path, data in files.items():
            kernel.vfs.register(path, data)
        from repro.minic import compile_source
        proc = kernel.spawn(compile_source(source, name=bench.name))
        executor.schedule_default(proc)
        pss: List[float] = []
        if sample_memory:
            executor.add_sampler(
                0.5, lambda _t, p=proc: pss.append(
                    p.mem.pss_bytes() if p.alive else 0.0))
        executor.run()
        if proc.exit_code != 0:
            raise RuntimeError(
                f"{bench.name} seed {seed} exited with {proc.exit_code}")
        wall = (proc.exit_time or executor.wall_time()) - proc.spawn_time
        result.inputs.append(InputResult(
            wall_time=wall,
            main_wall_time=wall,
            user_time=proc.user_time,
            sys_time=proc.sys_time,
            energy_joules=executor.total_energy_joules(wall=wall),
            pss_samples=pss,
        ))
    return result


def run_protected(bench: Benchmark, mode: str = "parallaft",
                  platform: Optional[PlatformConfig] = None,
                  config: Optional[ParallaftConfig] = None,
                  scale: int = 1, seed_base: int = 0, quantum: int = 2000,
                  sample_memory: bool = False,
                  trace_path: Optional[str] = None,
                  metrics_interval: Optional[float] = None,
                  metrics_callback: Optional[Callable] = None,
                  prom_path: Optional[str] = None,
                  collapsed_path: Optional[str] = None) -> BenchmarkResult:
    """Run a benchmark under Parallaft or the RAFT model.

    ``trace_path`` exports each input's event trace as Chrome trace_event
    JSON (Perfetto-loadable); multi-input benchmarks get a ``.seedN``
    suffix inserted before the extension.  ``metrics_interval`` turns on
    the virtual-time gauge sampler; ``metrics_callback(when, registry)``
    fires after every sample (this is how the ``--metrics`` live
    dashboard hooks in).  ``prom_path`` / ``collapsed_path`` export the
    end-of-run registry as Prometheus text and the phase profile as a
    collapsed-stack (flamegraph) file, seed-suffixed like ``trace_path``.
    """
    from repro.modes import get_mode
    detection = get_mode(mode)  # typed ConfigError for unknown names
    platform = platform or apple_m2()
    result = BenchmarkResult(bench.name, mode)
    seeds = bench.input_seeds()
    for seed in seeds:
        if config is not None:
            import copy
            run_config = copy.deepcopy(config)
        else:
            run_config = detection.make_config()
        source, files = bench.build(scale, seed)
        from repro.minic import compile_source
        runtime = Parallaft(compile_source(source, name=bench.name),
                            config=run_config, platform=platform,
                            files=files, seed=seed_base + seed,
                            quantum=quantum)
        if sample_memory:
            runtime.enable_memory_sampling(0.5)
        if metrics_interval is not None or metrics_callback is not None:
            runtime.enable_metrics_sampling(
                metrics_interval if metrics_interval is not None else 0.5,
                callback=metrics_callback)
        stats = runtime.run()
        if trace_path is not None:
            runtime.trace.write_chrome_trace(
                _trace_path_for_seed(trace_path, seed, len(seeds)))
        profile = getattr(stats, "phase_profile", None)
        if prom_path is not None or collapsed_path is not None:
            from repro.metrics import collapsed_stacks, prometheus_text
            if prom_path is not None:
                with open(_trace_path_for_seed(prom_path, seed,
                                               len(seeds)), "w") as f:
                    f.write(prometheus_text(runtime.metrics))
            if collapsed_path is not None and profile is not None:
                with open(_trace_path_for_seed(collapsed_path, seed,
                                               len(seeds)), "w") as f:
                    f.write(collapsed_stacks(profile))
        if stats.error_detected:
            raise RuntimeError(
                f"{bench.name} seed {seed} false positive: {stats.errors}")
        if stats.exit_code != 0:
            raise RuntimeError(
                f"{bench.name} seed {seed} exited with {stats.exit_code}")
        result.inputs.append(InputResult(
            wall_time=stats.all_wall_time,
            main_wall_time=stats.main_wall_time,
            user_time=stats.main_user_time,
            sys_time=stats.main_sys_time,
            energy_joules=stats.energy_joules,
            stats=stats,
            pss_samples=list(stats.pss_samples),
            metrics=getattr(stats, "metrics", None),
            phase_profile=profile,
        ))
    return result


def _trace_path_for_seed(path: str, seed: int, n_inputs: int) -> str:
    """``out.json`` -> ``out.seed1.json`` for multi-input benchmarks."""
    if n_inputs <= 1:
        return path
    root, dot, ext = path.rpartition(".")
    if not dot:
        return f"{path}.seed{seed}"
    return f"{root}.seed{seed}.{ext}"


def overhead_pct(protected: BenchmarkResult,
                 baseline: BenchmarkResult) -> float:
    """Wall-time overhead percentage vs baseline."""
    return (protected.wall_time / baseline.wall_time - 1.0) * 100.0


def energy_overhead_pct(protected: BenchmarkResult,
                        baseline: BenchmarkResult) -> float:
    return (protected.energy_joules / baseline.energy_joules - 1.0) * 100.0


def suite_geomean(overheads: Dict[str, float]) -> float:
    """Geometric-mean overhead across benchmarks, paper-style."""
    return geomean_overhead_pct(overheads.values())


def _run_campaign_cli(args) -> int:
    """``--campaign`` mode: one engine-routed fault campaign per
    benchmark, rendered as the injection-outcome table plus the fleet
    supervision table.  The printed report depends only on
    ``(seed-base, shards, plan)`` — the same flags reproduce it
    byte-for-byte whatever ``--workers`` count executed it, including a
    ``--resume`` after a crash."""
    from repro.faults import FaultInjector
    from repro.harness.report import render_fleet, render_injection
    from repro.minic import compile_source
    from repro.modes import get_mode
    from repro.sim import apple_m2
    from repro.workloads.registry import benchmark

    # A campaign runs under a detection mode; "baseline" has no checkers
    # to inject around, so the registry lookup rejects it too.
    detection = get_mode(args.mode)
    names = [n.strip() for n in args.bench.split(",")]
    campaigns = {}
    fleets = {}
    for name in names:
        bench = benchmark(name)
        source, files = bench.build(args.scale, args.seed_base)

        def config_factory():
            return detection.make_config(mem_budget_bytes=args.budget)

        journal = args.journal
        if journal is not None and len(names) > 1:
            root, dot, ext = journal.rpartition(".")
            journal = (f"{root}.{name}.{ext}" if dot
                       else f"{journal}.{name}")
        injector = FaultInjector(
            compile_source(source, name=bench.name),
            config_factory=config_factory, platform_factory=apple_m2,
            files=files, seed=args.seed_base, quantum=args.quantum)
        campaigns[name] = injector.run_campaign(
            injections_per_segment=args.injections,
            benchmark_name=name, max_segments=args.max_segments,
            shards=args.shards, workers=args.workers,
            journal_path=journal, resume=args.resume)
        fleets[name] = campaigns[name].fleet
    merged = render_injection(campaigns) + "\n"
    report = [merged.rstrip("\n")]
    for name in names:
        report.append(f"-- fleet: {name} --\n{render_fleet(fleets[name])}")
    print("\n\n".join(report))
    if args.report_out is not None:
        # Only the merged outcome table goes to the file: it depends on
        # nothing but (seed, shards, plan), so serial / fleet / resumed
        # runs of the same campaign write byte-identical reports.  The
        # fleet table (wall-clock, per-run supervision) stays on stdout.
        with open(args.report_out, "w", encoding="utf-8") as f:
            f.write(merged)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.harness.runner --bench mcf --mem-sample``.

    Runs each requested benchmark under the requested mode and prints the
    measurement summary; with ``--mem-sample`` the runtime's PSS sampler
    is enabled and the memory columns (mean PSS, peak resident bytes) are
    populated.  ``--budget`` bounds the frame pool to exercise the
    pressure ladder from the command line.
    """
    import argparse

    from repro.modes import registered_modes
    from repro.workloads.registry import benchmark

    parser = argparse.ArgumentParser(
        prog="repro.harness.runner",
        description="Run benchmarks under baseline or a detection mode "
                    "(parallaft / raft / tmr).")
    parser.add_argument("--bench", required=True,
                        help="comma-separated benchmark names")
    parser.add_argument("--mode", default="parallaft",
                        choices=("baseline", *registered_modes()))
    parser.add_argument("--mem-sample", action="store_true",
                        help="sample PSS during the run and report "
                             "mean PSS / peak resident bytes")
    parser.add_argument("--budget", type=int, default=None, metavar="BYTES",
                        help="frame-pool budget in bytes (default unbounded)")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--quantum", type=int, default=2000)
    parser.add_argument("--seed-base", type=int, default=0)
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome trace JSON per input")
    parser.add_argument("--metrics", action="store_true",
                        help="live gauge dashboard during the run plus a "
                             "phase-attributed overhead table at the end")
    parser.add_argument("--metrics-interval", type=float, default=0.5,
                        metavar="SECONDS",
                        help="virtual-time gauge sampling period "
                             "(default 0.5)")
    parser.add_argument("--prom", default=None, metavar="PATH",
                        help="write the end-of-run metric registry as "
                             "Prometheus text, per input")
    parser.add_argument("--collapsed", default=None, metavar="PATH",
                        help="write the phase profile as a collapsed-stack "
                             "(flamegraph) file, per input")
    campaign = parser.add_argument_group(
        "campaign mode",
        "run a sharded fault-injection campaign through the campaign "
        "engine instead of a measurement run")
    campaign.add_argument("--campaign", action="store_true",
                          help="run a fault-injection campaign on each "
                               "benchmark and print the outcome + fleet "
                               "tables")
    campaign.add_argument("--shards", type=int, default=1, metavar="N",
                          help="logical shards (part of the campaign's "
                               "identity; resume refuses a mismatch)")
    campaign.add_argument("--workers", type=int, default=0, metavar="K",
                          help="worker processes (0 = serial in-process, "
                               "the determinism baseline)")
    campaign.add_argument("--journal", default=None, metavar="PATH",
                          help="durable JSONL journal (multi-benchmark "
                               "runs insert the benchmark name before "
                               "the extension)")
    campaign.add_argument("--resume", action="store_true",
                          help="resume from --journal, skipping "
                               "completed injections")
    campaign.add_argument("--injections", type=int, default=3, metavar="N",
                          help="injections per segment (default 3)")
    campaign.add_argument("--max-segments", type=int, default=None,
                          metavar="N",
                          help="sample at most N segments instead of "
                               "injecting into every one")
    campaign.add_argument("--report-out", default=None, metavar="PATH",
                          help="also write the campaign report to PATH")
    args = parser.parse_args(argv)

    if args.campaign:
        return _run_campaign_cli(args)

    from repro.harness.report import render_phase_breakdown, render_run_stats
    from repro.metrics import Dashboard

    profiles = {}
    for name in args.bench.split(","):
        bench = benchmark(name.strip())
        if args.mode == "baseline":
            result = run_baseline(bench, scale=args.scale,
                                  seed_base=args.seed_base,
                                  quantum=args.quantum,
                                  sample_memory=args.mem_sample)
        else:
            config = None
            if args.budget is not None:
                from repro.modes import get_mode
                config = get_mode(args.mode).make_config(
                    mem_budget_bytes=args.budget)
            dashboard = Dashboard() if args.metrics else None
            want_sampling = args.metrics or args.prom is not None
            result = run_protected(
                bench, mode=args.mode,
                config=config, scale=args.scale,
                seed_base=args.seed_base,
                quantum=args.quantum,
                sample_memory=args.mem_sample,
                trace_path=args.trace,
                metrics_interval=(args.metrics_interval if want_sampling
                                  else None),
                metrics_callback=(dashboard.update if dashboard else None),
                prom_path=args.prom,
                collapsed_path=args.collapsed)
            profile = result.phase_profile()
            if profile is not None:
                profiles[bench.name] = profile
        print(f"== {bench.name} ({result.mode}) ==")
        print(f"wall_time      {result.wall_time:.1f}")
        print(f"energy_joules  {result.energy_joules:.3f}")
        if args.mem_sample:
            from repro.harness.report import NA
            # "—", not 0: a run that produced no samples (e.g. it ended
            # before the first sampling tick) measured nothing.
            print(f"mean_pss       "
                  f"{f'{result.mean_pss():.0f}' if result.pss_samples else NA}")
        for run in result.inputs:
            if run.stats is not None:
                print(render_run_stats(run.stats))
    if args.metrics and profiles:
        print()
        print(render_phase_breakdown(profiles))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Performance-overhead breakdown (paper §5.2.1, figure 6).

The four components, attributed exactly as the paper measures them:

* **fork_and_cow** — the difference in *system* CPU time between the
  Parallaft run and the baseline run (fork, COW resolution, dirty clearing
  are all kernel work on the main's critical path);
* **resource_contention** — the difference in *user* CPU time (LLC/DRAM
  contention inflates the main's cycles per instruction);
* **last_checker_sync** — ``all_wall_time - main_wall_time`` (waiting for
  trailing checkers after the main finishes);
* **runtime_work** — the remainder of the total overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.harness.runner import BenchmarkResult


@dataclass
class OverheadBreakdown:
    benchmark: str
    total_pct: float
    fork_and_cow_pct: float
    resource_contention_pct: float
    last_checker_sync_pct: float
    runtime_work_pct: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "total": self.total_pct,
            "fork_and_cow": self.fork_and_cow_pct,
            "resource_contention": self.resource_contention_pct,
            "last_checker_sync": self.last_checker_sync_pct,
            "runtime_work": self.runtime_work_pct,
        }


def breakdown(protected: BenchmarkResult,
              baseline: BenchmarkResult) -> OverheadBreakdown:
    base_wall = baseline.wall_time
    total = (protected.wall_time - base_wall) / base_wall * 100.0
    fork_cow = (protected.sys_time - baseline.sys_time) / base_wall * 100.0
    contention = (protected.user_time - baseline.user_time) / base_wall * 100.0
    last_sync = (protected.wall_time
                 - protected.main_wall_time) / base_wall * 100.0
    runtime_work = total - fork_cow - contention - last_sync
    return OverheadBreakdown(
        benchmark=protected.benchmark,
        total_pct=total,
        fork_and_cow_pct=max(0.0, fork_cow),
        resource_contention_pct=max(0.0, contention),
        last_checker_sync_pct=max(0.0, last_sync),
        runtime_work_pct=runtime_work,
    )

"""Plain-text report rendering for experiment results.

Formats the structures produced by :mod:`repro.harness.figures` into the
aligned tables the paper's figures plot — usable from scripts, notebooks
and the bench suite alike (no plotting dependencies).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence

from repro.common.units import BILLION, geomean, geomean_overhead_pct
from repro.faults import CampaignResult, Outcome
from repro.harness.figures import PeriodSweepPoint, SuiteComparison
from repro.harness.overhead import OverheadBreakdown
from repro.metrics import (
    CHECKPOINT_FORK, COMPARISON, DIRTY_SCAN, HASHING, MAIN_EXEC,
    RECOVERY_ROLLBACK, REPLAY, RUNTIME, VOTE, CAP_STALL, CHECKER_STALL,
    CONTAINMENT_STALL, PRESSURE_STALL, PhaseProfile,
)
from repro.trace import TraceBuffer
from repro.trace import events as tev

#: Cell rendered for a phase the run's mode never executes (e.g. replay
#: columns in a RAFT run) — distinct from a measured-but-tiny ``0.0``.
NA = "—"

_NUMERIC_RE = re.compile(r"^[+-]?\d[\d_.,]*(?:[eE][+-]?\d+)?[%xX]?$")


def _numeric_ish(cell: str) -> bool:
    """True for cells that belong in a right-aligned numeric column:
    numbers (optionally signed / percent / ratio-suffixed) and the
    placeholders an absent measurement renders as."""
    return cell in ("", "-", NA) or _NUMERIC_RE.match(cell) is not None


def _table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    # A column is right-aligned when every body cell is numeric or an
    # absent-measurement placeholder — so columns of words ("unbounded",
    # "OOM", benchmark names) keep reading left-to-right.
    right = [bool(rows)
             and all(_numeric_ish(row[i]) for row in rows if i < len(row))
             for i in range(len(headers))]

    def fmt(row):
        return "  ".join(cell.rjust(widths[i]) if right[i]
                         else cell.ljust(widths[i])
                         for i, cell in enumerate(row)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_overheads(comparison: SuiteComparison,
                     metric: str = "perf") -> str:
    """Figure 5/7-style table: per-benchmark overhead + geomean."""
    if metric == "perf":
        para = comparison.perf_overheads("parallaft")
        raft = comparison.perf_overheads("raft")
        title = "performance overhead"
    else:
        para = comparison.energy_overheads("parallaft")
        raft = comparison.energy_overheads("raft")
        title = "energy overhead"
    rows = [(name, f"+{para[name]:.1f}%", f"+{raft[name]:.1f}%")
            for name in sorted(para)]
    rows.append(("geomean",
                 f"+{geomean_overhead_pct(para.values()):.1f}%",
                 f"+{geomean_overhead_pct(raft.values()):.1f}%"))
    return (f"{title} ({comparison.platform})\n"
            + _table(("benchmark", "parallaft", "raft"), rows))


def render_breakdown(breakdowns: Dict[str, OverheadBreakdown]) -> str:
    """Figure 6-style table."""
    rows = [(name, f"{bd.total_pct:.1f}", f"{bd.fork_and_cow_pct:.1f}",
             f"{bd.resource_contention_pct:.1f}",
             f"{bd.last_checker_sync_pct:.1f}",
             f"{bd.runtime_work_pct:.1f}")
            for name, bd in sorted(breakdowns.items())]
    return _table(("benchmark", "total%", "fork+cow", "contention",
                   "last-sync", "runtime"), rows)


#: Column label → profiler phase, in paper figure order.  Together the
#: phase columns cover every overhead component the profiler can charge
#: (``PhaseProfile.overhead_components``), so the ``total%`` column is by
#: construction the exact sum of the per-phase columns.
_PHASE_COLUMNS = (
    ("fork+cow", CHECKPOINT_FORK),
    ("dirty-scan", DIRTY_SCAN),
    ("hashing", HASHING),
    ("compare", COMPARISON),
    ("replay", REPLAY),
    ("runtime", RUNTIME),
    ("rollback", RECOVERY_ROLLBACK),
    ("vote", VOTE),
)

_STALL_COLUMNS = (
    ("contain(s)", CONTAINMENT_STALL),
    ("pressure(s)", PRESSURE_STALL),
    ("cap(s)", CAP_STALL),
    ("checker(s)", CHECKER_STALL),
)


def render_phase_breakdown(profiles: Dict[str, PhaseProfile]) -> str:
    """Figure 6-style table from the phase-attribution profiler.

    Unlike :func:`render_breakdown` (which reconstructs components from
    wall-clock deltas between ablation runs), this table is built from the
    profiler's cycle ledger: every simulated cycle was charged to exactly
    one phase (trace invariant ``cycle_conservation``), so the phase
    columns sum to ``total%`` exactly.  Cycle phases render as a percent
    of main-execution cycles; stall columns are virtual seconds the main
    spent blocked, by stall reason.  A phase the mode never executed
    (e.g. ``replay`` under RAFT) renders as ``—`` rather than ``0.0``.
    """
    headers = ("benchmark", "total%",
               *(label for label, _ in _PHASE_COLUMNS),
               *(label for label, _ in _STALL_COLUMNS))
    rows = []
    for name, profile in sorted(profiles.items()):
        app = profile.cycles.get(MAIN_EXEC, 0.0)
        components = profile.overhead_components()

        def pct(cycles: float) -> str:
            if cycles == 0.0:
                return NA
            # No main-execution baseline (degenerate run): show raw cycles.
            return (f"{100.0 * cycles / app:.1f}" if app > 0
                    else f"{cycles:.3g}")

        def stall(seconds: float) -> str:
            return NA if seconds == 0.0 else f"{seconds:.3f}"

        rows.append((
            name,
            pct(sum(components.values())),
            *(pct(components.get(phase, 0.0))
              for _, phase in _PHASE_COLUMNS),
            *(stall(profile.stall_seconds.get(phase, 0.0))
              for _, phase in _STALL_COLUMNS),
        ))
    return ("phase-attributed overhead (% of main-execution cycles; "
            f"{NA} = phase never ran)\n" + _table(headers, rows))


def render_memory(comparison: SuiteComparison) -> str:
    """Figure 8-style table."""
    para = comparison.memory_normalized("parallaft")
    raft = comparison.memory_normalized("raft")
    rows = [(name, f"{para[name]:.2f}x", f"{raft[name]:.2f}x")
            for name in sorted(para)]
    rows.append(("geomean",
                 f"{geomean(v for v in para.values() if v > 0):.2f}x",
                 f"{geomean(v for v in raft.values() if v > 0):.2f}x"))
    return "normalized memory (PSS)\n" + _table(
        ("benchmark", "parallaft", "raft"), rows)


def render_period_sweep(sweep: Dict[str, List[PeriodSweepPoint]]) -> str:
    """Figure 9-style table."""
    blocks = []
    for name, points in sweep.items():
        rows = [(p.label, f"{p.total_pct:.1f}", f"{p.fork_and_cow_pct:.1f}",
                 f"{p.last_checker_sync_pct:.1f}") for p in points]
        best = min(points, key=lambda p: p.total_pct)
        blocks.append(f"{name} (sweet spot {best.paper_period / BILLION:g}B)\n"
                      + _table(("period", "total%", "fork+cow", "last-sync"),
                               rows))
    return "\n\n".join(blocks)


def render_timeline(trace: TraceBuffer, last: Optional[int] = 40) -> str:
    """Timeline figure for one run's event trace.

    A per-kind census (so the shape of the run is visible at a glance)
    followed by the tail of the raw event timeline.  For the full
    interactive view, export :meth:`TraceBuffer.chrome_trace` and load it
    in Perfetto.
    """
    counts: Dict[str, int] = {}
    for event in trace:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    census = _table(("event", "count"),
                    sorted(counts.items(), key=lambda kv: -kv[1]))
    segments_done = counts.get(tev.SEGMENT_CHECKED, 0)
    header = (f"event trace: {len(trace)} events "
              f"({trace.dropped} dropped), "
              f"{segments_done} segments checked")
    tail_label = (f"last {last} events" if last is not None
                  and len(trace) > last else "all events")
    return (f"{header}\n\n{census}\n\n{tail_label}:\n"
            + trace.timeline(last=last))


def render_injection(campaigns: Dict[str, CampaignResult]) -> str:
    """Figure 10-style table.

    Columns are generated from the :class:`Outcome` enum so new outcome
    classes (e.g. RECOVERED) appear automatically; the trailing ``missed``
    column accounts for injections that never fired, so the table always
    adds up to what the campaign planned.  A campaign with zero landed
    injections (every shot missed, or nothing was planned) renders its
    fraction cells as ``—`` — there is no distribution to report, and a
    ``0.0%`` row would misread as a measured zero.
    """
    rows = []
    for name, campaign in sorted(campaigns.items()):
        if campaign.total == 0:
            rows.append((name, 0, *(NA for _ in Outcome),
                         campaign.missed))
            continue
        rows.append((name, campaign.total,
                     *(f"{100 * campaign.fraction(o):.1f}%"
                       for o in Outcome),
                     campaign.missed))
    total = sum(c.total for c in campaigns.values())
    if total:
        overall = tuple(
            f"{100 * sum(c.count(o) for c in campaigns.values()) / total:.1f}%"
            for o in Outcome)
        rows.append(("overall", total, *overall,
                     sum(c.missed for c in campaigns.values())))
    return _table(("benchmark", "n", *(o.value for o in Outcome), "missed"),
                  rows)


def render_fleet(fleet) -> str:
    """Per-shard supervision table for one
    :class:`repro.campaign.FleetResult` — one row per shard plus a total
    row, followed by the run-level ``counter.campaign.*`` lines (retries,
    backoff seconds, resumes) that have no per-shard home.  Columns that
    never fired render ``—`` so a healthy fleet reads as a clean sweep.
    """
    headers = ("shard", "tasks", "done", "resumed", "retry", "crash",
               "hb-to", "straggle", "quarantine", "failed", "respawn",
               "wall")

    def cell(n) -> str:
        return NA if not n else str(n)

    rows = []
    for s in fleet.shards:
        rows.append((str(s.shard), s.tasks, cell(s.completed),
                     cell(s.resumed), cell(s.retries), cell(s.crashes),
                     cell(s.heartbeat_timeouts), cell(s.stragglers),
                     cell(s.quarantined), cell(s.failed),
                     cell(s.respawns), f"{s.wall_time:.2f}"))
    if len(fleet.shards) > 1:
        rows.append((
            "all", sum(s.tasks for s in fleet.shards),
            cell(sum(s.completed for s in fleet.shards)),
            cell(sum(s.resumed for s in fleet.shards)),
            cell(sum(s.retries for s in fleet.shards)),
            cell(sum(s.crashes for s in fleet.shards)),
            cell(sum(s.heartbeat_timeouts for s in fleet.shards)),
            cell(sum(s.stragglers for s in fleet.shards)),
            cell(sum(s.quarantined for s in fleet.shards)),
            cell(sum(s.failed for s in fleet.shards)),
            cell(sum(s.respawns for s in fleet.shards)),
            f"{sum(s.wall_time for s in fleet.shards):.2f}"))
    registry = fleet.registry
    footer = [
        f"campaign {fleet.name}: {len(fleet.records)} records, "
        f"{fleet.resumed_tasks} resumed from journal, "
        f"{fleet.wall_time:.2f}s wall"
        + (f", journal {fleet.journal_path}" if fleet.journal_path
           else ""),
        f"counters: retries={registry.value('campaign.retries'):g} "
        f"backoff={registry.value('campaign.backoff_seconds'):.2f}s "
        f"worker_crashes={registry.value('campaign.worker_crashes'):g} "
        f"quarantined={registry.value('campaign.quarantined'):g}",
    ]
    return _table(headers, rows) + "\n" + "\n".join(footer)


def render_run_stats(stats) -> str:
    """Key scalars of one run, from :meth:`RunStats.to_dict`.

    Shows the headline timing, segment and memory counters — including
    ``memory.peak_resident_bytes``, the frame-pool high-water mark the
    pressure controller manages against — plus any nonzero pressure /
    OOM counters so a degraded run is visible at a glance.
    """
    d = stats.to_dict()
    keys = [
        "timing.all_wall_time",
        "timing.main_wall_time",
        "counter.segments",
        "counter.segments_checked",
        "memory.peak_resident_bytes",
    ]
    keys.extend(sorted(
        k for k, v in d.items()
        if v and (k.startswith("counter.pressure.")
                  or k.startswith("counter.tmr.")
                  or k.startswith("counter.meek.")
                  or k in ("counter.oom_kills", "oom_killed"))))
    rows = [(k, d[k]) for k in keys if k in d]
    return _table(("stat", "value"), rows)


def render_pressure_campaign(sweeps: Dict[str, "PressureSweep"]) -> str:
    """Degradation table for :func:`repro.harness.pressure.run_pressure_campaign`.

    One row per (benchmark, budget) rung, budget expressed both in bytes
    and as the fraction of protection overhead retained.  The headline
    reading: overhead grows monotonically as the budget shrinks, outputs
    stay byte-identical on every surviving rung, and the bottom rung ends
    in a clean OOM rather than a wrong answer.
    """
    headers = ("benchmark", "budget", "frac", "wall", "ovh%", "peakKiB",
               "stall", "shed", "evict", "adapt", "outcome")
    rows = []
    for name in sorted(sweeps):
        sweep = sweeps[name]
        for run in sweep.runs:
            if run.oom:
                outcome = "OOM"
            elif run.error_kinds:
                outcome = "error:" + ",".join(run.error_kinds)
            elif not run.output_matched:
                outcome = "MISMATCH"
            else:
                outcome = "ok"
            if run.invariant_violations:
                outcome += f" +{len(run.invariant_violations)}inv"
            if run.campaign is not None and run.campaign.total:
                outcome += (f" sdc={100 * run.campaign.sdc_fraction:.0f}%")
            rows.append((
                name,
                "unbounded" if run.budget_bytes is None
                else str(run.budget_bytes),
                "-" if run.overhead_fraction is None
                else f"{run.overhead_fraction:.2f}",
                f"{run.wall_time:.0f}",
                f"{run.overhead_pct:+.1f}",
                f"{run.peak_resident_bytes / 1024:.0f}",
                run.stalls, run.sheds, run.evictions, run.adaptations,
                outcome))
    return "graceful degradation under memory pressure\n" + _table(
        headers, rows)


def render_mode_comparison(
        summaries: Dict[str, "ModeRunSummary"]) -> str:
    """Cross-mode table for
    :func:`repro.modes.comparison.run_mode_comparison`.

    One row per detection mode, same workload, *identical* injection
    plan: overhead vs the unprotected baseline, how many planned faults
    fired, what fraction were detected / recovered / escaped as SDC,
    the mean detection latency (virtual seconds from flip to the first
    detection action) and how each mode survived — rollbacks versus
    forward recoveries.  Cells a mode never produced (no fired faults,
    no latency, zero recoveries of a kind) render as ``—`` so a column
    of real zeros stays distinguishable from "not applicable".
    """
    headers = ("mode", "ovh%", "fired", "detected", "recovered", "sdc",
               "benign", "latency", "rollback", "fwd-rec", "outvoted")

    def count_cell(n: int) -> str:
        return NA if not n else str(n)

    rows = []
    for name, s in summaries.items():
        fired = s.fired
        if not fired:
            rows.append((name, f"+{s.overhead_pct:.1f}", 0,
                         NA, NA, NA, NA, NA, NA, NA, NA))
            continue
        latency = s.mean_detection_latency
        rows.append((
            name,
            f"+{s.overhead_pct:.1f}",
            len(fired),
            f"{100 * s.detected_fraction:.0f}%",
            f"{100 * s.fraction(Outcome.RECOVERED):.0f}%",
            f"{100 * s.sdc_fraction:.0f}%",
            f"{100 * s.fraction(Outcome.BENIGN):.0f}%",
            NA if latency is None else f"{latency:.4f}",
            count_cell(s.total_rollbacks),
            count_cell(s.total_forward_recoveries),
            count_cell(sum(r.outvoted for r in s.records)),
        ))
    return ("detection modes, identical injection plan "
            f"({NA} = never happened under this mode)\n"
            + _table(headers, rows))


def render_infra_campaign(
        results: Dict[str, Dict[str, CampaignResult]]) -> str:
    """Infrastructure-fault coverage table (:mod:`repro.faults.infra`).

    ``results`` maps benchmark name → fault kind → campaign.  One row per
    (benchmark, kind) plus a per-kind aggregate block, with the SDC
    column as the headline: the fraction of injections whose corruption
    escaped silently.  Hardening is judged by this table — run it once
    per arm and compare the sdc columns.
    """
    headers = ("benchmark", "kind", "n", "detected", "recovered", "sdc",
               "benign", "missed")
    rows = []
    for name in sorted(results):
        for kind in sorted(results[name]):
            c = results[name][kind]
            rows.append((name, kind, c.total,
                         f"{100 * c.detected_fraction:.1f}%",
                         f"{100 * c.recovered_fraction:.1f}%",
                         f"{100 * c.sdc_fraction:.1f}%",
                         f"{100 * c.fraction(Outcome.BENIGN):.1f}%",
                         c.missed))
    kinds = sorted({k for per in results.values() for k in per})
    for kind in kinds:
        campaigns = [per[kind] for per in results.values() if kind in per]
        total = sum(c.total for c in campaigns)
        if not total:
            rows.append(("all", kind, 0, "-", "-", "-", "-",
                         sum(c.missed for c in campaigns)))
            continue

        def agg(pick):
            return (f"{100 * sum(pick(c) for c in campaigns) / total:.1f}%")

        rows.append((
            "all", kind, total,
            agg(lambda c: sum(1 for r in c.injections
                              if r.outcome.is_detected)),
            agg(lambda c: c.count(Outcome.RECOVERED)),
            agg(lambda c: c.count(Outcome.SDC)),
            agg(lambda c: c.count(Outcome.BENIGN)),
            sum(c.missed for c in campaigns)))
    return _table(headers, rows)

"""SPEC CPU2006-like workload suite and synthetic workload generator."""

from repro.workloads.generator import synthetic_program, synthetic_source
from repro.workloads.registry import (
    SENSITIVITY_TRIO,
    Benchmark,
    all_benchmarks,
    benchmark,
    fp_benchmarks,
    int_benchmarks,
)

__all__ = [
    "Benchmark",
    "all_benchmarks",
    "benchmark",
    "int_benchmarks",
    "fp_benchmarks",
    "SENSITIVITY_TRIO",
    "synthetic_program",
    "synthetic_source",
]

"""Benchmark registry: the SPEC CPU2006-like workload suite.

SPEC CPU2006 itself cannot be redistributed (the paper's artifact has the
same limitation), so each benchmark here is a mini-C program written to
match its namesake's *computational character* — instruction mix, memory
intensity, working-set streaming pattern, and input structure (gcc has 9
inputs, bzip2 6, ...).  The registry records the characteristics the
evaluation relies on; the actual memory behaviour is *measured* by the
simulator, not asserted.

Scales: ``ref`` for the headline figures, ``test`` for unit tests and
fault-injection campaigns (paper-style full runs per injection).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.program import Program
from repro.minic import compile_source

#: source text, input files
BuildResult = Tuple[str, Dict[str, bytes]]


@dataclass
class Benchmark:
    name: str
    suite: str                         # 'int' or 'fp'
    description: str
    #: build(scale, seed) -> (mini-C source, input files)
    build: Callable[[int, int], BuildResult]
    #: Number of separate inputs; each runs as its own process, SPEC-style
    #: (gcc's 9 inputs make last-checker sync visible, paper §5.5).
    n_inputs: int = 1
    #: Qualitative memory intensity ('low'|'medium'|'high') — documentation
    #: only; the simulator measures the real ratio.
    mem_profile: str = "medium"

    def program(self, scale: int = 1, seed: int = 1) -> Program:
        source, _ = self.build(scale, seed)
        return compile_source(source, name=f"{self.name}-{seed}")

    def files(self, scale: int = 1, seed: int = 1) -> Dict[str, bytes]:
        _, files = self.build(scale, seed)
        return files

    def input_seeds(self) -> List[int]:
        return list(range(1, self.n_inputs + 1))


_MODULES = [
    "bzip2", "gcc", "mcf", "gobmk", "hmmer", "sjeng", "libquantum",
    "h264ref", "omnetpp", "astar",
    "milc", "namd", "soplex", "povray", "lbm", "sphinx3",
]

_registry: Optional[Dict[str, Benchmark]] = None


def all_benchmarks() -> Dict[str, Benchmark]:
    """Import and return every benchmark, keyed by name."""
    global _registry
    if _registry is None:
        _registry = {}
        for module_name in _MODULES:
            module = importlib.import_module(
                f"repro.workloads.programs.{module_name}")
            benchmark = module.BENCHMARK
            _registry[benchmark.name] = benchmark
    return _registry


def benchmark(name: str) -> Benchmark:
    registry = all_benchmarks()
    if name not in registry:
        raise KeyError(f"unknown benchmark {name!r}; have "
                       f"{sorted(registry)}")
    return registry[name]


def int_benchmarks() -> List[Benchmark]:
    return [b for b in all_benchmarks().values() if b.suite == "int"]


def fp_benchmarks() -> List[Benchmark]:
    return [b for b in all_benchmarks().values() if b.suite == "fp"]


#: The three benchmarks the paper's §5.5 sensitivity study uses, chosen for
#: their contrasting characters: gcc (many short inputs), mcf
#: (memory-intensive), sjeng (long and compute-bound).
SENSITIVITY_TRIO = ("gcc", "mcf", "sjeng")

"""Synthetic workload generator.

Produces mini-C programs with a *dialable* memory intensity and footprint,
used by ablation benchmarks and calibration tests to sweep behaviours the
fixed SPEC-like suite only samples (e.g. "how does overhead scale with the
fraction of pages written per segment?").
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.minic import compile_source
from repro.isa.program import Program


def synthetic_source(total_iters: int = 20000,
                     footprint_bytes: int = 131072,
                     mem_ops_per_iter: int = 2,
                     compute_ops_per_iter: int = 6,
                     write_fraction_pct: int = 50,
                     seed: int = 1) -> str:
    """A loop touching ``footprint_bytes`` of heap with a chosen mix of
    memory and compute operations per iteration."""
    n_words = max(8, footprint_bytes // 8)
    mem_block = []
    for k in range(mem_ops_per_iter):
        if (k * 100) // max(1, mem_ops_per_iter) < write_fraction_pct:
            mem_block.append(
                f"poke64(buf + idx{k} * 8, acc + {k});")
        else:
            mem_block.append(f"acc = acc + peek64(buf + idx{k} * 8);")
        mem_block.append(
            f"idx{k} = (idx{k} * 40503 + {k + 1}) % {n_words};")
    compute_block = "\n            ".join(
        f"acc = (acc * 33 + i + {k}) % 1000000007;"
        for k in range(compute_ops_per_iter))
    index_decls = "\n    ".join(f"var idx{k};" for k in range(mem_ops_per_iter))
    index_inits = "\n    ".join(f"idx{k} = {k * 977 % n_words};"
                                for k in range(mem_ops_per_iter))
    mem_code = "\n            ".join(mem_block)
    return f"""
func main() {{
    var buf; var i; var acc;
    {index_decls}
    buf = mmap_anon({n_words * 8});
    {index_inits}
    acc = {seed};
    for (i = 0; i < {total_iters}; i = i + 1) {{
            {mem_code}
            {compute_block}
    }}
    print_int(acc % 1000000007);
}}
"""


def synthetic_program(**kwargs) -> Program:
    return compile_source(synthetic_source(**kwargs), name="synthetic")

"""444.namd-like workload: molecular dynamics pair interactions.

Lennard-Jones force accumulation over particle pairs within a cutoff —
floating-point compute-dominated with a small resident particle set
(namd is one of SPEC fp's most cache-friendly codes).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    n_particles = 40
    n_steps = 3 * scale
    source = f"""
global float px[64];
global float py[64];
global float pz[64];
global float fx[64];
global float fy[64];
global float fz[64];

func main() {{
    var i; var j; var step; var checksum;
    float dx; float dy; float dz; float r2; float inv; float force;
    float energy;
    for (i = 0; i < {n_particles}; i = i + 1) {{
        px[i] = float((i * 17) % 23) * 0.3;
        py[i] = float((i * 29) % 19) * 0.4;
        pz[i] = float((i * 41) % 31) * 0.2;
    }}
    checksum = 0;
    for (step = 0; step < {n_steps}; step = step + 1) {{
        energy = 0.0;
        for (i = 0; i < {n_particles}; i = i + 1) {{
            fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0;
        }}
        for (i = 0; i < {n_particles}; i = i + 1) {{
            for (j = i + 1; j < {n_particles}; j = j + 1) {{
                dx = px[i] - px[j];
                dy = py[i] - py[j];
                dz = pz[i] - pz[j];
                r2 = dx * dx + dy * dy + dz * dz + 0.01;
                if (r2 < 16.0) {{
                    // Lennard-Jones 6-12 via reciprocal powers.
                    inv = 1.0 / r2;
                    force = inv * inv * inv * (inv * 2.0 - 1.0);
                    fx[i] = fx[i] + force * dx;
                    fy[i] = fy[i] + force * dy;
                    fz[i] = fz[i] + force * dz;
                    fx[j] = fx[j] - force * dx;
                    fy[j] = fy[j] - force * dy;
                    fz[j] = fz[j] - force * dz;
                    energy = energy + force * r2;
                }}
            }}
        }}
        // Velocity-free position update (steepest descent step).
        for (i = 0; i < {n_particles}; i = i + 1) {{
            px[i] = px[i] + fx[i] * 0.001;
            py[i] = py[i] + fy[i] * 0.001;
            pz[i] = pz[i] + fz[i] * 0.001;
        }}
        checksum = (checksum * 11 + int(energy * 100.0)) % 1000000007;
    }}
    print_int(checksum);
}}
"""
    return source, {}


BENCHMARK = Benchmark(
    name="namd",
    suite="fp",
    description="Lennard-Jones pair forces over a small particle set",
    build=build,
    n_inputs=1,
    mem_profile="low",
)

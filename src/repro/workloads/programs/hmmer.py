"""456.hmmer-like workload: profile HMM sequence search.

Viterbi dynamic programming over match/insert/delete state rows — regular
row-streaming memory access with data-dependent maxima, like hmmer's P7
core loop.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def _sequence(seed: int, length: int) -> bytes:
    rng = random.Random(seed * 353)
    return bytes(rng.randrange(20) for _ in range(length))


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    model_len = 40 * scale
    seq_len = 60 * scale
    source = f"""
global match_score[3072];
global vit_match[3072];
global vit_insert[3072];
global vit_delete[3072];

func main() {{
    var fd; var seq; var i; var j; var residue; var checksum;
    var m; var ins; var del; var prev_m; var score; var t;
    fd = open("hmmer.seq");
    seq = mmap_anon(4096);
    read(fd, seq, {seq_len});
    // Emission scores per (model position x residue class).
    for (i = 0; i < {model_len}; i = i + 1) {{
        match_score[i] = (i * 7919) % 17 - 8;
    }}
    checksum = 0;
    for (i = 0; i < {seq_len}; i = i + 1) {{
        residue = peek8(seq + i);
        prev_m = 0;
        for (j = 1; j < {model_len}; j = j + 1) {{
            score = match_score[j] + (residue * j) % 5 - 2;
            // m = max(match, insert, delete)[j-1] + score   (inlined maxima)
            m = vit_match[j - 1];
            t = vit_insert[j - 1];
            if (t > m) {{ m = t; }}
            t = vit_delete[j - 1];
            if (t > m) {{ m = t; }}
            m = m + score;
            ins = vit_match[j];
            t = vit_insert[j];
            if (t > ins) {{ ins = t; }}
            ins = ins - 3;
            del = prev_m;
            t = vit_delete[j - 1];
            if (t > del) {{ del = t; }}
            del = del - 4;
            prev_m = vit_match[j];
            vit_match[j] = m;
            vit_insert[j] = ins;
            vit_delete[j] = del;
        }}
        checksum = (checksum + vit_match[{model_len} - 1]) % 1000000007;
    }}
    print_int(checksum);
}}
"""
    return source, {"hmmer.seq": _sequence(seed, seq_len)}


BENCHMARK = Benchmark(
    name="hmmer",
    suite="int",
    description="Viterbi dynamic programming over HMM state rows",
    build=build,
    n_inputs=2,
    mem_profile="medium",
)

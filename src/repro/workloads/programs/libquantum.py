"""462.libquantum-like workload: quantum register simulation.

Repeated full sweeps over a large amplitude array applying gate
transformations (toffoli/cnot-style index arithmetic plus conditional bit
flips) — long sequential streams over a working set that overwhelms caches.
One of the paper's memory-contention-dominated benchmarks (§5.2.1).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    n_states = 24576 * scale      # 192 KB amplitude array, swept repeatedly
    n_sweeps = 2 * scale
    source = f"""
func main() {{
    var reg; var i; var sweep; var state; var target; var checksum;
    var control; var bit;
    reg = mmap_anon({n_states} * 8);
    srand64({seed * 41 + 11});
    // Amplitudes initialized from the kernel RNG: one big syscall whose
    // output must be recorded and replayed to checkers.
    getrandom(reg, {n_states} * 8);
    checksum = 0;
    for (sweep = 0; sweep < {n_sweeps}; sweep = sweep + 1) {{
        control = 1 << (sweep % 12);
        bit = 1 << ((sweep + 5) % 12);
        // Phase sweep: unconditional read-modify-write stream over the
        // whole register, then a conditional CNOT-style exchange.
        for (i = 0; i < {n_states}; i = i + 2) {{
            state = peek64(reg + i * 8);
            poke64(reg + i * 8, state ^ control);
            if (i & control) {{
                target = i ^ bit;
                if (target > i) {{
                    poke64(reg + target * 8, state);
                }}
            }}
        }}
        checksum = (checksum + peek64(reg + (sweep * 977 % {n_states}) * 8))
                   % 1000000007;
    }}
    for (i = 0; i < {n_states}; i = i + {max(1, 16 // scale)}) {{
        checksum = (checksum + peek64(reg + i * 8)) % 1000000007;
    }}
    print_int(checksum);
}}
"""
    return source, {}


BENCHMARK = Benchmark(
    name="libquantum",
    suite="int",
    description="quantum register gate sweeps over a large amplitude array",
    build=build,
    n_inputs=1,
    mem_profile="high",
)

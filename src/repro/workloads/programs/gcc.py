"""403.gcc-like workload: compiler data structures.

Symbol-table hashing plus expression-tree construction/folding — the
pointer-and-hash-heavy behaviour of a compiler front end.  SPEC runs gcc on
nine inputs, each short: last-checker-sync overhead dominates at long
slicing periods, giving gcc its 2-billion-cycle sweet spot in the paper's
figure 9.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    n_symbols = 60 * scale
    n_folds = 40 * scale
    source = f"""
global hash_keys[2048];
global hash_vals[2048];
// Expression tree nodes: op, left, right, value (struct-of-arrays).
global node_op[2048];
global node_left[2048];
global node_right[2048];
global node_val[2048];
global node_count;

func hash_insert(key, value) {{
    var slot; var probes;
    slot = (key * 2654435761) % 2048;
    if (slot < 0) {{ slot = slot + 2048; }}
    probes = 0;
    while (hash_keys[slot] != 0 && hash_keys[slot] != key) {{
        slot = (slot + 1) % 2048;
        probes = probes + 1;
        if (probes > 2048) {{ return -1; }}
    }}
    hash_keys[slot] = key;
    hash_vals[slot] = value;
    return slot;
}}

func hash_lookup(key) {{
    var slot; var probes;
    slot = (key * 2654435761) % 2048;
    if (slot < 0) {{ slot = slot + 2048; }}
    probes = 0;
    while (hash_keys[slot] != key) {{
        if (hash_keys[slot] == 0) {{ return -1; }}
        slot = (slot + 1) % 2048;
        probes = probes + 1;
        if (probes > 2048) {{ return -1; }}
    }}
    return hash_vals[slot];
}}

func new_node(op, left, right, value) {{
    var id;
    id = node_count % 2048;
    node_count = node_count + 1;
    node_op[id] = op;
    node_left[id] = left;
    node_right[id] = right;
    node_val[id] = value;
    return id;
}}

// Constant-fold a tree bottom-up (recursive walk, like fold_const).
func fold(id) {{
    var op; var lhs; var rhs;
    op = node_op[id];
    if (op == 0) {{ return node_val[id]; }}
    lhs = fold(node_left[id]);
    rhs = fold(node_right[id]);
    if (op == 1) {{ return lhs + rhs; }}
    if (op == 2) {{ return lhs - rhs; }}
    if (op == 3) {{ return lhs * rhs % 65521; }}
    if (rhs == 0) {{ return lhs; }}
    return lhs % rhs;
}}

func main() {{
    var i; var key; var checksum; var leaf_a; var leaf_b; var tree; var k;
    srand64({seed * 77 + 5});
    checksum = 0;
    for (i = 0; i < {n_symbols}; i = i + 1) {{
        key = rand_below(100000) + 1;
        hash_insert(key, i);
        checksum = (checksum + hash_lookup(key)) % 1000000007;
    }}
    for (i = 0; i < {n_folds}; i = i + 1) {{
        leaf_a = new_node(0, 0, 0, rand_below(1000));
        leaf_b = new_node(0, 0, 0, rand_below(1000) + 1);
        tree = new_node(1 + rand_below(4), leaf_a, leaf_b, 0);
        k = 0;
        while (k < 3) {{
            leaf_a = new_node(0, 0, 0, rand_below(500));
            tree = new_node(1 + rand_below(3), tree, leaf_a, 0);
            k = k + 1;
        }}
        checksum = (checksum * 37 + fold(tree)) % 1000000007;
    }}
    print_int(checksum);
}}
"""
    return source, {}


BENCHMARK = Benchmark(
    name="gcc",
    suite="int",
    description="symbol-table hashing and expression-tree constant folding",
    build=build,
    n_inputs=9,
    mem_profile="medium",
)

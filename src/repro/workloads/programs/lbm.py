"""470.lbm-like workload: lattice-Boltzmann fluid dynamics.

Stream-and-collide passes over a large grid of distribution values —
read-modify-write streams across the whole working set every time step.
The paper's most extreme case: checkers do ~50% of their work on big cores
and lbm is the only benchmark where Parallaft costs more energy than RAFT.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    n_cells = 4096 * scale         # x 3 doubles x 2 grids = 192 KB
    n_steps = 2 * scale
    source = f"""
func main() {{
    var src; var dst; var tmp; var cell; var step; var base; var checksum;
    float f0; float f1; float f2; float rho; float relax;
    src = mmap_anon({n_cells} * 24);
    dst = mmap_anon({n_cells} * 24);
    relax = 0.6;
    for (cell = 0; cell < {n_cells}; cell = cell + 1) {{
        base = src + cell * 24;
        pokef(base, 1.0 + float(cell % 13) * 0.01);
        pokef(base + 8, 0.5);
        pokef(base + 16, 0.25);
    }}
    checksum = 0;
    for (step = 0; step < {n_steps}; step = step + 1) {{
        for (cell = 0; cell < {n_cells}; cell = cell + 1) {{
            base = src + cell * 24;
            f0 = peekf(base);
            f1 = peekf(base + 8);
            f2 = peekf(base + 16);
            rho = f0 + f1 + f2;
            // BGK collision: relax towards equilibrium.
            f0 = f0 + relax * (rho * 0.5 - f0);
            f1 = f1 + relax * (rho * 0.3 - f1);
            f2 = f2 + relax * (rho * 0.2 - f2);
            // Stream to the neighbouring cell in the other grid.
            base = dst + ((cell + 1) % {n_cells}) * 24;
            pokef(base, f0);
            pokef(base + 8, f1);
            pokef(base + 16, f2);
        }}
        tmp = src; src = dst; dst = tmp;
        base = src + (step * 1021 % {n_cells}) * 24;
        checksum = (checksum + int(peekf(base) * 1000.0)) % 1000000007;
    }}
    print_int(checksum);
}}
"""
    return source, {}


BENCHMARK = Benchmark(
    name="lbm",
    suite="fp",
    description="lattice-Boltzmann stream-and-collide over two big grids",
    build=build,
    n_inputs=1,
    mem_profile="high",
)
